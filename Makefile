PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-kernel

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks -q

# Simulator-throughput gate: fails if events/sec regresses more than 20%
# below the committed BENCH_kernel.json baseline.  After an intentional
# kernel change, refresh with: REPRO_BENCH_UPDATE=1 make bench-kernel
bench-kernel:
	$(PYTHON) -m pytest benchmarks/test_kernel_speed.py -q -s
