PYTHON ?= python
export PYTHONPATH := src

# Line-coverage floor enforced by `make coverage` (and thus `make check`).
# Measured 94.3% on 2026-08-07; the floor leaves slack for legitimate
# hard-to-reach lines, not for untested subsystems.
COV_FLOOR ?= 94

.PHONY: test test-fast test-policy test-dist test-serve bench bench-kernel bench-grid profile-kernel coverage report-check check

test:
	$(PYTHON) -m pytest -x -q

# Quick inner-loop run: skips the hypothesis-heavy property suites
# (marker `hypothesis_heavy`), which dominate full-suite wall time.
test-fast:
	$(PYTHON) -m pytest -x -q -m "not hypothesis_heavy"

# Placement-policy engine suites only (marker `policy`): the unit and
# property tests plus the FIG-POLICY tournament benchmark.
test-policy:
	$(PYTHON) -m pytest tests benchmarks/test_fig_policy.py -q -m policy

# Distributed cache-tier suites only (marker `dist`): the peer-cache
# property tests plus the FIG-DIST-CACHE benchmark.
test-dist:
	$(PYTHON) -m pytest tests/distributed benchmarks/test_fig_dist_cache.py -q

# Trace-replay serving suites only (marker `serve`): the workload
# generator/replay tests plus the FIG-SERVE latency-gate benchmark.
test-serve:
	$(PYTHON) -m pytest tests benchmarks/test_fig_serve.py -q -m serve

bench:
	$(PYTHON) -m pytest benchmarks -q

# Simulator-throughput gate: fails if events/sec regresses more than 20%
# below the committed BENCH_kernel.json baseline.  After an intentional
# kernel change, refresh with: REPRO_BENCH_UPDATE=1 make bench-kernel
bench-kernel:
	$(PYTHON) -m pytest benchmarks/test_kernel_speed.py -q -s

# cProfile the kernel-speed probe cell and print the top cumulative
# functions — the first stop when bench-kernel's events/sec regresses.
profile-kernel:
	$(PYTHON) tools/profile_kernel.py

# Parallel-grid gate: times a 7-run FIG3 grid serial vs --jobs $(nproc)
# vs warm-cache.  Warm cache must come in under 10% of uncached; the
# 2.5x pool-speedup gate applies on >= 4 cores; serial runs/sec must
# stay within 20% of the committed BENCH_grid.json baseline.  Refresh
# after an intentional change with: REPRO_BENCH_UPDATE=1 make bench-grid
bench-grid:
	$(PYTHON) -m pytest benchmarks/test_grid_speed.py -q -s

# Runs the tier-1 suite under a line tracer (coverage.py when installed,
# a stdlib sys.settrace fallback otherwise) and fails below COV_FLOOR.
# Expect a traced run to take several times longer than `make test`.
coverage:
	$(PYTHON) tools/coverage_gate.py --quiet --fail-under $(COV_FLOOR)

# RunReport determinism gate: a tiny seeded scenario exported twice must
# produce byte-identical JSON (the contract behind `repro report`).
report-check:
	$(PYTHON) tools/report_check.py

check: test coverage report-check
