"""ABL-FETCH — value of the full-file fetch on partial reads (§III-B).

The paper calls this "a meaningful optimization": when the framework
requests a slice of a TFRecord, MONARCH streams the whole file in the
background so later slices hit the fast tier.  Turning it off leaves
write-through caching of only the bytes the framework actually read —
every first-pass slice still goes to the PFS, and the first-epoch
advantage disappears.
"""

from __future__ import annotations

from benchmarks.conftest import run_in_benchmark
from repro.data.imagenet import IMAGENET_100G
from repro.experiments.runner import run_experiment
from repro.telemetry.report import format_table


def test_ablation_full_fetch(benchmark, bench_scale, bench_runs):
    def sweep():
        on = run_experiment(
            "monarch", "lenet", IMAGENET_100G, scale=bench_scale, runs=bench_runs,
            monarch_overrides={"full_fetch_on_partial_read": True},
        )
        off = run_experiment(
            "monarch", "lenet", IMAGENET_100G, scale=bench_scale, runs=bench_runs,
            monarch_overrides={"full_fetch_on_partial_read": False},
        )
        lustre = run_experiment(
            "vanilla-lustre", "lenet", IMAGENET_100G, scale=bench_scale, runs=bench_runs,
        )
        return on, off, lustre

    on, off, lustre = run_in_benchmark(benchmark, sweep)
    rows = [
        ("full-fetch on (paper)", on.epoch_mean_std()[0][0], on.total_mean),
        ("write-through only", off.epoch_mean_std()[0][0], off.total_mean),
        ("vanilla-lustre", lustre.epoch_mean_std()[0][0], lustre.total_mean),
    ]
    print()
    print(format_table(
        ["variant", "epoch1 (s)", "total (s)"],
        rows,
        title="ABL-FETCH: full-file fetch on partial reads, LeNet 100 GiB",
    ))

    # The optimization is what makes MONARCH's first epoch beat lustre's.
    assert on.epoch_mean_std()[0][0] < lustre.epoch_mean_std()[0][0]
    # Without it, epoch 1 is no better than lustre's.
    assert off.epoch_mean_std()[0][0] >= 0.95 * lustre.epoch_mean_std()[0][0]
    # Both variants still cache everything: later epochs are local-speed.
    assert on.epoch_mean_std()[2][0] < 0.7 * lustre.epoch_mean_std()[2][0]
    assert off.epoch_mean_std()[2][0] < 0.7 * lustre.epoch_mean_std()[2][0]
    # Net effect on the whole 3-epoch run
    assert on.total_mean < off.total_mean
