"""ABL-EVICT — the design choice the paper argues in §III-A.

The paper claims that, because every file is equally likely to be read
each epoch, "using a cache replacement policy would increase the
operations between storage tiers, accentuating I/O trashing effects and
the strain placed on the PFS".  This ablation makes that claim
measurable: MONARCH on the 200 GiB dataset (tier holds ~57% of it) with
eviction {none, lru, fifo, random}.
"""

from __future__ import annotations

from benchmarks.conftest import run_in_benchmark
from repro.data.imagenet import IMAGENET_200G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.runner import run_experiment
from repro.telemetry.report import format_table

POLICIES = ("none", "lru", "fifo", "random")


def test_ablation_eviction_policies(benchmark, bench_scale, bench_runs):
    calib = DEFAULT_CALIBRATION.busy()

    def sweep():
        out = {}
        for policy in POLICIES:
            out[policy] = run_experiment(
                "monarch", "lenet", IMAGENET_200G, calib=calib,
                scale=bench_scale, runs=bench_runs,
                monarch_overrides={"eviction": policy},
            )
        return out

    results = run_in_benchmark(benchmark, sweep)

    def mean_pfs_gib(res):
        return sum(r.pfs_bytes_read for r in res.runs) / len(res.runs) / 2**30

    rows = [
        (policy, res.total_mean, res.total_std, mean_pfs_gib(res))
        for policy, res in results.items()
    ]
    print()
    print(format_table(
        ["eviction", "total (s)", "std", "PFS GiB read"],
        rows,
        title="ABL-EVICT: eviction policies on MONARCH, 200 GiB (paper §III-A claim)",
    ))

    none = results["none"]
    for policy in ("lru", "fifo", "random"):
        evicting = results[policy]
        # The paper's claim: replacement "would increase the operations
        # between storage tiers, accentuating I/O trashing effects and the
        # strain placed on the PFS".  Under uniform-random access the
        # no-eviction policy moves no more bytes off the PFS than any
        # replacement policy and is at least as fast (within noise).
        assert mean_pfs_gib(none) <= 1.02 * mean_pfs_gib(evicting)
        assert none.total_mean <= 1.05 * evicting.total_mean
