"""FIG-SERVE — trace-replay serving: warm-cache p99 latency gate.

The serving analogue of the paper's training claim: once MONARCH's
hierarchy has absorbed the hot set, reads stop paying the PFS round
trip.  In latency terms that is the tail — the gate asserts monarch's
warm (post-warmup) p99 at no more than 0.7x vanilla-lustre's on the
same seeded Zipfian trace, and that the replay is deterministic enough
to regenerate byte-identically.
"""

from __future__ import annotations

import dataclasses

import pytest

from benchmarks.conftest import run_in_benchmark
from repro.experiments.figures import (
    SERVE_P99_RATIO_GATE,
    fig_serve,
    render_serve,
)

pytestmark = pytest.mark.serve


def test_fig_serve_latency_gate(benchmark, bench_scale):
    result = run_in_benchmark(
        benchmark, lambda: fig_serve(scale=bench_scale, seed=0, report=True)
    )
    print()
    print(render_serve(result))

    lustre = result["runs"]["vanilla-lustre"]
    monarch = result["runs"]["monarch"]

    # both setups completed the full trace
    for rec in (lustre, monarch):
        assert rec.completed == rec.n_requests > 0
        assert rec.duration_s > 0.0

    # lustre never caches; monarch's hierarchy warms up
    assert lustre.hit_rate == 0.0
    assert monarch.warm_hit_rate > 0.9
    assert monarch.warm_hit_rate >= monarch.hit_rate

    # the headline gate: warm-cache p99 at <= 0.7x vanilla-lustre
    assert lustre.warm_p99_ms > 0.0
    ratio = monarch.warm_p99_ms / lustre.warm_p99_ms
    assert ratio <= SERVE_P99_RATIO_GATE, (
        f"monarch warm p99 {monarch.warm_p99_ms:.3f} ms is {ratio:.2f}x "
        f"lustre's {lustre.warm_p99_ms:.3f} ms (gate {SERVE_P99_RATIO_GATE}x)")

    # the median moves the same way once warm
    assert monarch.warm_p50_ms < lustre.warm_p50_ms

    # fewer PFS reads is *why* the tail shrinks
    assert monarch.pfs_read_ops < lustre.pfs_read_ops

    # the attached report carries the steady-state section
    assert monarch.report is not None
    steady = monarch.report["steady"]
    assert steady["completed"] == monarch.completed
    assert len(steady["windows"]) >= 1


def test_fig_serve_same_seed_byte_identical(bench_scale):
    a = fig_serve(scale=bench_scale, seed=0, report=True)
    b = fig_serve(scale=bench_scale, seed=0, report=True)
    for setup in ("vanilla-lustre", "monarch"):
        ra, rb = a["runs"][setup], b["runs"][setup]
        assert dataclasses.asdict(ra) == dataclasses.asdict(rb), setup
        assert ra.report == rb.report, setup
