"""TAB-META — paper §IV-A: metadata-container initialization time.

The ephemeral namespace is built by traversing the dataset directory on
the PFS (one listing, one stat per shard).  Paper: ~13 s for the 100 GiB
dataset, ~52 s for the 200 GiB one.
"""

from __future__ import annotations

from benchmarks.conftest import run_in_benchmark
from repro.experiments.figures import metadata_init


def test_metadata_init_times(benchmark, bench_scale, bench_runs):
    result = run_in_benchmark(
        benchmark, lambda: metadata_init(scale=bench_scale, runs=bench_runs)
    )
    print()
    print("TAB-META: metadata-container initialization (paper §IV-A)")
    print(f"  100 GiB: {result['init_100g_s']:.1f} s (paper ~13 s)")
    print(f"  200 GiB: {result['init_200g_s']:.1f} s (paper ~52 s)")

    # magnitudes near the paper's, and the larger namespace costs more
    assert 6 < result["init_100g_s"] < 25
    assert 15 < result["init_200g_s"] < 80
    assert result["init_200g_s"] > 1.5 * result["init_100g_s"]
