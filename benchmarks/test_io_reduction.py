"""TAB-IO — paper §IV-A: I/O pressure on the PFS, 200 GiB dataset.

Paper reference points: ~798,340 ops/epoch total; ~360,000 of them still
reach Lustre per steady-state epoch with MONARCH; 55% average reduction
over the whole workload (45% headline).
"""

from __future__ import annotations

from benchmarks.conftest import run_in_benchmark
from repro.experiments.figures import io_reduction


def test_io_reduction_200g(benchmark, bench_scale, bench_runs):
    result = run_in_benchmark(
        benchmark, lambda: io_reduction(scale=bench_scale, runs=bench_runs)
    )
    lustre = result["lustre_ops_per_epoch"]
    monarch = result["monarch_ops_per_epoch"]
    print()
    print("TAB-IO: PFS I/O pressure, 200 GiB (paper §IV-A)")
    print(f"  lustre  ops/epoch: {[f'{o / 1e3:.0f}k' for o in lustre]}")
    print(f"  monarch ops/epoch: {[f'{o / 1e3:.0f}k' for o in monarch]}")
    print(f"  steady-state ops to Lustre: {result['steady_epoch_ops'] / 1e3:.0f}k "
          "(paper: ~360k of 798,340)")
    print(f"  total reduction: {result['total_reduction_pct']:.0f}% (paper: 55% average)")

    # absolute per-epoch op magnitude ~ 798,340
    assert 6e5 < lustre[0] < 1.1e6
    # steady-state fraction: ~360k / 798k ~ 45%
    frac = result["steady_epoch_ops"] / lustre[-1]
    assert 0.30 < frac < 0.55
    # total reduction near the paper's 55% average
    assert 40 < result["total_reduction_pct"] < 65
    # lustre baseline is flat across epochs (full dataset every epoch)
    assert max(lustre) / min(lustre) < 1.02
    # monarch epoch 1 (placement) sends more ops than steady state
    assert monarch[0] > monarch[-1]
