"""KERNEL — simulator throughput: events/sec and FIG3-grid wall time.

Every other benchmark asserts *simulated* outcomes; this one measures the
simulator itself, so larger experiment grids stay tractable.  It counts
kernel events (heap pushes) for a representative contended cell, times it
(best of three, single-core boxes are noisy), times one full FIG3 grid
pass, and writes the measurements to ``BENCH_kernel.json`` at the repo
root.  If a committed baseline exists, events/sec must stay within 20 %
of it — the regression gate behind ``make bench-kernel``.

Set ``REPRO_BENCH_UPDATE=1`` to refresh the committed baseline after an
intentional kernel change.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import repro.simkernel.core as _core
from repro.data.imagenet import IMAGENET_100G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.figures import fig3
from repro.experiments.runner import run_once

BASELINE = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
#: tolerated slowdown vs the committed baseline before the gate trips
REGRESSION_FACTOR = 0.8


def _count_events(fn):
    """Run ``fn`` while counting kernel heap pushes; returns (result, n)."""
    real = _core.heapq.heappush
    n = 0

    def counting(heap, item):
        nonlocal n
        n += 1
        real(heap, item)

    _core.heapq.heappush = counting
    try:
        out = fn()
    finally:
        _core.heapq.heappush = real
    return out, n


def _probe_cell(scale: float):
    return run_once(
        "vanilla-lustre", "resnet50", IMAGENET_100G, DEFAULT_CALIBRATION,
        scale=scale, seed=0,
    )


def test_kernel_speed(bench_scale):
    # Events for the probe cell are deterministic; wall time is not, so
    # take the fastest of three timed repetitions.
    _, events = _count_events(lambda: _probe_cell(bench_scale))
    walls = []
    for _ in range(3):
        t0 = time.perf_counter()
        _probe_cell(bench_scale)
        walls.append(time.perf_counter() - t0)
    cell_wall = min(walls)
    events_per_sec = events / cell_wall

    t0 = time.perf_counter()
    fig3(scale=bench_scale, runs=1)
    fig3_wall = time.perf_counter() - t0

    measured = {
        "probe": "vanilla-lustre/resnet50",
        "scale": bench_scale,
        "probe_events": events,
        "probe_wall_s": round(cell_wall, 4),
        "events_per_sec": round(events_per_sec),
        "fig3_wall_s": round(fig3_wall, 2),
    }
    print(f"\nKERNEL: {events} events in {cell_wall:.2f}s -> "
          f"{events_per_sec:,.0f} events/s; fig3 grid {fig3_wall:.2f}s")

    baseline = None
    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
    if baseline is None or os.environ.get("REPRO_BENCH_UPDATE") == "1":
        BASELINE.write_text(json.dumps(measured, indent=2) + "\n")
        return
    if baseline.get("scale") != bench_scale:
        # Baseline recorded at a different scale: report, don't gate.
        print(f"KERNEL: baseline at scale {baseline.get('scale')}, no gate applied")
        return
    floor = REGRESSION_FACTOR * baseline["events_per_sec"]
    assert events_per_sec >= floor, (
        f"kernel throughput regressed: {events_per_sec:,.0f} events/s < "
        f"{floor:,.0f} (80% of committed {baseline['events_per_sec']:,})"
    )
