"""KERNEL — simulator throughput: dispatch slots/sec and FIG3 wall time.

Every other benchmark asserts *simulated* outcomes; this one measures the
simulator itself, so larger experiment grids stay tractable.  It times a
representative contended cell — scenario build excluded, so the number
tracks the event loop rather than numpy setup — counts the kernel's
dispatch slots (``Simulator.events_processed``: every Event ``_process``
and every bare continuation), probes the monarch cell both fused and
legacy-gated (the middleware continuation protocol's measured win, with
its own regression floor), and times one full FIG3 grid pass at
1/16 scale, the floor for presentable figure runs.  Measurements land in
``BENCH_kernel.json`` at the repo root.  If a committed baseline exists,
events/sec must stay within 20 % of it — the regression gate behind
``make bench-kernel``.

Methodology note: baselines before the calendar-queue kernel counted heap
pushes inside ``run_once`` (build included).  Dispatch slots are the
comparable quantity in the batch-advance kernel — at-now work never
touches the heap — and the probe's slot count (53,371) sits within 0.3 %
of the old push count (53,488), so the two series gate the same
simulation.  The wall-clock basis, however, changed from build-inclusive
to execute-only; the committed baseline records which basis it used in
``"methodology"`` and the gate only applies across like baselines.

Set ``REPRO_BENCH_UPDATE=1`` to refresh the committed baseline after an
intentional kernel change.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.data.imagenet import IMAGENET_100G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.figures import fig3
from repro.experiments.scenarios import build_run

BASELINE = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
#: tolerated slowdown vs the committed baseline before the gate trips.
#: Wider than bench-grid's 0.8: best-of-7 execute-only walls still swing
#: ~±20 % on the single-core dev container, and a gate that trips on
#: scheduler noise is worse than one 10 % looser — the floor remains
#: ~1.7× the pre-overhaul kernel's committed events/sec.
REGRESSION_FACTOR = 0.7
#: timed repetitions of the probe cell (single-core boxes are noisy)
PROBE_REPS = 7
#: FIG3 demonstration scale — the smallest scale the figures are
#: presentable at; the bench proves a full grid pass fits the budget
FIG3_SCALE = 1 / 16
METHODOLOGY = "dispatch-slots/execute-only"


def _build_probe(scale: float, setup: str = "vanilla-lustre"):
    return build_run(
        setup, "resnet50", IMAGENET_100G, DEFAULT_CALIBRATION,
        scale=scale, seed=0,
    )


def _best_wall(scale: float, setup: str, reps: int = PROBE_REPS):
    """(dispatch slots, best-of-``reps`` execute wall) for one cell."""
    events = None
    wall = float("inf")
    for _ in range(reps):
        handle = _build_probe(scale, setup)
        t0 = time.perf_counter()
        handle.execute()
        wall = min(wall, time.perf_counter() - t0)
        events = handle.sim.events_processed
    return events, wall


def test_kernel_speed(bench_scale):
    # The slot count for the probe cell is deterministic; wall time is
    # not, so rebuild + re-execute PROBE_REPS times and keep the fastest.
    events, cell_wall = _best_wall(bench_scale, "vanilla-lustre")
    events_per_sec = events / cell_wall

    # The monarch cell — ~all of every figure grid — gets its own probe:
    # fused (default) vs legacy (gated), so the middleware continuation
    # protocol's win is measured and regression-gated like the kernel's.
    monarch_events, monarch_wall = _best_wall(bench_scale, "monarch")
    os.environ["REPRO_DISABLE_FUSED_PIPELINE"] = "1"
    try:
        _, monarch_legacy_wall = _best_wall(bench_scale, "monarch")
    finally:
        del os.environ["REPRO_DISABLE_FUSED_PIPELINE"]
    monarch_events_per_sec = monarch_events / monarch_wall

    t0 = time.perf_counter()
    fig3(scale=FIG3_SCALE, runs=1)
    fig3_wall = time.perf_counter() - t0
    # Event counts grow linearly with the simulated data volume, so a
    # straight rescale is the honest first-order scale=1 estimate.
    fig3_scale1_est = fig3_wall / FIG3_SCALE

    measured = {
        "probe": "vanilla-lustre/resnet50",
        "scale": bench_scale,
        "methodology": METHODOLOGY,
        "probe_events": events,
        "probe_wall_s": round(cell_wall, 4),
        "events_per_sec": round(events_per_sec),
        "monarch_probe": "monarch/resnet50",
        "monarch_events": monarch_events,
        "monarch_fused_wall_s": round(monarch_wall, 4),
        "monarch_legacy_wall_s": round(monarch_legacy_wall, 4),
        "monarch_fused_speedup": round(monarch_legacy_wall / monarch_wall, 3),
        "monarch_events_per_sec": round(monarch_events_per_sec),
        "fig3_scale": FIG3_SCALE,
        "fig3_wall_s": round(fig3_wall, 2),
        "fig3_scale1_est_s": round(fig3_scale1_est, 1),
    }
    print(f"\nKERNEL: {events} dispatch slots in {cell_wall:.3f}s -> "
          f"{events_per_sec:,.0f} events/s")
    print(f"KERNEL: monarch fused {monarch_wall:.3f}s vs legacy "
          f"{monarch_legacy_wall:.3f}s "
          f"({monarch_legacy_wall / monarch_wall:.2f}x) -> "
          f"{monarch_events_per_sec:,.0f} events/s")
    print(f"KERNEL: fig3 grid at scale 1/16 in {fig3_wall:.1f}s "
          f"(scale=1 estimate ~{fig3_scale1_est / 60:.1f} min)")

    baseline = None
    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
    if baseline is None or os.environ.get("REPRO_BENCH_UPDATE") == "1":
        BASELINE.write_text(json.dumps(measured, indent=2) + "\n")
        return
    if (
        baseline.get("scale") != bench_scale
        or baseline.get("methodology") != METHODOLOGY
    ):
        # Baseline from a different scale or counting/timing basis:
        # report, don't gate — refresh with REPRO_BENCH_UPDATE=1.
        print("KERNEL: baseline uses a different scale/methodology, "
              "no gate applied")
        return
    floor = REGRESSION_FACTOR * baseline["events_per_sec"]
    assert events_per_sec >= floor, (
        f"kernel throughput regressed: {events_per_sec:,.0f} events/s < "
        f"{floor:,.0f} ({REGRESSION_FACTOR:.0%} of committed "
        f"{baseline['events_per_sec']:,})"
    )
    monarch_baseline = baseline.get("monarch_events_per_sec")
    if monarch_baseline is not None:
        monarch_floor = REGRESSION_FACTOR * monarch_baseline
        assert monarch_events_per_sec >= monarch_floor, (
            f"monarch fused throughput regressed: "
            f"{monarch_events_per_sec:,.0f} events/s < {monarch_floor:,.0f} "
            f"({REGRESSION_FACTOR:.0%} of committed {monarch_baseline:,})"
        )
