"""ABL-TIERS — paper §VI future work: a RAM tier above the SSD.

"It would be attractive to pursue experiments with additional hierarchy
levels composed of other storage devices (e.g., persistent memory or even
RAM)."  This ablation adds a 32 GiB RAM tier as level 0 of a three-level
hierarchy (RAM / SSD / Lustre) and measures where it pays off: the *first*
epoch gets faster (placement writes land on RAM instead of queueing on the
SSD, and re-reads of freshly placed files are free), while steady-state
epochs are already bounded by CPU preprocessing for this workload, so the
faster tier cannot show there — a useful negative result for the paper's
future-work direction.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_in_benchmark
from repro.data.imagenet import IMAGENET_100G
from repro.experiments.runner import run_experiment
from repro.storage.blockmath import GIB
from repro.telemetry.report import format_table


def test_ablation_ram_tier(benchmark, bench_scale, bench_runs):
    def sweep():
        two = run_experiment(
            "monarch", "lenet", IMAGENET_100G, scale=bench_scale, runs=bench_runs,
        )
        three = run_experiment(
            "monarch", "lenet", IMAGENET_100G, scale=bench_scale, runs=bench_runs,
            monarch_overrides={"ram_tier_bytes": 32 * GIB},
        )
        return two, three

    two, three = run_in_benchmark(benchmark, sweep)
    rows = [
        ("SSD + Lustre (paper)", two.epoch_mean_std()[0][0],
         two.epoch_mean_std()[2][0], two.total_mean),
        ("RAM + SSD + Lustre", three.epoch_mean_std()[0][0],
         three.epoch_mean_std()[2][0], three.total_mean),
    ]
    print()
    print(format_table(
        ["hierarchy", "epoch1 (s)", "epoch3 (s)", "total (s)"],
        rows,
        title="ABL-TIERS: third (RAM) hierarchy level, LeNet 100 GiB (paper §VI)",
    ))

    # the first epoch benefits: placement lands on RAM, off the SSD queue
    assert three.epoch_mean_std()[0][0] < two.epoch_mean_std()[0][0]
    # steady-state epochs are preprocessing-bound: within noise of each other
    assert three.epoch_mean_std()[2][0] == pytest.approx(
        two.epoch_mean_std()[2][0], rel=0.03
    )
    # and the whole run is no slower
    assert three.total_mean <= 1.03 * two.total_mean
