"""GRID — parallel-executor speed: fan-out speedup and cache hit time.

Times one 7-run FIG3 grid (the paper's repetition protocol) three ways —
serial, fanned out over ``--jobs $(nproc)`` worker processes, and served
from a warm run cache — asserting along the way that all three produce
byte-identical records.  Measurements land in ``BENCH_grid.json`` at the
repo root.

Gates:

* **cache** (always): the warm-cache pass must finish in < 10 % of the
  uncached serial pass.
* **speedup** (≥ 4 cores only): the pooled pass must be ≥ 2.5× faster
  than serial.  On a single-core box — including the dev container, see
  EXPERIMENTS.md — the pool *cannot* beat serial, and timing it anyway
  produced a misleading "0.94× speedup" figure in the committed
  baseline; the pooled pass is now skipped entirely there and the
  baseline records ``"speedup": null`` plus the reason.  With 2-3 cores
  the pass is timed and reported but not gated.
* **regression** (when a committed baseline exists at the same scale):
  serial grid throughput (runs/sec) must stay within 20 % of the
  baseline, mirroring ``bench-kernel``.

Set ``REPRO_BENCH_UPDATE=1`` to refresh the committed baseline after an
intentional change.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path

from repro.experiments.executor import RunCache
from repro.experiments.figures import fig3

BASELINE = Path(__file__).resolve().parent.parent / "BENCH_grid.json"
#: tolerated slowdown vs the committed baseline before the gate trips
REGRESSION_FACTOR = 0.8
#: required pool speedup on boxes with enough cores to show one
SPEEDUP_FLOOR = 2.5
MIN_CORES_FOR_SPEEDUP_GATE = 4
#: warm-cache pass must cost less than this fraction of the uncached pass
CACHED_FRACTION_CEILING = 0.10
#: the paper's repetition protocol
GRID_RUNS = 7


def _grid_json(grid) -> str:
    """Canonical JSON of a figure grid — the byte-identity yardstick."""
    payload = {
        f"{model}/{setup}": [dataclasses.asdict(r) for r in res.runs]
        for (model, setup), res in sorted(grid.items())
    }
    return json.dumps(payload, sort_keys=True)


def test_grid_speed(bench_scale, tmp_path):
    cores = os.cpu_count() or 1
    pool_jobs = cores
    cache_dir = tmp_path / "grid-cache"
    n_sims = GRID_RUNS * 12  # fig3: 3 models x 4 setups

    # 1. serial, cold cache (stores as it goes; store cost is part of
    #    real first-invocation latency, so it belongs in the measurement)
    t0 = time.perf_counter()
    serial = fig3(scale=bench_scale, runs=GRID_RUNS, jobs=1,
                  cache=RunCache(cache_dir))
    serial_wall = time.perf_counter() - t0
    serial_json = _grid_json(serial)

    # 2. process-pool fan-out, cache off (pure execution comparison).
    #    A single-core host has nothing to fan out over: the pool only
    #    adds pickling and process start-up, so the "speedup" it would
    #    measure is pure overhead, not a property of the executor.
    if cores >= 2:
        t0 = time.perf_counter()
        pooled = fig3(scale=bench_scale, runs=GRID_RUNS, jobs=pool_jobs)
        parallel_wall = time.perf_counter() - t0
        assert _grid_json(pooled) == serial_json, (
            "pooled grid diverged from serial — determinism contract broken"
        )
    else:
        parallel_wall = None

    # 3. warm cache
    t0 = time.perf_counter()
    cached = fig3(scale=bench_scale, runs=GRID_RUNS, jobs=1,
                  cache=RunCache(cache_dir))
    cached_wall = time.perf_counter() - t0
    assert _grid_json(cached) == serial_json, (
        "cached grid diverged from serial — cache returned wrong records"
    )

    speedup = serial_wall / parallel_wall if parallel_wall else None
    cached_fraction = cached_wall / serial_wall if serial_wall else 0.0
    measured = {
        "scale": bench_scale,
        "grid_runs": GRID_RUNS,
        "cores": cores,
        "pool_jobs": pool_jobs,
        "serial_wall_s": round(serial_wall, 2),
        "parallel_wall_s": round(parallel_wall, 2) if parallel_wall is not None else None,
        "cached_wall_s": round(cached_wall, 2),
        "speedup": round(speedup, 2) if speedup is not None else None,
        "cached_fraction": round(cached_fraction, 4),
        "grid_runs_per_sec": round(n_sims / serial_wall, 2),
    }
    if speedup is None:
        measured["speedup_skipped_reason"] = (
            "single-core host: pool fan-out cannot beat serial, "
            "measurement would be pure process overhead"
        )
        print(f"\nGRID: {n_sims} runs; serial {serial_wall:.2f}s, "
              f"pooled pass skipped (1 core), "
              f"cached {cached_wall:.2f}s ({cached_fraction:.1%} of serial)")
    else:
        print(f"\nGRID: {n_sims} runs; serial {serial_wall:.2f}s, "
              f"jobs={pool_jobs} {parallel_wall:.2f}s ({speedup:.2f}x), "
              f"cached {cached_wall:.2f}s ({cached_fraction:.1%} of serial)")

    assert cached_fraction < CACHED_FRACTION_CEILING, (
        f"warm-cache grid took {cached_fraction:.1%} of the uncached time "
        f"(ceiling {CACHED_FRACTION_CEILING:.0%})"
    )
    if cores >= MIN_CORES_FOR_SPEEDUP_GATE and pool_jobs > 1:
        assert speedup >= SPEEDUP_FLOOR, (
            f"pool speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x with "
            f"{cores} cores and jobs={pool_jobs}"
        )
    elif speedup is not None:
        print(f"GRID: {cores} core(s) — speedup gate needs "
              f">= {MIN_CORES_FOR_SPEEDUP_GATE}, reporting only")

    baseline = None
    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
    if baseline is None or os.environ.get("REPRO_BENCH_UPDATE") == "1":
        BASELINE.write_text(json.dumps(measured, indent=2) + "\n")
        return
    if baseline.get("scale") != bench_scale:
        # Baseline recorded at a different scale: report, don't gate.
        print(f"GRID: baseline at scale {baseline.get('scale')}, no gate applied")
        return
    floor = REGRESSION_FACTOR * baseline["grid_runs_per_sec"]
    assert measured["grid_runs_per_sec"] >= floor, (
        f"serial grid throughput regressed: {measured['grid_runs_per_sec']} "
        f"runs/s < {floor:.2f} (80% of committed "
        f"{baseline['grid_runs_per_sec']})"
    )
