"""FIG3 — paper Figure 3: MONARCH vs all baselines, 100 GiB dataset.

The dataset fits the local tier, so MONARCH caches everything during the
first epoch.  Asserts the paper's two headline observations: MONARCH's
first epoch beats both vanilla-lustre's and vanilla-caching's, and total
time drops ~33% (LeNet) / ~15% (AlexNet).
"""

from __future__ import annotations

from benchmarks.conftest import run_in_benchmark
from repro.experiments.figures import PAPER_TOTALS_100G, fig3, render_grid


def test_fig3_monarch_100g(benchmark, bench_scale, bench_runs):
    grid = run_in_benchmark(benchmark, lambda: fig3(scale=bench_scale, runs=bench_runs))
    print()
    print(render_grid(grid, PAPER_TOTALS_100G,
                      "FIG3: MONARCH vs baselines, 100 GiB (paper Fig. 3)"))

    for model, lo, hi in (("lenet", 0.55, 0.85), ("alexnet", 0.72, 0.95)):
        monarch = grid[(model, "monarch")]
        lustre = grid[(model, "vanilla-lustre")]
        caching = grid[(model, "vanilla-caching")]
        local = grid[(model, "vanilla-local")]
        # headline reductions: 33% (LeNet), 15% (AlexNet) vs lustre
        ratio = monarch.total_mean / lustre.total_mean
        assert lo < ratio < hi, f"{model}: total ratio {ratio:.2f}"
        # MONARCH's first epoch beats lustre AND caching (paper §IV-A)
        m_e1 = monarch.epoch_mean_std()[0][0]
        assert m_e1 < lustre.epoch_mean_std()[0][0]
        assert m_e1 < caching.epoch_mean_std()[0][0]
        # later epochs run at local-storage speed
        assert monarch.epoch_mean_std()[2][0] < 1.15 * local.epoch_mean_std()[2][0]
    # ResNet-50 stays flat with MONARCH too
    resnet_ratio = grid[("resnet50", "monarch")].total_mean / \
        grid[("resnet50", "vanilla-lustre")].total_mean
    assert 0.9 < resnet_ratio < 1.1
