"""FIG3 — paper Figure 3: MONARCH vs all baselines, 100 GiB dataset.

The dataset fits the local tier, so MONARCH caches everything during the
first epoch.  Asserts the paper's two headline observations: MONARCH's
first epoch beats both vanilla-lustre's and vanilla-caching's, and total
time drops ~33% (LeNet) / ~15% (AlexNet).
"""

from __future__ import annotations

from benchmarks.conftest import run_in_benchmark
from repro.experiments.figures import PAPER_TOTALS_100G, fig3, render_grid
from repro.experiments.runner import run_once
from repro.data.imagenet import IMAGENET_100G
from repro.telemetry.runreport import RunReport


def _check_report_consistency(rep: RunReport) -> None:
    """The RunReport's independent accounting paths must agree exactly.

    * per-epoch × per-tier read deltas re-sum to the middleware's
      published ``monarch.reads.l*`` totals;
    * traced I/O (IOTrace wrapping the backend stats) re-sums to the
      backend counters it shadowed, byte for byte.
    """
    if rep.counters:
        published = {
            k.rsplit(".", 1)[1]: v
            for k, v in rep.counters.items()
            if k.startswith("monarch.reads.")
        }
        assert rep.tier_read_totals() == published
        assert rep.total_tier_reads() == sum(published.values())
    for name, b in rep.backends.items():
        assert b["traced_bytes_read"] == b["bytes_read"], name
        assert b["traced_bytes_written"] == b["bytes_written"], name
        assert b["traced_read_ops"] == b["read_ops"], name
        assert b["traced_write_ops"] == b["write_ops"], name


def test_fig3_monarch_100g(benchmark, bench_scale, bench_runs, tmp_path):
    grid = run_in_benchmark(
        benchmark, lambda: fig3(scale=bench_scale, runs=bench_runs, report=True)
    )
    print()
    print(render_grid(grid, PAPER_TOTALS_100G,
                      "FIG3: MONARCH vs baselines, 100 GiB (paper Fig. 3)"))

    for model, lo, hi in (("lenet", 0.55, 0.85), ("alexnet", 0.72, 0.95)):
        monarch = grid[(model, "monarch")]
        lustre = grid[(model, "vanilla-lustre")]
        caching = grid[(model, "vanilla-caching")]
        local = grid[(model, "vanilla-local")]
        # headline reductions: 33% (LeNet), 15% (AlexNet) vs lustre
        ratio = monarch.total_mean / lustre.total_mean
        assert lo < ratio < hi, f"{model}: total ratio {ratio:.2f}"
        # MONARCH's first epoch beats lustre AND caching (paper §IV-A)
        m_e1 = monarch.epoch_mean_std()[0][0]
        assert m_e1 < lustre.epoch_mean_std()[0][0]
        assert m_e1 < caching.epoch_mean_std()[0][0]
        # later epochs run at local-storage speed
        assert monarch.epoch_mean_std()[2][0] < 1.15 * local.epoch_mean_std()[2][0]
    # ResNet-50 stays flat with MONARCH too
    resnet_ratio = grid[("resnet50", "monarch")].total_mean / \
        grid[("resnet50", "vanilla-lustre")].total_mean
    assert 0.9 < resnet_ratio < 1.1

    # Every run carries a RunReport whose cross-checks hold; export the
    # MONARCH/LeNet one as the figure's observability artifact.
    for (model, setup), res in grid.items():
        for rec in res.runs:
            assert rec.report is not None, (model, setup)
            _check_report_consistency(RunReport.from_dict(rec.report))
    artifact = tmp_path / "fig3_lenet_monarch.report.json"
    artifact.write_text(
        RunReport.from_dict(grid[("lenet", "monarch")].runs[0].report).to_json()
    )
    print(f"RunReport artifact: {artifact}")


def test_fig3_report_bit_identical_with_bulk_disabled(monkeypatch):
    """The bulk-I/O escape hatch must not change the exported report.

    Placement bookkeeping lands once at copy completion on both paths, so
    the traced byte totals — and with them the whole serialized report —
    must come out byte-identical with ``REPRO_DISABLE_BULK_IO`` set."""
    def one() -> str:
        rec = run_once(
            "monarch", "lenet", IMAGENET_100G, scale=1 / 1024, seed=3, report=True
        )
        rep = RunReport.from_dict(rec.report)
        _check_report_consistency(rep)
        return rep.to_json()

    monkeypatch.delenv("REPRO_DISABLE_BULK_IO", raising=False)
    with_bulk = one()
    monkeypatch.setenv("REPRO_DISABLE_BULK_IO", "1")
    without_bulk = one()
    assert with_bulk == without_bulk
