"""MOT-VAR — paper §II: throughput variability and predictability.

"We observed high performance variability under the vanilla-lustre setup
… This motivates our claim that reducing the load on shared storage is
key for having sustained and predictable performance."  Two measurements
back the claim:

* across seeded runs, vanilla-lustre's total-time spread dwarfs the
  local-tier setups';
* within a run, the instantaneous PFS throughput wanders (high CV) while
  the local tier's stays steady.
"""

from __future__ import annotations

from benchmarks.conftest import run_in_benchmark
from repro.data.imagenet import IMAGENET_100G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import build_run
from repro.telemetry.report import format_table
from repro.telemetry.tracing import IOTrace, throughput_series, variability


def test_variability_across_runs(benchmark, bench_scale, bench_runs):
    def sweep():
        runs = max(4, bench_runs)
        out = {}
        for setup in ("vanilla-lustre", "vanilla-local", "monarch"):
            out[setup] = run_experiment(setup, "lenet", IMAGENET_100G,
                                        scale=bench_scale, runs=runs)
        return out

    results = run_in_benchmark(benchmark, sweep)
    rows = [
        (setup, res.total_mean, res.total_std,
         100 * res.total_std / res.total_mean)
        for setup, res in results.items()
    ]
    print()
    print(format_table(
        ["setup", "total (s)", "std", "spread %"],
        rows,
        title="MOT-VAR (a): run-to-run spread, LeNet 100 GiB (paper §II)",
    ))
    lustre = results["vanilla-lustre"]
    local = results["vanilla-local"]
    monarch = results["monarch"]
    assert lustre.total_std > 3 * local.total_std
    assert monarch.total_std < 0.5 * lustre.total_std


def test_variability_within_run(benchmark, bench_scale, bench_runs):
    def measure():
        out = {}
        for setup in ("vanilla-lustre", "monarch"):
            handle = build_run(setup, "lenet", IMAGENET_100G,
                               DEFAULT_CALIBRATION, bench_scale, seed=31)
            trace = IOTrace(handle.sim)
            trace.attach(handle.pfs.stats)
            if handle.local_fs is not None:
                trace.attach(handle.local_fs.stats)
            result = handle.execute()
            t_end = handle.sim.now
            # steady state = epochs 2-3 (epoch 1 mixes placement traffic in)
            t_steady = result.init_time_s + result.epoch_times[0]
            summaries = {}
            for backend, t0 in (("pfs", 0.0), ("local", t_steady)):
                events = trace.filtered(backend=backend)
                if events and t_end > t0:
                    _, bps = throughput_series(events, t0, t_end, bins=60)
                    summaries[backend] = variability(bps)
            out[setup] = summaries
        return out

    results = run_in_benchmark(benchmark, measure)
    rows = []
    for setup, summaries in results.items():
        for backend, v in summaries.items():
            rows.append((setup, backend, v.mean_bps / 2**20, v.cv))
    print()
    print(format_table(
        ["setup", "backend", "mean MiB/s", "CV"],
        rows,
        title="MOT-VAR (b): within-run throughput stability (paper §II)",
        float_fmt="{:.2f}",
    ))
    # the paper's "sustained and predictable" storage is the local tier:
    # its delivery wanders far less than the shared PFS's
    lustre_cv = results["vanilla-lustre"]["pfs"].cv
    local_cv = results["monarch"]["local"].cv
    assert local_cv < lustre_cv
