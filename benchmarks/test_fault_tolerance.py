"""FIG-FAULT — graceful degradation when the node-local SSD dies mid-run.

The scenario: MONARCH over the 100 GiB dataset (LeNet), with the SSD tier
hard-failing halfway through epoch 1.  The middleware must quarantine the
dead tier and route every subsequent read through the PFS — the job
completes all epochs, slower than fault-free MONARCH but no slower than
never having had the fast tier at all (vanilla-lustre).
"""

from __future__ import annotations

from benchmarks.conftest import run_in_benchmark
from repro.data.imagenet import IMAGENET_100G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.scenarios import build_run, ssd_tier_down_plan
from repro.telemetry.runreport import build_run_report

SEED = 0


def _run_fault_grid(scale: float) -> dict:
    # Fault-free MONARCH baseline; also fixes the failure instant at the
    # midpoint of its first epoch (init included — the plan clock is
    # absolute simulated time).
    base = build_run(
        "monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION, scale=scale, seed=SEED
    ).execute()
    t_fail = base.init_time_s + base.epochs[0].wall_time_s / 2

    lustre = build_run(
        "vanilla-lustre", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION, scale=scale, seed=SEED
    ).execute()

    handle = build_run(
        "monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
        scale=scale, seed=SEED, fault_plan=ssd_tier_down_plan(t_fail),
        telemetry=True,
    )
    snapshot = {}

    def spy():
        # Sample the served-from-SSD counter at the failure instant; the
        # end-of-run value must equal it (the dead tier serves nothing).
        yield handle.sim.timeout(t_fail)
        snapshot["reads_l0"] = handle.monarch.stats.reads_per_level.get(0, 0)

    handle.sim.spawn(spy(), name="fault-spy")
    faulted = handle.execute()
    return {
        "base": base,
        "lustre": lustre,
        "faulted": faulted,
        "handle": handle,
        "t_fail": t_fail,
        "scale": scale,
        "reads_l0_at_failure": snapshot["reads_l0"],
    }


def test_fig_fault_tier_down_graceful_degradation(benchmark, bench_scale):
    out = run_in_benchmark(benchmark, lambda: _run_fault_grid(bench_scale))
    base, lustre, faulted = out["base"], out["lustre"], out["faulted"]
    monarch = out["handle"].monarch

    print()
    print("FIG-FAULT: SSD tier down at midpoint of epoch 1 (LeNet, 100 GiB)")
    print(f"  failure instant      : {out['t_fail']:.3f} s")
    for name, res in (("monarch", base), ("monarch+fault", faulted), ("lustre", lustre)):
        epochs = ", ".join(f"{t:.2f}" for t in res.epoch_times)
        print(f"  {name:14s}: total {res.total_time_s:7.3f} s  (epochs: {epochs})")
    print(
        f"  quarantines={monarch.health.quarantines} "
        f"readmissions={monarch.health.readmissions} "
        f"fallback_reads={monarch.stats.fallback_reads}"
    )

    # The job survives: all epochs complete with every record read.
    assert len(faulted.epochs) == len(base.epochs)
    assert all(e.records == out["handle"].dataset.n_samples for e in faulted.epochs)

    # Degradation is graceful and bounded: slower than fault-free MONARCH,
    # no slower than vanilla-lustre (which never had the fast tier).
    assert base.total_time_s <= faulted.total_time_s <= lustre.total_time_s

    # The dead tier was quarantined and never re-admitted...
    assert monarch.health.quarantines >= 1
    assert monarch.health.readmissions == 0
    # ... and served zero reads after the failure instant.
    assert monarch.stats.reads_per_level.get(0, 0) == out["reads_l0_at_failure"]
    assert monarch.stats.fallback_reads > 0

    # The RunReport's event stream captures the failure story: quarantine
    # after the failure instant, fallback reads, and no re-admission.
    tele = out["handle"].telemetry
    rep = build_run_report(
        tele, faulted, setup="monarch", model="lenet",
        dataset=IMAGENET_100G.name, scale=out["scale"], seed=SEED,
    )
    kinds = rep.event_kinds()
    assert kinds.get("tier.quarantined", 0) == monarch.health.quarantines
    assert kinds.get("tier.readmitted", 0) == 0
    assert kinds.get("read.fallback", 0) == monarch.stats.fallback_reads
    quarantine_events = [e for e in rep.events if e["kind"] == "tier.quarantined"]
    assert all(e["t"] >= out["t_fail"] for e in quarantine_events)
    print(f"  report events        : {dict(kinds)}")
