"""PORT-TORCH — paper §VI: portability to a PyTorch-style framework.

The paper's future work: "we are integrating our system with PyTorch,
which is an important step to validate MONARCH's portability."  This
benchmark runs the second framework substrate — a map-style loose-file
dataset behind a worker-parallel DataLoader — against both readers, and
also quantifies §I's motivation for record formats (loose files pay one
MDS round trip per sample per epoch).
"""

from __future__ import annotations

from benchmarks.conftest import run_in_benchmark
from repro.data.imagenet import IMAGENET_100G
from repro.experiments.runner import run_once
from repro.experiments.torch_scenarios import run_torch_once
from repro.telemetry.report import format_table


def test_portability_pytorch_style(benchmark, bench_scale, bench_runs):
    def sweep():
        vanilla = [run_torch_once("vanilla-lustre", "lenet", IMAGENET_100G,
                                  scale=bench_scale, seed=100 + i)
                   for i in range(bench_runs)]
        monarch = [run_torch_once("monarch", "lenet", IMAGENET_100G,
                                  scale=bench_scale, seed=100 + i)
                   for i in range(bench_runs)]
        shards = run_once("vanilla-lustre", "lenet", IMAGENET_100G,
                          scale=bench_scale, seed=100)
        return vanilla, monarch, shards

    vanilla, monarch, shards = run_in_benchmark(benchmark, sweep)

    def mean(xs):
        return sum(xs) / len(xs)

    v_epoch = mean([r.epoch_times_s[0] for r in vanilla])
    v_total = mean([r.total_time_s for r in vanilla])
    m_steady = mean([r.epoch_times_s[-1] for r in monarch])
    m_total = mean([r.total_time_s for r in monarch])
    m_init = mean([r.init_time_s for r in monarch])
    rows = [
        ("loose files, vanilla", f"{v_epoch:.0f}", f"{v_total:.0f}", "-"),
        ("loose files, monarch", f"{mean([r.epoch_times_s[0] for r in monarch]):.0f}",
         f"{m_total:.0f}", f"{m_init:.0f}"),
        ("TFRecords, vanilla", f"{shards.epoch_times_s[0]:.0f}",
         f"{shards.total_time_s:.0f}", "-"),
    ]
    print()
    print(format_table(
        ["configuration", "epoch1 (s)", "3-epoch total (s)", "init (s)"],
        rows,
        title="PORT-TORCH: PyTorch-style loader, LeNet 100 GiB (paper §VI / §I)",
    ))
    per_epoch_saving = v_epoch - m_steady
    breakeven = m_init / per_epoch_saving + 1
    print(f"  monarch init amortizes after ~{breakeven:.1f} epochs "
          f"(ImageNet jobs run 90+)")

    # §I motivation: loose files are far slower than record shards on the
    # PFS (per-sample metadata round trips dominate)
    assert v_epoch > 2 * shards.epoch_times_s[0]
    # portability: MONARCH, unchanged, absorbs the per-sample opens —
    # steady-state epochs collapse
    assert m_steady < 0.5 * v_epoch
    for r in monarch:
        assert r.pfs_ops_per_epoch[1] == 0
        assert r.pfs_ops_per_epoch[2] == 0
    # honest cost: the per-file namespace makes init huge; it only
    # amortizes over enough epochs
    assert m_init > per_epoch_saving  # more than one epoch's savings
    assert breakeven < 20  # but well within a real training job
