"""CAP-SWEEP — graceful degradation with tier capacity.

The paper's design requirement i): support "datasets with variable sizes
that may or may not be cached entirely" on local storage.  Where
vanilla-caching is binary (fits → local speed; doesn't → unusable),
MONARCH's benefit should shrink *smoothly* as the tier-to-dataset ratio
drops.  This sweep measures the whole curve.
"""

from __future__ import annotations

from benchmarks.conftest import run_in_benchmark
from repro.data.imagenet import IMAGENET_200G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.sweeps import capacity_sweep
from repro.telemetry.report import format_table

FRACTIONS = (0.25, 0.5, 0.75, 1.1)


def test_capacity_sweep(benchmark, bench_scale, bench_runs):
    points = run_in_benchmark(
        benchmark,
        lambda: capacity_sweep(
            IMAGENET_200G,
            fractions=FRACTIONS,
            calib=DEFAULT_CALIBRATION.busy(),
            scale=bench_scale,
            runs=min(2, bench_runs),
        ),
    )
    rows = [
        (f"{p.capacity_fraction:.2f}x", p.monarch.total_mean,
         p.lustre.total_mean, p.time_ratio,
         f"{p.steady_pfs_fraction:.0%}")
        for p in points
    ]
    print()
    print(format_table(
        ["tier/dataset", "monarch (s)", "lustre (s)", "ratio", "steady PFS ops"],
        rows,
        title="CAP-SWEEP: MONARCH vs tier capacity, LeNet 200 GiB (design req. i)",
        float_fmt="{:.2f}",
    ))

    ratios = [p.time_ratio for p in points]
    # monotone improvement as the tier grows (graceful, not a cliff)
    for smaller, bigger in zip(ratios, ratios[1:]):
        assert bigger <= smaller + 0.03
    # even a quarter-size tier already helps
    assert ratios[0] < 0.98
    # a tier bigger than the dataset recovers (roughly) the 100 GiB regime
    assert ratios[-1] < 0.75
    # steady-state PFS traffic tracks the uncached fraction
    fracs = [p.steady_pfs_fraction for p in points]
    assert fracs[0] > fracs[1] > fracs[2] > fracs[3]
    assert fracs[3] == 0.0  # fully cached -> silent PFS
