"""FIG-DIST-CACHE — cluster-wide peer cache vs per-node MONARCH.

Per-epoch reshuffling is the worst case for independent node caches:
each epoch a node's SSD holds last epoch's shards, not this epoch's.
``monarch-p2p`` joins the SSDs into one directory-tracked namespace, so
those "misses" become peer fetches over the fabric instead of PFS reads.

Win condition: at >= 4 nodes under reshuffle, monarch-p2p beats plain
monarch on total time and its per-epoch PFS ops drop after epoch 1.
Companion tests pin the failure semantics (a dead peer serves nothing
after death, the run completes via PFS fallback) and bit-determinism of
the record *and* the RunReport, peer sections included.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from benchmarks.conftest import run_in_benchmark
from repro.data.imagenet import IMAGENET_200G
from repro.distributed.cluster import node_fault_mount
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.dist_scenarios import (
    run_distributed_once,
    run_distributed_report,
)
from repro.experiments.figures import fig_dist_cache, render_dist_cache
from repro.faults.plan import FaultPlan, TierDown

pytestmark = pytest.mark.dist

#: scale for the (cheaper) fault and determinism companions
AUX_SCALE = 1 / 1024


def test_fig_dist_cache_tournament(benchmark, bench_scale):
    result = run_in_benchmark(
        benchmark, lambda: fig_dist_cache(scale=bench_scale, seed=7)
    )
    print()
    print(render_dist_cache(result))

    runs = result["runs"]
    for n in (4, 8):
        plain = runs[("monarch", n)]
        p2p = runs[("monarch-p2p", n)]
        # the win condition: p2p beats plain monarch under reshuffle ...
        assert p2p.total_time_s < plain.total_time_s, n
        # ... because steady epochs stop paying the PFS for reshuffled
        # shards: per-epoch PFS read ops collapse after the cold pass
        for epoch in (1, 2):
            assert p2p.pfs_ops_per_epoch[epoch] < 0.1 * p2p.pfs_ops_per_epoch[0], n
            assert p2p.pfs_ops_per_epoch[epoch] < plain.pfs_ops_per_epoch[epoch], n
        assert p2p.total_peer_hits > 0
        # epoch 1 is cold everywhere: nobody holds anything yet
        assert p2p.peer_hits_per_epoch[0] == 0


def test_peer_death_falls_back_to_pfs():
    calib = DEFAULT_CALIBRATION.busy()
    common = dict(policy="reshuffle", calib=calib, scale=AUX_SCALE, seed=7)
    base = run_distributed_once(
        "monarch-p2p", "lenet", IMAGENET_200G, n_nodes=4, **common)
    # kill node 1's SSD halfway through epoch 2 — deep in the peer-serving
    # regime — and never bring it back
    t_fail = (base.init_time_s + base.epoch_times_s[0]
              + 0.5 * base.epoch_times_s[1]) * AUX_SCALE
    plan = FaultPlan({node_fault_mount(1): [TierDown(at=t_fail)]})
    rec = run_distributed_once(
        "monarch-p2p", "lenet", IMAGENET_200G, n_nodes=4,
        fault_plan=plan, **common)

    # the run completes every epoch despite the dead tier
    assert len(rec.epoch_times_s) == len(base.epoch_times_s)
    # the death was detected ...
    assert rec.node_down_s[1] > 0
    # ... and zero peer fetches came off node 1 afterwards
    assert rec.last_fetch_s_by_source[1] <= rec.node_down_s[1]
    # the survivors keep serving each other
    assert rec.total_peer_hits > 0
    # the lost capacity is repaid by the PFS: the faulted run reads more
    # from the PFS than the clean one did after the failure epoch
    assert sum(rec.pfs_ops_per_epoch[1:]) >= sum(base.pfs_ops_per_epoch[1:])


def test_same_seed_runs_are_bit_identical():
    def once():
        return run_distributed_report(
            "monarch-p2p", "lenet", IMAGENET_200G, n_nodes=4,
            policy="reshuffle", calib=DEFAULT_CALIBRATION.busy(),
            scale=AUX_SCALE, seed=7)

    rec_a, rep_a = once()
    rec_b, rep_b = once()
    assert asdict(rec_a) == asdict(rec_b)
    # byte-identical JSON, new peer sections included
    assert rep_a.to_json() == rep_b.to_json()
    assert sorted(rep_a.nodes) == ["n0", "n1", "n2", "n3"]
    assert rep_a.event_kinds().get("peer.fetch", 0) > 0
    assert rep_a.counters["fabric.peer_transfers"] > 0
    for node, section in rep_a.nodes.items():
        assert section["down_at_s"] == -1.0, node
