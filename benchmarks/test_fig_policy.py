"""FIG-POLICY — tournament: every placement policy × every scenario.

The ranking metric is the Lustre-op share (fraction of middleware reads
the PFS backend had to serve; lower is better).  First-fit is the
paper-faithful reference; the policy engine's win condition is at least
one competitor scoring a lower share on the 200 GiB overflow scenario.
The heat policy is expected to *lose* the overflow regime: its eviction
churn is the measurable form of the paper's argument that a
no-eviction, admit-on-first-read strategy already fits scan-everything
DL access patterns.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_in_benchmark
from repro.experiments.figures import POLICY_SCENARIOS, fig_policy, render_policy

pytestmark = pytest.mark.policy


def test_fig_policy_tournament(benchmark, bench_scale):
    result = run_in_benchmark(
        benchmark, lambda: fig_policy(scale=bench_scale, seed=0)
    )
    print()
    print(render_policy(result))

    scenarios = result["scenarios"]
    assert set(scenarios) == set(POLICY_SCENARIOS)
    for scenario, cells in scenarios.items():
        for policy, cell in cells.items():
            assert 0.0 < cell["pfs_share"] < 1.0, (scenario, policy)
            assert cell["total_time_s"] > 0.0, (scenario, policy)

    # The win condition: some policy beats first-fit where it matters —
    # the overflow regime, where the dataset does not fit the SSD.
    overflow = scenarios["overflow-200g"]
    ff_share = overflow["firstfit"]["pfs_share"]
    beats = [
        p for p in result["policies"]
        if p != "firstfit" and overflow[p]["pfs_share"] < ff_share
    ]
    assert beats, f"no policy beat first-fit's {ff_share:.4f} overflow share"
    assert result["winners"]["overflow-200g"] in beats

    # The predictor wins by staging ahead of epoch-1 reads, so its
    # eager-placement machinery must actually have fired.
    pred = overflow["predictor"]["counters"]
    assert pred["eager_admissions"] > 0

    # The heat policy's churn is visible — and costs it the overflow
    # scenario relative to no-eviction first-fit.
    heat = overflow["heat"]
    assert heat["counters"]["heat_evictions"] > 0
    assert heat["pfs_share"] >= ff_share

    # The sweep backs off under contention — it pauses while a tier is
    # quarantined (resuming on re-admission) and yields to the tenancy
    # arbiter — so the predictor no longer loses the faulted and
    # multi-tenant regimes to first-fit.
    for scenario in ("faulted-100g", "multi-2job"):
        cells = scenarios[scenario]
        assert (
            cells["predictor"]["pfs_share"]
            <= cells["firstfit"]["pfs_share"] + 1e-9
        ), scenario

    # When the dataset fits, admission strategy is irrelevant: every
    # policy's share lands in a tight band around first-fit's.
    fits = scenarios["fits-100g"]
    ff_fits = fits["firstfit"]["pfs_share"]
    for policy in result["policies"]:
        assert abs(fits[policy]["pfs_share"] - ff_fits) < 0.05, policy


def test_fig_policy_single_scenario_subset(bench_scale):
    result = fig_policy(
        scale=bench_scale,
        seed=0,
        policies=("firstfit",),
        scenarios=("fits-100g",),
    )
    assert list(result["scenarios"]) == ["fits-100g"]
    assert list(result["scenarios"]["fits-100g"]) == ["firstfit"]
    with pytest.raises(ValueError, match="unknown scenarios"):
        fig_policy(scale=bench_scale, scenarios=("no-such",))
