"""FIG4 — paper Figure 4: MONARCH vs vanilla-lustre, 200 GiB dataset.

The dataset exceeds the local tier (the paper's key scenario), so MONARCH
fills the SSD partially and serves the rest from Lustre forever.  Asserts
LeNet's ~24% total-time reduction, ResNet-50 flatness, and that AlexNet
does not regress (see EXPERIMENTS.md for the AlexNet-magnitude deviation).
"""

from __future__ import annotations

from benchmarks.conftest import run_in_benchmark
from repro.experiments.figures import PAPER_TOTALS_200G, fig4, render_grid
from repro.telemetry.runreport import RunReport


def test_fig4_monarch_200g(benchmark, bench_scale, bench_runs):
    grid = run_in_benchmark(
        benchmark, lambda: fig4(scale=bench_scale, runs=bench_runs, report=True)
    )
    print()
    print(render_grid(grid, PAPER_TOTALS_200G,
                      "FIG4: MONARCH vs vanilla-lustre, 200 GiB (paper Fig. 4)"))

    # LeNet: paper 2842 -> 2155 s (24% reduction)
    lenet_ratio = grid[("lenet", "monarch")].total_mean / \
        grid[("lenet", "vanilla-lustre")].total_mean
    assert 0.60 < lenet_ratio < 0.90, f"lenet ratio {lenet_ratio:.2f}"
    # AlexNet: paper 3567 -> 3138 s (12%); direction must hold
    alexnet_ratio = grid[("alexnet", "monarch")].total_mean / \
        grid[("alexnet", "vanilla-lustre")].total_mean
    assert alexnet_ratio < 1.03, f"alexnet ratio {alexnet_ratio:.2f}"
    # ResNet-50 flat
    resnet_ratio = grid[("resnet50", "monarch")].total_mean / \
        grid[("resnet50", "vanilla-lustre")].total_mean
    assert 0.9 < resnet_ratio < 1.1
    # MONARCH's epochs 2-3 improve over its own epoch 1 (partial tier hits)
    monarch_lenet = grid[("lenet", "monarch")].epoch_mean_std()
    assert monarch_lenet[1][0] < monarch_lenet[0][0]

    # The 200 GiB dataset overflows the SSD: the RunReport must show the
    # steady-state PFS leg (l1 reads in epochs 2+) alongside eviction-free
    # partial tiering, and its traced I/O must re-sum to the counters.
    for rec in grid[("lenet", "monarch")].runs:
        rep = RunReport.from_dict(rec.report)
        steady = [e["tier_reads"] for e in rep.epochs[1:]]
        assert all(t.get("l1", 0) > 0 for t in steady), "no PFS leg in steady state"
        for name, b in rep.backends.items():
            assert b["traced_bytes_read"] == b["bytes_read"], name
            assert b["traced_bytes_written"] == b["bytes_written"], name
