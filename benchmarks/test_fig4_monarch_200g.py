"""FIG4 — paper Figure 4: MONARCH vs vanilla-lustre, 200 GiB dataset.

The dataset exceeds the local tier (the paper's key scenario), so MONARCH
fills the SSD partially and serves the rest from Lustre forever.  Asserts
LeNet's ~24% total-time reduction, ResNet-50 flatness, and that AlexNet
does not regress (see EXPERIMENTS.md for the AlexNet-magnitude deviation).
"""

from __future__ import annotations

from benchmarks.conftest import run_in_benchmark
from repro.experiments.figures import PAPER_TOTALS_200G, fig4, render_grid


def test_fig4_monarch_200g(benchmark, bench_scale, bench_runs):
    grid = run_in_benchmark(benchmark, lambda: fig4(scale=bench_scale, runs=bench_runs))
    print()
    print(render_grid(grid, PAPER_TOTALS_200G,
                      "FIG4: MONARCH vs vanilla-lustre, 200 GiB (paper Fig. 4)"))

    # LeNet: paper 2842 -> 2155 s (24% reduction)
    lenet_ratio = grid[("lenet", "monarch")].total_mean / \
        grid[("lenet", "vanilla-lustre")].total_mean
    assert 0.60 < lenet_ratio < 0.90, f"lenet ratio {lenet_ratio:.2f}"
    # AlexNet: paper 3567 -> 3138 s (12%); direction must hold
    alexnet_ratio = grid[("alexnet", "monarch")].total_mean / \
        grid[("alexnet", "vanilla-lustre")].total_mean
    assert alexnet_ratio < 1.03, f"alexnet ratio {alexnet_ratio:.2f}"
    # ResNet-50 flat
    resnet_ratio = grid[("resnet50", "monarch")].total_mean / \
        grid[("resnet50", "vanilla-lustre")].total_mean
    assert 0.9 < resnet_ratio < 1.1
    # MONARCH's epochs 2-3 improve over its own epoch 1 (partial tier hits)
    monarch_lenet = grid[("lenet", "monarch")].epoch_mean_std()
    assert monarch_lenet[1][0] < monarch_lenet[0][0]
