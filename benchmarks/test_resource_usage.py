"""TAB-RU — the paper's resource-usage prose tables (§II-A and §IV-B).

Regenerates average CPU %, GPU % and memory GiB per model × setup for
both the motivation grid (100 GiB, baselines only) and the evaluation
grids (MONARCH included; 200 GiB busy regime), asserting the qualitative
statements the paper makes about them.
"""

from __future__ import annotations

from benchmarks.conftest import run_in_benchmark
from repro.experiments.figures import fig3, fig4, render_resource_usage


def test_eval_resource_usage_100g(benchmark, bench_scale, bench_runs):
    grid = run_in_benchmark(benchmark, lambda: fig3(scale=bench_scale, runs=bench_runs))
    print()
    print(render_resource_usage(grid, "TAB-RU (100 GiB, paper §II-A/§IV-B)"))

    for model in ("lenet", "alexnet"):
        lustre = grid[(model, "vanilla-lustre")]
        local = grid[(model, "vanilla-local")]
        monarch = grid[(model, "monarch")]
        # paper: faster storage => CPU and GPU used more efficiently
        assert local.cpu_percent > lustre.cpu_percent
        assert local.gpu_percent > lustre.gpu_percent
        # paper: MONARCH second only to vanilla-local
        assert lustre.gpu_percent < monarch.gpu_percent <= local.gpu_percent * 1.05
    # ResNet-50: ~10% CPU / ~90% GPU in every setup
    for setup in ("vanilla-lustre", "vanilla-local", "monarch"):
        resnet = grid[("resnet50", setup)]
        assert resnet.cpu_percent < 20
        assert resnet.gpu_percent > 75
    # memory flat near 10 GiB everywhere
    for res in grid.values():
        assert 9.0 < res.memory_gib < 11.5


def test_eval_resource_usage_200g(benchmark, bench_scale, bench_runs):
    grid = run_in_benchmark(benchmark, lambda: fig4(scale=bench_scale, runs=bench_runs))
    print()
    print(render_resource_usage(grid, "TAB-RU (200 GiB, paper §IV-B)"))

    # paper: MONARCH increases CPU and GPU efficiency vs vanilla-lustre
    for model in ("lenet", "alexnet"):
        lustre = grid[(model, "vanilla-lustre")]
        monarch = grid[(model, "monarch")]
        assert monarch.gpu_percent >= lustre.gpu_percent
        assert monarch.cpu_percent >= 0.9 * lustre.cpu_percent
    # ResNet: both setups ~9-11% CPU, ~90% GPU
    for setup in ("vanilla-lustre", "monarch"):
        resnet = grid[("resnet50", setup)]
        assert resnet.cpu_percent < 20
        assert resnet.gpu_percent > 75
