"""FIG-MULTI — tenancy: concurrent jobs sharing one hierarchy vs serial.

Two (and, off the canonical grid, up to four) training jobs with
complementary bottlenecks — a compute-bound ResNet-50 plus I/O-bound
small jobs — share one MONARCH hierarchy under fair-share admission
caps.  The concurrent makespan must beat running the same jobs serially,
no job's epochs may stretch past the fairness bound versus running
alone, and the aggregate RunReport must be byte-deterministic.
"""

from __future__ import annotations

from benchmarks.conftest import run_in_benchmark
from repro.experiments.figures import fig_multi, multi_job_plans, render_multi
from repro.experiments.multi_scenarios import run_multi_once
from repro.telemetry.runreport import RunReport

#: No job's concurrent epoch may take more than this multiple of its solo
#: epoch time.  Epoch 1 contends for warm-up copy bandwidth; steady-state
#: epochs of jobs whose datasets fit their share run at solo speed.
FAIRNESS_BOUND = 2.0


def test_fig_multi_two_jobs(benchmark, bench_scale):
    result = run_in_benchmark(
        benchmark, lambda: fig_multi(scale=bench_scale, seed=0, n_jobs=2)
    )
    print()
    print(render_multi(result, "FIG-MULTI: 2 concurrent jobs vs serial"))

    concurrent = result["concurrent"]
    # The headline claim: sharing the hierarchy beats queueing for it.
    assert concurrent.aggregate_time_s < result["serial_total_s"]
    assert result["speedup"] > 1.0
    # Fairness: no job's epoch stretches past the bound versus solo.
    assert result["max_slowdown"] <= FAIRNESS_BOUND, result["slowdowns"]
    # Every job still makes forward progress epoch over epoch: warm-up
    # (epoch 1) is the worst epoch for every job, as in single-tenant runs.
    for job_id, j in concurrent.jobs.items():
        assert j["epoch_times_s"][0] >= max(j["epoch_times_s"][1:]), job_id


def test_fig_multi_report_deterministic(bench_scale):
    jobs = multi_job_plans(2)
    a = run_multi_once(jobs, scale=bench_scale, seed=11, report=True)
    b = run_multi_once(jobs, scale=bench_scale, seed=11, report=True)
    assert a.to_json() == b.to_json()
    rep_a = RunReport.from_dict(a.report)
    rep_b = RunReport.from_dict(b.report)
    assert rep_a.to_json() == rep_b.to_json()

    # The aggregate report carries one section per job, and traced bytes
    # re-sum to the backend counters they shadowed.
    assert set(rep_a.jobs) == {p.job_id for p in jobs}
    for name, backend in rep_a.backends.items():
        assert backend["traced_bytes_read"] == backend["bytes_read"], name
        assert backend["traced_bytes_written"] == backend["bytes_written"], name


def test_fig_multi_seed_sensitivity(bench_scale):
    jobs = multi_job_plans(2)
    a = run_multi_once(jobs, scale=bench_scale, seed=0)
    b = run_multi_once(jobs, scale=bench_scale, seed=1)
    # Different seeds perturb interference/jitter: not byte-identical...
    assert a.to_json() != b.to_json()
    # ...but the qualitative outcome is stable.
    assert abs(a.aggregate_time_s - b.aggregate_time_s) < 0.2 * a.aggregate_time_s
