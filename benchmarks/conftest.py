"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's figures or tables at a
reduced simulation scale (default 1/128; override with
``REPRO_BENCH_SCALE=1/64`` etc.) and asserts the paper's qualitative
shape before reporting.  Benchmarks are single-round by design: the
measured quantity is the *simulated* outcome, not Python wall time, so
repetition buys nothing.
"""

from __future__ import annotations

import os
from fractions import Fraction

import pytest


def _env_fraction(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if not raw:
        return default
    return float(Fraction(raw))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Simulation scale for benchmark runs."""
    return _env_fraction("REPRO_BENCH_SCALE", 1 / 128)


@pytest.fixture(scope="session")
def bench_runs() -> int:
    """Seeded repetitions per configuration (paper methodology: 7)."""
    return int(os.environ.get("REPRO_BENCH_RUNS", "3"))


def run_in_benchmark(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
