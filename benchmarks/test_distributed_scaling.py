"""DIST-SCALE — paper §VI future work: distributed training study.

Weak-scaling of synchronous data-parallel LeNet on the 200 GiB dataset
over a *shared* PFS, 1/2/4 nodes, plus the data-placement comparison the
paper anticipates ("multiple nodes will need access to different data
shards"): static sharding vs per-epoch reshuffling under MONARCH's
no-eviction placement.
"""

from __future__ import annotations

from benchmarks.conftest import run_in_benchmark
from repro.data.imagenet import IMAGENET_200G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.dist_scenarios import run_distributed_once
from repro.telemetry.report import format_table


def test_distributed_scaling(benchmark, bench_scale, bench_runs):
    calib = DEFAULT_CALIBRATION.busy()

    def sweep():
        out = {}
        for setup in ("vanilla-lustre", "monarch"):
            for n in (1, 2, 4):
                out[(setup, n)] = run_distributed_once(
                    setup, "lenet", IMAGENET_200G, n_nodes=n, policy="static",
                    calib=calib, scale=bench_scale, seed=7,
                )
        out[("monarch-reshuffle", 2)] = run_distributed_once(
            "monarch", "lenet", IMAGENET_200G, n_nodes=2, policy="reshuffle",
            calib=calib, scale=bench_scale, seed=7,
        )
        return out

    results = run_in_benchmark(benchmark, sweep)
    rows = []
    for (setup, n), rec in results.items():
        rows.append((
            setup, n,
            f"{rec.epoch_times_s[0]:.0f}",
            f"{rec.epoch_times_s[-1]:.0f}",
            f"{rec.steady_hit_ratio:.0%}",
            f"{rec.pfs_ops_per_epoch[-1] / 1e3:.0f}k",
        ))
    print()
    print(format_table(
        ["setup", "nodes", "epoch1 (s)", "steady epoch (s)", "tier hits", "steady PFS ops"],
        rows,
        title="DIST-SCALE: LeNet 200 GiB, shared PFS (paper §VI)",
    ))

    lustre = {n: results[("vanilla-lustre", n)] for n in (1, 2, 4)}
    monarch = {n: results[("monarch", n)] for n in (1, 2, 4)}
    # vanilla weak scaling is PFS-bound: 4 nodes nowhere near 4x
    assert lustre[4].epoch_times_s[-1] > 0.5 * lustre[1].epoch_times_s[-1]
    # with MONARCH + static shards, 2 nodes make the 200 GiB dataset fit
    # the aggregate tier: steady-state PFS traffic collapses
    assert monarch[2].steady_hit_ratio > 0.95
    assert monarch[2].pfs_ops_per_epoch[-1] < 0.1 * lustre[2].pfs_ops_per_epoch[-1]
    # and steady epochs now scale with nodes
    assert monarch[4].epoch_times_s[-1] < 0.35 * monarch[1].epoch_times_s[-1]
    # reshuffling defeats the no-eviction cache: hits and time degrade
    reshuffle = results[("monarch-reshuffle", 2)]
    assert reshuffle.steady_hit_ratio < monarch[2].steady_hit_ratio - 0.1
    assert reshuffle.epoch_times_s[-1] > monarch[2].epoch_times_s[-1]
