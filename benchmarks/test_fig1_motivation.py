"""FIG1 — paper Figure 1: motivation study.

Per-epoch training time for {vanilla-lustre, vanilla-local,
vanilla-caching} × {LeNet, AlexNet, ResNet-50} on the 100 GiB ImageNet
preset.  Prints the same bars (as numbers) the paper plots and asserts the
figure's qualitative claims.
"""

from __future__ import annotations

from benchmarks.conftest import run_in_benchmark
from repro.experiments.figures import PAPER_TOTALS_100G, fig1, render_grid
from repro.telemetry.runreport import RunReport


def test_fig1_motivation(benchmark, bench_scale, bench_runs):
    grid = run_in_benchmark(
        benchmark, lambda: fig1(scale=bench_scale, runs=bench_runs, report=True)
    )
    print()
    print(render_grid(grid, PAPER_TOTALS_100G,
                      "FIG1: motivation, 100 GiB ImageNet (paper Fig. 1)"))

    # Fig. 1's claims, in order of appearance in §II-A:
    for model in ("lenet", "alexnet"):
        lustre = grid[(model, "vanilla-lustre")]
        local = grid[(model, "vanilla-local")]
        caching = grid[(model, "vanilla-caching")]
        # local storage significantly reduces training time
        assert local.total_mean < 0.9 * lustre.total_mean
        # caching's first epoch is slower than lustre's (the extra copy)
        assert caching.epoch_mean_std()[0][0] > lustre.epoch_mean_std()[0][0]
        # caching's later epochs reach local-storage performance
        assert caching.epoch_mean_std()[2][0] < 1.15 * local.epoch_mean_std()[2][0]
    # LeNet: paper reports a 46% decrease lustre -> local
    lenet_ratio = grid[("lenet", "vanilla-local")].total_mean / \
        grid[("lenet", "vanilla-lustre")].total_mean
    assert 0.40 < lenet_ratio < 0.65
    # ResNet-50 is compute-bound: flat across setups
    resnet = [grid[("resnet50", s)].total_mean
              for s in ("vanilla-lustre", "vanilla-local", "vanilla-caching")]
    assert max(resnet) / min(resnet) < 1.10

    # Each run ships a RunReport whose traced I/O re-sums to the backend
    # counters it shadowed.
    for (model, setup), res in grid.items():
        for rec in res.runs:
            rep = RunReport.from_dict(rec.report)
            assert len(rep.epochs) == len(rec.epoch_times_s), (model, setup)
            for name, b in rep.backends.items():
                assert b["traced_bytes_read"] == b["bytes_read"], (setup, name)
                assert b["traced_bytes_written"] == b["bytes_written"], (setup, name)
