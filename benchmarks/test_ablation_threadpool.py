"""ABL-THREADS — placement-handler pool-size sensitivity.

The paper fixes the pool at 6 threads without a sweep; this ablation
measures how the first-epoch time (where all placement work happens)
responds to the pool size on the 100 GiB dataset.
"""

from __future__ import annotations

from benchmarks.conftest import run_in_benchmark
from repro.data.imagenet import IMAGENET_100G
from repro.experiments.runner import run_experiment
from repro.telemetry.report import format_table

POOL_SIZES = (1, 2, 6, 12)


def test_ablation_threadpool_size(benchmark, bench_scale, bench_runs):
    def sweep():
        out = {}
        for n in POOL_SIZES:
            out[n] = run_experiment(
                "monarch", "lenet", IMAGENET_100G,
                scale=bench_scale, runs=bench_runs,
                monarch_overrides={"placement_threads": n},
            )
        return out

    results = run_in_benchmark(benchmark, sweep)
    rows = [
        (n, res.epoch_mean_std()[0][0], res.total_mean)
        for n, res in results.items()
    ]
    print()
    print(format_table(
        ["threads", "epoch1 (s)", "total (s)"],
        rows,
        title="ABL-THREADS: placement pool size, 100 GiB (paper fixes 6)",
    ))

    # A single thread must not be catastrophically slower than 6: copies
    # are bandwidth-bound, not thread-bound (SSD writes are the limiter).
    one = results[1].epoch_mean_std()[0][0]
    six = results[6].epoch_mean_std()[0][0]
    assert one <= 1.6 * six
    # And extra threads beyond 6 give little (SSD already saturated).
    twelve = results[12].epoch_mean_std()[0][0]
    assert twelve >= 0.85 * six
    # Later epochs are identical regardless of pool size (fully cached).
    e3 = [res.epoch_mean_std()[2][0] for res in results.values()]
    assert max(e3) / min(e3) < 1.05
