"""ABL-TIMING — the placement-timing design choice (paper §III-A).

The paper weighs two options for *when* data placement happens: (i) stage
the training files before the training phase, or (ii) place them during
the first epoch as the framework requests them, and picks (ii) "to
prevent any delay in the training execution time" while requiring "the
same number of operations to the PFS backend".  This ablation runs both
on the 100 GiB dataset and checks both halves of that argument.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_in_benchmark
from repro.data.imagenet import IMAGENET_100G
from repro.experiments.runner import run_experiment
from repro.telemetry.report import format_table


def test_ablation_placement_timing(benchmark, bench_scale, bench_runs):
    def sweep():
        during = run_experiment(
            "monarch", "lenet", IMAGENET_100G, scale=bench_scale, runs=bench_runs,
        )
        prestage = run_experiment(
            "monarch", "lenet", IMAGENET_100G, scale=bench_scale, runs=bench_runs,
            monarch_overrides={"prestage": True},
        )
        return during, prestage

    during, prestage = run_in_benchmark(benchmark, sweep)

    def mean_init(res):
        return sum(r.init_time_s for r in res.runs) / len(res.runs)

    def mean_pfs_gib(res):
        return sum(r.pfs_bytes_read for r in res.runs) / len(res.runs) / 2**30

    rows = [
        ("during epoch 1 (paper)", mean_init(during),
         during.epoch_mean_std()[0][0], during.total_mean, mean_pfs_gib(during)),
        ("prestage before training", mean_init(prestage),
         prestage.epoch_mean_std()[0][0], prestage.total_mean, mean_pfs_gib(prestage)),
    ]
    print()
    print(format_table(
        ["placement timing", "init (s)", "epoch1 (s)", "epochs total (s)", "PFS GiB"],
        rows,
        title="ABL-TIMING: when placement happens, LeNet 100 GiB (paper §III-A)",
    ))

    # (a) prestaging delays training start by roughly a full dataset copy
    assert mean_init(prestage) > mean_init(during) + 100
    # (b) the PFS moves about the same bytes either way (the paper's claim:
    #     same number of operations against the backend)
    assert mean_pfs_gib(prestage) == pytest.approx(mean_pfs_gib(during), rel=0.35)
    # (c) with everything staged, epoch 1 runs at local speed...
    assert prestage.epoch_mean_std()[0][0] < 0.8 * during.epoch_mean_std()[0][0]
    # (d) ...but init + epochs in total is NOT better than overlapping the
    #     placement with epoch 1 — the paper's choice wins on job time
    assert (mean_init(prestage) + prestage.total_mean) >= \
        0.95 * (mean_init(during) + during.total_mean)

