"""Unit tests for the byte-level record codec."""

from __future__ import annotations

import io
import struct

import pytest

from repro.data.records import (
    RECORD_OVERHEAD,
    RecordCorruptionError,
    RecordReader,
    RecordWriter,
    record_frame_size,
)


def roundtrip(payloads: list[bytes]) -> list[bytes]:
    buf = io.BytesIO()
    w = RecordWriter(buf)
    for p in payloads:
        w.write(p)
    buf.seek(0)
    return list(RecordReader(buf))


class TestFrameSize:
    def test_overhead_is_16(self):
        assert RECORD_OVERHEAD == 16

    def test_frame_size(self):
        assert record_frame_size(0) == 16
        assert record_frame_size(100) == 116

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            record_frame_size(-1)


class TestRoundtrip:
    def test_single_record(self):
        assert roundtrip([b"hello"]) == [b"hello"]

    def test_many_records_in_order(self):
        payloads = [bytes([i]) * (i + 1) for i in range(50)]
        assert roundtrip(payloads) == payloads

    def test_empty_payload(self):
        assert roundtrip([b""]) == [b""]

    def test_binary_payload(self):
        blob = bytes(range(256)) * 40
        assert roundtrip([blob]) == [blob]

    def test_empty_stream(self):
        assert roundtrip([]) == []

    def test_write_returns_frame_bytes(self):
        buf = io.BytesIO()
        w = RecordWriter(buf)
        n = w.write(b"abcd")
        assert n == record_frame_size(4)
        assert len(buf.getvalue()) == n

    def test_records_written_counter(self):
        buf = io.BytesIO()
        w = RecordWriter(buf)
        for _ in range(3):
            w.write(b"x")
        assert w.records_written == 3

    def test_on_disk_size_matches_frame_math(self):
        payloads = [b"a" * n for n in (0, 1, 100, 4096)]
        buf = io.BytesIO()
        w = RecordWriter(buf)
        for p in payloads:
            w.write(p)
        expected = sum(record_frame_size(len(p)) for p in payloads)
        assert len(buf.getvalue()) == expected

    def test_flush_delegates(self):
        class Spy(io.BytesIO):
            flushed = False

            def flush(self):
                self.flushed = True
                super().flush()

        buf = Spy()
        RecordWriter(buf).flush()
        assert buf.flushed


class TestCorruption:
    def make_frame(self, payload: bytes) -> bytes:
        buf = io.BytesIO()
        RecordWriter(buf).write(payload)
        return buf.getvalue()

    def test_flipped_payload_byte_detected(self):
        frame = bytearray(self.make_frame(b"hello world"))
        frame[14] ^= 0xFF  # inside payload
        with pytest.raises(RecordCorruptionError, match="payload CRC"):
            RecordReader(io.BytesIO(bytes(frame))).read_one()

    def test_flipped_length_detected(self):
        frame = bytearray(self.make_frame(b"hello world"))
        frame[0] ^= 0x01  # length field
        with pytest.raises(RecordCorruptionError):
            RecordReader(io.BytesIO(bytes(frame))).read_one()

    def test_truncated_length(self):
        data = self.make_frame(b"abc")[:4]
        with pytest.raises(RecordCorruptionError, match="truncated length"):
            RecordReader(io.BytesIO(data)).read_one()

    def test_truncated_length_crc(self):
        data = self.make_frame(b"abc")[:10]
        with pytest.raises(RecordCorruptionError, match="length CRC"):
            RecordReader(io.BytesIO(data)).read_one()

    def test_truncated_payload(self):
        data = self.make_frame(b"abcdef")[:14]
        with pytest.raises(RecordCorruptionError, match="truncated payload"):
            RecordReader(io.BytesIO(data)).read_one()

    def test_truncated_payload_crc(self):
        frame = self.make_frame(b"abcdef")
        data = frame[: len(frame) - 2]
        with pytest.raises(RecordCorruptionError, match="payload CRC"):
            RecordReader(io.BytesIO(data)).read_one()

    def test_verify_false_skips_crc_checks(self):
        frame = bytearray(self.make_frame(b"hello"))
        frame[-1] ^= 0xFF  # corrupt payload CRC
        reader = RecordReader(io.BytesIO(bytes(frame)), verify=False)
        assert reader.read_one() == b"hello"

    def test_bogus_length_crc_value(self):
        # hand-build a frame with a wrong masked CRC for the length
        payload = b"xyz"
        header = struct.pack("<Q", len(payload))
        frame = header + struct.pack("<I", 0) + payload + struct.pack("<I", 0)
        with pytest.raises(RecordCorruptionError, match="length CRC"):
            RecordReader(io.BytesIO(frame)).read_one()
