"""Unit tests for dataset specs and sample-size models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import DatasetSpec, SampleSizeModel


class TestSampleSizeModel:
    def test_zero_sigma_is_constant(self):
        m = SampleSizeModel(mean_bytes=1000, sigma=0.0)
        sizes = m.draw(np.random.default_rng(0), 100)
        assert (sizes == 1000).all()

    def test_mean_approximately_target(self):
        m = SampleSizeModel(mean_bytes=100_000, sigma=0.3)
        sizes = m.draw(np.random.default_rng(0), 50_000)
        assert sizes.mean() == pytest.approx(100_000, rel=0.03)

    def test_clipping_bounds(self):
        m = SampleSizeModel(mean_bytes=10_000, sigma=1.0, min_bytes=2048, max_factor=4.0)
        sizes = m.draw(np.random.default_rng(1), 10_000)
        assert sizes.min() >= 2048
        assert sizes.max() <= 40_000

    def test_zero_count(self):
        m = SampleSizeModel(mean_bytes=1000)
        assert len(m.draw(np.random.default_rng(0), 0)) == 0

    def test_negative_count_rejected(self):
        m = SampleSizeModel(mean_bytes=1000)
        with pytest.raises(ValueError):
            m.draw(np.random.default_rng(0), -1)

    def test_validation(self):
        with pytest.raises(ValueError):
            SampleSizeModel(mean_bytes=0)
        with pytest.raises(ValueError):
            SampleSizeModel(mean_bytes=10, sigma=-1)
        with pytest.raises(ValueError):
            SampleSizeModel(mean_bytes=10, min_bytes=0)

    def test_dtype_is_int64(self):
        m = SampleSizeModel(mean_bytes=5000, sigma=0.2)
        assert m.draw(np.random.default_rng(0), 10).dtype == np.int64


class TestDatasetSpec:
    def test_validation(self):
        model = SampleSizeModel(mean_bytes=100)
        with pytest.raises(ValueError):
            DatasetSpec(name="x", n_samples=0, size_model=model, shard_target_bytes=10)
        with pytest.raises(ValueError):
            DatasetSpec(name="x", n_samples=1, size_model=model, shard_target_bytes=0)

    def test_approx_total(self, tiny_spec):
        assert tiny_spec.approx_total_bytes == 96 * 8192

    def test_sample_sizes_deterministic(self, tiny_spec):
        a = tiny_spec.sample_sizes()
        b = tiny_spec.sample_sizes()
        assert np.array_equal(a, b)

    def test_sample_sizes_depend_on_name(self):
        model = SampleSizeModel(mean_bytes=1000, sigma=0.3)
        a = DatasetSpec(name="a", n_samples=100, size_model=model, shard_target_bytes=10_000)
        b = DatasetSpec(name="b", n_samples=100, size_model=model, shard_target_bytes=10_000)
        assert not np.array_equal(a.sample_sizes(), b.sample_sizes())

    def test_sample_sizes_depend_on_layout_seed(self):
        model = SampleSizeModel(mean_bytes=1000, sigma=0.3)
        a = DatasetSpec(name="x", n_samples=100, size_model=model,
                        shard_target_bytes=10_000, layout_seed=1)
        b = DatasetSpec(name="x", n_samples=100, size_model=model,
                        shard_target_bytes=10_000, layout_seed=2)
        assert not np.array_equal(a.sample_sizes(), b.sample_sizes())
