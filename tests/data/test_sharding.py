"""Unit tests for shard packing and manifests."""

from __future__ import annotations

import pytest

from repro.data.records import record_frame_size
from repro.data.sharding import build_shards


class TestBuildShards:
    def test_tiny_spec_geometry(self, tiny_spec, tiny_manifest):
        # 96 constant-size records, 12 per shard -> 8 shards
        assert tiny_manifest.n_shards == 8
        assert tiny_manifest.n_samples == 96
        assert all(s.n_records == 12 for s in tiny_manifest.shards)

    def test_every_sample_exactly_once(self, tiny_manifest):
        ids = [r.sample_id for s in tiny_manifest.shards for r in s.records]
        assert sorted(ids) == list(range(96))

    def test_offsets_contiguous_within_shard(self, tiny_manifest):
        for shard in tiny_manifest.shards:
            pos = 0
            for rec in shard.records:
                assert rec.offset == pos
                assert rec.frame_len == record_frame_size(rec.payload_len)
                pos += rec.frame_len
            assert shard.size_bytes == pos

    def test_total_bytes_matches_frames(self, tiny_spec, tiny_manifest):
        expected = sum(record_frame_size(int(s)) for s in tiny_spec.sample_sizes())
        assert tiny_manifest.total_bytes == expected

    def test_shards_respect_target_unless_single_record(self, tiny_spec):
        manifest = build_shards(tiny_spec)
        for shard in manifest.shards:
            assert shard.size_bytes <= tiny_spec.shard_target_bytes or shard.n_records == 1

    def test_filenames_are_unique_and_ordered(self, tiny_manifest):
        names = [s.filename for s in tiny_manifest.shards]
        assert len(set(names)) == len(names)
        assert names == sorted(names)
        assert all(n.endswith(".tfrecord") for n in names)

    def test_name_prefix(self, tiny_spec):
        manifest = build_shards(tiny_spec, name_prefix="val")
        assert all(s.filename.startswith("val-") for s in manifest.shards)

    def test_deterministic(self, tiny_spec):
        a = build_shards(tiny_spec)
        b = build_shards(tiny_spec)
        assert [s.size_bytes for s in a.shards] == [s.size_bytes for s in b.shards]
        assert [s.filename for s in a.shards] == [s.filename for s in b.shards]

    def test_oversized_record_gets_own_shard(self):
        from repro.data.dataset import DatasetSpec, SampleSizeModel

        spec = DatasetSpec(
            name="big-records",
            n_samples=4,
            size_model=SampleSizeModel(mean_bytes=10_000, sigma=0.0),
            shard_target_bytes=5_000,  # smaller than one record
        )
        manifest = build_shards(spec)
        assert manifest.n_shards == 4
        assert all(s.n_records == 1 for s in manifest.shards)

    def test_shard_sizes_array(self, tiny_manifest):
        sizes = tiny_manifest.shard_sizes()
        assert len(sizes) == 8
        assert sizes.sum() == tiny_manifest.total_bytes
