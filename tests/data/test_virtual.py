"""Unit tests for manifest materialization into the PFS."""

from __future__ import annotations

import pytest

from repro.data.virtual import materialize


class TestMaterialize:
    def test_creates_every_shard(self, sim, pfs, tiny_manifest):
        paths = materialize(tiny_manifest, pfs, "/dataset")
        assert len(paths) == tiny_manifest.n_shards
        for path, shard in zip(paths, tiny_manifest.shards):
            assert pfs.exists(path)
            assert pfs.file_size(path) == shard.size_bytes

    def test_paths_under_directory(self, sim, pfs, tiny_manifest):
        paths = materialize(tiny_manifest, pfs, "/data/train")
        assert all(p.startswith("/data/train/") for p in paths)

    def test_total_bytes_on_pfs(self, sim, pfs, tiny_manifest):
        materialize(tiny_manifest, pfs)
        assert pfs.used_bytes == tiny_manifest.total_bytes

    def test_double_materialize_collides(self, sim, pfs, tiny_manifest):
        materialize(tiny_manifest, pfs)
        with pytest.raises(ValueError):
            materialize(tiny_manifest, pfs)
