"""Property-based tests for the data substrate."""

from __future__ import annotations

import pytest

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.crc import crc32c, mask_crc, unmask_crc
from repro.data.dataset import DatasetSpec, SampleSizeModel
from repro.data.records import RecordReader, RecordWriter, record_frame_size
from repro.data.sharding import build_shards


pytestmark = pytest.mark.hypothesis_heavy

@given(payloads=st.lists(st.binary(max_size=4096), max_size=30))
@settings(max_examples=60, deadline=None)
def test_record_codec_roundtrip(payloads):
    """write-then-read returns exactly the payloads, in order."""
    buf = io.BytesIO()
    w = RecordWriter(buf)
    total = 0
    for p in payloads:
        total += w.write(p)
    assert len(buf.getvalue()) == total
    buf.seek(0)
    assert list(RecordReader(buf)) == payloads


@given(value=st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_crc_mask_is_a_bijection(value):
    assert unmask_crc(mask_crc(value)) == value
    assert mask_crc(unmask_crc(value)) == value


@given(data=st.binary(max_size=2048), split=st.integers(min_value=0, max_value=2048))
@settings(max_examples=60)
def test_crc_incremental_composition(data, split):
    split = min(split, len(data))
    assert crc32c(data[split:], crc32c(data[:split])) == crc32c(data)


@given(
    n_samples=st.integers(min_value=1, max_value=500),
    mean=st.integers(min_value=64, max_value=50_000),
    sigma=st.floats(min_value=0.0, max_value=1.0),
    shard_target=st.integers(min_value=256, max_value=1 << 20),
)
@settings(max_examples=40, deadline=None)
def test_shard_packing_invariants(n_samples, mean, sigma, shard_target):
    """Packing never loses/duplicates samples; shard sizes obey the target."""
    spec = DatasetSpec(
        name="prop",
        n_samples=n_samples,
        size_model=SampleSizeModel(mean_bytes=mean, sigma=sigma, min_bytes=1),
        shard_target_bytes=shard_target,
    )
    manifest = build_shards(spec)
    ids = [r.sample_id for s in manifest.shards for r in s.records]
    assert sorted(ids) == list(range(n_samples))
    sizes = spec.sample_sizes()
    for shard in manifest.shards:
        assert shard.n_records >= 1
        pos = 0
        for rec in shard.records:
            assert rec.offset == pos
            assert rec.payload_len == int(sizes[rec.sample_id])
            assert rec.frame_len == record_frame_size(rec.payload_len)
            pos += rec.frame_len
        # a shard only exceeds the target when a single record does
        assert shard.size_bytes <= shard_target or shard.n_records == 1
    assert manifest.total_bytes == sum(record_frame_size(int(x)) for x in sizes)
