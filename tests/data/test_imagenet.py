"""Unit tests for the ImageNet presets and the scale transform."""

from __future__ import annotations

import pytest

from repro.data.imagenet import IMAGENET_100G, IMAGENET_200G, scaled
from repro.storage.blockmath import GIB, MIB


class TestPresets:
    def test_100g_matches_paper(self):
        assert IMAGENET_100G.n_samples == 900_000
        assert IMAGENET_100G.approx_total_bytes == pytest.approx(100 * GIB, rel=0.01)
        assert IMAGENET_100G.shard_target_bytes == 128 * MIB

    def test_200g_matches_paper(self):
        assert IMAGENET_200G.n_samples == 3_000_000
        assert IMAGENET_200G.approx_total_bytes == pytest.approx(200 * GIB, rel=0.01)

    def test_200g_images_smaller_than_100g(self):
        assert IMAGENET_200G.size_model.mean_bytes < IMAGENET_100G.size_model.mean_bytes


class TestScaled:
    def test_scale_one_is_identity(self):
        assert scaled(IMAGENET_100G, 1.0) is IMAGENET_100G

    def test_linear_sample_count(self):
        s = scaled(IMAGENET_100G, 1 / 100)
        assert s.n_samples == 9000

    def test_total_bytes_scale(self):
        s = scaled(IMAGENET_100G, 1 / 128)
        assert s.approx_total_bytes == pytest.approx(100 * GIB / 128, rel=0.01)

    def test_mean_sample_size_preserved(self):
        s = scaled(IMAGENET_100G, 1 / 64)
        assert s.size_model.mean_bytes == IMAGENET_100G.size_model.mean_bytes

    def test_shard_floor_keeps_64_samples(self):
        s = scaled(IMAGENET_100G, 1 / 4096)
        assert s.shard_target_bytes >= 64 * s.size_model.mean_bytes

    def test_minimum_sample_floor(self):
        s = scaled(IMAGENET_100G, 1e-9)
        assert s.n_samples >= 64

    def test_name_annotated(self):
        s = scaled(IMAGENET_100G, 0.5)
        assert "x0.5" in s.name

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled(IMAGENET_100G, 0.0)
        with pytest.raises(ValueError):
            scaled(IMAGENET_100G, 1.5)
