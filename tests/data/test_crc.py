"""Unit tests for CRC-32C and the TFRecord mask."""

from __future__ import annotations

import pytest

from repro.data.crc import crc32c, mask_crc, unmask_crc


class TestCrc32c:
    # Known CRC-32C vectors (RFC 3720 / kernel test vectors).
    def test_empty(self):
        assert crc32c(b"") == 0x00000000

    def test_all_zero_32(self):
        assert crc32c(b"\x00" * 32) == 0x8A9136AA

    def test_all_ff_32(self):
        assert crc32c(b"\xff" * 32) == 0x62A8AB43

    def test_ascending_32(self):
        assert crc32c(bytes(range(32))) == 0x46DD794E

    def test_descending_32(self):
        assert crc32c(bytes(range(31, -1, -1))) == 0x113FDB5C

    def test_123456789(self):
        assert crc32c(b"123456789") == 0xE3069283

    def test_incremental_equals_whole(self):
        data = b"hello, storage world"
        whole = crc32c(data)
        partial = crc32c(data[7:], crc32c(data[:7]))
        assert partial == whole

    def test_different_data_different_crc(self):
        assert crc32c(b"abc") != crc32c(b"abd")


class TestMask:
    def test_roundtrip(self):
        for value in (0, 1, 0xDEADBEEF, 0xFFFFFFFF, 0x12345678):
            assert unmask_crc(mask_crc(value)) == value

    def test_mask_changes_value(self):
        assert mask_crc(0xABCD1234) != 0xABCD1234

    def test_mask_stays_32bit(self):
        for value in (0, 0xFFFFFFFF, 0x80000000):
            assert 0 <= mask_crc(value) <= 0xFFFFFFFF

    def test_known_tfrecord_mask(self):
        # masked = ((crc >> 15) | (crc << 17)) + 0xa282ead8 (mod 2^32)
        crc = 0x01234567
        expected = (((crc >> 15) | (crc << 17)) + 0xA282EAD8) & 0xFFFFFFFF
        assert mask_crc(crc) == expected
