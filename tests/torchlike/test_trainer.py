"""Unit and integration tests for the PyTorch-style trainer + scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.imagenet import IMAGENET_100G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.torch_scenarios import build_torch_run, run_torch_once
from repro.framework.io_layer import PosixReader
from repro.torchlike.dataset import FileSampleDataset, materialize_loose_files
from repro.torchlike.loader import DataLoaderConfig
from repro.torchlike.trainer import TorchTrainer

SCALE = 1 / 4096


class TestTorchTrainer:
    @pytest.fixture
    def trainer(self, sim, pfs, mounts, node, fast_model, tiny_spec):
        ds = FileSampleDataset.from_spec(tiny_spec, "/dataset/images")
        materialize_loose_files(ds, pfs)
        return TorchTrainer(
            sim=sim, node=node, model=fast_model,
            config=DataLoaderConfig(num_workers=4, batch_size=16, reference_batch=16),
            dataset=ds, reader=PosixReader(mounts),
            shuffle_rng=np.random.default_rng(2),
            backends={"pfs": pfs.stats}, epochs=2, path_prefix="/mnt/pfs",
        )

    def test_epochs_and_records(self, sim, trainer):
        result = sim.run(sim.spawn(trainer.run()))
        assert len(result.epochs) == 2
        assert all(e.records == 96 for e in result.epochs)
        assert all(e.steps == 6 for e in result.epochs)

    def test_pfs_ops_per_epoch(self, sim, trainer):
        result = sim.run(sim.spawn(trainer.run()))
        for e in result.epochs:
            # one open + one read per sample per epoch
            assert e.backend_ops["pfs"].open_ops == 96
            assert e.backend_ops["pfs"].read_ops == 96

    def test_epochs_validation(self, sim, pfs, mounts, node, fast_model, tiny_spec):
        ds = FileSampleDataset.from_spec(tiny_spec)
        with pytest.raises(ValueError):
            TorchTrainer(sim=sim, node=node, model=fast_model,
                         config=DataLoaderConfig(), dataset=ds,
                         reader=PosixReader(mounts),
                         shuffle_rng=np.random.default_rng(0), epochs=0)


class TestTorchScenarios:
    def test_unknown_setup_rejected(self):
        with pytest.raises(ValueError):
            build_torch_run("vanilla-local", "lenet", IMAGENET_100G,
                            DEFAULT_CALIBRATION, SCALE)

    def test_vanilla_run_completes(self):
        rec = run_torch_once("vanilla-lustre", "lenet", IMAGENET_100G,
                             scale=SCALE, seed=1, epochs=2)
        assert len(rec.epoch_times_s) == 2
        assert rec.setup == "torch-vanilla-lustre"
        # one PFS open per sample per epoch (unscaled ~= 900k + reads)
        assert rec.pfs_ops_per_epoch[0] > 1e6

    def test_monarch_absorbs_steady_state_opens(self):
        rec = run_torch_once("monarch", "lenet", IMAGENET_100G,
                             scale=SCALE, seed=1, epochs=3)
        # epoch 1 still touches the PFS; epochs 2-3 are fully local
        assert rec.pfs_ops_per_epoch[0] > 0
        assert rec.pfs_ops_per_epoch[1] == 0
        assert rec.pfs_ops_per_epoch[2] == 0

    def test_monarch_init_scales_with_file_count(self):
        """Per-sample namespaces make init enormous — the §VI finding."""
        rec = run_torch_once("monarch", "lenet", IMAGENET_100G,
                             scale=SCALE, seed=1, epochs=1)
        # ~900k files at ~16 ms/stat, unscaled: hours, not seconds
        assert rec.init_time_s > 1000

    def test_monarch_steady_epochs_faster_than_vanilla(self):
        vanilla = run_torch_once("vanilla-lustre", "lenet", IMAGENET_100G,
                                 scale=SCALE, seed=1, epochs=2)
        monarch = run_torch_once("monarch", "lenet", IMAGENET_100G,
                                 scale=SCALE, seed=1, epochs=2)
        assert monarch.epoch_times_s[1] < 0.5 * vanilla.epoch_times_s[1]

    def test_loose_files_slower_than_record_shards(self):
        """§I's motivation: record formats cut metadata ops and win."""
        from repro.experiments.runner import run_once

        loose = run_torch_once("vanilla-lustre", "lenet", IMAGENET_100G,
                               scale=SCALE, seed=1, epochs=1)
        shards = run_once("vanilla-lustre", "lenet", IMAGENET_100G,
                          scale=SCALE, seed=1, epochs=1)
        assert loose.epoch_times_s[0] > 2 * shards.epoch_times_s[0]
