"""Unit tests for the loose-file dataset."""

from __future__ import annotations

import numpy as np

from repro.torchlike.dataset import FileSampleDataset, materialize_loose_files


class TestFileSampleDataset:
    def test_one_file_per_sample(self, tiny_spec):
        ds = FileSampleDataset.from_spec(tiny_spec, "/d/images")
        assert len(ds) == tiny_spec.n_samples
        assert len({s.path for s in ds.samples}) == len(ds)

    def test_indexable(self, tiny_spec):
        ds = FileSampleDataset.from_spec(tiny_spec)
        s = ds[5]
        assert s.index == 5
        assert s.path.endswith("00000005.jpg")

    def test_sizes_match_spec(self, tiny_spec):
        ds = FileSampleDataset.from_spec(tiny_spec)
        sizes = tiny_spec.sample_sizes()
        assert all(ds[i].size == int(sizes[i]) for i in range(len(ds)))
        assert ds.total_bytes == int(sizes.sum())

    def test_same_bytes_as_record_path(self, tiny_spec, tiny_manifest):
        """Loose files and record shards hold the same payload bytes."""
        ds = FileSampleDataset.from_spec(tiny_spec)
        payload_in_shards = sum(
            r.payload_len for s in tiny_manifest.shards for r in s.records
        )
        assert ds.total_bytes == payload_in_shards

    def test_deterministic(self, tiny_spec):
        a = FileSampleDataset.from_spec(tiny_spec)
        b = FileSampleDataset.from_spec(tiny_spec)
        assert [(s.path, s.size) for s in a.samples] == [(s.path, s.size) for s in b.samples]


class TestMaterializeLooseFiles:
    def test_creates_every_file(self, sim, pfs, tiny_spec):
        ds = FileSampleDataset.from_spec(tiny_spec, "/dataset/images")
        paths = materialize_loose_files(ds, pfs)
        assert len(paths) == len(ds)
        assert pfs.used_bytes == ds.total_bytes
        for s in ds.samples:
            assert pfs.file_size(s.path) == s.size
