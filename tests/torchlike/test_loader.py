"""Unit tests for the PyTorch-style DataLoader."""

from __future__ import annotations

import numpy as np
import pytest

from repro.framework.io_layer import PosixReader
from repro.torchlike.dataset import FileSampleDataset, materialize_loose_files
from repro.torchlike.loader import DataLoader, DataLoaderConfig


@pytest.fixture
def loose_dataset(sim, pfs, tiny_spec):
    ds = FileSampleDataset.from_spec(tiny_spec, "/dataset/images")
    materialize_loose_files(ds, pfs)
    return ds


def run_epoch(sim, loader):
    def consumer():
        batches = []
        while True:
            b = yield from loader.next_batch()
            if b is None:
                return batches
            batches.append(b)

    loader.start()
    return sim.run(sim.spawn(consumer()))


def make_loader(sim, loose_dataset, mounts, node, fast_model, **cfg):
    defaults = dict(num_workers=4, batch_size=16, prefetch_batches=2,
                    reference_batch=16)
    defaults.update(cfg)
    return DataLoader(
        sim=sim,
        config=DataLoaderConfig(**defaults),
        dataset=loose_dataset,
        reader=PosixReader(mounts),
        node=node,
        model=fast_model,
        shuffle_rng=np.random.default_rng(5),
        path_prefix="/mnt/pfs",
    )


class TestDataLoaderConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DataLoaderConfig(num_workers=0)
        with pytest.raises(ValueError):
            DataLoaderConfig(batch_size=0)
        with pytest.raises(ValueError):
            DataLoaderConfig(prefetch_batches=0)

    def test_host_scale(self):
        assert DataLoaderConfig(batch_size=32, reference_batch=128).host_scale == 0.25


class TestDataLoader:
    def test_delivers_every_sample_once(self, sim, loose_dataset, mounts, node, fast_model):
        loader = make_loader(sim, loose_dataset, mounts, node, fast_model)
        batches = run_epoch(sim, loader)
        samples = [s for b in batches for s in b]
        assert sorted(s.index for s in samples) == list(range(96))

    def test_batch_sizes_and_remainder(self, sim, loose_dataset, mounts, node, fast_model):
        loader = make_loader(sim, loose_dataset, mounts, node, fast_model, batch_size=36)
        batches = run_epoch(sim, loader)
        assert [len(b) for b in batches] == [36, 36, 24]
        assert loader.total_batches == 3

    def test_one_open_and_read_per_sample(self, sim, loose_dataset, mounts, node,
                                          fast_model, pfs):
        loader = make_loader(sim, loose_dataset, mounts, node, fast_model)
        run_epoch(sim, loader)
        assert pfs.stats.open_ops == 96
        assert pfs.stats.read_ops == 96
        assert pfs.stats.bytes_read == loose_dataset.total_bytes

    def test_cpu_charged_per_sample(self, sim, loose_dataset, mounts, node, fast_model):
        loader = make_loader(sim, loose_dataset, mounts, node, fast_model)
        run_epoch(sim, loader)
        busy = node.cpu.monitor.mean_level(0.0, sim.now) * sim.now
        expected = sum(fast_model.preprocess_time(s.size) for s in loose_dataset.samples)
        assert busy == pytest.approx(expected, rel=0.05)

    def test_shuffle_order_changes_with_rng(self, sim, loose_dataset, mounts, node,
                                            fast_model):
        rng = np.random.default_rng(0)
        cfg = DataLoaderConfig(num_workers=2, batch_size=16, reference_batch=16)
        l1 = DataLoader(sim, cfg, loose_dataset, PosixReader(mounts), node,
                        fast_model, rng, path_prefix="/mnt/pfs")
        l2 = DataLoader(sim, cfg, loose_dataset, PosixReader(mounts), node,
                        fast_model, rng, path_prefix="/mnt/pfs")
        assert l1._indices != l2._indices

    def test_empty_dataset_rejected(self, sim, mounts, node, fast_model, tiny_spec):
        empty = FileSampleDataset(spec=tiny_spec, directory="/x", samples=[])
        with pytest.raises(ValueError):
            DataLoader(sim, DataLoaderConfig(), empty, PosixReader(mounts), node,
                       fast_model, np.random.default_rng(0))

    def test_worker_failure_propagates(self, sim, loose_dataset, node, fast_model):
        class Broken:
            def open(self, path):
                raise RuntimeError("loader worker died")
                yield  # pragma: no cover

            def pread(self, f, o, n):
                yield  # pragma: no cover

            def close(self, f):
                pass

        loader = DataLoader(sim, DataLoaderConfig(num_workers=2, batch_size=16),
                            loose_dataset, Broken(), node, fast_model,
                            np.random.default_rng(0))
        with pytest.raises(RuntimeError, match="loader worker died"):
            run_epoch(sim, loader)
