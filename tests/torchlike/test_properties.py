"""Property-based tests for the PyTorch-style loader."""

from __future__ import annotations

import pytest

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import DatasetSpec, SampleSizeModel
from repro.framework.io_layer import PosixReader
from repro.framework.models import ModelProfile
from repro.framework.resources import ComputeNode, NodeSpec
from repro.simkernel.core import Simulator
from repro.storage.device import Device, SATA_SSD
from repro.storage.localfs import LocalFileSystem
from repro.storage.pfs import ParallelFileSystem
from repro.storage.vfs import MountTable
from repro.torchlike.dataset import FileSampleDataset, materialize_loose_files
from repro.torchlike.loader import DataLoader, DataLoaderConfig


pytestmark = pytest.mark.hypothesis_heavy

@given(
    n_samples=st.integers(min_value=1, max_value=120),
    num_workers=st.integers(min_value=1, max_value=8),
    batch_size=st.integers(min_value=1, max_value=50),
    prefetch=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_loader_delivers_every_sample_exactly_once(n_samples, num_workers,
                                                   batch_size, prefetch):
    """For any loader geometry: conservation, full batches except the last."""
    sim = Simulator()
    pfs = ParallelFileSystem(sim)
    spec = DatasetSpec(
        name="prop-loose",
        n_samples=n_samples,
        size_model=SampleSizeModel(mean_bytes=2048, sigma=0.0),
        shard_target_bytes=1 << 20,
    )
    ds = FileSampleDataset.from_spec(spec, "/dataset/images")
    materialize_loose_files(ds, pfs)
    mounts = MountTable()
    mounts.mount("/mnt/pfs", pfs)
    node = ComputeNode(sim, NodeSpec(cpu_cores=4, n_gpus=1))
    model = ModelProfile(name="m", gpu_time_per_image_us=10,
                         cpu_time_per_image_us=20)
    loader = DataLoader(
        sim,
        DataLoaderConfig(num_workers=num_workers, batch_size=batch_size,
                         prefetch_batches=prefetch, reference_batch=batch_size),
        ds, PosixReader(mounts), node, model,
        np.random.default_rng(0), path_prefix="/mnt/pfs",
    )

    def consumer():
        batches = []
        while True:
            b = yield from loader.next_batch()
            if b is None:
                return batches
            batches.append(b)

    loader.start()
    batches = sim.run(sim.spawn(consumer()))
    ids = sorted(s.index for b in batches for s in b)
    assert ids == list(range(n_samples))
    for b in batches[:-1]:
        assert len(b) == batch_size
    assert 1 <= len(batches[-1]) <= batch_size
    # every sample was opened and read exactly once
    assert pfs.stats.open_ops == n_samples
    assert pfs.stats.read_ops == n_samples
