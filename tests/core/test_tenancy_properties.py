"""Property-based multi-job tenancy invariants (hypothesis).

Randomized job mixes — per-job file sets, fair-share weights and tier
shapes — against the invariants the tenancy layer must never violate:

1. tier occupancy never exceeds the tier's quota,
2. every registered job stays within its fair-share admission cap,
3. namespaces are disjoint: a job can never read another job's files
   (and the refused read perturbs no state),
4. a late-starting job always finds its slice free (no starvation),
5. same-seed replays reach a bit-identical terminal state.

Everything is seeded and derandomized, so a failing example reproduces
bit-for-bit.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import MonarchConfig, TierSpec
from repro.core.metadata import FileState
from repro.core.middleware import Monarch
from repro.core.tenancy import NamespaceViolationError
from repro.simkernel.core import Simulator
from repro.storage.device import Device, SATA_SSD
from repro.storage.localfs import LocalFileSystem
from repro.storage.pfs import ParallelFileSystem
from repro.storage.vfs import MountTable

pytestmark = pytest.mark.hypothesis_heavy

KIB = 1024
UPPER_MOUNTS = ("/mnt/ram", "/mnt/ssd")
PFS_MOUNT = "/mnt/pfs"

# -- strategies --------------------------------------------------------------

job_file_sets = st.lists(  # one inner list of file sizes per job
    st.lists(
        st.integers(min_value=4 * KIB, max_value=1024 * KIB),
        min_size=1,
        max_size=6,
    ),
    min_size=2,
    max_size=3,
)
shares = st.lists(
    st.floats(min_value=0.1, max_value=4.0, allow_nan=False),
    min_size=3,
    max_size=3,
)
tier_capacities = st.lists(
    st.integers(min_value=256 * KIB, max_value=4 * 1024 * KIB),
    min_size=1,
    max_size=2,
)

# -- harness -----------------------------------------------------------------


def build_multi_stack(file_sets, capacities, share_weights):
    """A fresh simulator + shared Monarch with one namespace per job."""
    sim = Simulator()
    pfs = ParallelFileSystem(sim)
    jobs = [f"job{i}" for i in range(len(file_sets))]
    names: dict[str, list[str]] = {}
    for job, sizes in zip(jobs, file_sets):
        names[job] = []
        for i, size in enumerate(sizes):
            path = f"/dataset/{job}/f{i:03d}"
            pfs.add_file(path, size)
            names[job].append(path)
    locals_ = [
        LocalFileSystem(sim, Device(sim, SATA_SSD), capacity_bytes=cap)
        for cap in capacities
    ]
    mounts = MountTable()
    tier_mounts = list(UPPER_MOUNTS[: len(capacities)])
    for mount, fs in zip(tier_mounts, locals_):
        mounts.mount(mount, fs)
    mounts.mount(PFS_MOUNT, pfs)
    config = MonarchConfig(
        tiers=tuple(TierSpec(mount_point=m) for m in (*tier_mounts, PFS_MOUNT)),
        dataset_dir="/dataset",
        placement_threads=2,
        copy_chunk=256 * KIB,
    )
    monarch = Monarch(sim, config, mounts)
    contexts = {
        job: monarch.register_job(job, f"/dataset/{job}", share=w)
        for job, w in zip(jobs, share_weights)
    }
    for job in jobs:
        proc = sim.spawn(contexts[job].initialize(), name=f"init-{job}")
        sim.run(proc)
    return sim, monarch, locals_, jobs, names, contexts


def run_concurrent_epochs(sim, monarch, jobs, names, epochs=2):
    """Every job reads its own files concurrently; then drain the pool."""

    def reader(job):
        for _ in range(epochs):
            for name in names[job]:
                yield from monarch.read(name, 0, monarch.file_size(name), job=job)

    procs = [sim.spawn(reader(job), name=f"reader-{job}") for job in jobs]
    sim.run(sim.all_of(procs))

    def drain():
        yield from monarch.placement.drain()

    sim.run(sim.spawn(drain(), name="drain"))


def check_tenancy_invariants(monarch, locals_, jobs, names):
    """Quota, cap and namespace invariants in any terminal state."""
    arbiter = monarch.arbiter
    assert arbiter is not None
    # 1. Occupancy never exceeds the quota, and matches the file ledger.
    for fs in locals_:
        assert fs.used_bytes <= fs.capacity_bytes
        assert fs.used_bytes == sum(fs.file_size(p) for p in fs.paths())
    # 2. Every job is within its per-tier admission cap.
    for job in jobs:
        for level, fs in enumerate(locals_):
            cap = arbiter.cap_bytes(job, fs.capacity_bytes)
            assert arbiter.admitted_bytes(job, level) <= cap, (job, level)
    # 3. Namespaces partition the metadata: every file has exactly its
    #    owner's tag, and per-owner listings are disjoint and complete.
    all_names = [n for job in jobs for n in names[job]]
    assert len(monarch.metadata) == len(all_names)
    for job in jobs:
        listed = [info.name for info in monarch.metadata.files(owner=job)]
        assert listed == sorted(names[job])
    # After the drain nothing may still hold a reservation.
    assert all(v == 0 for v in monarch.placement._reserved.values())


def snapshot(sim, monarch, locals_, jobs):
    """Everything that must be identical across same-seed replays."""
    return {
        "now": sim.now,
        "stats": monarch.stats.counters(),
        "jobs": {j: monarch.job_stats[j].counters() for j in jobs},
        "arbiter": monarch.arbiter.counters() if monarch.arbiter else {},
        "used": [fs.used_bytes for fs in locals_],
        "states": {
            info.name: (info.state.name, info.level, info.owner)
            for info in monarch.metadata.files()
        },
    }


# -- properties --------------------------------------------------------------


@settings(
    max_examples=60,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(file_sets=job_file_sets, capacities=tier_capacities, weights=shares)
def test_quota_and_caps_hold_for_any_job_mix(file_sets, capacities, weights):
    """No tier over-fills and no job exceeds its fair-share cap."""
    sim, monarch, locals_, jobs, names, _ = build_multi_stack(
        file_sets, capacities, weights[: len(file_sets)]
    )
    run_concurrent_epochs(sim, monarch, jobs, names)
    check_tenancy_invariants(monarch, locals_, jobs, names)


@settings(
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(file_sets=job_file_sets, capacities=tier_capacities, weights=shares)
def test_namespaces_never_cross_read(file_sets, capacities, weights):
    """Every cross-namespace read raises and perturbs nothing."""
    sim, monarch, locals_, jobs, names, _ = build_multi_stack(
        file_sets, capacities, weights[: len(file_sets)]
    )
    run_concurrent_epochs(sim, monarch, jobs, names)
    before = snapshot(sim, monarch, locals_, jobs)
    for thief in jobs:
        for victim in jobs:
            if victim == thief:
                continue
            target = names[victim][0]

            def attempt():
                yield from monarch.read(
                    target, 0, monarch.file_size(target), job=thief
                )

            proc = sim.spawn(attempt(), name=f"thief-{thief}")
            with pytest.raises(NamespaceViolationError):
                sim.run(proc)
    assert snapshot(sim, monarch, locals_, jobs) == before


@settings(
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(file_sets=job_file_sets, capacities=tier_capacities, weights=shares)
def test_late_starter_finds_its_share_free(file_sets, capacities, weights):
    """After every sibling runs to completion, a late job's first file
    still places on the top tier if it fits that job's cap (no starvation)."""
    sim, monarch, locals_, jobs, names, _ = build_multi_stack(
        file_sets, capacities, weights[: len(file_sets)]
    )
    late, early = jobs[-1], jobs[:-1]
    run_concurrent_epochs(sim, monarch, early, names)

    def first_read():
        name = names[late][0]
        yield from monarch.read(name, 0, monarch.file_size(name), job=late)
        yield from monarch.placement.drain()

    sim.run(sim.spawn(first_read(), name="late"))
    info = monarch.metadata.lookup(names[late][0])
    arbiter = monarch.arbiter
    fits_somewhere = any(
        info.size <= min(arbiter.cap_bytes(late, fs.capacity_bytes), fs.capacity_bytes)
        for fs in locals_
    )
    if fits_somewhere:
        assert info.state is FileState.CACHED, info
    check_tenancy_invariants(monarch, locals_, jobs, names)


@settings(
    max_examples=30,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(file_sets=job_file_sets, capacities=tier_capacities, weights=shares)
def test_multi_job_runs_replay_deterministically(file_sets, capacities, weights):
    """The same mix replays to a bit-identical terminal state."""
    snaps = []
    for _ in range(2):
        sim, monarch, locals_, jobs, names, _ = build_multi_stack(
            file_sets, capacities, weights[: len(file_sets)]
        )
        run_concurrent_epochs(sim, monarch, jobs, names)
        snaps.append(snapshot(sim, monarch, locals_, jobs))
    assert snaps[0] == snaps[1]
