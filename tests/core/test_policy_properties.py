"""Property-based invariants every registered placement policy must hold.

The policy engine lets a policy *choose* placements, evictions and
promotions — but no choice may violate the handler's safety envelope.
For every name in :data:`POLICY_NAMES`, under randomized file sizes,
tier shapes and fault plans:

1. tier occupancy never exceeds capacity and the namespace stays intact,
2. per-job fair-share caps are respected on every tier,
3. a quarantined-from-birth tier never receives a byte,
4. policies only evict under capacity pressure,
5. same-seed replays are bit-identical (policy counters included).

Like the placement suite, everything is seeded and hypothesis runs
derandomized, so a failing example reproduces bit-for-bit.
"""

from __future__ import annotations

import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import numpy as np

from repro.core.config import MonarchConfig, TierSpec
from repro.core.metadata import FileState
from repro.core.middleware import Monarch
from repro.core.policy import POLICY_NAMES
from repro.faults import FaultInjector, FaultPlan, LatencySpike, TierDown, TransientFaults
from repro.simkernel.core import Simulator
from repro.storage.device import Device, SATA_SSD
from repro.storage.localfs import LocalFileSystem
from repro.storage.pfs import ParallelFileSystem
from repro.storage.vfs import MountTable


pytestmark = [pytest.mark.policy, pytest.mark.hypothesis_heavy]
KIB = 1024
UPPER_MOUNTS = ("/mnt/ram", "/mnt/ssd")
PFS_MOUNT = "/mnt/pfs"

# -- strategies --------------------------------------------------------------

file_sizes = st.lists(
    st.integers(min_value=4 * KIB, max_value=3 * 1024 * KIB),
    min_size=1,
    max_size=10,
)
tier_capacities = st.lists(
    st.integers(min_value=256 * KIB, max_value=4 * 1024 * KIB),
    min_size=1,
    max_size=2,
)
policy_names = st.sampled_from(POLICY_NAMES)


@st.composite
def fault_events(draw):
    """A small schedule of fault events for one mount."""
    events = []
    if draw(st.booleans()):
        start = draw(st.floats(min_value=0.0, max_value=2.0))
        length = draw(st.floats(min_value=0.01, max_value=3.0))
        error = draw(st.sampled_from(["io", "nospace"]))
        events.append(
            TransientFaults(
                start=start,
                end=start + length,
                read_p=0.0 if error == "nospace" else draw(st.floats(min_value=0.0, max_value=1.0)),
                write_p=draw(st.floats(min_value=0.0, max_value=1.0)),
                error=error,
            )
        )
    if draw(st.booleans()):
        start = draw(st.floats(min_value=0.0, max_value=2.0))
        events.append(
            LatencySpike(
                start=start,
                end=start + draw(st.floats(min_value=0.01, max_value=2.0)),
                multiplier=draw(st.floats(min_value=1.0, max_value=8.0)),
            )
        )
    if draw(st.booleans()):
        at = draw(st.floats(min_value=0.0, max_value=2.0))
        recover = draw(st.one_of(st.none(), st.floats(min_value=0.01, max_value=3.0)))
        events.append(TierDown(at=at, recover_at=None if recover is None else at + recover))
    return tuple(events)


# -- harness -----------------------------------------------------------------


def build_stack(sizes, capacities, policy, events=(), seed=0, owners=None):
    """A fresh simulator + Monarch with ``policy`` over the upper tiers.

    ``owners`` optionally maps each file index to a job id; when given,
    the jobs are registered for fair-share arbitration and each tier
    gets an explicit quota (caps only bind on quota-carrying tiers).
    """
    sim = Simulator()
    pfs = ParallelFileSystem(sim)
    names = []
    jobs = sorted(set(owners)) if owners else []
    for i, size in enumerate(sizes):
        prefix = f"/jobs/{owners[i]}" if owners else "/dataset"
        path = f"{prefix}/f{i:03d}"
        pfs.add_file(path, size)
        names.append(path)
    locals_ = [
        LocalFileSystem(sim, Device(sim, SATA_SSD), capacity_bytes=cap)
        for cap in capacities
    ]
    mounts = MountTable()
    tier_mounts = list(UPPER_MOUNTS[: len(capacities)])
    plan = FaultPlan({tier_mounts[-1]: events} if events else {})
    injector = FaultInjector(sim, plan, np.random.default_rng(seed))
    for mount, fs in zip(tier_mounts, locals_):
        mounts.mount(mount, injector.wrap_fs(mount, fs))
    mounts.mount(PFS_MOUNT, pfs)
    config = MonarchConfig(
        tiers=tuple(
            TierSpec(mount_point=m, quota_bytes=cap if owners else None)
            for m, cap in zip(tier_mounts, capacities)
        )
        + (TierSpec(mount_point=PFS_MOUNT),),
        dataset_dir="/jobs" if owners else "/dataset",
        placement_threads=2,
        copy_chunk=256 * KIB,
        policy=policy,
    )
    monarch = Monarch(sim, config, mounts)
    if owners:
        for job in jobs:
            ctx = monarch.register_job(job, f"/jobs/{job}")
            proc = sim.spawn(monarch.initialize_job(ctx), name=f"init-{job}")
            sim.run(proc)
    else:
        proc = sim.spawn(monarch.initialize(), name="init")
        sim.run(proc)
    return sim, monarch, locals_, names


def run_epochs(sim, monarch, names, epochs=2, owners=None):
    """Read every file fully, in name order, ``epochs`` times; then drain."""

    def job():
        for _ in range(epochs):
            for i, name in enumerate(names):
                owner = owners[i] if owners else ""
                yield from monarch.read(name, 0, monarch.file_size(name), job=owner)
        yield from monarch.placement.drain()

    proc = sim.spawn(job(), name="reader")
    sim.run(proc)


def check_safety_invariants(monarch, locals_, names, sizes):
    """The terminal-state envelope no policy decision may break."""
    hierarchy = monarch.hierarchy
    for fs in locals_:
        assert fs.used_bytes <= fs.capacity_bytes
        assert fs.used_bytes == sum(fs.file_size(p) for p in fs.paths())
    assert len(monarch.metadata) == len(names)
    for name, size in zip(names, sizes):
        info = monarch.metadata.lookup(name)
        assert info.size == size
        if info.state is FileState.CACHED:
            driver = hierarchy[info.level]
            assert driver.has(name)
            assert driver.fs.file_size(driver.local_path(name)) == size
        else:
            assert info.state in (FileState.PFS_ONLY, FileState.UNPLACEABLE)
        assert hierarchy.pfs.has(name)
    assert all(v == 0 for v in monarch.placement._reserved.values())


def snapshot(sim, monarch, locals_):
    """Everything that must be identical across same-seed replays."""
    return {
        "now": sim.now,
        "stats": monarch.stats.counters(),
        "health": monarch.health.counters(),
        "placement": vars(monarch.placement.stats).copy(),
        "policy": monarch.placement.policy.stats.counters(),
        "used": [fs.used_bytes for fs in locals_],
        "states": {
            info.name: (info.state.name, info.level) for info in monarch.metadata.files()
        },
    }


# -- properties --------------------------------------------------------------


@settings(
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    sizes=file_sizes,
    capacities=tier_capacities,
    policy=policy_names,
    events=fault_events(),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_invariants_hold_for_every_policy_under_faults(
    sizes, capacities, policy, events, seed
):
    """No policy choice plus fault schedule may corrupt the envelope."""
    sim, monarch, locals_, names = build_stack(
        sizes, capacities, policy, events=events, seed=seed
    )
    run_epochs(sim, monarch, names)
    check_safety_invariants(monarch, locals_, names, sizes)


@settings(
    max_examples=30,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    sizes=st.lists(
        st.integers(min_value=4 * KIB, max_value=2 * 1024 * KIB),
        min_size=2,
        max_size=8,
    ),
    capacities=tier_capacities,
    policy=policy_names,
    data=st.data(),
)
def test_tenancy_caps_respected_for_every_policy(sizes, capacities, policy, data):
    """Admitted bytes never exceed any job's fair share on any tier."""
    owners = [
        data.draw(st.sampled_from(["a", "b"]), label=f"owner[{i}]")
        for i in range(len(sizes))
    ]
    if len(set(owners)) < 2:
        owners[0], owners[1] = "a", "b"
    sim, monarch, locals_, names = build_stack(
        sizes, capacities, policy, owners=owners
    )
    run_epochs(sim, monarch, names, owners=owners)
    arbiter = monarch.arbiter
    for job in ("a", "b"):
        for level, fs in enumerate(locals_):
            cap = arbiter.cap_bytes(job, fs.capacity_bytes)
            assert arbiter.admitted_bytes(job, level) <= cap
    check_safety_invariants(monarch, locals_, names, sizes)


@settings(
    max_examples=30,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    sizes=file_sizes,
    capacities=tier_capacities,
    policy=policy_names,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_no_policy_places_onto_tier_dead_from_birth(sizes, capacities, policy, seed):
    """A tier down from t=0 with no recovery never receives a byte."""
    events = (TierDown(at=0.0, recover_at=None),)
    sim, monarch, locals_, names = build_stack(
        sizes, capacities, policy, events=events, seed=seed
    )
    run_epochs(sim, monarch, names)
    dead = locals_[-1]  # the fault plan targets the last upper tier
    assert dead.used_bytes == 0
    dead_level = len(locals_) - 1
    for info in monarch.metadata.files():
        assert not (info.state is FileState.CACHED and info.level == dead_level)
    check_safety_invariants(monarch, locals_, names, sizes)


@settings(
    max_examples=30,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    sizes=st.lists(
        st.integers(min_value=4 * KIB, max_value=256 * KIB),
        min_size=1,
        max_size=8,
    ),
    policy=policy_names,
)
def test_no_eviction_without_capacity_pressure(sizes, policy):
    """When everything fits, no policy may churn the cache."""
    capacities = [sum(sizes) + KIB]
    sim, monarch, locals_, names = build_stack(sizes, capacities, policy)
    run_epochs(sim, monarch, names, epochs=3)
    assert monarch.placement.stats.evictions == 0
    assert monarch.placement.policy.stats.heat_evictions == 0
    for name in names:
        assert monarch.metadata.lookup(name).state is FileState.CACHED
    check_safety_invariants(monarch, locals_, names, sizes)


@settings(
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    sizes=file_sizes,
    capacities=tier_capacities,
    policy=policy_names,
    events=fault_events(),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_every_policy_replays_deterministically(
    sizes, capacities, policy, events, seed
):
    """Same seed + fault plan + policy give a bit-identical terminal state."""
    snaps = []
    for _ in range(2):
        sim, monarch, locals_, names = build_stack(
            sizes, capacities, policy, events=events, seed=seed
        )
        run_epochs(sim, monarch, names)
        snaps.append(snapshot(sim, monarch, locals_))
    assert snaps[0] == snaps[1]
