"""Property-based placement invariants (hypothesis).

Randomized workloads — file sizes, tier shapes and fault plans — against
four invariants the placement layer must never violate:

1. tier occupancy never exceeds the tier's quota,
2. no file is ever lost from the virtual namespace,
3. ``FileInfo``'s tier always names a tier that actually holds the bytes,
4. first-fit-descending order is preserved under no-eviction.

Everything is seeded: hypothesis is derandomized and the simulation
itself draws nothing outside the injected fault plan's substreams, so a
failing example reproduces bit-for-bit.
"""

from __future__ import annotations

import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import numpy as np

from repro.core.config import MonarchConfig, TierSpec
from repro.core.metadata import FileState
from repro.core.middleware import Monarch
from repro.faults import FaultInjector, FaultPlan, LatencySpike, TierDown, TransientFaults
from repro.simkernel.core import Simulator
from repro.storage.device import Device, SATA_SSD
from repro.storage.localfs import LocalFileSystem
from repro.storage.pfs import ParallelFileSystem
from repro.storage.vfs import MountTable


pytestmark = pytest.mark.hypothesis_heavy
KIB = 1024
UPPER_MOUNTS = ("/mnt/ram", "/mnt/ssd")
PFS_MOUNT = "/mnt/pfs"

# -- strategies --------------------------------------------------------------

file_sizes = st.lists(
    st.integers(min_value=4 * KIB, max_value=3 * 1024 * KIB),
    min_size=1,
    max_size=14,
)
tier_capacities = st.lists(
    st.integers(min_value=256 * KIB, max_value=4 * 1024 * KIB),
    min_size=1,
    max_size=2,
)


@st.composite
def fault_events(draw):
    """A small schedule of fault events for one mount."""
    events = []
    if draw(st.booleans()):
        start = draw(st.floats(min_value=0.0, max_value=2.0))
        length = draw(st.floats(min_value=0.01, max_value=3.0))
        error = draw(st.sampled_from(["io", "nospace"]))
        events.append(
            TransientFaults(
                start=start,
                end=start + length,
                read_p=0.0 if error == "nospace" else draw(st.floats(min_value=0.0, max_value=1.0)),
                write_p=draw(st.floats(min_value=0.0, max_value=1.0)),
                error=error,
            )
        )
    if draw(st.booleans()):
        start = draw(st.floats(min_value=0.0, max_value=2.0))
        events.append(
            LatencySpike(
                start=start,
                end=start + draw(st.floats(min_value=0.01, max_value=2.0)),
                multiplier=draw(st.floats(min_value=1.0, max_value=8.0)),
            )
        )
    if draw(st.booleans()):
        at = draw(st.floats(min_value=0.0, max_value=2.0))
        recover = draw(st.one_of(st.none(), st.floats(min_value=0.01, max_value=3.0)))
        events.append(TierDown(at=at, recover_at=None if recover is None else at + recover))
    return tuple(events)


# -- harness -----------------------------------------------------------------


def build_stack(sizes, capacities, events=(), seed=0):
    """A fresh simulator + Monarch over ``len(capacities)`` upper tiers."""
    sim = Simulator()
    pfs = ParallelFileSystem(sim)
    names = []
    for i, size in enumerate(sizes):
        path = f"/dataset/f{i:03d}"
        pfs.add_file(path, size)
        names.append(path)
    locals_ = [
        LocalFileSystem(sim, Device(sim, SATA_SSD), capacity_bytes=cap)
        for cap in capacities
    ]
    mounts = MountTable()
    tier_mounts = list(UPPER_MOUNTS[: len(capacities)])
    plan = FaultPlan({tier_mounts[-1]: events} if events else {})
    injector = FaultInjector(sim, plan, np.random.default_rng(seed))
    for mount, fs in zip(tier_mounts, locals_):
        mounts.mount(mount, injector.wrap_fs(mount, fs))
    mounts.mount(PFS_MOUNT, pfs)
    config = MonarchConfig(
        tiers=tuple(TierSpec(mount_point=m) for m in (*tier_mounts, PFS_MOUNT)),
        dataset_dir="/dataset",
        placement_threads=2,
        copy_chunk=256 * KIB,
    )
    monarch = Monarch(sim, config, mounts)
    proc = sim.spawn(monarch.initialize(), name="init")
    sim.run(proc)
    return sim, monarch, locals_, names


def run_epochs(sim, monarch, names, epochs=2):
    """Read every file fully, in name order, ``epochs`` times; then drain."""

    def job():
        for _ in range(epochs):
            for name in names:
                yield from monarch.read(name, 0, monarch.file_size(name))
        yield from monarch.placement.drain()

    proc = sim.spawn(job(), name="reader")
    sim.run(proc)


def check_safety_invariants(monarch, locals_, names, sizes):
    """The four invariants that must hold in any terminal placement state."""
    hierarchy = monarch.hierarchy
    # 1. Occupancy never exceeds the quota.
    for fs in locals_:
        assert fs.used_bytes <= fs.capacity_bytes
        # ... and the occupancy ledger matches the per-file ledger.
        assert fs.used_bytes == sum(fs.file_size(p) for p in fs.paths())
    # 2. No file is ever lost from the namespace, nor resized.
    assert len(monarch.metadata) == len(names)
    for name, size in zip(names, sizes):
        info = monarch.metadata.lookup(name)
        assert info.size == size
        # 3. The recorded tier actually holds the bytes.
        if info.state is FileState.CACHED:
            driver = hierarchy[info.level]
            assert driver.has(name)
            assert driver.fs.file_size(driver.local_path(name)) == size
        else:
            assert info.state in (FileState.PFS_ONLY, FileState.UNPLACEABLE)
        assert hierarchy.pfs.has(name)  # the PFS never loses the source copy
    # After a full drain nothing may still hold a reservation.
    assert all(v == 0 for v in monarch.placement._reserved.values())


def snapshot(sim, monarch, locals_):
    """Everything that must be identical across same-seed replays."""
    return {
        "now": sim.now,
        "stats": monarch.stats.counters(),
        "health": monarch.health.counters(),
        "placement": vars(monarch.placement.stats).copy(),
        "used": [fs.used_bytes for fs in locals_],
        "states": {
            info.name: (info.state.name, info.level) for info in monarch.metadata.files()
        },
    }


# -- properties --------------------------------------------------------------


@settings(
    max_examples=80,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(sizes=file_sizes, capacities=tier_capacities)
def test_fault_free_placement_is_first_fit_descending(sizes, capacities):
    """Without faults the terminal state is exactly first-fit in read order."""
    sim, monarch, locals_, names = build_stack(sizes, capacities)
    run_epochs(sim, monarch, names)
    # Reservations happen inline at read completion, and the reads are
    # strictly sequential — so placement decisions replay first-fit over
    # the read order against the tier quotas.
    free = [fs.capacity_bytes for fs in locals_]
    for name, size in zip(names, sizes):
        expect_level = None
        for level, room in enumerate(free):
            if size <= room:
                expect_level = level
                free[level] -= size
                break
        info = monarch.metadata.lookup(name)
        if expect_level is None:
            assert info.state is FileState.UNPLACEABLE
        else:
            assert info.state is FileState.CACHED
            assert info.level == expect_level
    check_safety_invariants(monarch, locals_, names, sizes)


@settings(
    max_examples=80,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    sizes=file_sizes,
    capacities=tier_capacities,
    events=fault_events(),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_invariants_hold_under_arbitrary_fault_plans(sizes, capacities, events, seed):
    """No fault schedule may corrupt occupancy, the namespace or tier truth."""
    sim, monarch, locals_, names = build_stack(sizes, capacities, events=events, seed=seed)
    run_epochs(sim, monarch, names)
    check_safety_invariants(monarch, locals_, names, sizes)


@settings(
    max_examples=60,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    sizes=file_sizes,
    capacities=tier_capacities,
    events=fault_events(),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_faulted_runs_replay_deterministically(sizes, capacities, events, seed):
    """The same seed and fault plan give a bit-identical terminal state."""
    snaps = []
    for _ in range(2):
        sim, monarch, locals_, names = build_stack(
            sizes, capacities, events=events, seed=seed
        )
        run_epochs(sim, monarch, names)
        snaps.append(snapshot(sim, monarch, locals_))
    assert snaps[0] == snaps[1]
