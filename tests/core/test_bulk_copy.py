"""Placement bulk copies: bit-exact vs chunked mode, fewer kernel events.

``bulk_io`` only changes how the background copy's chunk train is
*executed* (one analytic hold vs one event per chunk); every simulated
instant, counter and placement decision must be identical either way.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MonarchConfig, TierSpec
from repro.core.middleware import Monarch
from repro.simkernel.core import Simulator
from repro.storage.device import Device, SATA_SSD
from repro.storage.localfs import LocalFileSystem
from repro.storage.pfs import ParallelFileSystem
from repro.storage.vfs import MountTable

MIB = 1 << 20
SHARDS = ("/dataset/shard-0", "/dataset/shard-1", "/dataset/shard-2")


def _build(bulk_io: bool) -> tuple[Simulator, Monarch, LocalFileSystem, ParallelFileSystem]:
    sim = Simulator()
    ssd = Device(sim, SATA_SSD, rng=np.random.default_rng(3))
    local = LocalFileSystem(sim, ssd, capacity_bytes=64 * MIB)
    pfs = ParallelFileSystem(sim, rng=np.random.default_rng(4))
    for i, size in enumerate((3 * MIB + 4096, 2 * MIB + 123, MIB // 2)):
        pfs.add_file(f"/dataset/shard-{i}", size)
    mounts = MountTable()
    mounts.mount("/mnt/ssd", local)
    mounts.mount("/mnt/pfs", pfs)
    cfg = MonarchConfig(
        tiers=(TierSpec("/mnt/ssd"), TierSpec("/mnt/pfs")),
        dataset_dir="/dataset",
        placement_threads=2,
        copy_chunk=256 * 1024,
        bulk_io=bulk_io,
    )
    return sim, Monarch(sim, cfg, mounts, rng=np.random.default_rng(11)), local, pfs


def _drive(sim: Simulator, monarch: Monarch, names) -> float:
    def job():
        yield from monarch.initialize()
        for name in names:
            yield from monarch.read(name, 0, 4096)
        yield from monarch.placement.drain()

    sim.run(sim.spawn(job(), name="driver"))
    return sim.now


def test_uncontended_copy_bit_exact_and_fewer_events(monkeypatch):
    """A lone background copy: bulk mode must finish at the identical
    instant while scheduling strictly fewer kernel events."""
    import repro.simkernel.core as core

    real_push = core.heapq.heappush
    results = {}
    for bulk_io in (True, False):
        sim, monarch, local, pfs = _build(bulk_io)
        pushes = 0

        def counting(heap, item, _real=real_push):
            nonlocal pushes
            pushes += 1
            _real(heap, item)

        monkeypatch.setattr(core.heapq, "heappush", counting)
        try:
            end = _drive(sim, monarch, SHARDS[:1])
        finally:
            monkeypatch.setattr(core.heapq, "heappush", real_push)
        results[bulk_io] = (end, pushes, local.stats.snapshot(), pfs.stats.snapshot())

    assert results[True][0] == results[False][0]
    assert results[True][2] == results[False][2]
    assert results[True][3] == results[False][3]
    assert results[True][1] < results[False][1]


def test_contended_copies_fall_back_bit_exact():
    """Concurrent copies sharing the one SATA-SSD channel: the bulk path
    must degrade to exactly the chunked interleaving (and everything the
    placement layer records must agree)."""
    ends = {}
    stats = {}
    for bulk_io in (True, False):
        sim, monarch, local, pfs = _build(bulk_io)
        ends[bulk_io] = _drive(sim, monarch, SHARDS)
        p = monarch.placement.stats
        stats[bulk_io] = (
            local.stats.snapshot(),
            pfs.stats.snapshot(),
            p.completed,
            p.bytes_copied,
            p.pfs_bytes_fetched,
        )
    assert ends[True] == ends[False]
    assert stats[True] == stats[False]
