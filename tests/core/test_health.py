"""TierHealthTracker: quarantine, probing and re-admission rules."""

from __future__ import annotations

import pytest

from repro.core.health import TierHealthTracker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def tracker(clock: FakeClock) -> TierHealthTracker:
    return TierHealthTracker(
        n_levels=2, pfs_level=1, clock=clock, quarantine_threshold=3, probe_interval_s=1.0
    )


class TestValidation:
    def test_rejects_bad_shapes(self, clock):
        with pytest.raises(ValueError):
            TierHealthTracker(0, 0, clock)
        with pytest.raises(ValueError):
            TierHealthTracker(2, 2, clock)
        with pytest.raises(ValueError):
            TierHealthTracker(2, 1, clock, quarantine_threshold=0)
        with pytest.raises(ValueError):
            TierHealthTracker(2, 1, clock, probe_interval_s=0.0)


class TestQuarantine:
    def test_k_consecutive_faults_trip(self, tracker):
        assert not tracker.dirty
        tracker.record_fault(0)
        tracker.record_fault(0)
        assert tracker.ok(0)
        tracker.record_fault(0)
        assert not tracker.ok(0)
        assert tracker.dirty
        assert tracker.quarantines == 1
        assert tracker.quarantined_levels() == [0]
        assert tracker.any_quarantined

    def test_success_resets_the_streak(self, tracker):
        tracker.record_fault(0)
        tracker.record_fault(0)
        tracker.record_success(0)
        tracker.record_fault(0)
        tracker.record_fault(0)
        assert tracker.ok(0)  # streak restarted: 2 < 3
        assert tracker.consecutive_faults(0) == 2

    def test_pfs_level_never_quarantined(self, tracker):
        for _ in range(10):
            tracker.record_fault(1)
        assert tracker.ok(1)
        assert tracker.faults[1] == 10
        assert tracker.quarantines == 0


class TestProbing:
    def _quarantine(self, tracker):
        for _ in range(3):
            tracker.record_fault(0)

    def test_no_attempts_until_cooldown(self, tracker, clock):
        self._quarantine(tracker)
        assert not tracker.should_attempt(0)
        clock.now = 0.5
        assert not tracker.should_attempt(0)
        clock.now = 1.0
        assert tracker.should_attempt(0)
        assert tracker.probes == 1

    def test_failed_probe_pushes_next_window(self, tracker, clock):
        self._quarantine(tracker)
        clock.now = 1.0
        assert tracker.should_attempt(0)
        tracker.record_fault(0)  # the probe failed
        clock.now = 1.5
        assert not tracker.should_attempt(0)
        clock.now = 2.0
        assert tracker.should_attempt(0)

    def test_successful_probe_readmits(self, tracker, clock):
        self._quarantine(tracker)
        clock.now = 1.0
        assert tracker.should_attempt(0)
        tracker.record_success(0)
        assert tracker.ok(0)
        assert tracker.readmissions == 1
        assert not tracker.any_quarantined

    def test_non_probe_success_never_readmits(self, tracker, clock):
        self._quarantine(tracker)
        # e.g. a background copy that started before the failure.
        tracker.record_success(0, readmit=False)
        assert not tracker.ok(0)
        assert tracker.readmissions == 0

    def test_placement_never_probes(self, tracker, clock):
        self._quarantine(tracker)
        clock.now = 10.0
        assert tracker.should_attempt(0)  # reads may probe
        assert not tracker.is_placeable(0)  # copies stay away regardless


class TestCounters:
    def test_counter_view(self, tracker):
        tracker.record_fault(0)
        tracker.record_fault(1)
        counters = tracker.counters()
        assert counters["health.faults.l0"] == 1
        assert counters["health.faults.l1"] == 1
        assert counters["health.quarantines"] == 0
        assert set(counters) == {
            "health.quarantines",
            "health.readmissions",
            "health.probes",
            "health.faults.l0",
            "health.faults.l1",
        }


class TestRecorderEvents:
    def test_quarantine_probe_readmit_lifecycle_emitted(self, clock):
        from repro.telemetry.events import EventRecorder

        rec = EventRecorder(clock)
        tracker = TierHealthTracker(
            n_levels=2, pfs_level=1, clock=clock,
            quarantine_threshold=3, probe_interval_s=1.0, recorder=rec,
        )
        for _ in range(3):
            tracker.record_fault(0)
        clock.now = 1.0
        assert tracker.should_attempt(0)
        tracker.record_success(0)
        kinds = rec.kind_counts()
        assert kinds == {"tier.quarantined": 1, "tier.probe": 1,
                         "tier.readmitted": 1}
        quarantined = rec.filtered("tier.quarantined")[0]
        assert quarantined.subject == "l0"
        assert quarantined.detail["consecutive"] == 3
        assert [e.kind for e in rec.events] == [
            "tier.quarantined", "tier.probe", "tier.readmitted"
        ]

    def test_default_recorder_emits_nothing(self, tracker):
        from repro.telemetry.events import NULL_RECORDER

        assert tracker.recorder is NULL_RECORDER
        for _ in range(3):
            tracker.record_fault(0)  # must not raise without a recorder
        assert tracker.quarantines == 1
