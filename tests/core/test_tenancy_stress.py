"""Concurrency stress: many jobs racing the shared placement handler.

Eight jobs hammer one nearly-full top tier through a two-worker
placement pool.  The run must terminate (the simulator raises
``DeadlockError`` if anything wedges), no file may be scheduled for
placement twice concurrently or end up resident on two tiers, and the
arbiter's admitted ledger must re-sum exactly to the bytes actually
resident per job — lost or doubled ``FileInfo`` updates would break
either the event stream's pairing or the ledger cross-check.
"""

from __future__ import annotations

from collections import Counter

from repro.core.config import MonarchConfig, TierSpec
from repro.core.metadata import FileState
from repro.core.middleware import Monarch
from repro.simkernel.core import Simulator
from repro.storage.device import Device, SATA_SSD
from repro.storage.localfs import LocalFileSystem
from repro.storage.pfs import ParallelFileSystem
from repro.storage.vfs import MountTable
from repro.telemetry.events import EventRecorder

KIB = 1024
N_JOBS = 8
#: a heavy job's file sizes; the 160 KiB sum is 2.5x its 64 KiB cap, so
#: every heavy job places a prefix of its set and bounces the rest off
#: its fair-share cap while racing six siblings for the shared pool.
HEAVY_SIZES = (32 * KIB, 16 * KIB, 16 * KIB, 8 * KIB, 64 * KIB, 24 * KIB)
#: job0 stays far under its share — its unused slice keeps the tier's
#: free-space check green, so siblings' refusals are true cap rejections
LIGHT_SIZES = (8 * KIB,)
#: equal shares over 512 KiB -> a 64 KiB admission cap per job
TOP_TIER_BYTES = N_JOBS * 64 * KIB


def build_stress_stack():
    sim = Simulator()
    recorder = EventRecorder(lambda: sim.now)
    pfs = ParallelFileSystem(sim)
    jobs = [f"job{i}" for i in range(N_JOBS)]
    names: dict[str, list[str]] = {}
    for j, job in enumerate(jobs):
        names[job] = []
        sizes = LIGHT_SIZES if j == 0 else HEAVY_SIZES
        for i, size in enumerate(sizes):
            path = f"/dataset/{job}/f{i:03d}"
            pfs.add_file(path, size)
            names[job].append(path)
    local = LocalFileSystem(
        sim, Device(sim, SATA_SSD), capacity_bytes=TOP_TIER_BYTES
    )
    mounts = MountTable()
    mounts.mount("/mnt/ssd", local)
    mounts.mount("/mnt/pfs", pfs)
    config = MonarchConfig(
        tiers=(TierSpec(mount_point="/mnt/ssd"), TierSpec(mount_point="/mnt/pfs")),
        dataset_dir="/dataset",
        placement_threads=2,
        copy_chunk=16 * KIB,
    )
    monarch = Monarch(sim, config, mounts, recorder=recorder)
    contexts = {
        job: monarch.register_job(job, f"/dataset/{job}") for job in jobs
    }
    for job in jobs:
        sim.run(sim.spawn(contexts[job].initialize(), name=f"init-{job}"))
    return sim, monarch, local, jobs, names, recorder


def test_stress_racing_jobs_on_a_nearly_full_tier():
    sim, monarch, local, jobs, names, recorder = build_stress_stack()

    def reader(job):
        # Two epochs over the job's files, immediately re-reading each
        # file once — maximal pressure on the in-flight/resident states.
        for _ in range(2):
            for name in names[job]:
                size = monarch.file_size(name)
                yield from monarch.read(name, 0, size, job=job)
                yield from monarch.read(name, 0, size, job=job)

    procs = [sim.spawn(reader(job), name=f"reader-{job}") for job in jobs]
    # Terminates or raises DeadlockError — the no-deadlock assertion.
    sim.run(sim.all_of(procs))
    sim.run(sim.spawn(monarch.placement.drain(), name="drain"))

    # -- event-stream pairing: no double placement -------------------------
    in_flight: set[str] = set()
    placed_at: Counter[str] = Counter()
    for ev in recorder.events:
        if ev.kind == "copy.scheduled":
            assert ev.subject not in in_flight, (
                f"{ev.subject} scheduled twice concurrently at t={ev.t}"
            )
            in_flight.add(ev.subject)
        elif ev.kind in ("copy.completed", "copy.gave_up", "copy.abandoned"):
            assert ev.subject in in_flight, (ev.kind, ev.subject)
            in_flight.discard(ev.subject)
            if ev.kind == "copy.completed":
                placed_at[ev.subject] += 1
    assert not in_flight, f"copies never finished: {sorted(in_flight)}"
    # A file placed more than once must have been evicted/abandoned in
    # between; with eviction off, completion is at most once per file.
    assert all(n == 1 for n in placed_at.values()), placed_at

    # -- terminal FileInfo consistency ------------------------------------
    assert local.used_bytes <= local.capacity_bytes
    resident_by_job: Counter[str] = Counter()
    for info in monarch.metadata.files():
        if info.state is FileState.CACHED:
            assert info.level == 0
            driver = monarch.hierarchy[0]
            assert driver.has(info.name), info.name
            resident_by_job[info.owner] += info.size
        else:
            assert info.state in (FileState.PFS_ONLY, FileState.UNPLACEABLE)
    assert all(v == 0 for v in monarch.placement._reserved.values())

    # -- no lost ledger updates -------------------------------------------
    arbiter = monarch.arbiter
    assert arbiter is not None
    for job in jobs:
        assert arbiter.admitted_bytes(job, 0) == resident_by_job.get(job, 0), job
        cap = arbiter.cap_bytes(job, local.capacity_bytes)
        assert resident_by_job.get(job, 0) <= cap, job
    # The tier was genuinely contended: the caps turned admissions away.
    assert arbiter.cap_rejections > 0
    # Every event the stream recorded carries its job tag.
    copy_events = [e for e in recorder.events if e.kind == "copy.scheduled"]
    assert copy_events and all(e.detail.get("job") for e in copy_events)
