"""Property suite: fused monarch reads ≡ generator reads, adversarially.

The fused continuation protocol on ``MonarchReader`` inlines resident
fast-tier hits and replays everything else through the legacy generator
(:class:`repro.core.middleware._LegacyDrive`).  These properties attack
the equivalence where the routing is hardest: randomized fault plans
(tier outages with and without recovery, transient read/write fault
windows on any mount — driving quarantine, re-admission, fallback
routing and retry exhaustion) and tenancy-capped multi-job mixes
(arbiter ledgers, per-job stats, namespace enforcement).

For every drawn scenario, a fused run and a
``REPRO_DISABLE_FUSED_PIPELINE=1`` run must agree on *everything*
observable: the un-scaled run record repr (epoch times, utilizations,
op counts, down to float repr) and the middleware's full published
metrics registry — tier stats, placement ledger, health counters,
arbiter ledger, per-job stats.

Seeded and derandomized like the placement suites, so a failing example
reproduces bit-for-bit.
"""

from __future__ import annotations

import os

import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.imagenet import IMAGENET_100G, scaled
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.multi_scenarios import JobPlan, run_multi_once
from repro.experiments.runner import run_once
from repro.experiments.scenarios import build_run
from repro.faults import FaultPlan, TierDown, TransientFaults

pytestmark = [pytest.mark.hypothesis_heavy]

SCALE = 1 / 4096  # ~220 samples; one run completes in well under a second
SSD_MOUNT = "/mnt/ssd"
PFS_MOUNT = "/mnt/pfs"
TINY = scaled(IMAGENET_100G, 0.1)
_GATE = "REPRO_DISABLE_FUSED_PIPELINE"


# -- strategies --------------------------------------------------------------

@st.composite
def fault_events(draw):
    """A small schedule of faults for one mount: outages and windows."""
    events = []
    if draw(st.booleans()):
        at = draw(st.floats(min_value=0.0, max_value=0.3))
        recover = draw(
            st.one_of(st.none(), st.floats(min_value=0.05, max_value=0.4))
        )
        events.append(
            TierDown(at=at, recover_at=None if recover is None else at + recover)
        )
    n_windows = draw(st.integers(min_value=0, max_value=2))
    for _ in range(n_windows):
        start = draw(st.floats(min_value=0.0, max_value=0.4))
        length = draw(st.floats(min_value=0.01, max_value=0.3))
        events.append(
            TransientFaults(
                start=start,
                end=start + length,
                read_p=draw(st.floats(min_value=0.0, max_value=0.9)),
                write_p=draw(st.floats(min_value=0.0, max_value=0.9)),
            )
        )
    return tuple(events)


@st.composite
def fault_plans(draw):
    """A plan over the monarch mounts (possibly empty on either)."""
    return FaultPlan({
        SSD_MOUNT: draw(fault_events()),
        PFS_MOUNT: draw(fault_events()),
    })


# -- helpers -----------------------------------------------------------------

def _with_gate(value: str | None, fn):
    """Run ``fn`` with the fused gate set (or cleared) and restored after."""
    prev = os.environ.pop(_GATE, None)
    if value is not None:
        os.environ[_GATE] = value
    try:
        return fn()
    finally:
        os.environ.pop(_GATE, None)
        if prev is not None:
            os.environ[_GATE] = prev


def _monarch_observables(fault_plan, seed):
    """(outcome repr, published counters) of one faulted monarch run.

    Some drawn plans are fatal by design (a permanent PFS outage kills
    the training job in *both* modes); crash parity — same exception,
    same message, same sim time — is part of the equivalence property,
    so a crash becomes an outcome string instead of a test error.
    """
    handle = build_run(
        setup="monarch",
        model_name="lenet",
        dataset=IMAGENET_100G,
        calib=DEFAULT_CALIBRATION,
        scale=SCALE,
        seed=seed,
        fault_plan=fault_plan,
    )
    try:
        outcome = repr(handle.execute())
    except Exception as err:  # noqa: BLE001 - crash parity is the property
        outcome = f"raised {type(err).__name__}: {err} at t={handle.sim.now!r}"
    assert handle.monarch is not None
    counters = dict(handle.monarch.publish_metrics().counters)
    return outcome, counters


# -- properties --------------------------------------------------------------

@settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=2**16))
def test_faulted_monarch_fused_matches_generator(plan, seed):
    """Records, tier/health stats and placement ledgers are identical
    under arbitrary outage + transient-fault schedules."""
    fused_result, fused_counters = _with_gate(
        None, lambda: _monarch_observables(plan, seed)
    )
    legacy_result, legacy_counters = _with_gate(
        "1", lambda: _monarch_observables(plan, seed)
    )
    assert fused_result == legacy_result
    assert fused_counters == legacy_counters


@settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    share_a=st.floats(min_value=0.1, max_value=0.9),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_tenancy_capped_fused_matches_generator(share_a, seed):
    """Multi-job runs (tenancy-enforced reads, fair-share arbiter) agree:
    every fused read in a job namespace replays the generator, so the
    arbiter ledger and per-job stats can't drift by a single byte."""
    plans = [
        JobPlan("a", "lenet", TINY, share=share_a),
        JobPlan("b", "lenet", TINY, share=1.0 - share_a),
    ]
    fused = _with_gate(
        None, lambda: repr(run_multi_once(plans, scale=SCALE, seed=seed, report=True))
    )
    legacy = _with_gate(
        "1", lambda: repr(run_multi_once(plans, scale=SCALE, seed=seed, report=True))
    )
    assert fused == legacy


@settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_quarantine_readmit_cycle_fused_matches_generator(seed):
    """The targeted worst case: an SSD outage mid-epoch-1 with recovery —
    quarantine, fallback routing, probe reads and re-admission all happen
    while fused FSMs are live."""
    plan = FaultPlan({
        SSD_MOUNT: (
            TierDown(at=0.03, recover_at=0.12),
            TransientFaults(start=0.2, end=0.3, read_p=0.5),
        ),
    })
    fused_result, fused_counters = _with_gate(
        None, lambda: _monarch_observables(plan, seed)
    )
    legacy_result, legacy_counters = _with_gate(
        "1", lambda: _monarch_observables(plan, seed)
    )
    assert fused_result == legacy_result
    assert fused_counters == legacy_counters


def test_fused_records_match_via_run_once():
    """End-to-end un-scaled records (the figure inputs) agree too —
    single example, no hypothesis, as a cheap tier-1 smoke anchor."""
    plan = FaultPlan({
        SSD_MOUNT: (
            TierDown(at=0.05, recover_at=0.3),
            TransientFaults(start=0.4, end=0.6, read_p=0.4, write_p=0.4),
        ),
    })
    fused = _with_gate(None, lambda: repr(run_once(
        "monarch", "lenet", IMAGENET_100G, scale=SCALE, seed=11, fault_plan=plan
    )))
    legacy = _with_gate("1", lambda: repr(run_once(
        "monarch", "lenet", IMAGENET_100G, scale=SCALE, seed=11, fault_plan=plan
    )))
    assert fused == legacy
