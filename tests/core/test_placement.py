"""Unit tests for the placement handler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MonarchConfig, TierSpec
from repro.core.metadata import FileState
from repro.core.middleware import Monarch
from repro.core.placement import (
    FifoEviction,
    LruEviction,
    NoEviction,
    RandomEviction,
    make_eviction_policy,
)
from tests.conftest import drive


def make_monarch(sim, mounts, quota=None, **overrides):
    cfg = MonarchConfig(
        tiers=(
            TierSpec(mount_point="/mnt/ssd", quota_bytes=quota),
            TierSpec(mount_point="/mnt/pfs"),
        ),
        dataset_dir="/dataset",
        placement_threads=overrides.pop("placement_threads", 2),
        copy_chunk=overrides.pop("copy_chunk", 256 * 1024),
        **overrides,
    )
    m = Monarch(sim, cfg, mounts, rng=np.random.default_rng(0))
    drive(sim, m.initialize())
    return m


def read_all_and_settle(sim, monarch, paths, chunk=1024):
    def job():
        for p in paths:
            yield from monarch.read(p, 0, chunk)
        yield sim.timeout(120.0)

    drive(sim, job())


class TestFirstFitPlacement:
    def test_all_cached_when_space(self, sim, mounts, dataset_paths, tiny_manifest):
        m = make_monarch(sim, mounts)
        read_all_and_settle(sim, m, dataset_paths)
        assert m.placement.stats.completed == tiny_manifest.n_shards
        assert m.placement.stats.unplaceable == 0

    def test_unplaceable_when_tier_full(self, sim, mounts, dataset_paths, tiny_manifest):
        shard = tiny_manifest.shards[0].size_bytes
        quota = 3 * shard + shard // 2  # room for exactly 3 shards
        m = make_monarch(sim, mounts, quota=quota)
        read_all_and_settle(sim, m, dataset_paths)
        assert m.placement.stats.completed == 3
        assert m.placement.stats.unplaceable == tiny_manifest.n_shards - 3
        states = [m.metadata.lookup(p).state for p in dataset_paths]
        assert states.count(FileState.CACHED) == 3
        assert states.count(FileState.UNPLACEABLE) == tiny_manifest.n_shards - 3

    def test_no_eviction_by_default(self, sim, mounts, dataset_paths, tiny_manifest):
        shard = tiny_manifest.shards[0].size_bytes
        m = make_monarch(sim, mounts, quota=2 * shard + 1)
        read_all_and_settle(sim, m, dataset_paths)
        assert m.placement.stats.evictions == 0

    def test_occupancy_never_exceeds_quota(self, sim, mounts, dataset_paths,
                                           tiny_manifest, local_fs):
        shard = tiny_manifest.shards[0].size_bytes
        quota = 4 * shard + 17
        m = make_monarch(sim, mounts, quota=quota)
        read_all_and_settle(sim, m, dataset_paths)
        assert local_fs.used_bytes <= quota

    def test_reservation_prevents_overcommit(self, sim, mounts, dataset_paths,
                                             tiny_manifest, local_fs):
        """Many concurrent first-touches must not oversubscribe the tier."""
        shard = tiny_manifest.shards[0].size_bytes
        quota = 2 * shard + 100
        m = make_monarch(sim, mounts, quota=quota, placement_threads=8)

        def job():
            # touch everything in one instant: all placements race
            for p in dataset_paths:
                yield from m.read(p, 0, 64)
            yield sim.timeout(120.0)

        drive(sim, job())
        assert local_fs.used_bytes <= quota
        assert m.placement.stats.completed == 2

    def test_second_read_while_copying_stays_on_pfs(self, sim, mounts,
                                                    dataset_paths, pfs):
        m = make_monarch(sim, mounts)

        def job():
            yield from m.read(dataset_paths[0], 0, 1024)
            # immediately read again: the copy can't have finished
            yield from m.read(dataset_paths[0], 1024, 1024)
            return m.stats.reads_per_level.get(1, 0)

        pfs_reads = drive(sim, job())
        assert pfs_reads == 2

    def test_placement_stats_bytes(self, sim, mounts, dataset_paths, tiny_manifest):
        m = make_monarch(sim, mounts)
        read_all_and_settle(sim, m, dataset_paths)
        assert m.placement.stats.bytes_copied == tiny_manifest.total_bytes
        assert m.placement.stats.pfs_bytes_fetched == tiny_manifest.total_bytes

    def test_queue_drains(self, sim, mounts, dataset_paths):
        m = make_monarch(sim, mounts)
        read_all_and_settle(sim, m, dataset_paths)
        assert m.placement.queue_depth == 0


class TestWriteThroughMode:
    """ABL-FETCH: full_fetch_on_partial_read=False falls back to write-through."""

    def test_file_cached_only_after_all_chunks_read(self, sim, mounts,
                                                    dataset_paths, tiny_manifest):
        m = make_monarch(sim, mounts, full_fetch_on_partial_read=False)
        size = tiny_manifest.shards[0].size_bytes
        path = dataset_paths[0]

        def job():
            pos = 0
            while pos < size:
                yield from m.read(path, pos, 16 * 1024)
                pos += 16 * 1024
            yield sim.timeout(60.0)

        drive(sim, job())
        info = m.metadata.lookup(path)
        assert info.state is FileState.CACHED

    def test_partial_reads_keep_hitting_pfs(self, sim, mounts, dataset_paths):
        m = make_monarch(sim, mounts, full_fetch_on_partial_read=False)
        path = dataset_paths[0]

        def job():
            yield from m.read(path, 0, 1024)
            yield sim.timeout(30.0)
            # file not fully read yet -> still served from the PFS
            yield from m.read(path, 1024, 1024)
            return m.stats.reads_per_level.get(1, 0)

        assert drive(sim, job()) == 2

    def test_full_file_request_still_direct_copies(self, sim, mounts,
                                                   dataset_paths, tiny_manifest):
        m = make_monarch(sim, mounts, full_fetch_on_partial_read=False)
        size = tiny_manifest.shards[0].size_bytes

        def job():
            yield from m.read(dataset_paths[0], 0, size)
            yield sim.timeout(60.0)

        drive(sim, job())
        assert m.metadata.lookup(dataset_paths[0]).state is FileState.CACHED


class TestEvictionPolicies:
    def test_factory(self):
        assert isinstance(make_eviction_policy("none"), NoEviction)
        assert isinstance(make_eviction_policy("lru"), LruEviction)
        assert isinstance(make_eviction_policy("fifo"), FifoEviction)
        assert isinstance(
            make_eviction_policy("random", np.random.default_rng(0)), RandomEviction
        )
        with pytest.raises(ValueError):
            make_eviction_policy("random")  # needs an RNG
        with pytest.raises(ValueError):
            make_eviction_policy("mystery")

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    def test_eviction_keeps_placing_when_full(self, sim, mounts, dataset_paths,
                                              tiny_manifest, policy, local_fs):
        shard = tiny_manifest.shards[0].size_bytes
        quota = 3 * shard + shard // 2
        m = make_monarch(sim, mounts, quota=quota, eviction=policy)

        def job():
            for p in dataset_paths:
                yield from m.read(p, 0, 1024)
                yield sim.timeout(5.0)  # let each copy finish before the next
            yield sim.timeout(60.0)

        drive(sim, job())
        assert m.placement.stats.evictions > 0
        assert local_fs.used_bytes <= quota
        # exactly 3 files resident at the end
        cached = [p for p in dataset_paths
                  if m.metadata.lookup(p).state is FileState.CACHED]
        assert len(cached) == 3

    def test_fifo_evicts_oldest_placement(self, sim, mounts, dataset_paths,
                                          tiny_manifest):
        shard = tiny_manifest.shards[0].size_bytes
        m = make_monarch(sim, mounts, quota=2 * shard + 10, eviction="fifo")

        def job():
            for p in dataset_paths[:3]:
                yield from m.read(p, 0, 1024)
                yield sim.timeout(10.0)
            yield sim.timeout(30.0)

        drive(sim, job())
        # the first-placed file was evicted to make room for the third
        assert m.metadata.lookup(dataset_paths[0]).state is FileState.PFS_ONLY
        assert m.metadata.lookup(dataset_paths[1]).state is FileState.CACHED
        assert m.metadata.lookup(dataset_paths[2]).state is FileState.CACHED


class TestRecorderEvents:
    def test_unplaceable_emitted_when_tier_full(self, sim, mounts, dataset_paths,
                                                tiny_manifest):
        from repro.telemetry.events import EventRecorder

        rec = EventRecorder(lambda: sim.now)
        shard = tiny_manifest.shards[0].size_bytes
        cfg = MonarchConfig(
            tiers=(
                TierSpec(mount_point="/mnt/ssd", quota_bytes=3 * shard + 10),
                TierSpec(mount_point="/mnt/pfs"),
            ),
            dataset_dir="/dataset",
            placement_threads=2,
            copy_chunk=256 * 1024,
        )
        m = Monarch(sim, cfg, mounts, rng=np.random.default_rng(0), recorder=rec)
        drive(sim, m.initialize())
        read_all_and_settle(sim, m, dataset_paths)
        kinds = rec.kind_counts()
        stats = m.placement.stats
        assert stats.unplaceable > 0
        assert kinds["copy.unplaceable"] == stats.unplaceable
        assert kinds["copy.scheduled"] == stats.scheduled
        assert kinds["copy.completed"] == stats.completed
        assert kinds["copy.started"] == stats.scheduled

    def test_eviction_emitted_per_victim(self, sim, mounts, dataset_paths,
                                         tiny_manifest):
        from repro.telemetry.events import EventRecorder

        rec = EventRecorder(lambda: sim.now)
        shard = tiny_manifest.shards[0].size_bytes
        cfg = MonarchConfig(
            tiers=(
                TierSpec(mount_point="/mnt/ssd", quota_bytes=2 * shard + 10),
                TierSpec(mount_point="/mnt/pfs"),
            ),
            dataset_dir="/dataset",
            placement_threads=2,
            copy_chunk=256 * 1024,
            eviction="fifo",
        )
        m = Monarch(sim, cfg, mounts, rng=np.random.default_rng(0), recorder=rec)
        drive(sim, m.initialize())
        read_all_and_settle(sim, m, dataset_paths)
        kinds = rec.kind_counts()
        stats = m.placement.stats
        assert stats.evictions > 0
        assert kinds["eviction"] == stats.evictions
        ev = rec.filtered("eviction")[0]
        assert ev.detail["level"] == 0
        assert ev.detail["nbytes"] > 0

    def test_deferred_emitted_when_target_quarantined(self, sim, mounts,
                                                      dataset_paths):
        from repro.telemetry.events import EventRecorder

        rec = EventRecorder(lambda: sim.now)
        cfg = MonarchConfig(
            tiers=(TierSpec(mount_point="/mnt/ssd"), TierSpec(mount_point="/mnt/pfs")),
            dataset_dir="/dataset",
            placement_threads=2,
            copy_chunk=256 * 1024,
        )
        m = Monarch(sim, cfg, mounts, rng=np.random.default_rng(0), recorder=rec)
        drive(sim, m.initialize())
        for _ in range(3):
            m.health.record_fault(0)  # quarantine the fast tier
        read_all_and_settle(sim, m, dataset_paths[:2])
        stats = m.placement.stats
        assert stats.deferred > 0
        assert rec.kind_counts()["copy.deferred"] == stats.deferred
        assert rec.filtered("copy.deferred")[0].subject == dataset_paths[0]
