"""Unit tests for the metadata container."""

from __future__ import annotations

import pytest

from repro.core.driver import PFSDriver
from repro.core.metadata import FileInfo, FileState, MetadataContainer
from tests.conftest import drive


class TestNamespace:
    def test_add_and_lookup(self):
        mc = MetadataContainer()
        info = FileInfo(name="/dataset/a", size=100, level=1)
        mc.add(info)
        assert mc.lookup("/dataset/a") is info
        assert "/dataset/a" in mc
        assert len(mc) == 1

    def test_duplicate_add_raises(self):
        mc = MetadataContainer()
        mc.add(FileInfo(name="/a", size=1, level=1))
        with pytest.raises(ValueError):
            mc.add(FileInfo(name="/a", size=1, level=1))

    def test_lookup_missing_raises(self):
        with pytest.raises(KeyError):
            MetadataContainer().lookup("/nope")

    def test_get_returns_none_for_missing(self):
        assert MetadataContainer().get("/nope") is None

    def test_files_sorted_by_name(self):
        mc = MetadataContainer()
        mc.add(FileInfo(name="/b", size=1, level=1))
        mc.add(FileInfo(name="/a", size=1, level=1))
        assert [f.name for f in mc.files()] == ["/a", "/b"]

    def test_cached_counters(self):
        mc = MetadataContainer()
        a = FileInfo(name="/a", size=100, level=0, state=FileState.CACHED)
        b = FileInfo(name="/b", size=200, level=1)
        mc.add(a)
        mc.add(b)
        assert mc.cached_count() == 1
        assert mc.cached_bytes() == 100

    def test_clear_is_ephemeral_teardown(self):
        mc = MetadataContainer()
        mc.add(FileInfo(name="/a", size=1, level=1))
        mc.init_time_s = 3.0
        mc.clear()
        assert len(mc) == 0
        assert mc.init_time_s is None


class TestBuild:
    def test_traversal_populates_namespace(self, sim, pfs, tiny_manifest, dataset_paths):
        driver = PFSDriver(pfs, "/mnt/pfs", None)
        mc = MetadataContainer()
        drive(sim, mc.build(driver, "/dataset", pfs_level=1, clock_now=lambda: sim.now))
        assert len(mc) == tiny_manifest.n_shards
        for shard, path in zip(tiny_manifest.shards, dataset_paths):
            info = mc.lookup(path)
            assert info.size == shard.size_bytes
            assert info.level == 1
            assert info.state is FileState.PFS_ONLY

    def test_init_time_recorded_and_scales_with_files(self, sim, pfs, dataset_paths):
        driver = PFSDriver(pfs, "/mnt/pfs", None)
        mc = MetadataContainer()
        drive(sim, mc.build(driver, "/dataset", 1, lambda: sim.now))
        assert mc.init_time_s is not None
        # one listdir + one stat per file through the MDS
        expected_min = (len(dataset_paths)) * pfs.config.mds_latency_s * 0.5
        assert mc.init_time_s >= expected_min

    def test_build_charges_mds_ops(self, sim, pfs, dataset_paths):
        driver = PFSDriver(pfs, "/mnt/pfs", None)
        mc = MetadataContainer()
        drive(sim, mc.build(driver, "/dataset", 1, lambda: sim.now))
        assert pfs.stats.listdir_ops == 1
        assert pfs.stats.stat_ops == len(dataset_paths)
