"""Property-based tests for MONARCH's placement invariants."""

from __future__ import annotations

import pytest

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MonarchConfig, TierSpec
from repro.core.metadata import FileState
from repro.core.middleware import Monarch
from repro.data.dataset import DatasetSpec, SampleSizeModel
from repro.data.sharding import build_shards
from repro.data.virtual import materialize
from repro.simkernel.core import Simulator
from repro.storage.device import Device, SATA_SSD
from repro.storage.localfs import LocalFileSystem
from repro.storage.pfs import ParallelFileSystem
from repro.storage.vfs import MountTable


pytestmark = pytest.mark.hypothesis_heavy

@given(
    quota_shards=st.integers(min_value=1, max_value=12),
    read_order_seed=st.integers(min_value=0, max_value=1000),
    threads=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=25, deadline=None)
def test_placement_invariants_hold_for_any_access_order(quota_shards, read_order_seed, threads):
    """For any quota / access order / pool size:

    * local occupancy never exceeds the quota,
    * every file ends in exactly one of {CACHED, UNPLACEABLE},
    * CACHED files are fully resident (size on tier == namespace size),
    * no evictions happen under the default policy,
    * the number of cached files equals what first-fit admits.
    """
    sim = Simulator()
    spec = DatasetSpec(
        name="prop-ds",
        n_samples=40,
        size_model=SampleSizeModel(mean_bytes=4096, sigma=0.0),
        shard_target_bytes=5 * (4096 + 16),
    )
    manifest = build_shards(spec)
    shard_size = manifest.shards[0].size_bytes
    quota = quota_shards * shard_size + 7

    pfs = ParallelFileSystem(sim)
    paths = materialize(manifest, pfs, "/dataset")
    local = LocalFileSystem(sim, Device(sim, SATA_SSD), capacity_bytes=1 << 30)
    mounts = MountTable()
    mounts.mount("/mnt/pfs", pfs)
    mounts.mount("/mnt/ssd", local)

    cfg = MonarchConfig(
        tiers=(
            TierSpec(mount_point="/mnt/ssd", quota_bytes=quota),
            TierSpec(mount_point="/mnt/pfs"),
        ),
        dataset_dir="/dataset",
        placement_threads=threads,
        copy_chunk=shard_size,
    )
    monarch = Monarch(sim, cfg, mounts)

    order = np.random.default_rng(read_order_seed).permutation(len(paths))

    def job():
        yield from monarch.initialize()
        for idx in order:
            yield from monarch.read(paths[int(idx)], 0, 512)
        yield sim.timeout(300.0)

    p = sim.spawn(job())
    sim.run(p)

    assert local.used_bytes <= quota
    cached = 0
    for path in paths:
        info = monarch.metadata.lookup(path)
        assert info.state in (FileState.CACHED, FileState.UNPLACEABLE)
        if info.state is FileState.CACHED:
            cached += 1
            assert info.level == 0
            assert local.file_size(path) == info.size
        else:
            assert info.level == 1
    assert monarch.placement.stats.evictions == 0
    # first-fit with uniform shard sizes admits exactly quota // shard_size
    expected = min(len(paths), quota // shard_size)
    assert cached == expected
