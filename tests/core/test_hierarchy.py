"""Unit tests for the storage hierarchy."""

from __future__ import annotations

import pytest

from repro.core.config import MonarchConfig, TierSpec
from repro.core.driver import LocalDriver, PFSDriver
from repro.core.hierarchy import StorageHierarchy


def make_hierarchy(local_fs, pfs, local_quota=None):
    return StorageHierarchy([
        LocalDriver(local_fs, "/mnt/ssd", local_quota),
        PFSDriver(pfs, "/mnt/pfs", None),
    ])


class TestConstruction:
    def test_from_config(self, mounts, monarch_config):
        h = StorageHierarchy.from_config(monarch_config, mounts)
        assert len(h) == 2
        assert isinstance(h[0], LocalDriver)
        assert isinstance(h[1], PFSDriver)
        assert h.pfs_level == 1

    def test_needs_two_levels(self, pfs):
        with pytest.raises(ValueError):
            StorageHierarchy([PFSDriver(pfs, "/mnt/pfs", None)])

    def test_last_level_must_be_readonly(self, local_fs):
        with pytest.raises(ValueError):
            StorageHierarchy([
                LocalDriver(local_fs, "/a", None),
                LocalDriver(local_fs, "/b", None),
            ])

    def test_upper_levels_must_be_writable(self, local_fs, pfs):
        with pytest.raises(ValueError):
            StorageHierarchy([
                PFSDriver(pfs, "/mnt/pfs", None),
                PFSDriver(pfs, "/mnt/pfs2", None),
            ])

    def test_pfs_property(self, local_fs, pfs):
        h = make_hierarchy(local_fs, pfs)
        assert isinstance(h.pfs, PFSDriver)
        assert h.pfs is h[1]


class TestFirstFit:
    def test_picks_level_zero_when_space(self, local_fs, pfs):
        h = make_hierarchy(local_fs, pfs)
        assert h.first_fit(1024) == 0

    def test_none_when_all_full(self, local_fs, pfs):
        h = make_hierarchy(local_fs, pfs, local_quota=100)
        assert h.first_fit(101) is None

    def test_descends_to_next_local_level(self, sim, local_fs, pfs, ssd):
        from repro.storage.localfs import LocalFileSystem

        second = LocalFileSystem(sim, ssd, capacity_bytes=1 << 20, name="second")
        h = StorageHierarchy([
            LocalDriver(local_fs, "/mnt/ram", 100),  # tiny level 0
            LocalDriver(second, "/mnt/ssd", None),
            PFSDriver(pfs, "/mnt/pfs", None),
        ])
        assert h.first_fit(50) == 0
        assert h.first_fit(500) == 1
        assert h.first_fit(2 << 20) is None

    def test_upper_levels_excludes_pfs(self, local_fs, pfs):
        h = make_hierarchy(local_fs, pfs)
        levels = h.upper_levels()
        assert len(levels) == 1
        assert levels[0][0] == 0

    def test_total_upper_free(self, local_fs, pfs):
        h = make_hierarchy(local_fs, pfs, local_quota=5000)
        assert h.total_upper_free() == 5000


class TestFromConfigQuota:
    def test_tier_quota_applied(self, mounts, local_fs):
        cfg = MonarchConfig(
            tiers=(
                TierSpec(mount_point="/mnt/ssd", quota_bytes=2048),
                TierSpec(mount_point="/mnt/pfs"),
            ),
            dataset_dir="/dataset",
        )
        h = StorageHierarchy.from_config(cfg, mounts)
        assert h[0].quota_bytes == 2048
