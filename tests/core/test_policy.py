"""Unit tests for the pluggable placement-policy engine.

Covers the registry/factory, the heat policy's promotion/eviction
decisions, the predictor's observation machinery, telemetry gating (the
default policy publishes nothing), the deferred-placement retry path and
the policy/fault interactions the engine must survive: a tier dying
while a policy holds residents on it must not corrupt the arbiter
ledger, resurrect given-up placements or target the dead tier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MonarchConfig, TierSpec
from repro.core.metadata import FileInfo, FileState
from repro.core.middleware import Monarch
from repro.core.policy import DEFAULT_POLICY, POLICY_NAMES, make_policy
from repro.core.policy.base import PlacementPolicy
from repro.core.policy.firstfit import FirstFitPolicy
from repro.core.policy.heat import HeatPolicy
from repro.core.policy.predictor import EpochPredictorPolicy
from repro.data.virtual import materialize
from repro.simkernel.core import Simulator
from repro.storage.device import SATA_SSD, Device
from repro.storage.localfs import LocalFileSystem
from repro.storage.pfs import ParallelFileSystem
from repro.storage.vfs import MountTable
from tests.conftest import drive

pytestmark = pytest.mark.policy

KIB = 1024


def make_monarch(sim, mounts, policy="firstfit", tiers=None, **cfg_kwargs):
    cfg = MonarchConfig(
        tiers=tiers
        or (TierSpec(mount_point="/mnt/ssd"), TierSpec(mount_point="/mnt/pfs")),
        dataset_dir="/dataset",
        placement_threads=2,
        copy_chunk=256 * KIB,
        policy=policy,
        **cfg_kwargs,
    )
    m = Monarch(sim, cfg, mounts, rng=np.random.default_rng(0))
    drive(sim, m.initialize(), name="monarch-init")
    return m


def read_full(sim, monarch, name, job=""):
    """Read one file end to end in copy-chunk slices, then settle."""

    def gen():
        size = monarch.metadata.lookup(name).size
        pos = 0
        while pos < size:
            take = min(256 * KIB, size - pos)
            yield from monarch.read(name, pos, take, job=job)
            pos += take
        yield sim.timeout(30.0)

    drive(sim, gen())


def read_slice(sim, monarch, name, offset=0, nbytes=KIB, job="", settle=5.0):
    def gen():
        yield from monarch.read(name, offset, nbytes, job=job)
        if settle:
            yield sim.timeout(settle)

    drive(sim, gen())


def settle(sim, t=30.0):
    def gen():
        yield sim.timeout(t)

    drive(sim, gen())


# -- registry / config -------------------------------------------------------


class TestRegistry:
    def test_factory_builds_every_registered_policy(self):
        classes = {
            "firstfit": FirstFitPolicy,
            "heat": HeatPolicy,
            "predictor": EpochPredictorPolicy,
        }
        assert set(POLICY_NAMES) == set(classes)
        for name in POLICY_NAMES:
            pol = make_policy(name)
            assert isinstance(pol, classes[name])
            assert pol.name == name
            assert isinstance(pol, PlacementPolicy)

    def test_factory_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown"):
            make_policy("belady")

    def test_config_accepts_exactly_the_registered_names(self):
        # The config keeps its own literal tuple (to stay import-light);
        # this pins it to the actual registry.
        tiers = (TierSpec(mount_point="/mnt/ssd"), TierSpec(mount_point="/mnt/pfs"))
        for name in POLICY_NAMES:
            assert MonarchConfig(tiers=tiers, policy=name).policy == name
        with pytest.raises(ValueError, match="unknown placement policy"):
            MonarchConfig(tiers=tiers, policy="belady")

    def test_default_policy_is_first_fit(self, sim, mounts, dataset_paths):
        assert DEFAULT_POLICY == "firstfit"
        m = make_monarch(sim, mounts)
        pol = m.placement.policy
        assert isinstance(pol, FirstFitPolicy)
        # The paper's hot path stays untouched: no cached-read hook.
        assert pol.tracks_access is False
        assert m._on_access is None

    def test_predictor_parameter_validation(self):
        with pytest.raises(ValueError):
            EpochPredictorPolicy(observe_files=0)
        with pytest.raises(ValueError):
            EpochPredictorPolicy(hot_fraction=0.0)
        with pytest.raises(ValueError):
            EpochPredictorPolicy(full_pass_ratio=1.5)
        with pytest.raises(ValueError):
            HeatPolicy(evict_margin=-1.0)
        with pytest.raises(ValueError):
            HeatPolicy(promote_min_heat=0.5)


# -- telemetry gating --------------------------------------------------------


class TestMetricsGating:
    def test_default_policy_publishes_no_policy_counters(
        self, sim, mounts, dataset_paths
    ):
        m = make_monarch(sim, mounts)
        read_full(sim, m, dataset_paths[0])
        reg = m.publish_metrics()
        assert not [k for k in reg.counters if k.startswith("policy.")]

    def test_non_default_policy_publishes_counters(self, sim, mounts, dataset_paths):
        m = make_monarch(sim, mounts, policy="heat")
        read_full(sim, m, dataset_paths[0])
        reg = m.publish_metrics()
        keys = {k for k in reg.counters if k.startswith("policy.")}
        assert "policy.heat_evictions" in keys
        assert "policy.promotions" in keys

    def test_report_meta_tags_non_default_policy_only(self):
        from repro.data.imagenet import IMAGENET_100G
        from repro.experiments.calibration import DEFAULT_CALIBRATION
        from repro.experiments.runner import run_once

        kwargs = dict(
            setup="monarch",
            model_name="lenet",
            dataset=IMAGENET_100G,
            calib=DEFAULT_CALIBRATION,
            scale=1 / 8192,
            seed=0,
            report=True,
        )
        default = run_once(**kwargs)
        heat = run_once(monarch_overrides={"policy": "heat"}, **kwargs)
        assert "policy" not in default.report["meta"]
        assert heat.report["meta"]["policy"] == "heat"


# -- heat policy -------------------------------------------------------------


@pytest.fixture
def three_tier_stack(sim, tiny_manifest):
    """RAM-over-SSD-over-PFS with a RAM tier sized for exactly one shard."""
    shard = tiny_manifest.shards[0].size_bytes
    pfs = ParallelFileSystem(sim)
    ram = LocalFileSystem(sim, Device(sim, SATA_SSD), capacity_bytes=shard + 10)
    ssd = LocalFileSystem(sim, Device(sim, SATA_SSD), capacity_bytes=64 * 1024 * KIB)
    mounts = MountTable()
    mounts.mount("/mnt/ram", ram)
    mounts.mount("/mnt/ssd", ssd)
    mounts.mount("/mnt/pfs", pfs)
    paths = materialize(tiny_manifest, pfs, "/dataset")
    tiers = (
        TierSpec(mount_point="/mnt/ram"),
        TierSpec(mount_point="/mnt/ssd"),
        TierSpec(mount_point="/mnt/pfs"),
    )
    return mounts, paths, tiers, (ram, ssd)


class TestHeatPolicy:
    def test_hot_file_evicts_strictly_colder_resident(
        self, sim, mounts, dataset_paths, tiny_manifest
    ):
        shard = tiny_manifest.shards[0].size_bytes
        tiers = (
            TierSpec(mount_point="/mnt/ssd", quota_bytes=shard + 10),
            TierSpec(mount_point="/mnt/pfs"),
        )
        m = make_monarch(sim, mounts, policy="heat", tiers=tiers)
        a, b = dataset_paths[0], dataset_paths[1]
        read_slice(sim, m, a)  # heat(a)=1, cached
        assert m.metadata.lookup(a).state is FileState.CACHED
        # First read of b: equal heat, margin blocks the eviction.
        read_slice(sim, m, b)
        assert m.placement.policy.stats.heat_evictions == 0
        assert m.metadata.lookup(b).state is FileState.PFS_ONLY
        # Second read: heat(b)=2 > heat(a)+margin no longer holds for a,
        # so a is evicted and b takes its place.
        read_slice(sim, m, b, settle=30.0)
        assert m.placement.policy.stats.heat_evictions == 1
        assert m.placement.stats.evictions == 1
        assert m.metadata.lookup(b).state is FileState.CACHED
        assert m.metadata.lookup(a).state is FileState.PFS_ONLY

    def test_no_eviction_without_pressure_or_skew(self, sim, mounts, dataset_paths):
        m = make_monarch(sim, mounts, policy="heat")
        for p in dataset_paths:
            read_slice(sim, m, p)
        assert m.placement.policy.stats.heat_evictions == 0
        assert m.placement.stats.evictions == 0

    def test_unplaceable_is_not_sticky(self, sim, mounts, dataset_paths, tiny_manifest):
        shard = tiny_manifest.shards[0].size_bytes
        tiers = (
            TierSpec(mount_point="/mnt/ssd", quota_bytes=shard + 10),
            TierSpec(mount_point="/mnt/pfs"),
        )
        m = make_monarch(sim, mounts, policy="heat", tiers=tiers)
        read_slice(sim, m, dataset_paths[0])
        read_slice(sim, m, dataset_paths[1])
        info = m.metadata.lookup(dataset_paths[1])
        # First-fit would have written b off; heat keeps it placeable.
        assert info.state is FileState.PFS_ONLY
        assert m.placement.stats.unplaceable == 0

    def test_hot_file_promotes_to_faster_tier(self, sim, three_tier_stack):
        mounts, paths, tiers, (ram, _ssd) = three_tier_stack
        m = make_monarch(sim, mounts, policy="heat", tiers=tiers)
        a, b = paths[0], paths[1]
        read_slice(sim, m, a, settle=30.0)  # fills the one-shard RAM tier
        read_slice(sim, m, b, settle=30.0)  # lands on the SSD tier
        assert m.metadata.lookup(a).level == 0
        assert m.metadata.lookup(b).level == 1
        # Repeated cached reads of b pull it up, displacing the colder a.
        for _ in range(3):
            read_slice(sim, m, b, settle=30.0)
        pol = m.placement.policy
        assert pol.stats.promotions == 1
        assert pol.stats.heat_evictions >= 1
        assert m.metadata.lookup(b).level == 0
        assert m.metadata.lookup(b).state is FileState.CACHED
        assert m.metadata.lookup(a).state is FileState.PFS_ONLY
        assert ram.used_bytes <= ram.capacity_bytes

    def test_promotion_skips_quarantined_tier(self, sim, three_tier_stack):
        mounts, paths, tiers, (ram, _ssd) = three_tier_stack
        m = make_monarch(sim, mounts, policy="heat", tiers=tiers)
        a, b = paths[0], paths[1]
        read_slice(sim, m, a, settle=30.0)
        read_slice(sim, m, b, settle=30.0)
        for _ in range(3):
            m.health.record_fault(0)  # quarantine RAM
        for _ in range(3):
            read_slice(sim, m, b, settle=30.0)
        # b stays where it is; no copy was pointed at the dead tier.
        assert m.placement.policy.stats.promotions == 0
        assert m.metadata.lookup(b).level == 1


# -- predictor policy --------------------------------------------------------


class _StubMetadata:
    def __init__(self, infos):
        self._infos = infos

    def files(self):
        return list(self._infos)


class _StubHierarchy:
    """Hierarchy surface the sweep's back-off checks consult."""

    health = None


class _StubHandler:
    """Just enough PlacementHandler surface for pure-decision tests."""

    def __init__(self, infos):
        self.metadata = _StubMetadata(infos)
        self.placed: list[str] = []
        self.room = len(infos)
        self.arbiter = None
        self.hierarchy = _StubHierarchy()

    def place(self, info, have_content=False, mark_on_fail=True,
              speculative=False):
        if len(self.placed) >= self.room:
            return False
        self.placed.append(info.name)
        info.state = FileState.COPYING
        return True


def _infos(n, size=100 * KIB, owner=""):
    return [
        FileInfo(name=f"/d/f{i:03d}", size=size, level=1, owner=owner)
        for i in range(n)
    ]


class TestPredictorDecisions:
    def make(self, n_files=64, **kwargs):
        infos = _infos(n_files)
        pol = EpochPredictorPolicy(**kwargs)
        handler = _StubHandler(infos)
        pol.bind(handler)
        return pol, handler, infos

    def test_observing_admits_on_spec_up_to_budget_then_skips(self):
        pol, _handler, infos = self.make(hot_fraction=0.9)
        budget = max(2 * pol.observe_files, 4 * pol._scope_for("")[0])
        for info in infos[:budget]:
            assert pol.admit(info, 0, KIB, False)
        assert pol.stats.predicted_cold_skips == 0
        assert not pol.admit(infos[budget], 0, KIB, False)
        assert pol.stats.predicted_cold_skips == 1
        # ... but a file already on spec stays admitted (stable decision).
        assert pol.admit(infos[0], KIB, KIB, False)
        assert pol.verdict("") is None

    def test_aggregate_consumption_flips_hot_and_sweeps(self):
        pol, handler, infos = self.make(hot_fraction=0.01)
        # One file's worth of reads crosses 1% of the 64-file namespace.
        assert pol.admit(infos[0], 0, infos[0].size, False)
        assert pol.verdict("") is True
        # The sweep placed every still-PFS-resident file eagerly — the
        # triggering file included, since its own placement only happens
        # after admit() returns.
        assert pol.stats.eager_admissions == len(infos)
        assert set(handler.placed) == {i.name for i in infos}
        # Hot owners are admitted unconditionally from now on.
        assert pol.admit(infos[1], 0, KIB, False)
        assert pol.stats.predicted_cold_skips == 0

    def test_full_pass_window_flips_hot_despite_low_fraction(self):
        pol, _handler, infos = self.make(hot_fraction=0.9)
        info = infos[0]
        pos = 0
        while pos < info.size:
            pol.on_access(info, pos, 10 * KIB)
            pos += 10 * KIB
        # 64 files // 16 = window of 4 full passes.
        assert pol.verdict("") is None
        for other in infos[1:4]:
            pol.on_access(other, 0, other.size)
        assert pol.verdict("") is True

    def test_full_pass_tolerates_unread_trailing_padding(self):
        # Record shards carry padding the pipeline never reads; 95% of
        # the bytes must count as a completed pass.
        pol, _handler, infos = self.make(n_files=16, hot_fraction=0.9)
        info = infos[0]
        pol.on_access(info, 0, int(info.size * 0.96))
        assert info.name in pol._full[""]
        assert pol.verdict("") is True  # window is 1 for 16 files

    def test_completed_pass_is_direct_evidence_past_the_budget(self):
        pol, _handler, infos = self.make(hot_fraction=0.9)
        budget = max(2 * pol.observe_files, 4 * pol._scope_for("")[0])
        for info in infos[:budget]:
            assert pol.admit(info, 0, KIB, False)
        late = infos[budget]
        assert not pol.admit(late, 0, KIB, False)
        # Its own reads complete a pass: admitted on evidence, not spec.
        assert pol.admit(late, 0, late.size, True)
        assert pol.predicted_reread_rate("") > 0.0

    def test_sweep_stops_at_first_placement_failure(self):
        pol, handler, infos = self.make(n_files=32, hot_fraction=0.01)
        handler.room = 5
        pol.admit(infos[0], 0, infos[0].size, False)
        assert pol.stats.eager_admissions == 5
        assert len(handler.placed) == 5

    def test_owners_are_judged_independently(self):
        a = _infos(20, owner="a")
        b = _infos(20, owner="b")
        pol = EpochPredictorPolicy()
        handler = _StubHandler(a + b)
        pol.bind(handler)
        pol.admit(a[0], 0, a[0].size, False)
        assert pol.verdict("a") is True
        assert pol.verdict("b") is None
        assert all(name.startswith("/d/") for name in handler.placed)
        assert pol.stats.eager_admissions == len(a)  # only a's files

    def test_integration_sweep_caches_unread_files(
        self, sim, mounts, dataset_paths
    ):
        m = make_monarch(sim, mounts, policy="predictor")
        read_full(sim, m, dataset_paths[0])
        pol = m.placement.policy
        assert pol.verdict() is True
        assert pol.stats.eager_admissions == len(dataset_paths)
        for p in dataset_paths:
            assert m.metadata.lookup(p).state is FileState.CACHED


# -- deferred placements and fault interaction -------------------------------


def quarantine(m, level=0):
    for _ in range(3):
        m.health.record_fault(level)
    assert not m.health.is_placeable(level)


class TestDeferredRetry:
    def test_readmit_retries_deferred_placement(self, sim, mounts, dataset_paths):
        m = make_monarch(sim, mounts)
        quarantine(m)
        a = dataset_paths[0]
        read_slice(sim, m, a)
        assert m.placement.stats.deferred == 1
        assert a in m.placement._deferred
        scheduled_before = m.placement.stats.scheduled
        m.health.record_success(0)  # probe succeeds: tier re-admitted
        assert m.placement.stats.scheduled == scheduled_before + 1
        assert m.placement.policy.stats.deferred_retries == 1
        settle(sim)
        assert m.metadata.lookup(a).state is FileState.CACHED

    def test_abandoned_placement_does_not_resurrect_on_readmit(
        self, sim, mounts, dataset_paths
    ):
        m = make_monarch(sim, mounts)
        quarantine(m)
        a = dataset_paths[0]
        read_slice(sim, m, a)  # deferred while the tier is out
        m.health.record_success(0)  # readmit: the retry schedules a copy
        info = m.metadata.lookup(a)
        assert info.state is FileState.COPYING
        # The tier dies again before the queued copy runs; the worker's
        # health check abandons the task.  A historical bug left the
        # deferred entry behind, so the *next* readmit re-placed a copy
        # the job had already given up on.
        quarantine(m)
        m.placement._deferred[a] = None  # the stale entry of the old bug
        settle(sim)
        assert info.state is FileState.PFS_ONLY
        assert m.placement.stats.copy_giveups == 1
        assert a not in m.placement._deferred
        scheduled_before = m.placement.stats.scheduled
        m.health.record_success(0)
        assert m.placement.stats.scheduled == scheduled_before
        assert info.state is FileState.PFS_ONLY

    def test_deferred_entry_dropped_when_scheduled_normally(
        self, sim, mounts, dataset_paths
    ):
        m = make_monarch(sim, mounts)
        quarantine(m)
        a = dataset_paths[0]
        read_slice(sim, m, a)
        assert a in m.placement._deferred
        m.health.record_success(0)
        assert a not in m.placement._deferred


class TestPolicyFaultInteraction:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_no_placement_targets_dead_tier(self, sim, mounts, dataset_paths, policy):
        m = make_monarch(sim, mounts, policy=policy)
        quarantine(m)
        for p in dataset_paths:
            read_slice(sim, m, p, settle=30.0)
        for p in dataset_paths:
            assert m.metadata.lookup(p).state is not FileState.CACHED
        assert m.hierarchy[0].fs.used_bytes == 0

    def test_heat_eviction_never_targets_quarantined_tier(
        self, sim, mounts, dataset_paths, tiny_manifest
    ):
        shard = tiny_manifest.shards[0].size_bytes
        tiers = (
            TierSpec(mount_point="/mnt/ssd", quota_bytes=shard + 10),
            TierSpec(mount_point="/mnt/pfs"),
        )
        m = make_monarch(sim, mounts, policy="heat", tiers=tiers)
        a, b = dataset_paths[0], dataset_paths[1]
        read_slice(sim, m, a, settle=30.0)
        assert m.metadata.lookup(a).state is FileState.CACHED
        quarantine(m)
        # Keep the tier down for the whole test: degraded-mode reads
        # drive health probes, and with no real fault injected a probe
        # would succeed and re-admit the tier early.
        m.health._next_probe[0] = float("inf")
        # b gets hot enough to displace a — but the tier is dead, so the
        # resident must not be evicted for a copy that cannot land.
        for _ in range(4):
            read_slice(sim, m, b, settle=30.0)
        assert m.placement.policy.stats.heat_evictions == 0
        assert m.metadata.lookup(a).state is FileState.CACHED
        assert m.metadata.lookup(b).state is FileState.PFS_ONLY

    def test_heat_replaces_cleanly_after_readmit(
        self, sim, mounts, dataset_paths, tiny_manifest
    ):
        shard = tiny_manifest.shards[0].size_bytes
        tiers = (
            TierSpec(mount_point="/mnt/ssd", quota_bytes=shard + 10),
            TierSpec(mount_point="/mnt/pfs"),
        )
        m = make_monarch(sim, mounts, policy="heat", tiers=tiers)
        a, b = dataset_paths[0], dataset_paths[1]
        read_slice(sim, m, a, settle=30.0)
        quarantine(m)
        for _ in range(4):
            read_slice(sim, m, b, settle=30.0)
        m.health.record_success(0)
        read_slice(sim, m, b, settle=30.0)
        assert m.metadata.lookup(b).state is FileState.CACHED
        assert m.placement.policy.stats.heat_evictions == 1
        fs = m.hierarchy[0].fs
        assert fs.used_bytes <= shard + 10

    def test_heat_churn_keeps_arbiter_ledger_consistent(self, sim, tiny_manifest):
        """Tier death mid-churn must not double-free fair-share charges."""
        shard = tiny_manifest.shards[0].size_bytes
        pfs = ParallelFileSystem(sim)
        ssd = LocalFileSystem(sim, Device(sim, SATA_SSD), capacity_bytes=2 * shard + 20)
        mounts = MountTable()
        mounts.mount("/mnt/ssd", ssd)
        mounts.mount("/mnt/pfs", pfs)
        paths_a = materialize(tiny_manifest, pfs, "/jobs/a")
        paths_b = materialize(tiny_manifest, pfs, "/jobs/b")
        cfg = MonarchConfig(
            tiers=(TierSpec(mount_point="/mnt/ssd"), TierSpec(mount_point="/mnt/pfs")),
            dataset_dir="/jobs/a",
            placement_threads=2,
            copy_chunk=256 * KIB,
            policy="heat",
        )
        m = Monarch(sim, cfg, mounts, rng=np.random.default_rng(0))
        ctx_a = m.register_job("a", "/jobs/a")
        ctx_b = m.register_job("b", "/jobs/b")
        drive(sim, m.initialize_job(ctx_a), name="init-a")
        drive(sim, m.initialize_job(ctx_b), name="init-b")
        read_slice(sim, m, paths_a[0], job="a", settle=30.0)
        read_slice(sim, m, paths_b[0], job="b", settle=30.0)
        # Skewed access drives churn, interrupted by a death + readmit.
        for i in range(3):
            read_slice(sim, m, paths_a[1], job="a", settle=30.0)
            if i == 1:
                quarantine(m)
                m.health.record_success(0)
        read_slice(sim, m, paths_b[1], job="b", settle=30.0)
        # The ledger must equal what is actually resident per job.
        for job in ("a", "b"):
            resident = sum(
                info.size
                for info in m.metadata.files()
                if info.owner == job
                and info.state in (FileState.CACHED, FileState.COPYING)
                and (info.level == 0 or info.pending_level == 0)
            )
            assert m.arbiter.admitted_bytes(job, 0) == resident
        assert ssd.used_bytes <= ssd.capacity_bytes
