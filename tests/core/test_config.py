"""Unit tests for MONARCH configuration."""

from __future__ import annotations

import pytest

from repro.core.config import MonarchConfig, TierSpec


class TestTierSpec:
    def test_defaults(self):
        t = TierSpec(mount_point="/mnt/ssd")
        assert t.quota_bytes is None

    def test_quota_validation(self):
        with pytest.raises(ValueError):
            TierSpec(mount_point="/mnt/ssd", quota_bytes=0)
        with pytest.raises(ValueError):
            TierSpec(mount_point="/mnt/ssd", quota_bytes=-5)


class TestMonarchConfig:
    def two_tiers(self):
        return (TierSpec("/mnt/ssd"), TierSpec("/mnt/pfs"))

    def test_valid_defaults(self):
        cfg = MonarchConfig(tiers=self.two_tiers())
        assert cfg.placement_threads == 6  # paper's evaluation setting
        assert cfg.full_fetch_on_partial_read
        assert cfg.eviction == "none"  # paper: no eviction

    def test_needs_two_tiers(self):
        with pytest.raises(ValueError):
            MonarchConfig(tiers=(TierSpec("/mnt/pfs"),))
        with pytest.raises(ValueError):
            MonarchConfig(tiers=())

    def test_thread_pool_validation(self):
        with pytest.raises(ValueError):
            MonarchConfig(tiers=self.two_tiers(), placement_threads=0)

    def test_copy_chunk_validation(self):
        with pytest.raises(ValueError):
            MonarchConfig(tiers=self.two_tiers(), copy_chunk=0)

    def test_eviction_names(self):
        for name in ("none", "lru", "fifo", "random"):
            MonarchConfig(tiers=self.two_tiers(), eviction=name)
        with pytest.raises(ValueError):
            MonarchConfig(tiers=self.two_tiers(), eviction="arc")

    def test_three_tier_hierarchy_allowed(self):
        MonarchConfig(
            tiers=(TierSpec("/mnt/ram"), TierSpec("/mnt/ssd"), TierSpec("/mnt/pfs"))
        )
