"""Unit tests for storage drivers."""

from __future__ import annotations

import pytest

from repro.core.driver import LocalDriver, PFSDriver
from repro.storage.base import NoSpaceError
from tests.conftest import drive


class TestLocalDriver:
    def test_quota_defaults_to_fs_capacity(self, local_fs):
        d = LocalDriver(local_fs, "/mnt/ssd", None)
        assert d.quota_bytes == local_fs.capacity_bytes

    def test_quota_capped_by_fs_capacity(self, local_fs):
        d = LocalDriver(local_fs, "/mnt/ssd", local_fs.capacity_bytes * 10)
        assert d.quota_bytes == local_fs.capacity_bytes

    def test_explicit_smaller_quota(self, local_fs):
        d = LocalDriver(local_fs, "/mnt/ssd", 1024)
        assert d.quota_bytes == 1024
        assert d.fits(1024)
        assert not d.fits(1025)

    def test_occupancy_tracks_fs(self, sim, local_fs):
        d = LocalDriver(local_fs, "/mnt/ssd", None)
        assert d.occupancy_bytes == 0

        def job():
            yield from d.write("/dataset/a", 0, 2048)

        drive(sim, job())
        assert d.occupancy_bytes == 2048
        assert d.free_bytes() == local_fs.capacity_bytes - 2048

    def test_write_then_read_roundtrip(self, sim, local_fs):
        d = LocalDriver(local_fs, "/mnt/ssd", None)

        def job():
            yield from d.write("/dataset/a", 0, 4096)
            n = yield from d.read("/dataset/a", 0, 10_000)
            return n

        assert drive(sim, job()) == 4096
        assert d.has("/dataset/a")

    def test_write_beyond_quota_raises(self, sim, local_fs):
        d = LocalDriver(local_fs, "/mnt/ssd", 1000)

        def job():
            yield from d.write("/dataset/a", 0, 1001)

        with pytest.raises(NoSpaceError):
            drive(sim, job())

    def test_remove_frees_space(self, sim, local_fs):
        d = LocalDriver(local_fs, "/mnt/ssd", None)

        def job():
            yield from d.write("/dataset/a", 0, 2048)

        drive(sim, job())
        d.remove("/dataset/a")
        assert not d.has("/dataset/a")
        assert d.occupancy_bytes == 0

    def test_handles_cached_single_open(self, sim, local_fs):
        d = LocalDriver(local_fs, "/mnt/ssd", None)

        def job():
            yield from d.write("/dataset/a", 0, 100)
            yield from d.read("/dataset/a", 0, 100)
            yield from d.read("/dataset/a", 0, 100)

        drive(sim, job())
        # one open for the write handle; reads reuse it
        assert local_fs.stats.open_ops == 1

    def test_remove_drops_cached_handle(self, sim, local_fs):
        # Regression: remove() must evict the handle cache, or the next
        # read reuses a descriptor for an unlinked file.
        d = LocalDriver(local_fs, "/mnt/ssd", None)

        def write_then_remove():
            yield from d.write("/dataset/a", 0, 2048)
            yield from d.read("/dataset/a", 0, 2048)

        drive(sim, write_then_remove())
        d.remove("/dataset/a")
        assert d._handles == {}

        def replace():
            yield from d.write("/dataset/a", 0, 512)
            n = yield from d.read("/dataset/a", 0, 2048)
            return n

        # The re-placed (smaller) file is re-opened fresh: reads see the
        # new size, not phantom bytes from the removed incarnation.
        assert drive(sim, replace()) == 512
        assert d.occupancy_bytes == 512

    def test_stale_handle_sees_eof_after_remove(self, sim, local_fs):
        # Regression: a handle captured *before* remove() may be held by a
        # concurrent reader; it must observe EOF, not the stale size.
        d = LocalDriver(local_fs, "/mnt/ssd", None)

        def write_and_grab():
            yield from d.write("/dataset/a", 0, 2048)
            handle = yield from d._handle_for("/dataset/a")
            return handle

        stale = drive(sim, write_and_grab())
        d.remove("/dataset/a")

        def read_via_stale():
            n = yield from local_fs.pread(stale, 0, 2048)
            return n

        assert drive(sim, read_via_stale()) == 0

    def test_writable(self, local_fs):
        assert LocalDriver(local_fs, "/mnt/ssd", None).writable


class TestPFSDriver:
    def test_not_writable(self, pfs):
        d = PFSDriver(pfs, "/mnt/pfs", None)
        assert not d.writable

    def test_write_raises(self, sim, pfs):
        d = PFSDriver(pfs, "/mnt/pfs", None)

        def job():
            yield from d.write("/dataset/a", 0, 10)

        with pytest.raises(PermissionError):
            drive(sim, job())

    def test_unbounded_quota(self, pfs):
        d = PFSDriver(pfs, "/mnt/pfs", None)
        assert d.quota_bytes is None
        assert d.free_bytes() is None
        assert d.fits(1 << 60)

    def test_read_from_dataset(self, sim, pfs):
        pfs.add_file("/dataset/a", 1000)
        d = PFSDriver(pfs, "/mnt/pfs", None)

        def job():
            return (yield from d.read("/dataset/a", 0, 700))

        assert drive(sim, job()) == 700

    def test_sequential_read_faster_than_random(self, sim, pfs):
        pfs.add_file("/dataset/big", 16 * 1024 * 1024)
        d = PFSDriver(pfs, "/mnt/pfs", None)

        def timed(seq):
            t0 = sim.now
            if seq:
                yield from d.read_sequential("/dataset/big", 0, 512 * 1024)
            else:
                yield from d.read("/dataset/big", 0, 512 * 1024)
            return sim.now - t0

        t_rand = drive(sim, timed(False))
        t_seq = drive(sim, timed(True))
        assert t_seq < t_rand

    def test_listdir_and_stat(self, sim, pfs):
        pfs.add_file("/dataset/a", 10)
        pfs.add_file("/dataset/b", 20)
        d = PFSDriver(pfs, "/mnt/pfs", None)

        def job():
            entries = yield from d.listdir("/dataset")
            meta = yield from d.stat(entries[0])
            return entries, meta

        entries, meta = drive(sim, job())
        assert entries == ["/dataset/a", "/dataset/b"]
        assert meta.size == 10

    def test_drop_handles(self, sim, pfs):
        pfs.add_file("/dataset/a", 10)
        d = PFSDriver(pfs, "/mnt/pfs", None)

        def job():
            yield from d.read("/dataset/a", 0, 10)

        drive(sim, job())
        d.drop_handles()
        drive(sim, job())
        assert pfs.stats.open_ops == 2  # re-opened after dropping
