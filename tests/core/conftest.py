"""Fixtures for MONARCH core tests: a wired two-tier middleware."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MonarchConfig, TierSpec
from repro.core.middleware import Monarch
from repro.data.virtual import materialize
from tests.conftest import drive


@pytest.fixture
def monarch_config() -> MonarchConfig:
    """Two tiers: the 64 MiB local FS above the PFS."""
    return MonarchConfig(
        tiers=(TierSpec(mount_point="/mnt/ssd"), TierSpec(mount_point="/mnt/pfs")),
        dataset_dir="/dataset",
        placement_threads=2,
        copy_chunk=256 * 1024,
    )


@pytest.fixture
def dataset_paths(sim, pfs, tiny_manifest):
    """Tiny dataset staged on the PFS; returns PFS-relative shard paths."""
    return materialize(tiny_manifest, pfs, "/dataset")


@pytest.fixture
def monarch(sim, mounts, monarch_config, dataset_paths) -> Monarch:
    """An initialized Monarch instance over the tiny dataset."""
    m = Monarch(sim, monarch_config, mounts)
    drive(sim, m.initialize(), name="monarch-init")
    return m
