"""Unit tests for the Monarch facade and its framework reader."""

from __future__ import annotations

import pytest

from repro.core.metadata import FileState
from repro.core.middleware import Monarch, MonarchReader
from tests.conftest import drive


class TestLifecycle:
    def test_initialize_builds_namespace(self, monarch, tiny_manifest):
        assert len(monarch.metadata) == tiny_manifest.n_shards
        assert monarch.metadata.init_time_s is not None

    def test_double_initialize_raises(self, sim, monarch):
        with pytest.raises(RuntimeError):
            drive(sim, monarch.initialize())

    def test_read_before_initialize_raises(self, sim, mounts, monarch_config,
                                           dataset_paths):
        m = Monarch(sim, monarch_config, mounts)

        def job():
            yield from m.read(dataset_paths[0], 0, 10)

        with pytest.raises(RuntimeError, match="before initialize"):
            drive(sim, job())

    def test_shutdown_clears_namespace(self, monarch):
        monarch.shutdown()
        assert len(monarch.metadata) == 0

    def test_file_size_from_namespace(self, monarch, tiny_manifest, dataset_paths):
        assert monarch.file_size(dataset_paths[0]) == tiny_manifest.shards[0].size_bytes


class TestReadFlow:
    def test_first_read_served_from_pfs(self, sim, monarch, dataset_paths, pfs):
        def job():
            return (yield from monarch.read(dataset_paths[0], 0, 4096))

        n = drive(sim, job())
        assert n == 4096
        assert monarch.stats.reads_per_level.get(1) == 1
        assert pfs.stats.read_ops >= 1

    def test_partial_read_schedules_full_copy(self, sim, monarch, dataset_paths,
                                              local_fs, tiny_manifest):
        def job():
            yield from monarch.read(dataset_paths[0], 0, 4096)
            # let the background pool drain
            yield sim.timeout(10.0)

        drive(sim, job())
        info = monarch.metadata.lookup(dataset_paths[0])
        assert info.state is FileState.CACHED
        assert info.level == 0
        # the whole file landed on the local tier, not just the 4 KiB
        assert local_fs.file_size(dataset_paths[0]) == tiny_manifest.shards[0].size_bytes

    def test_reads_after_copy_hit_fast_tier(self, sim, monarch, dataset_paths, pfs):
        def job():
            yield from monarch.read(dataset_paths[0], 0, 4096)
            yield sim.timeout(10.0)
            pfs_reads_before = pfs.stats.read_ops
            yield from monarch.read(dataset_paths[0], 4096, 4096)
            return pfs.stats.read_ops - pfs_reads_before

        extra_pfs_reads = drive(sim, job())
        assert extra_pfs_reads == 0
        assert monarch.stats.reads_per_level.get(0) == 1

    def test_full_file_read_skips_pfs_refetch(self, sim, monarch, dataset_paths,
                                              tiny_manifest, pfs):
        size = tiny_manifest.shards[0].size_bytes

        def job():
            yield from monarch.read(dataset_paths[0], 0, size)
            yield sim.timeout(10.0)

        drive(sim, job())
        info = monarch.metadata.lookup(dataset_paths[0])
        assert info.state is FileState.CACHED
        # PFS was read exactly once (the framework's own full read);
        # the placement wrote the content without re-fetching (event 3 skipped)
        assert pfs.stats.bytes_read == size
        assert monarch.placement.stats.pfs_bytes_fetched == 0

    def test_unknown_file_raises(self, sim, monarch):
        def job():
            yield from monarch.read("/dataset/nope", 0, 10)

        with pytest.raises(KeyError):
            drive(sim, job())

    def test_hit_ratio(self, sim, monarch, dataset_paths):
        def job():
            yield from monarch.read(dataset_paths[0], 0, 1024)
            yield sim.timeout(10.0)
            yield from monarch.read(dataset_paths[0], 1024, 1024)
            yield from monarch.read(dataset_paths[0], 2048, 1024)

        drive(sim, job())
        assert monarch.stats.hit_ratio(pfs_level=1) == pytest.approx(2 / 3)

    def test_all_files_eventually_cached_when_they_fit(self, sim, monarch,
                                                       dataset_paths, tiny_manifest):
        def job():
            for p in dataset_paths:
                yield from monarch.read(p, 0, 1024)
            yield sim.timeout(60.0)

        drive(sim, job())
        assert monarch.metadata.cached_count() == tiny_manifest.n_shards
        assert monarch.metadata.cached_bytes() == tiny_manifest.total_bytes


class TestPrestage:
    def test_prestage_caches_everything_before_reads(self, sim, monarch,
                                                     dataset_paths, tiny_manifest):
        def job():
            yield from monarch.prestage()

        drive(sim, job())
        assert monarch.metadata.cached_count() == tiny_manifest.n_shards
        assert monarch.placement.queue_depth == 0

    def test_prestage_respects_quota(self, sim, mounts, monarch_config,
                                     dataset_paths, tiny_manifest):
        from dataclasses import replace

        from repro.core.config import TierSpec
        from repro.core.middleware import Monarch

        shard = tiny_manifest.shards[0].size_bytes
        cfg = replace(
            monarch_config,
            tiers=(TierSpec("/mnt/ssd", quota_bytes=2 * shard + 5),
                   TierSpec("/mnt/pfs")),
        )
        m = Monarch(sim, cfg, mounts)

        def job():
            yield from m.initialize()
            yield from m.prestage()

        drive(sim, job())
        assert m.metadata.cached_count() == 2
        assert m.placement.stats.unplaceable == tiny_manifest.n_shards - 2

    def test_prestage_before_initialize_raises(self, sim, mounts, monarch_config,
                                               dataset_paths):
        from repro.core.middleware import Monarch

        m = Monarch(sim, monarch_config, mounts)

        def job():
            yield from m.prestage()

        with pytest.raises(RuntimeError, match="before initialize"):
            drive(sim, job())

    def test_reads_after_prestage_never_touch_pfs_data_path(self, sim, monarch,
                                                            dataset_paths, pfs):
        def job():
            yield from monarch.prestage()
            reads_before = pfs.stats.read_ops
            for p in dataset_paths:
                yield from monarch.read(p, 0, 2048)
            return pfs.stats.read_ops - reads_before

        assert drive(sim, job()) == 0

    def test_drain_with_nothing_outstanding_returns_immediately(self, sim, monarch):
        def job():
            t0 = sim.now
            yield from monarch.placement.drain()
            return sim.now - t0

        assert drive(sim, job()) == 0.0


class TestMonarchReader:
    def test_open_uses_namespace_not_pfs(self, sim, monarch, dataset_paths, pfs):
        reader = MonarchReader(monarch)
        opens_before = pfs.stats.open_ops

        def job():
            f = yield from reader.open("/mnt/pfs" + dataset_paths[0])
            return f

        f = drive(sim, job())
        assert f.size == monarch.file_size(dataset_paths[0])
        assert pfs.stats.open_ops == opens_before  # no MDS round trip

    def test_logical_name_stripping(self, monarch, dataset_paths):
        reader = MonarchReader(monarch)
        assert reader._logical_name("/mnt/pfs" + dataset_paths[0]) == dataset_paths[0]
        assert reader._logical_name(dataset_paths[0]) == dataset_paths[0]

    def test_pread_delegates_to_monarch(self, sim, monarch, dataset_paths):
        reader = MonarchReader(monarch)

        def job():
            f = yield from reader.open("/mnt/pfs" + dataset_paths[0])
            return (yield from reader.pread(f, 0, 2048))

        assert drive(sim, job()) == 2048
        assert monarch.stats.total_reads == 1


class TestPublishMetrics:
    def test_republish_into_same_registry_does_not_double_count(
        self, sim, monarch, dataset_paths
    ):
        """Regression: counters used to be published with ``incr``, so a
        second publish into a long-lived registry doubled every value."""
        def job():
            yield from monarch.read(dataset_paths[0], 0, 4096)
            yield sim.timeout(10.0)  # drain the background copy

        drive(sim, job())
        reg = monarch.publish_metrics()
        first = dict(reg.counters)
        assert first["monarch.reads.l1"] == 1
        monarch.publish_metrics(reg)
        assert dict(reg.counters) == first

    def test_republish_refreshes_changed_values(self, sim, monarch, dataset_paths):
        reg = monarch.publish_metrics()

        def job():
            yield from monarch.read(dataset_paths[0], 0, 4096)
            yield sim.timeout(10.0)

        drive(sim, job())
        monarch.publish_metrics(reg)
        assert reg.counters["monarch.reads.l1"] == 1


class TestRecorderEvents:
    def test_read_driven_copy_lifecycle_is_emitted(
        self, sim, mounts, monarch_config, dataset_paths
    ):
        from repro.telemetry.events import EventRecorder

        recorder = EventRecorder(clock=lambda: sim.now)
        m = Monarch(sim, monarch_config, mounts, recorder=recorder)
        drive(sim, m.initialize(), name="monarch-init")

        def job():
            yield from m.read(dataset_paths[0], 0, 4096)
            yield sim.timeout(10.0)  # let the background copy finish

        drive(sim, job())
        kinds = recorder.kind_counts()
        assert kinds["copy.scheduled"] == 1
        assert kinds["copy.started"] == 1
        assert kinds["copy.completed"] == 1
        sched = recorder.filtered("copy.scheduled")[0]
        assert sched.subject == dataset_paths[0]
        assert sched.detail["level"] == 0
        assert sched.detail["nbytes"] > 0
        started, completed = (
            recorder.filtered("copy.started")[0],
            recorder.filtered("copy.completed")[0],
        )
        assert started.t <= completed.t

    def test_default_recorder_is_the_shared_null(self, sim, mounts, monarch_config):
        from repro.telemetry.events import NULL_RECORDER

        m = Monarch(sim, monarch_config, mounts)
        assert m.recorder is NULL_RECORDER
        assert m.placement.recorder is NULL_RECORDER
        assert m.health.recorder is NULL_RECORDER
