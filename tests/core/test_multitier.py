"""Three-level hierarchy tests (RAM + SSD + PFS, paper §VI)."""

from __future__ import annotations

import pytest

from repro.core.config import MonarchConfig, TierSpec
from repro.core.metadata import FileState
from repro.core.middleware import Monarch, MonarchStats
from repro.storage.device import Device, RAMDISK
from repro.storage.localfs import LocalFileSystem
from tests.conftest import drive


@pytest.fixture
def three_tier(sim, mounts, tiny_manifest, dataset_paths):
    """RAM (3 shards) above SSD (plenty) above the PFS."""
    shard = tiny_manifest.shards[0].size_bytes
    ram_fs = LocalFileSystem(sim, Device(sim, RAMDISK),
                             capacity_bytes=3 * shard + 8, name="ram")
    mounts.mount("/mnt/ram", ram_fs)
    cfg = MonarchConfig(
        tiers=(
            TierSpec(mount_point="/mnt/ram"),
            TierSpec(mount_point="/mnt/ssd"),
            TierSpec(mount_point="/mnt/pfs"),
        ),
        dataset_dir="/dataset",
        placement_threads=2,
        copy_chunk=shard,
    )
    m = Monarch(sim, cfg, mounts)
    drive(sim, m.initialize())
    return m, ram_fs


class TestThreeTierPlacement:
    def test_first_fit_fills_ram_then_ssd(self, sim, three_tier, dataset_paths,
                                          tiny_manifest, local_fs):
        m, ram_fs = three_tier

        def job():
            for p in dataset_paths:
                yield from m.read(p, 0, 1024)
            yield sim.timeout(60.0)

        drive(sim, job())
        levels = [m.metadata.lookup(p).level for p in dataset_paths]
        assert levels.count(0) == 3  # RAM holds exactly its 3 shards
        assert levels.count(1) == tiny_manifest.n_shards - 3  # rest on SSD
        assert all(m.metadata.lookup(p).state is FileState.CACHED
                   for p in dataset_paths)

    def test_reads_served_from_owning_level(self, sim, three_tier, dataset_paths,
                                            pfs):
        m, _ = three_tier

        def job():
            for p in dataset_paths:
                yield from m.read(p, 0, 1024)
            yield sim.timeout(60.0)
            reads_before = pfs.stats.read_ops
            for p in dataset_paths:
                yield from m.read(p, 2048, 1024)
            return pfs.stats.read_ops - reads_before

        assert drive(sim, job()) == 0
        # second pass split across RAM (level 0) and SSD (level 1)
        assert m.stats.reads_per_level[0] == 3
        assert m.stats.reads_per_level[1] == 5

    def test_ram_reads_faster_than_ssd_reads(self, sim, three_tier, dataset_paths):
        m, _ = three_tier

        def job():
            for p in dataset_paths:
                yield from m.read(p, 0, 1024)
            yield sim.timeout(60.0)
            by_level = {0: [], 1: []}
            for p in dataset_paths:
                info = m.metadata.lookup(p)
                t0 = sim.now
                yield from m.read(p, 4096, 65536)
                by_level[info.level].append(sim.now - t0)
            return by_level

        by_level = drive(sim, job())
        assert max(by_level[0]) < min(by_level[1])


class TestMonarchStats:
    def test_record_accumulates(self):
        s = MonarchStats()
        s.record(0, 100)
        s.record(0, 50)
        s.record(2, 10)
        assert s.reads_per_level == {0: 2, 2: 1}
        assert s.bytes_per_level == {0: 150, 2: 10}
        assert s.total_reads == 3

    def test_hit_ratio_empty(self):
        assert MonarchStats().hit_ratio(pfs_level=1) == 0.0

    def test_hit_ratio(self):
        s = MonarchStats()
        s.record(0, 1)
        s.record(0, 1)
        s.record(1, 1)
        s.record(2, 1)  # pfs
        assert s.hit_ratio(pfs_level=2) == pytest.approx(0.75)
