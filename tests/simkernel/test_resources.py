"""Unit tests for Resource, Container, Store and SimLock."""

from __future__ import annotations

import pytest

from repro.simkernel.core import Simulator
from repro.simkernel.errors import SimulationError
from repro.simkernel.resources import Container, Resource, SimLock, Store


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_grant_immediate_when_free(self, sim):
        res = Resource(sim, capacity=2)
        req = res.request()
        assert req.triggered
        assert res.in_use == 1

    def test_queues_beyond_capacity(self, sim):
        res = Resource(sim, capacity=1)
        first = res.request()
        second = res.request()
        assert first.triggered
        assert not second.triggered
        assert res.queue_len == 1

    def test_release_grants_next_fifo(self, sim):
        res = Resource(sim, capacity=1)
        a = res.request()
        b = res.request()
        c = res.request()
        res.release(a)
        assert b.triggered
        assert not c.triggered

    def test_double_release_raises(self, sim):
        res = Resource(sim, capacity=1)
        a = res.request()
        res.release(a)
        with pytest.raises(SimulationError):
            res.release(a)

    def test_release_pending_request_cancels_it(self, sim):
        res = Resource(sim, capacity=1)
        a = res.request()
        b = res.request()
        res.release(b)  # cancel the queued request
        assert res.queue_len == 0
        res.release(a)
        assert res.in_use == 0

    def test_release_unknown_pending_raises(self, sim):
        res = Resource(sim, capacity=1)
        res.request()
        other = sim.event()
        with pytest.raises(SimulationError):
            res.release(other)

    def test_using_holds_for_duration(self, sim):
        res = Resource(sim, capacity=1)
        spans = []

        def worker():
            start = sim.now
            yield from res.using(2.0)
            spans.append((start, sim.now))

        sim.spawn(worker())
        sim.spawn(worker())
        sim.run()
        # second worker waits for the first to release
        assert spans == [(0.0, 2.0), (0.0, 4.0)]

    def test_using_serializes_at_capacity(self, sim):
        res = Resource(sim, capacity=2)
        done = []

        def worker(i):
            yield from res.using(1.0)
            done.append((sim.now, i))

        for i in range(4):
            sim.spawn(worker(i))
        sim.run()
        assert done == [(1.0, 0), (1.0, 1), (2.0, 2), (2.0, 3)]

    def test_utilization_monitor_tracks_busy(self, sim):
        res = Resource(sim, capacity=1)

        def worker():
            yield from res.using(1.0)
            yield sim.timeout(1.0)

        sim.spawn(worker())
        sim.run()
        assert res.monitor.utilization(0.0, 2.0) == pytest.approx(0.5)


class TestSimLock:
    def test_mutual_exclusion(self, sim):
        lock = SimLock(sim)
        inside = []

        def worker(i):
            req = lock.acquire()
            yield req
            inside.append(i)
            assert len(inside) == 1
            yield sim.timeout(1.0)
            inside.remove(i)
            lock.release(req)

        for i in range(3):
            sim.spawn(worker(i))
        sim.run()
        assert sim.now == 3.0

    def test_locked_property(self, sim):
        lock = SimLock(sim)
        assert not lock.locked
        req = lock.acquire()
        assert lock.locked
        lock.release(req)
        assert not lock.locked

    def test_holding_helper(self, sim):
        lock = SimLock(sim)

        def worker():
            yield from lock.holding(2.0)

        sim.spawn(worker())
        sim.spawn(worker())
        sim.run()
        assert sim.now == 4.0


class TestContainer:
    def test_validation(self, sim):
        with pytest.raises(ValueError):
            Container(sim, capacity=0)
        with pytest.raises(ValueError):
            Container(sim, capacity=10, init=11)

    def test_put_and_get_levels(self, sim):
        c = Container(sim, capacity=100)
        c.put(40)
        sim.run()
        assert c.level == 40
        c.get(15)
        sim.run()
        assert c.level == 25
        assert c.free == 75

    def test_get_blocks_until_available(self, sim):
        c = Container(sim, capacity=100)
        done = []

        def getter():
            yield c.get(50)
            done.append(sim.now)

        def putter():
            yield sim.timeout(2.0)
            yield c.put(50)

        sim.spawn(getter())
        sim.spawn(putter())
        sim.run()
        assert done == [2.0]

    def test_put_blocks_when_full(self, sim):
        c = Container(sim, capacity=10, init=10)
        done = []

        def putter():
            yield c.put(5)
            done.append(sim.now)

        def getter():
            yield sim.timeout(3.0)
            yield c.get(6)

        sim.spawn(putter())
        sim.spawn(getter())
        sim.run()
        assert done == [3.0]

    def test_oversized_requests_rejected(self, sim):
        c = Container(sim, capacity=10)
        with pytest.raises(ValueError):
            c.put(11)
        with pytest.raises(ValueError):
            c.get(11)
        with pytest.raises(ValueError):
            c.put(-1)
        with pytest.raises(ValueError):
            c.get(-1)

    def test_fifo_within_each_side(self, sim):
        c = Container(sim, capacity=10)
        order = []

        def getter(i, amount):
            yield c.get(amount)
            order.append(i)

        sim.spawn(getter(0, 8))
        sim.spawn(getter(1, 2))  # could fit first, but FIFO holds it back
        c.put(8)
        sim.run(until=1.0)
        assert order == [0]
        c.put(2)
        sim.run()
        assert order == [0, 1]

    def test_level_never_exceeds_capacity(self, sim):
        c = Container(sim, capacity=10)
        for _ in range(5):
            c.put(3)
        sim.run()
        assert c.level <= 10


class TestStore:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    def test_put_get_roundtrip(self, sim):
        st = Store(sim)
        st.put("a")
        got = st.get()
        sim.run()
        assert got.value == "a"

    def test_fifo_order(self, sim):
        st = Store(sim)
        for i in range(5):
            st.put(i)
        got = [st.get() for _ in range(5)]
        sim.run()
        assert [g.value for g in got] == [0, 1, 2, 3, 4]

    def test_get_blocks_until_item(self, sim):
        st = Store(sim)
        times = []

        def consumer():
            item = yield st.get()
            times.append((sim.now, item))

        def producer():
            yield sim.timeout(2.0)
            yield st.put("x")

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert times == [(2.0, "x")]

    def test_bounded_put_blocks_when_full(self, sim):
        st = Store(sim, capacity=1)
        progress = []

        def producer():
            for i in range(3):
                yield st.put(i)
                progress.append((sim.now, i))

        def consumer():
            for _ in range(3):
                yield sim.timeout(1.0)
                yield st.get()

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        # item 0 accepted at t=0; 1 and 2 wait for consumer drains
        assert progress[0] == (0.0, 0)
        assert progress[1][0] == 1.0
        assert progress[2][0] == 2.0

    def test_unbounded_never_blocks(self, sim):
        st = Store(sim)
        evs = [st.put(i) for i in range(1000)]
        assert all(e.triggered for e in evs)
        assert len(st) == 1000

    def test_full_property(self, sim):
        st = Store(sim, capacity=2)
        assert not st.full
        st.put(1)
        st.put(2)
        sim.run()
        assert st.full

    def test_multiple_getters_fifo(self, sim):
        st = Store(sim)
        got = []

        def consumer(i):
            item = yield st.get()
            got.append((i, item))

        sim.spawn(consumer(0))
        sim.spawn(consumer(1))
        sim.run(until=0.5)
        st.put("a")
        st.put("b")
        sim.run()
        assert got == [(0, "a"), (1, "b")]
