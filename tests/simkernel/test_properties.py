"""Property-based tests for the DES kernel (hypothesis)."""

from __future__ import annotations

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel.core import Simulator
from repro.simkernel.resources import Container, Resource, Store


pytestmark = pytest.mark.hypothesis_heavy

@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40))
def test_events_fire_in_nondecreasing_time_order(delays):
    """The clock never goes backwards, whatever the schedule."""
    sim = Simulator()
    fired = []
    for d in delays:
        sim.timeout(d).add_callback(lambda e: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    capacity=st.integers(min_value=1, max_value=8),
    jobs=st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=30),
)
@settings(max_examples=50)
def test_resource_never_exceeds_capacity(capacity, jobs):
    """in_use <= capacity at every observable instant; all jobs complete."""
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    violations = []
    completed = []

    def worker(hold):
        req = res.request()
        yield req
        if res.in_use > res.capacity:
            violations.append(res.in_use)
        yield sim.timeout(hold)
        res.release(req)
        completed.append(hold)

    for hold in jobs:
        sim.spawn(worker(hold))
    sim.run()
    assert not violations
    assert len(completed) == len(jobs)
    assert res.in_use == 0


@given(
    capacity=st.floats(min_value=1.0, max_value=1000.0),
    ops=st.lists(
        st.tuples(st.sampled_from(["put", "get"]), st.floats(min_value=0.0, max_value=50.0)),
        max_size=40,
    ),
)
@settings(max_examples=50)
def test_container_level_always_in_bounds(capacity, ops):
    """0 <= level <= capacity regardless of the operation sequence."""
    sim = Simulator()
    c = Container(sim, capacity=capacity)
    for kind, amount in ops:
        amount = min(amount, capacity)
        if kind == "put":
            c.put(amount)
        else:
            c.get(amount)
        sim.run()
        assert 0.0 <= c.level <= capacity + 1e-9


@given(items=st.lists(st.integers(), min_size=1, max_size=60),
       capacity=st.one_of(st.none(), st.integers(min_value=1, max_value=10)))
@settings(max_examples=50)
def test_store_preserves_fifo_order_and_count(items, capacity):
    """Everything put comes out exactly once, in order."""
    sim = Simulator()
    st_ = Store(sim, capacity=capacity)
    out = []

    def producer():
        for item in items:
            yield st_.put(item)

    def consumer():
        for _ in items:
            got = yield st_.get()
            out.append(got)

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert out == items


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25)
def test_simulation_is_deterministic_per_seed(seed):
    """Two identical programs produce identical traces."""
    import numpy as np

    def trace(s):
        sim = Simulator()
        rng = np.random.default_rng(s)
        log = []
        res = Resource(sim, capacity=2)

        def worker(i, hold):
            yield from res.using(hold)
            log.append((round(sim.now, 9), i))

        for i, hold in enumerate(rng.random(10)):
            sim.spawn(worker(i, float(hold) + 0.01))
        sim.run()
        return log

    assert trace(seed) == trace(seed)
