"""Edge-case tests for the utilization monitor's window arithmetic."""

from __future__ import annotations

import pytest

from repro.simkernel.monitor import UtilizationMonitor


class TestWindowInterpolation:
    def test_area_between_marks_is_linear(self, sim):
        mon = UtilizationMonitor(sim, capacity=1)

        def proc():
            mon.record(1)
            yield sim.timeout(4.0)
            mon.record(0)
            mon.mark()
            yield sim.timeout(4.0)
            mon.mark()

        p = sim.spawn(proc())
        sim.run(p)
        # midpoint of the busy window interpolates to half its area
        assert mon.mean_level(0.0, 2.0) == pytest.approx(1.0)
        assert mon.mean_level(2.0, 4.0) == pytest.approx(1.0)
        assert mon.mean_level(4.0, 8.0) == pytest.approx(0.0)

    def test_query_before_start_is_zero_area(self, sim):
        mon = UtilizationMonitor(sim, capacity=1)
        mon.record(1)
        sim.timeout(2.0)
        sim.run()
        assert mon._area_at(-5.0) == 0.0

    def test_window_utilization_with_no_marks(self, sim):
        mon = UtilizationMonitor(sim, capacity=2)

        def proc():
            mon.record(1)
            yield sim.timeout(2.0)

        p = sim.spawn(proc())
        sim.run(p)
        windows = mon.window_utilization()
        assert len(windows) == 1
        assert windows[0] == pytest.approx(0.5)  # level 1 of capacity 2

    def test_repeated_marks_at_same_instant(self, sim):
        mon = UtilizationMonitor(sim, capacity=1)

        def proc():
            mon.record(1)
            yield sim.timeout(1.0)
            mon.mark()
            mon.mark()  # zero-width window
            yield sim.timeout(1.0)

        p = sim.spawn(proc())
        sim.run(p)
        windows = mon.window_utilization()
        assert windows[0] == pytest.approx(1.0)
        assert windows[1] == 0.0  # zero-width window reports 0

    def test_time_weighting_vs_sample_mean(self, sim):
        """A brief spike barely moves the time-weighted mean."""
        mon = UtilizationMonitor(sim, capacity=10)

        def proc():
            mon.record(1)
            yield sim.timeout(99.0)
            mon.record(10)
            yield sim.timeout(1.0)
            mon.record(0)

        p = sim.spawn(proc())
        sim.run(p)
        assert mon.mean_level(0.0, 100.0) == pytest.approx(1.09)
