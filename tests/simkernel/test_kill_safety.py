"""Regression tests: killing processes must never leak resources.

The distributed trainer's drop-remainder path kills whole pipelines
mid-flight; an early implementation leaked a Resource slot when a process
was killed while still *waiting* for its grant (the request stayed queued,
got granted to a dead process, and the slot was lost forever — a cluster
run then deadlocked on a stuck OST).  These tests pin the fixed behaviour.
"""

from __future__ import annotations

import pytest

from repro.simkernel.core import Simulator
from repro.simkernel.resources import Resource, SimLock


class TestKillWhileHolding:
    def test_slot_released_when_holder_killed(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            yield from res.using(100.0)

        p = sim.spawn(holder())

        def killer():
            yield sim.timeout(1.0)
            p.kill()

        sim.spawn(killer())
        sim.run()
        assert res.in_use == 0
        assert res.queue_len == 0

    def test_waiter_gets_slot_after_holder_killed(self, sim):
        res = Resource(sim, capacity=1)
        acquired = []

        def holder():
            yield from res.using(100.0)

        def waiter():
            yield from res.using(1.0)
            acquired.append(sim.now)

        p = sim.spawn(holder())
        sim.spawn(waiter())

        def killer():
            yield sim.timeout(2.0)
            p.kill()

        sim.spawn(killer())
        sim.run()
        assert acquired == [3.0]


class TestKillWhileWaiting:
    def test_queued_request_cancelled_on_kill(self, sim):
        """The original bug: kill a process still waiting for its grant."""
        res = Resource(sim, capacity=1)

        def holder():
            yield from res.using(10.0)

        def waiter():
            yield from res.using(10.0)

        sim.spawn(holder())
        w = sim.spawn(waiter())

        def killer():
            yield sim.timeout(1.0)
            w.kill()  # waiter still queued at this point

        sim.spawn(killer())
        sim.run()
        # the holder's release must not grant a slot to the dead waiter
        assert res.in_use == 0
        assert res.queue_len == 0

    def test_no_slot_leak_under_mass_kill(self, sim):
        """Kill a crowd of waiters at random moments; capacity must survive."""
        res = Resource(sim, capacity=2)
        procs = []

        def worker():
            for _ in range(5):
                yield from res.using(0.7)

        for _ in range(10):
            procs.append(sim.spawn(worker()))

        def killer():
            yield sim.timeout(1.1)
            for p in procs[::2]:
                p.kill()

        sim.spawn(killer())
        sim.run()
        assert res.in_use == 0
        assert res.queue_len == 0
        # survivors all finished
        assert all(p.ok for p in procs[1::2])

    def test_interrupt_inside_using_releases(self, sim):
        from repro.simkernel.errors import Interrupt

        res = Resource(sim, capacity=1)

        def holder():
            try:
                yield from res.using(100.0)
            except Interrupt:
                pass

        p = sim.spawn(holder())

        def interrupter():
            yield sim.timeout(1.0)
            p.interrupt()

        sim.spawn(interrupter())
        sim.run()
        assert res.in_use == 0

    def test_lock_released_on_kill(self, sim):
        lock = SimLock(sim)

        def holder():
            yield from lock.holding(50.0)

        p = sim.spawn(holder())

        def killer():
            yield sim.timeout(1.0)
            p.kill()

        sim.spawn(killer())
        sim.run()
        assert not lock.locked


class TestNestedComposites:
    def test_allof_of_anyofs(self, sim):
        def proc():
            c1 = sim.any_of([sim.timeout(1.0, "a"), sim.timeout(9.0, "b")])
            c2 = sim.any_of([sim.timeout(2.0, "c"), sim.timeout(8.0, "d")])
            vals = yield sim.all_of([c1, c2])
            return (sim.now, [v for _, v in vals])

        t, vals = sim.run(sim.spawn(proc()))
        assert t == 2.0
        assert vals == ["a", "c"]

    def test_anyof_of_allofs(self, sim):
        def proc():
            slow = sim.all_of([sim.timeout(5.0), sim.timeout(6.0)])
            fast = sim.all_of([sim.timeout(1.0), sim.timeout(2.0)])
            ev, _ = yield sim.any_of([slow, fast])
            return (sim.now, ev is fast)

        t, was_fast = sim.run(sim.spawn(proc()))
        assert t == 2.0
        assert was_fast
