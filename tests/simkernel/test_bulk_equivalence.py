"""Bulk fast-path equivalence: bulk chunk trains vs chunked execution.

The bulk engine is purely an *execution strategy*; the simulated timeline
must not change.  Uncontended trains must match chunked execution to
floating-point accumulation accuracy (within 1e-9 relative), and trains
that hit contention must fall back to literally the per-chunk schedule —
bit-exact completion times.
"""

from __future__ import annotations

import numpy as np

from repro.simkernel.core import Simulator
from repro.storage.device import Device, SATA_SSD
from repro.storage.pfs import ParallelFileSystem

MIB = 1 << 20
SIZES = [MIB] * 7 + [MIB // 2]


def _finish(sim: Simulator, gen) -> float:
    sim.run(sim.spawn(gen, name="job"))
    return sim.now


class TestDeviceBulk:
    def _run(self, mode: str) -> float:
        sim = Simulator()
        dev = Device(sim, SATA_SSD, rng=np.random.default_rng(7))
        rng = np.random.default_rng(123)

        def chunked():
            for n in SIZES:
                yield from dev.write(n, rng)

        def bulk():
            yield from dev.write_bulk(SIZES, rng)

        return _finish(sim, bulk() if mode == "bulk" else chunked())

    def test_uncontended_write_bulk_matches_chunked(self):
        chunked = self._run("chunked")
        bulk = self._run("bulk")
        assert abs(bulk - chunked) <= 1e-9 * chunked

    def test_uncontended_read_bulk_matches_chunked(self):
        ends = {}
        for mode in ("chunked", "bulk"):
            sim = Simulator()
            dev = Device(sim, SATA_SSD, rng=np.random.default_rng(7))
            rng = np.random.default_rng(5)

            def chunked():
                for n in SIZES:
                    yield from dev.read(n, rng)

            def bulk():
                yield from dev.read_bulk(SIZES, rng)

            ends[mode] = _finish(sim, bulk() if mode == "bulk" else chunked())
        assert abs(ends["bulk"] - ends["chunked"]) <= 1e-9 * ends["chunked"]

    def test_contended_channel_falls_back_bit_exact(self):
        """Two concurrent trains on one SATA-SSD channel: the bulk path
        must degrade to exactly the chunked interleaving."""
        ends = {}
        for mode in ("chunked", "bulk"):
            sim = Simulator()
            dev = Device(sim, SATA_SSD, rng=np.random.default_rng(7))
            rngs = [np.random.default_rng(1), np.random.default_rng(2)]

            def writer(rng):
                if mode == "bulk":
                    yield from dev.write_bulk(SIZES, rng)
                else:
                    for n in SIZES:
                        yield from dev.write(n, rng)

            procs = [sim.spawn(writer(r), name=f"w{i}") for i, r in enumerate(rngs)]
            sim.run(sim.all_of(procs))
            ends[mode] = sim.now
        assert ends["bulk"] == ends["chunked"]

    def test_staggered_arrival_preempts_bit_exact(self):
        """A second writer arriving mid-train must see the identical queue
        state it would under chunked execution."""
        ends = {}
        for mode in ("chunked", "bulk"):
            sim = Simulator()
            dev = Device(sim, SATA_SSD, rng=np.random.default_rng(7))
            r1, r2 = np.random.default_rng(1), np.random.default_rng(2)

            def first():
                if mode == "bulk":
                    yield from dev.write_bulk(SIZES, r1)
                else:
                    for n in SIZES:
                        yield from dev.write(n, r1)

            def second():
                # Land in the middle of the first train.
                yield sim.timeout(dev.write_time(MIB) * 2.5)
                yield from dev.write(3 * MIB, r2)

            procs = [sim.spawn(first(), name="a"), sim.spawn(second(), name="b")]
            sim.run(sim.all_of(procs))
            ends[mode] = sim.now
        assert ends["bulk"] == ends["chunked"]


class TestPFSBulk:
    CHUNK = 256 * 1024  # sub-stripe: every chunk is a single OST piece

    def _run(self, mode: str) -> tuple[float, int]:
        sim = Simulator()
        fs = ParallelFileSystem(sim, rng=np.random.default_rng(11))
        sizes = [self.CHUNK] * 12
        fs.add_file("/data/f", sum(sizes))
        rng = np.random.default_rng(9)

        def job():
            handle = yield from fs.open("/data/f")
            if mode == "bulk":
                yield from fs.pread_bulk(handle, 0, sizes, sequential=True, rng=rng)
            else:
                pos = 0
                for n in sizes:
                    yield from fs.pread(handle, pos, n, sequential=True, rng=rng)
                    pos += n

        end = _finish(sim, job())
        return end, fs.stats.read_ops

    def test_uncontended_pread_bulk_matches_chunked(self):
        chunked_end, chunked_ops = self._run("chunked")
        bulk_end, bulk_ops = self._run("bulk")
        assert abs(bulk_end - chunked_end) <= 1e-9 * chunked_end
        # Operation accounting must agree too (the paper reports op counts).
        assert bulk_ops == chunked_ops
