"""Ordering invariants of the calendar/batch-advance scheduler (hypothesis).

The batch-advance kernel keeps at-``now`` work in per-priority deques and
only strictly-future work in the heap; these properties pin the contract
that makes that safe: dispatch order must be exactly what a single
``(time, priority, seq)`` heap — the pre-calendar reference scheduler —
would produce, for arbitrary schedules including work scheduled *during*
dispatch.  Every test runs the same program against the live kernel and
an independent heapq model and compares the full dispatch trace.
"""

from __future__ import annotations

import heapq

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel.core import PRIORITY_NORMAL, PRIORITY_URGENT, Simulator
from repro.simkernel.errors import SimulationError

pytestmark = pytest.mark.hypothesis_heavy


class _HeapReference:
    """The reference scheduler: one heap ordered by (time, priority, seq)."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list = []
        self._seq = 0

    def schedule(self, delay: float, priority: int, fn) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, priority, self._seq, fn))

    def run(self) -> None:
        while self._heap:
            when, _prio, _seq, fn = heapq.heappop(self._heap)
            self.now = when
            fn()


#: a delay pool rich in exact ties, so same-timestamp cohorts actually form
_DELAYS = st.sampled_from([0.0, 0.0, 0.25, 0.5, 0.5, 1.0, 2.0])
_PRIORITIES = st.sampled_from([PRIORITY_URGENT, PRIORITY_NORMAL])
#: (delay, priority, children) — children are scheduled mid-dispatch,
#: exercising the at-now deques and heap re-entry during a cohort
_OPS = st.lists(
    st.tuples(
        _DELAYS,
        _PRIORITIES,
        st.lists(st.tuples(_DELAYS, _PRIORITIES), max_size=3),
    ),
    min_size=1,
    max_size=30,
)


@given(ops=_OPS)
@settings(max_examples=200)
def test_dispatch_trace_matches_heapq_reference(ops):
    """Kernel dispatch == reference heap dispatch, trace for trace."""

    def drive(schedule_raw, clock, run):
        trace = []

        def make_fn(tag, children):
            def fn():
                trace.append((clock(), tag))
                for j, (delay, prio) in enumerate(children):
                    schedule_raw(delay, prio, make_fn((tag, j), ()))

            return fn

        for i, (delay, prio, children) in enumerate(ops):
            schedule_raw(delay, prio, make_fn(i, children))
        run()
        return trace

    ref = _HeapReference()
    expected = drive(
        lambda d, p, fn: ref.schedule(d, p, fn),
        lambda: ref.now,
        ref.run,
    )

    sim = Simulator()
    actual = drive(
        lambda d, p, fn: sim.call_after(d, lambda _a: fn(), priority=p),
        lambda: sim.now,
        sim.run,
    )

    assert actual == expected


@given(n=st.integers(min_value=1, max_value=25), when=st.sampled_from([0.0, 1.5]))
@settings(max_examples=50)
def test_same_timestamp_fifo_within_tier(n, when):
    """Work at one instant and priority dispatches in insertion order."""
    sim = Simulator()
    order: list[int] = []
    for i in range(n):
        sim.call_at(when, lambda _a, i=i: order.append(i))
    # Event-based work obeys the same FIFO: timeouts to the same instant
    # fire in creation order, after the earlier continuations.
    for i in range(n, 2 * n):
        sim.timeout(when).add_callback(lambda _e, i=i: order.append(i))
    sim.run()
    assert order == list(range(2 * n))


@given(tiers=st.lists(_PRIORITIES, min_size=2, max_size=30))
@settings(max_examples=100)
def test_cross_tier_priority_order(tiers):
    """At one instant every urgent slot runs before any normal slot."""
    sim = Simulator()
    order: list[tuple[int, int]] = []
    for i, prio in enumerate(tiers):
        sim.call_at(1.0, lambda _a, i=i, p=prio: order.append((p, i)), priority=prio)
    sim.run()
    # Urgent block first, then the normal block, FIFO within each.
    urgent = [i for i, p in enumerate(tiers) if p == PRIORITY_URGENT]
    normal = [i for i, p in enumerate(tiers) if p == PRIORITY_NORMAL]
    assert order == [(PRIORITY_URGENT, i) for i in urgent] + [
        (PRIORITY_NORMAL, i) for i in normal
    ]


@given(ops=st.lists(st.tuples(_DELAYS, _PRIORITIES), min_size=1, max_size=30))
@settings(max_examples=100)
def test_peek_step_consistency(ops):
    """peek() names the instant step() then dispatches; time never reverses."""
    sim = Simulator()
    fired: list[float] = []
    for delay, prio in ops:
        sim.call_after(delay, lambda _a: fired.append(sim.now), priority=prio)
    seen: list[float] = []
    while sim.peek() != float("inf"):
        promised = sim.peek()
        sim.step()
        assert sim.now == promised
        seen.append(promised)
    assert seen == sorted(seen)
    assert len(fired) == len(ops)
    assert fired == seen


@given(advance=st.floats(min_value=0.5, max_value=10.0),
       back=st.floats(min_value=1e-6, max_value=0.5, exclude_min=True))
@settings(max_examples=50)
def test_schedule_into_the_past_rejected(advance, back):
    """No API may schedule behind the clock, before or after advancing."""
    sim = Simulator()
    sim.call_after(advance, lambda _a: None)
    sim.run()
    assert sim.now == advance
    with pytest.raises(SimulationError):
        sim.call_at(sim.now - back, lambda _a: None)
    with pytest.raises(ValueError):
        sim.call_after(-back, lambda _a: None)
