"""Unit tests for the named-random-stream registry."""

from __future__ import annotations

import numpy as np

from repro.simkernel.rng import RngRegistry


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        reg = RngRegistry(seed=1)
        assert reg.stream("a") is reg.stream("a")

    def test_same_seed_same_draws(self):
        a = RngRegistry(seed=7).stream("io").random(8)
        b = RngRegistry(seed=7).stream("io").random(8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("io").random(8)
        b = RngRegistry(seed=2).stream("io").random(8)
        assert not np.array_equal(a, b)

    def test_different_names_independent(self):
        reg = RngRegistry(seed=1)
        a = reg.stream("a").random(8)
        b = reg.stream("b").random(8)
        assert not np.array_equal(a, b)

    def test_order_of_creation_irrelevant(self):
        r1 = RngRegistry(seed=5)
        r1.stream("x")
        a = r1.stream("y").random(4)
        r2 = RngRegistry(seed=5)
        b = r2.stream("y").random(4)  # created first this time
        assert np.array_equal(a, b)

    def test_fork_changes_streams(self):
        base = RngRegistry(seed=3)
        f1 = base.fork(1)
        f2 = base.fork(2)
        a = f1.stream("s").random(4)
        b = f2.stream("s").random(4)
        c = base.stream("s").random(4)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_fork_is_deterministic(self):
        a = RngRegistry(seed=3).fork(9).stream("s").random(4)
        b = RngRegistry(seed=3).fork(9).stream("s").random(4)
        assert np.array_equal(a, b)

    def test_names_lists_created_streams(self):
        reg = RngRegistry(seed=0)
        reg.stream("b")
        reg.stream("a")
        assert reg.names() == ["a", "b"]
