"""Unit tests for the DES event loop and process model."""

from __future__ import annotations

import pytest

from repro.simkernel.core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    ProcessKilled,
    SimulationError,
    Simulator,
)
from repro.simkernel.errors import DeadlockError, StaleEventError


class TestEvent:
    def test_starts_pending(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_succeed_carries_value(self, sim):
        ev = sim.event()
        ev.succeed(41)
        sim.run()
        assert ev.ok
        assert ev.value == 41

    def test_fail_carries_exception(self, sim):
        ev = sim.event()
        ev.fail(ValueError("boom"))
        sim.run()
        assert ev.triggered
        assert not ev.ok
        with pytest.raises(ValueError, match="boom"):
            _ = ev.value

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_double_succeed_raises(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(StaleEventError):
            ev.succeed(2)

    def test_succeed_then_fail_raises(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(StaleEventError):
            ev.fail(RuntimeError("late"))

    def test_fail_requires_exception_instance(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")  # type: ignore[arg-type]

    def test_callback_after_processed_runs_immediately(self, sim):
        ev = sim.event()
        ev.succeed("x")
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]

    def test_callbacks_run_in_registration_order(self, sim):
        ev = sim.event()
        order = []
        ev.add_callback(lambda e: order.append(1))
        ev.add_callback(lambda e: order.append(2))
        ev.succeed()
        sim.run()
        assert order == [1, 2]


class TestTimeout:
    def test_advances_clock(self, sim):
        ev = sim.timeout(2.5)
        sim.run()
        assert sim.now == 2.5
        assert ev.processed

    def test_carries_value(self, sim):
        ev = sim.timeout(1.0, value="done")
        sim.run(ev)
        assert ev.value == "done"

    def test_zero_delay_is_allowed(self, sim):
        ev = sim.timeout(0.0)
        sim.run()
        assert ev.processed
        assert sim.now == 0.0

    def test_negative_delay_raises(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_timeouts_fire_in_time_order(self, sim):
        order = []
        sim.timeout(3.0).add_callback(lambda e: order.append(3))
        sim.timeout(1.0).add_callback(lambda e: order.append(1))
        sim.timeout(2.0).add_callback(lambda e: order.append(2))
        sim.run()
        assert order == [1, 2, 3]

    def test_same_time_fires_in_schedule_order(self, sim):
        order = []
        for i in range(5):
            sim.timeout(1.0, value=i).add_callback(lambda e: order.append(e.value))
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestProcess:
    def test_return_value_is_event_value(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "result"

        p = sim.spawn(proc())
        assert sim.run(p) == "result"

    def test_yield_receives_event_value(self, sim):
        def proc():
            got = yield sim.timeout(1.0, value=10)
            return got + 1

        assert sim.run(sim.spawn(proc())) == 11

    def test_process_is_alive_until_done(self, sim):
        def proc():
            yield sim.timeout(5.0)

        p = sim.spawn(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_waiting_on_another_process(self, sim):
        def child():
            yield sim.timeout(2.0)
            return "child-done"

        def parent():
            result = yield sim.spawn(child())
            return result

        assert sim.run(sim.spawn(parent())) == "child-done"

    def test_waiting_on_finished_process_resumes_immediately(self, sim):
        def child():
            yield sim.timeout(1.0)
            return 7

        c = sim.spawn(child())

        def parent():
            yield sim.timeout(3.0)  # child finished long ago
            v = yield c
            return (sim.now, v)

        assert sim.run(sim.spawn(parent())) == (3.0, 7)

    def test_exception_propagates_to_waiter(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise RuntimeError("child failed")

        def parent():
            yield sim.spawn(child())

        p = sim.spawn(parent())
        with pytest.raises(RuntimeError, match="child failed"):
            sim.run(p)

    def test_yielding_non_event_fails_process(self, sim):
        def proc():
            yield 42  # type: ignore[misc]

        p = sim.spawn(proc())
        with pytest.raises(SimulationError, match="must yield Events"):
            sim.run(p)

    def test_cross_simulator_event_rejected(self, sim):
        other = Simulator()

        def proc():
            yield other.event()

        p = sim.spawn(proc())
        with pytest.raises(SimulationError, match="another Simulator"):
            sim.run(p)

    def test_spawn_requires_generator(self, sim):
        with pytest.raises(TypeError):
            Process(sim, lambda: None)  # type: ignore[arg-type]

    def test_two_processes_interleave(self, sim):
        log = []

        def worker(name, delay):
            for _ in range(3):
                yield sim.timeout(delay)
                log.append((sim.now, name))

        sim.spawn(worker("a", 1.0))
        sim.spawn(worker("b", 1.5))
        sim.run()
        # ties at t=3.0 resolve in schedule order: b scheduled its timeout
        # at t=1.5, before a scheduled its own at t=2.0
        assert log == [
            (1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b"), (3.0, "a"), (4.5, "b"),
        ]


class TestInterruptAndKill:
    def test_interrupt_delivers_cause(self, sim):
        caught = []

        def proc():
            try:
                yield sim.timeout(100.0)
            except Interrupt as err:
                caught.append((sim.now, err.cause))

        p = sim.spawn(proc())

        def interrupter():
            yield sim.timeout(1.0)
            p.interrupt(cause="stop now")

        sim.spawn(interrupter())
        sim.run(p)
        assert caught == [(1.0, "stop now")]

    def test_interrupt_finished_process_is_noop(self, sim):
        def proc():
            yield sim.timeout(1.0)

        p = sim.spawn(proc())
        sim.run()
        p.interrupt()  # must not raise

    def test_uncaught_interrupt_fails_process(self, sim):
        def proc():
            yield sim.timeout(100.0)

        p = sim.spawn(proc())

        def interrupter():
            yield sim.timeout(1.0)
            p.interrupt()

        sim.spawn(interrupter())
        sim.run()
        assert p.triggered
        assert isinstance(p.exception, Interrupt)

    def test_kill_terminates_and_marks_processkilled(self, sim):
        def proc():
            yield sim.timeout(100.0)

        p = sim.spawn(proc())

        def killer():
            yield sim.timeout(1.0)
            p.kill()

        sim.spawn(killer())
        sim.run()
        assert isinstance(p.exception, ProcessKilled)

    def test_kill_runs_finally_blocks(self, sim):
        cleaned = []

        def proc():
            try:
                yield sim.timeout(100.0)
            finally:
                cleaned.append(True)

        p = sim.spawn(proc())

        def killer():
            yield sim.timeout(1.0)
            p.kill()

        sim.spawn(killer())
        sim.run()
        assert cleaned == [True]


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        def proc():
            vals = yield sim.all_of([sim.timeout(1.0, "a"), sim.timeout(3.0, "b")])
            return (sim.now, vals)

        assert sim.run(sim.spawn(proc())) == (3.0, ("a", "b"))

    def test_all_of_empty_fires_immediately(self, sim):
        cond = sim.all_of([])
        sim.run()
        assert cond.ok
        assert cond.value == ()

    def test_all_of_fails_on_first_child_failure(self, sim):
        bad = sim.event()
        bad.fail(ValueError("nope"))
        cond = AllOf(sim, [sim.timeout(5.0), bad])
        sim.run()
        assert isinstance(cond.exception, ValueError)

    def test_any_of_fires_on_first(self, sim):
        def proc():
            ev, value = yield sim.any_of([sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")])
            return (sim.now, value)

        assert sim.run(sim.spawn(proc())) == (1.0, "fast")

    def test_any_of_with_already_fired_event(self, sim):
        done = sim.event()
        done.succeed("x")
        sim.run()
        cond = AnyOf(sim, [done, sim.event()])
        sim.run()
        assert cond.ok


class TestRun:
    def test_run_until_timestamp(self, sim):
        sim.timeout(1.0)
        sim.timeout(10.0)
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_run_until_past_raises(self, sim):
        sim.timeout(10.0)
        sim.run(until=5.0)
        with pytest.raises(ValueError):
            sim.run(until=1.0)

    def test_run_until_unfired_event_deadlocks(self, sim):
        ev = sim.event()
        with pytest.raises(DeadlockError):
            sim.run(ev)

    def test_run_drains_queue(self, sim):
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.run()
        assert sim.peek() == float("inf")

    def test_cannot_schedule_into_the_past(self, sim):
        ev = Event(sim)
        with pytest.raises(SimulationError):
            sim._schedule(ev, 1, at=-1.0)

    def test_determinism_same_seedless_program(self):
        def program():
            s = Simulator()
            log = []

            def worker(name):
                for i in range(10):
                    yield s.timeout(0.1 * (i + 1))
                    log.append((round(s.now, 6), name, i))

            for n in range(4):
                s.spawn(worker(n))
            s.run()
            return log

        assert program() == program()
