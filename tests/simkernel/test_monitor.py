"""Unit tests for the time-weighted monitors."""

from __future__ import annotations

import pytest

from repro.simkernel.monitor import TimeSeriesMonitor, UtilizationMonitor


class TestUtilizationMonitor:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            UtilizationMonitor(sim, capacity=0)

    def test_negative_level_rejected(self, sim):
        mon = UtilizationMonitor(sim, capacity=2)
        with pytest.raises(ValueError):
            mon.record(-1)

    def test_constant_level_integrates(self, sim):
        mon = UtilizationMonitor(sim, capacity=4)
        mon.record(2)
        sim.timeout(10.0)
        sim.run()
        assert mon.mean_level() == pytest.approx(2.0)
        assert mon.utilization() == pytest.approx(0.5)

    def test_step_profile(self, sim):
        mon = UtilizationMonitor(sim, capacity=1)

        def proc():
            mon.record(1)
            yield sim.timeout(3.0)
            mon.record(0)
            yield sim.timeout(1.0)

        sim.spawn(proc())
        sim.run()
        assert mon.utilization(0.0, 4.0) == pytest.approx(0.75)

    def test_empty_window_is_zero(self, sim):
        mon = UtilizationMonitor(sim, capacity=1)
        assert mon.mean_level(5.0, 5.0) == 0.0

    def test_window_utilization_per_epoch(self, sim):
        mon = UtilizationMonitor(sim, capacity=1)

        def proc():
            mon.record(1)
            yield sim.timeout(2.0)
            mon.record(0)
            mon.mark()  # epoch 1 end: 100% busy
            yield sim.timeout(2.0)
            mon.mark()  # epoch 2 end: 0% busy

        sim.spawn(proc())
        sim.run()
        windows = mon.window_utilization()
        assert windows[0] == pytest.approx(1.0)
        assert windows[1] == pytest.approx(0.0)

    def test_utilization_between_marks_is_exact(self, sim):
        mon = UtilizationMonitor(sim, capacity=2)

        def proc():
            mon.record(2)
            yield sim.timeout(1.0)
            mon.mark()
            mon.record(0)
            yield sim.timeout(1.0)
            mon.mark()

        sim.spawn(proc())
        sim.run()
        assert mon.utilization(0.0, 1.0) == pytest.approx(1.0)
        assert mon.utilization(1.0, 2.0) == pytest.approx(0.0)

    def test_level_property(self, sim):
        mon = UtilizationMonitor(sim, capacity=3)
        mon.record(2)
        assert mon.level == 2


class TestTimeSeriesMonitor:
    def test_empty_stats(self, sim):
        mon = TimeSeriesMonitor(sim)
        assert len(mon) == 0
        assert mon.mean == 0.0
        assert mon.std == 0.0

    def test_observe_records_time(self, sim):
        mon = TimeSeriesMonitor(sim)

        def proc():
            yield sim.timeout(1.5)
            mon.observe(10.0)

        sim.spawn(proc())
        sim.run()
        assert mon.times == [1.5]
        assert mon.values == [10.0]

    def test_summary_statistics(self, sim):
        mon = TimeSeriesMonitor(sim)
        for v in (2.0, 4.0, 6.0, 8.0):
            mon.observe(v)
        assert mon.mean == pytest.approx(5.0)
        assert mon.min == 2.0
        assert mon.max == 8.0
        assert mon.std == pytest.approx(2.2360679, rel=1e-6)

    def test_single_sample_std_zero(self, sim):
        mon = TimeSeriesMonitor(sim)
        mon.observe(3.0)
        assert mon.std == 0.0
