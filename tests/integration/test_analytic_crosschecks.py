"""Analytic cross-checks: the simulation agrees with closed-form math.

Each test derives an expected time from the calibration constants by hand
(the derivations mirror experiments/calibration.py) and checks the
simulated result lands within tolerance — guarding against silent
regressions in the queueing/bandwidth models.
"""

from __future__ import annotations

import pytest

from repro.data.imagenet import IMAGENET_100G, scaled
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.runner import run_once
from repro.framework.models import LENET, RESNET50
from repro.storage.blockmath import GIB, MIB

SCALE = 1 / 1024
SEED = 4


class TestAnalyticEpochTimes:
    def test_vanilla_local_lenet_bound_by_max_of_floors(self):
        """LeNet local epoch ~ max(SSD stream, CPU map floor, GPU floor)."""
        calib = DEFAULT_CALIBRATION
        rec = run_once("vanilla-local", "lenet", IMAGENET_100G,
                       scale=SCALE, seed=SEED, epochs=1)
        sspec = scaled(IMAGENET_100G, SCALE)
        bytes_total = sspec.n_samples * sspec.size_model.mean_bytes
        ssd_floor = bytes_total / (calib.ssd.read_bw_mib * MIB) / SCALE
        cpu_floor = (sspec.n_samples * LENET.preprocess_time(sspec.size_model.mean_bytes)
                     / calib.pipeline.num_map_workers) / SCALE
        floor = max(ssd_floor, cpu_floor)
        # page-cache hits can shave the SSD part, never beat the CPU floor
        assert 0.85 * cpu_floor <= rec.epoch_times_s[0] <= 1.35 * floor

    def test_resnet_epoch_matches_compute_closed_form(self):
        """ResNet is compute-bound: epoch ~ steps * (gpu + host)."""
        calib = DEFAULT_CALIBRATION
        rec = run_once("vanilla-local", "resnet50", IMAGENET_100G,
                       scale=SCALE, seed=SEED, epochs=1)
        sspec = scaled(IMAGENET_100G, SCALE)
        batch = max(8, round(calib.pipeline.batch_size * SCALE))
        steps = sspec.n_samples / batch
        step_wall = (RESNET50.step_time(batch, calib.node.n_gpus)
                     + RESNET50.host_time() * batch / calib.pipeline.batch_size)
        expected = steps * step_wall / SCALE
        assert rec.epoch_times_s[0] == pytest.approx(expected, rel=0.10)

    def test_lustre_effective_bandwidth_in_calibrated_range(self):
        """vanilla-lustre LeNet: effective client bw ~ 230-285 MiB/s."""
        rec = run_once("vanilla-lustre", "lenet", IMAGENET_100G,
                       scale=SCALE, seed=SEED)
        for t in rec.epoch_times_s:
            eff = 100 * GIB / t / MIB
            assert 200 < eff < 310, f"effective {eff:.0f} MiB/s"

    def test_monarch_epoch1_not_below_ssd_write_floor(self):
        """Epoch 1 must absorb the whole dataset as SSD writes."""
        calib = DEFAULT_CALIBRATION
        rec = run_once("monarch", "lenet", IMAGENET_100G, scale=SCALE, seed=SEED)
        write_floor = 100 * GIB / (calib.ssd.write_bw_mib * MIB)
        assert rec.epoch_times_s[0] >= 0.95 * write_floor

    def test_caching_epoch1_at_least_lustre_read_time(self):
        rec_cache = run_once("vanilla-caching", "lenet", IMAGENET_100G,
                             scale=SCALE, seed=SEED)
        rec_lustre = run_once("vanilla-lustre", "lenet", IMAGENET_100G,
                              scale=SCALE, seed=SEED)
        assert rec_cache.epoch_times_s[0] >= rec_lustre.epoch_times_s[0]


class TestAnalyticOpCounts:
    def test_lustre_ops_equal_chunks_plus_opens(self):
        """Data ops = ceil(shard/chunk) per shard; metadata = one open per
        shard per epoch — exactly, no slack."""
        from repro.experiments.scenarios import build_run

        handle = build_run("vanilla-lustre", "lenet", IMAGENET_100G,
                           DEFAULT_CALIBRATION, SCALE, seed=SEED, epochs=1)
        handle.execute()
        chunk = DEFAULT_CALIBRATION.pipeline.read_chunk
        expected_reads = sum(
            -(-s.size_bytes // chunk) for s in handle.manifest.shards
        )
        snap = handle.pfs.stats.snapshot()
        assert snap.read_ops == expected_reads
        assert snap.open_ops == handle.manifest.n_shards
        assert snap.bytes_read == handle.manifest.total_bytes

    def test_monarch_metadata_init_closed_form(self):
        """init ~= (1 + n_shards) MDS ops at the corrected latency / share."""
        from repro.experiments.calibration import ScaledEnvironment
        from repro.experiments.scenarios import build_run

        handle = build_run("monarch", "lenet", IMAGENET_100G,
                           DEFAULT_CALIBRATION, SCALE, seed=SEED, epochs=1)
        result = handle.execute()
        env = handle.env
        n = handle.manifest.n_shards
        share = 1 - DEFAULT_CALIBRATION.interference_mean_load
        expected = (n + 1) * env.mds_latency_s / share
        assert result.init_time_s == pytest.approx(expected, rel=0.25)
