"""Failure-injection integration tests.

The paper's baselines have hard failure modes (tf.data's cache needs the
dataset to fit; vanilla-local needs it staged) — these tests check that
the reproduction fails the same way, loudly, instead of silently
degrading.
"""

from __future__ import annotations

import pytest

from repro.data.imagenet import IMAGENET_200G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.scenarios import build_run
from repro.framework.cache import CacheOverflowError
from repro.storage.base import NoSpaceError

SCALE = 1 / 2048


class TestCapacityFailures:
    def test_vanilla_caching_overflows_on_200g(self):
        """tf.data cache with a dataset bigger than the tier: hard failure
        (the paper excludes vanilla-caching from Fig. 4 for this reason)."""
        calib = DEFAULT_CALIBRATION.busy()
        handle = build_run("vanilla-caching", "lenet", IMAGENET_200G,
                           calib=calib, scale=SCALE, seed=1, epochs=1)
        with pytest.raises(CacheOverflowError):
            handle.execute()

    def test_vanilla_local_cannot_stage_200g(self):
        with pytest.raises(NoSpaceError):
            build_run("vanilla-local", "lenet", IMAGENET_200G,
                      calib=DEFAULT_CALIBRATION.busy(), scale=SCALE, seed=1)

    def test_monarch_handles_200g_gracefully(self):
        """The same workload that kills both baselines completes under
        MONARCH, with part of the namespace marked unplaceable."""
        calib = DEFAULT_CALIBRATION.busy()
        handle = build_run("monarch", "lenet", IMAGENET_200G,
                           calib=calib, scale=SCALE, seed=1, epochs=1)
        result = handle.execute()
        assert result.epochs[0].records == handle.dataset.n_samples
        stats = handle.monarch.placement.stats
        assert stats.completed > 0
        assert stats.unplaceable > 0
        assert handle.local_fs.used_bytes <= handle.env.local_capacity_bytes


class TestInjectedNoSpace:
    def test_nospace_mid_copy_keeps_trainer_running(self):
        """ENOSPC faults during placement: copies give up cleanly, the
        occupancy ledger stays consistent and training never notices."""
        from repro.faults import FaultPlan, TransientFaults
        from repro.data.imagenet import IMAGENET_100G

        # Every tier write in the first half-second of the run fails with
        # ENOSPC; placements retried by later epochs' reads succeed.
        plan = FaultPlan(
            {"/mnt/ssd": [TransientFaults(start=0.0, end=0.5, write_p=1.0, error="nospace")]}
        )
        handle = build_run("monarch", "lenet", IMAGENET_100G,
                           calib=DEFAULT_CALIBRATION, scale=1 / 256, seed=3,
                           epochs=2, fault_plan=plan)
        result = handle.execute()
        assert len(result.epochs) == 2
        assert all(e.records == handle.dataset.n_samples for e in result.epochs)
        stats = handle.monarch.placement.stats
        assert stats.copy_giveups > 0  # the window really hit copies
        assert stats.completed > 0  # ... and placement recovered after it
        # Clean unwind: occupancy matches the per-file ledger, within
        # capacity, and no reservation leaked.
        local = handle.local_fs
        assert local.used_bytes == sum(local.file_size(p) for p in local.paths())
        assert local.used_bytes <= local.capacity_bytes
        assert all(v == 0 for v in handle.monarch.placement._reserved.values())
        # Capacity pressure is not a device fault: no quarantine happened.
        assert handle.monarch.health.quarantines == 0

    def test_unrecoverable_nospace_serves_everything_from_pfs(self):
        """A permanent ENOSPC condition degrades to PFS-only service."""
        from repro.faults import FaultPlan, TransientFaults
        from repro.data.imagenet import IMAGENET_100G

        plan = FaultPlan(
            {"/mnt/ssd": [TransientFaults(start=0.0, end=1e9, write_p=1.0, error="nospace")]}
        )
        handle = build_run("monarch", "lenet", IMAGENET_100G,
                           calib=DEFAULT_CALIBRATION, scale=1 / 512, seed=3,
                           epochs=2, fault_plan=plan)
        result = handle.execute()
        assert len(result.epochs) == 2
        stats = handle.monarch.placement.stats
        assert stats.completed == 0
        assert stats.copy_giveups > 0
        assert handle.local_fs.used_bytes == 0
        pfs_level = handle.monarch.hierarchy.pfs_level
        assert handle.monarch.stats.reads_per_level[pfs_level] == handle.monarch.stats.total_reads


class TestMidRunRobustness:
    def test_pipeline_error_does_not_hang_the_trainer(self, sim, mounts, node,
                                                      pfs, tiny_manifest):
        """A reader blowing up mid-epoch propagates instead of deadlocking."""
        import numpy as np

        from repro.data.virtual import materialize
        from repro.framework.io_layer import DataReader
        from repro.framework.models import LENET
        from repro.framework.pipeline import PipelineConfig, shards_from_manifest
        from repro.framework.training import Trainer

        paths = materialize(tiny_manifest, pfs, "/dataset")
        shards = shards_from_manifest(tiny_manifest, ["/mnt/pfs" + p for p in paths])

        class FlakyReader(DataReader):
            def __init__(self, mounts):
                from repro.framework.io_layer import PosixReader

                self.inner = PosixReader(mounts)
                self.reads = 0

            def open(self, path):
                f = yield from self.inner.open(path)
                return f

            def pread(self, f, offset, nbytes):
                self.reads += 1
                if self.reads > 3:
                    raise IOError("injected storage failure")
                n = yield from self.inner.pread(f, offset, nbytes)
                return n

        trainer = Trainer(
            sim=sim, node=node, model=LENET,
            config=PipelineConfig(batch_size=16, reference_batch=16,
                                  cycle_length=2, num_map_workers=2,
                                  shuffle_buffer_records=32),
            shards=shards, reader=FlakyReader(mounts),
            shuffle_rng=np.random.default_rng(0), epochs=1,
        )
        with pytest.raises(IOError, match="injected storage failure"):
            sim.run(sim.spawn(trainer.run()))
