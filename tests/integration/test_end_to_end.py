"""End-to-end integration tests: full training runs through every setup.

These run at 1/2048 scale (fast) and check cross-module consistency —
byte conservation, op accounting, and state cleanup — rather than the
paper's performance shapes (see test_paper_shapes.py for those).
"""

from __future__ import annotations

import pytest

from repro.data.imagenet import IMAGENET_100G, scaled
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.scenarios import build_run

SCALE = 1 / 2048


@pytest.fixture(scope="module", params=["vanilla-lustre", "vanilla-local",
                                        "vanilla-caching", "monarch"])
def finished_run(request):
    """One executed 3-epoch run per setup (module-scoped: runs once each)."""
    handle = build_run(request.param, "lenet", IMAGENET_100G,
                       DEFAULT_CALIBRATION, SCALE, seed=9)
    result = handle.execute()
    return request.param, handle, result


class TestAllSetupsComplete:
    def test_three_epochs(self, finished_run):
        _, _, result = finished_run
        assert len(result.epochs) == 3

    def test_every_epoch_sees_every_record(self, finished_run):
        _, handle, result = finished_run
        for e in result.epochs:
            assert e.records == handle.dataset.n_samples

    def test_epoch_times_positive_and_ordered_sanely(self, finished_run):
        _, _, result = finished_run
        assert all(t > 0 for t in result.epoch_times)

    def test_utilizations_bounded(self, finished_run):
        _, _, result = finished_run
        for e in result.epochs:
            assert 0 < e.cpu_utilization < 1
            assert 0 < e.gpu_utilization < 1


class TestByteConservation:
    def test_pfs_read_bytes_match_setup(self, finished_run):
        setup, handle, result = finished_run
        total = handle.manifest.total_bytes
        pfs_read = handle.pfs.stats.bytes_read
        if setup == "vanilla-lustre":
            # every byte read from the PFS every epoch
            assert pfs_read == 3 * total
        elif setup == "vanilla-local":
            assert pfs_read == 0
        elif setup == "vanilla-caching":
            # PFS touched only in epoch 1
            assert pfs_read == total
        else:  # monarch
            # epoch 1: framework misses + background full fetches;
            # epochs 2-3 fully local.  Never more than twice the dataset.
            assert total <= pfs_read <= 2 * total

    def test_local_tier_holds_dataset_afterwards(self, finished_run):
        setup, handle, _ = finished_run
        if setup in ("vanilla-caching", "monarch", "vanilla-local"):
            assert handle.local_fs.used_bytes == handle.manifest.total_bytes

    def test_monarch_steady_state_pfs_silent(self, finished_run):
        setup, _, result = finished_run
        if setup in ("monarch", "vanilla-caching"):
            ops = result.backend_epoch_ops("pfs")
            assert ops[1] == 0
            assert ops[2] == 0


class TestMonarchInternalConsistency:
    def test_all_files_cached(self, finished_run):
        setup, handle, _ = finished_run
        if setup != "monarch":
            pytest.skip("monarch only")
        # shutdown cleared metadata; placement stats survive
        stats = handle.monarch.placement.stats
        assert stats.completed == handle.manifest.n_shards
        assert stats.unplaceable == 0
        assert stats.evictions == 0

    def test_init_time_recorded(self, finished_run):
        setup, _, result = finished_run
        if setup != "monarch":
            pytest.skip("monarch only")
        assert result.init_time_s > 0


class TestDeterminism:
    def test_full_run_is_reproducible(self):
        def once():
            h = build_run("monarch", "alexnet", IMAGENET_100G,
                          DEFAULT_CALIBRATION, SCALE, seed=3)
            r = h.execute()
            return (r.epoch_times, r.init_time_s,
                    h.pfs.stats.snapshot(), h.local_fs.stats.snapshot())

        assert once() == once()
