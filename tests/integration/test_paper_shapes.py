"""Paper-shape assertions: the qualitative results Figures 1/3/4 rest on.

Each test checks an *ordering* or *rough factor* the paper reports, at
1/512 scale with a fixed seed.  These are the guardrails that keep future
changes from silently breaking the reproduction.
"""

from __future__ import annotations

import pytest

from repro.data.imagenet import IMAGENET_100G, IMAGENET_200G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.runner import run_once

SCALE = 1 / 512
SEED = 3


@pytest.fixture(scope="module")
def grid100():
    """All four setups × {lenet, alexnet, resnet50} on the 100 GiB preset."""
    out = {}
    for model in ("lenet", "alexnet", "resnet50"):
        for setup in ("vanilla-lustre", "vanilla-local", "vanilla-caching", "monarch"):
            out[(model, setup)] = run_once(setup, model, IMAGENET_100G,
                                           scale=SCALE, seed=SEED)
    return out


@pytest.fixture(scope="module")
def grid200():
    """lustre vs monarch × all models on the 200 GiB preset (busy regime)."""
    busy = DEFAULT_CALIBRATION.busy()
    out = {}
    for model in ("lenet", "alexnet", "resnet50"):
        for setup in ("vanilla-lustre", "monarch"):
            out[(model, setup)] = run_once(setup, model, IMAGENET_200G,
                                           calib=busy, scale=SCALE, seed=SEED)
    return out


class TestFig1Motivation:
    def test_local_beats_lustre_for_io_bound_models(self, grid100):
        for model in ("lenet", "alexnet"):
            assert grid100[(model, "vanilla-local")].total_time_s < \
                grid100[(model, "vanilla-lustre")].total_time_s

    def test_lenet_local_speedup_magnitude(self, grid100):
        """Paper: 1205 -> 650 s, a ~46% decrease."""
        ratio = grid100[("lenet", "vanilla-local")].total_time_s / \
            grid100[("lenet", "vanilla-lustre")].total_time_s
        assert 0.40 < ratio < 0.70

    def test_caching_first_epoch_slower_than_lustre(self, grid100):
        """Paper: 396 -> 437 s from the extra local copy."""
        for model in ("lenet", "alexnet"):
            assert grid100[(model, "vanilla-caching")].epoch_times_s[0] > \
                grid100[(model, "vanilla-lustre")].epoch_times_s[0]

    def test_caching_later_epochs_match_local(self, grid100):
        for model in ("lenet", "alexnet"):
            cache_e2 = grid100[(model, "vanilla-caching")].epoch_times_s[1]
            local_e2 = grid100[(model, "vanilla-local")].epoch_times_s[1]
            assert cache_e2 == pytest.approx(local_e2, rel=0.1)

    def test_resnet_flat_across_setups(self, grid100):
        """Compute-bound: storage tier barely matters (paper Fig. 1/3)."""
        totals = [grid100[("resnet50", s)].total_time_s
                  for s in ("vanilla-lustre", "vanilla-local", "vanilla-caching",
                            "monarch")]
        assert max(totals) / min(totals) < 1.12

    def test_lustre_has_highest_variability(self, grid100):
        """Epoch-to-epoch spread on lustre exceeds the local setup's."""
        def spread(rec):
            ts = rec.epoch_times_s
            return (max(ts) - min(ts)) / (sum(ts) / len(ts))

        assert spread(grid100[("lenet", "vanilla-lustre")]) > \
            spread(grid100[("lenet", "vanilla-local")])


class TestFig3Monarch100G:
    def test_monarch_beats_lustre(self, grid100):
        """Paper: 33% (LeNet) and 15% (AlexNet) total reduction."""
        for model, lo, hi in (("lenet", 0.55, 0.85), ("alexnet", 0.75, 0.95)):
            ratio = grid100[(model, "monarch")].total_time_s / \
                grid100[(model, "vanilla-lustre")].total_time_s
            assert lo < ratio < hi, f"{model}: {ratio:.2f}"

    def test_monarch_first_epoch_faster_than_lustre_and_caching(self, grid100):
        """The paper's signature observation (§IV-A, full-file fetch)."""
        for model in ("lenet", "alexnet"):
            m = grid100[(model, "monarch")].epoch_times_s[0]
            assert m < grid100[(model, "vanilla-lustre")].epoch_times_s[0]
            assert m < grid100[(model, "vanilla-caching")].epoch_times_s[0]

    def test_monarch_later_epochs_local_speed(self, grid100):
        for model in ("lenet", "alexnet"):
            m = grid100[(model, "monarch")].epoch_times_s[2]
            local = grid100[(model, "vanilla-local")].epoch_times_s[2]
            assert m == pytest.approx(local, rel=0.1)

    def test_monarch_not_faster_than_pure_local(self, grid100):
        for model in ("lenet", "alexnet"):
            assert grid100[(model, "monarch")].total_time_s >= \
                0.95 * grid100[(model, "vanilla-local")].total_time_s

    def test_metadata_init_near_paper(self, grid100):
        """Paper: ~13 s for the 100 GiB namespace."""
        init = grid100[("lenet", "monarch")].init_time_s
        assert 8 < init < 25

    def test_faster_storage_raises_utilization(self, grid100):
        """Paper §II-A: better storage => higher CPU and GPU usage."""
        for model in ("lenet", "alexnet"):
            lustre = grid100[(model, "vanilla-lustre")]
            local = grid100[(model, "vanilla-local")]
            assert sum(local.cpu_utilization) > sum(lustre.cpu_utilization)
            assert sum(local.gpu_utilization) > sum(lustre.gpu_utilization)


class TestFig4Monarch200G:
    def test_lenet_reduction_near_24pct(self, grid200):
        ratio = grid200[("lenet", "monarch")].total_time_s / \
            grid200[("lenet", "vanilla-lustre")].total_time_s
        assert 0.6 < ratio < 0.9  # paper: 0.76

    def test_alexnet_monarch_not_worse(self, grid200):
        """Paper: 12% reduction; we reproduce direction (see EXPERIMENTS.md)."""
        ratio = grid200[("alexnet", "monarch")].total_time_s / \
            grid200[("alexnet", "vanilla-lustre")].total_time_s
        assert ratio < 1.05

    def test_resnet_flat(self, grid200):
        ratio = grid200[("resnet50", "monarch")].total_time_s / \
            grid200[("resnet50", "vanilla-lustre")].total_time_s
        assert 0.9 < ratio < 1.1

    def test_steady_state_ops_fraction(self, grid200):
        """Paper: ~360k of 798,340 ops/epoch still reach Lustre (~45%)."""
        lustre_ops = grid200[("lenet", "vanilla-lustre")].pfs_ops_per_epoch[-1]
        monarch_ops = grid200[("lenet", "monarch")].pfs_ops_per_epoch[-1]
        frac = monarch_ops / lustre_ops
        assert 0.35 < frac < 0.55

    def test_total_io_reduction_near_55pct(self, grid200):
        """Paper: 55% average reduction in Lustre I/O over the workload."""
        lustre = grid200[("lenet", "vanilla-lustre")].total_pfs_ops
        monarch = grid200[("lenet", "monarch")].total_pfs_ops
        reduction = 1 - monarch / lustre
        assert 0.40 < reduction < 0.65

    def test_absolute_epoch_ops_magnitude(self, grid200):
        """Unscaled ops/epoch must land near the paper's 798,340."""
        ops = grid200[("lenet", "vanilla-lustre")].pfs_ops_per_epoch[0]
        assert 6e5 < ops < 1.1e6

    def test_metadata_init_larger_namespace(self, grid200, grid100):
        """Paper: 52 s for 200 GiB vs 13 s for 100 GiB (scales with files)."""
        init200 = grid200[("lenet", "monarch")].init_time_s
        init100 = grid100[("lenet", "monarch")].init_time_s
        assert init200 > 1.5 * init100

    def test_memory_flat_near_10gib(self, grid100, grid200):
        """Paper: ~10 GiB in every configuration."""
        mems = [r.memory_gib for r in grid100.values()] + \
               [r.memory_gib for r in grid200.values()]
        assert all(9.0 < m < 11.5 for m in mems)
