"""Tier-1 coverage for the FIG-SERVE figure and the serving CLI paths.

The full latency-percentile gate runs in ``benchmarks/test_fig_serve.py``
at bench scale; these exercise the same surfaces at 1/4096 so
``make coverage`` (which measures the ``tests`` tree only) sees the
figure builder, the renderer's verdict branches, and the
``--workload``/``--trace`` CLI plumbing.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import cli
from repro.experiments import figures
from repro.workload.spec import WORKLOADS

pytestmark = pytest.mark.serve

SCALE = "1/4096"


@pytest.fixture(scope="module")
def serve_result():
    return figures.fig_serve(scale=1 / 4096, seed=0)


class TestFigServe:
    def test_runs_both_setups_on_one_workload(self, serve_result):
        assert serve_result["workload"] == "serve-zipf"
        assert set(serve_result["runs"]) == set(figures.SERVE_FIGURE_SETUPS)
        for rec in serve_result["runs"].values():
            assert rec.completed == rec.n_requests > 0
            assert rec.workload == "serve-zipf"
        assert "zipf" in WORKLOADS["serve-zipf"].describe()

    def test_render_table_and_verdict(self, serve_result):
        out = figures.render_serve(serve_result)
        assert "FIG-SERVE" in out
        assert "warm p99" in out
        assert "win condition" in out

    def test_render_flags_a_lost_gate(self, serve_result):
        lustre = serve_result["runs"]["vanilla-lustre"]
        monarch = serve_result["runs"]["monarch"]
        slow = dataclasses.replace(
            monarch, warm_p99_ms=lustre.warm_p99_ms * 2)
        out = figures.render_serve({
            "workload": "serve-zipf",
            "runs": {"vanilla-lustre": lustre, "monarch": slow},
        })
        assert "win condition NOT met" in out

    def test_render_handles_zero_lustre_tail(self, serve_result):
        runs = dict(serve_result["runs"])
        runs["vanilla-lustre"] = dataclasses.replace(
            runs["vanilla-lustre"], warm_p99_ms=0.0)
        out = figures.render_serve({"workload": "serve-zipf", "runs": runs})
        assert "no warm latencies" in out

    def test_main_serve(self, capsys):
        rc = figures.main(["serve", "--scale", SCALE])
        assert rc == 0
        assert "FIG-SERVE" in capsys.readouterr().out


class TestServingCli:
    def test_run_workload_prints_window_table(self, capsys):
        rc = cli.main(["run", "monarch", "--workload", "serve-zipf",
                       "--scale", SCALE])
        assert rc == 0
        out = capsys.readouterr().out
        assert "window" in out
        assert "hit rate" in out
        assert "latency p50/p99/p999" in out

    def test_run_trace_file_replays(self, tmp_path, capsys):
        from repro.data.imagenet import IMAGENET_100G
        from repro.experiments.calibration import DEFAULT_CALIBRATION
        from repro.experiments.scenarios import build_run

        handle = build_run(
            "monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
            scale=1 / 4096, seed=0, workload=WORKLOADS["serve-zipf"],
        )
        path = tmp_path / "zipf.jsonl"
        handle.replay.trace.save(path)
        rc = cli.main(["run", "monarch", "--trace", str(path),
                       "--scale", SCALE])
        assert rc == 0
        assert "completed" in capsys.readouterr().out

    def test_report_workload_carries_steady_section(self, capsys):
        rc = cli.main(["report", "monarch", "--workload", "serve-zipf",
                       "--scale", SCALE, "--seed", "0"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert "steady" in payload
        assert payload["steady"]["windows"]

    def test_figures_serve_delegates(self, capsys):
        rc = cli.main(["figures", "serve", "--scale", SCALE])
        assert rc == 0
        assert "FIG-SERVE" in capsys.readouterr().out
