"""Replay-driver and window-closing semantics.

The headline regression here is the windowed-series fencepost: a run
ending *exactly* on a window boundary must not emit an empty/garbage
trailing window.  :class:`WindowClock` makes closing explicit (one
``close()`` per edge, ``finalize`` for the partial tail), and the driver
folds boundary-instant completions into the last closed window, so the
window series always sums to the completed count.  The throughput-series
binning in the telemetry layer is pinned to the same closed-boundary
contract.
"""

from __future__ import annotations

import pytest

from repro.simkernel.core import Simulator
from repro.workload.replay import ReplayDriver, WindowClock
from repro.workload.trace import Trace, TraceRequest

pytestmark = pytest.mark.serve


# -- WindowClock -------------------------------------------------------------

def test_window_clock_closes_in_order():
    clock = WindowClock(10.0, 2.5)
    assert clock.next_edge() == 12.5
    assert clock.close() == (10.0, 12.5)
    assert clock.close() == (12.5, 15.0)
    assert clock.n_closed == 2


def test_window_clock_finalize_partial_tail():
    clock = WindowClock(0.0, 1.0)
    clock.close()
    assert clock.finalize(1.4) == (1.0, 1.4)
    assert clock.n_closed == 2


def test_window_clock_finalize_exact_boundary_emits_nothing():
    """The fencepost: ending exactly on an edge adds no empty window."""
    clock = WindowClock(0.0, 1.0)
    clock.close()
    clock.close()
    assert clock.finalize(2.0) is None
    assert clock.n_closed == 2
    # ...and ending marginally past it does emit the tail
    clock2 = WindowClock(0.0, 1.0)
    clock2.close()
    assert clock2.finalize(1.0 + 1e-3) == (1.0, 1.0 + 1e-3)


def test_window_clock_rejects_bad_width():
    with pytest.raises(ValueError):
        WindowClock(0.0, 0.0)


# -- a minimal reader stack for driver-level tests ---------------------------

class FakeReader:
    """Instant (or fixed-delay) reader; counts ops like a backend would."""

    def __init__(self, sim, delay_s: float = 0.0, miss_every: int = 0):
        self.sim = sim
        self.delay_s = delay_s
        self.miss_every = miss_every
        self.reads = 0
        self.misses = 0

    def open(self, path):
        return path
        yield  # pragma: no cover - makes this a generator

    def pread(self, f, offset, nbytes):
        self.reads += 1
        if self.miss_every and self.reads % self.miss_every == 0:
            self.misses += 1
        if self.delay_s:
            yield self.sim.timeout(self.delay_s)
        return nbytes

    def hit_fn(self):
        return self.reads, self.misses


def uniform_trace(n: int, spacing: float, nbytes: int = 10) -> Trace:
    reqs = tuple(
        TraceRequest(t=i * spacing, kind="read", file_index=0,
                     offset=0, nbytes=nbytes)
        for i in range(n)
    )
    return Trace(workload="unit", seed=0, meta={}, requests=reqs)


def run_replay(trace, **kwargs):
    sim = Simulator()
    reader = kwargs.pop("reader_factory", FakeReader)(sim, **kwargs.pop("reader_kwargs", {}))
    driver = ReplayDriver(sim, trace, reader, ["/f0"],
                          hit_fn=reader.hit_fn, **kwargs)
    proc = sim.spawn(driver.run(), name="replay")
    result = sim.run(proc)
    return result, reader


# -- exact-boundary regression ----------------------------------------------

def test_exact_boundary_run_has_no_empty_final_window():
    """Instant reads, last arrival on the final edge: exactly N windows."""
    n_windows = 5
    # 11 arrivals at 0, 1, ..., 10; horizon 10 = 5 windows of 2.0, and the
    # last completion lands exactly on the final edge.
    result, _ = run_replay(uniform_trace(11, 1.0), windows=n_windows)
    assert len(result.windows) == n_windows
    assert result.completed == 11
    # nothing lost to the fencepost: windows sum to the completed count
    assert sum(w["completed"] for w in result.windows) == 11
    last = result.windows[-1]
    assert last["t_end"] > last["t_start"]
    # every window is well-formed (no zero-width garbage entries)
    for w in result.windows:
        assert w["t_end"] > w["t_start"]


def test_straggler_tail_gets_a_partial_window():
    """Slow reads past the horizon close extra windows, then a tail."""
    result, _ = run_replay(
        uniform_trace(6, 1.0), windows=5,
        reader_kwargs={"delay_s": 0.3},
    )
    # horizon 5.0, last completion at 5.3: 5 full windows + the tail
    assert len(result.windows) == 6
    assert result.windows[-1]["t_end"] == pytest.approx(5.3)
    assert sum(w["completed"] for w in result.windows) == 6
    assert result.t_end == pytest.approx(5.3)


def test_window_hit_rates_from_deltas():
    """Per-window hit rate reflects only that window's reads."""
    # every 2nd read misses -> per-window hit rate 0.5 with even counts
    result, reader = run_replay(
        uniform_trace(20, 1.0), windows=2,
        reader_kwargs={"miss_every": 2},
    )
    assert reader.reads == 20
    assert result.hit_rate == pytest.approx(0.5)
    for w in result.windows:
        if w["reads"]:
            assert w["hit_rate"] == pytest.approx(1.0 - w["pfs_reads"] / w["reads"])


def test_open_arrival_latency_includes_queueing():
    """Latency is completion minus scheduled arrival (not dispatch)."""
    result, _ = run_replay(
        uniform_trace(4, 1.0), windows=2,
        reader_kwargs={"delay_s": 0.25},
    )
    assert result.latency.count == 4
    assert result.latency.min_s == pytest.approx(0.25, rel=0.2)


def test_warm_latency_covers_second_half_only():
    result, _ = run_replay(
        uniform_trace(11, 1.0), windows=5, warmup_frac=0.5,
        reader_kwargs={"delay_s": 0.1},
    )
    # arrivals at t >= 5.0 are warm: 6 of 11
    assert result.warm_latency.count == 6
    assert result.latency.count == 11


def test_zero_span_trace_degenerates_gracefully():
    """A single instant request still produces a consistent result."""
    result, _ = run_replay(uniform_trace(1, 0.0), windows=3)
    assert result.completed == 1
    assert sum(w["completed"] for w in result.windows) == 1


def test_driver_rejects_bad_config():
    sim = Simulator()
    trace = uniform_trace(2, 1.0)
    with pytest.raises(ValueError):
        ReplayDriver(sim, trace, FakeReader(sim), ["/f0"], windows=0)
    with pytest.raises(ValueError):
        ReplayDriver(sim, trace, FakeReader(sim), ["/f0"], warmup_frac=1.0)


# -- the telemetry layer's series obeys the same closed-boundary contract ----

def test_throughput_series_counts_boundary_event_in_last_bin():
    from repro.telemetry.tracing import TraceEvent, throughput_series

    events = [TraceEvent(t, "pfs", "read", 100) for t in (0.0, 2.5, 5.0)]
    centers, series = throughput_series(events, 0.0, 5.0, bins=5)
    assert len(series) == 5
    # the completion at exactly t1 lands in the last bin, not dropped
    # and not in a phantom extra window
    assert series[-1] > 0.0
    assert sum(series) * (5.0 / 5) == pytest.approx(300.0)
