"""Validation and boundary branches of the workload layer.

The happy paths live in the property and replay suites; these pin the
error messages users actually see (bad specs, malformed trace files,
invalid histogram grids) and the driver's less-travelled branches:
shared-reader job churn, reads gated on a slow job setup, drains that
cross window edges, and empty traces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simkernel.core import Simulator
from repro.simkernel.rng import RngRegistry
from repro.workload.generators import generate_trace, zipf_popularity
from repro.workload.histogram import LatencyHistogram
from repro.workload.replay import ReplayDriver
from repro.workload.spec import WORKLOADS, WorkloadSpec
from repro.workload.trace import Trace, TraceRequest

from tests.workload.test_replay import FakeReader, uniform_trace

pytestmark = pytest.mark.serve

SIZES = [1000] * 8


def rngs():
    return RngRegistry(0)


# -- generator validation -----------------------------------------------------

def test_zipf_popularity_rejects_empty_namespace():
    with pytest.raises(ValueError, match="at least one file"):
        zipf_popularity(0, 1.1, np.random.default_rng(0))


def test_zero_rate_rejected():
    spec = WorkloadSpec(name="x", kind="zipf", requests=10, rate_rps=0.0)
    with pytest.raises(ValueError, match="rate must be positive"):
        generate_trace(spec, SIZES, 1.0, rngs(), mean_record_bytes=100)


def test_read_size_must_be_positive():
    spec = WORKLOADS["serve-zipf"]
    with pytest.raises(ValueError, match="read size must be positive"):
        generate_trace(spec, SIZES, 1.0, rngs())


def test_diurnal_amplitude_bounds():
    spec = WorkloadSpec(name="x", kind="diurnal", rate_rps=10.0,
                        duration_s=10.0, diurnal_period_s=5.0,
                        diurnal_amplitude=1.0)
    with pytest.raises(ValueError, match="amplitude"):
        generate_trace(spec, SIZES, 1.0, rngs(), mean_record_bytes=100)


def test_diurnal_needs_duration_and_period():
    spec = WorkloadSpec(name="x", kind="diurnal", rate_rps=10.0,
                        duration_s=0.0, diurnal_period_s=5.0)
    with pytest.raises(ValueError, match="duration_s"):
        generate_trace(spec, SIZES, 1.0, rngs(), mean_record_bytes=100)


def test_diurnal_pathological_rate_keeps_one_request():
    """A rate so low nothing arrives still yields a replayable trace."""
    spec = WorkloadSpec(name="x", kind="diurnal", rate_rps=1e-6,
                        duration_s=1.0, diurnal_period_s=1.0,
                        diurnal_amplitude=0.5)
    trace = generate_trace(spec, SIZES, 1.0, rngs(), mean_record_bytes=100)
    assert trace.n_reads == 1
    assert trace.requests[0].t == pytest.approx(0.5)


def test_churn_needs_jobs_and_matching_sizes():
    base = dict(name="x", kind="churn", job_reads=10, job_rate_rps=5.0,
                job_interarrival_s=1.0)
    with pytest.raises(ValueError, match="job_sizes"):
        generate_trace(WorkloadSpec(n_jobs=2, **base), SIZES, 1.0, rngs(),
                       mean_record_bytes=100)
    with pytest.raises(ValueError, match="n_jobs >= 1"):
        generate_trace(WorkloadSpec(n_jobs=0, **base), SIZES, 1.0, rngs(),
                       mean_record_bytes=100, job_sizes=[])
    with pytest.raises(ValueError, match="per-job size lists"):
        generate_trace(WorkloadSpec(n_jobs=2, **base), SIZES, 1.0, rngs(),
                       mean_record_bytes=100, job_sizes=[SIZES])


def test_unknown_kind_rejected():
    spec = WorkloadSpec(name="x", kind="mystery")
    with pytest.raises(ValueError, match="unknown workload kind"):
        generate_trace(spec, SIZES, 1.0, rngs(), mean_record_bytes=100)


# -- trace-file validation ----------------------------------------------------

def test_empty_trace_file_rejected():
    with pytest.raises(ValueError, match="empty trace file"):
        Trace.from_jsonl("\n")


def test_headerless_trace_file_rejected():
    with pytest.raises(ValueError, match="no header line"):
        Trace.from_jsonl('[1, 2, 3]\n')


# -- histogram validation -----------------------------------------------------

def test_histogram_rejects_bad_grid():
    with pytest.raises(ValueError, match="invalid histogram grid"):
        LatencyHistogram(bins_per_decade=0)


def test_histogram_rejects_bad_quantile():
    with pytest.raises(ValueError, match="q must be in"):
        LatencyHistogram().percentile(0.0)


# -- driver branches ----------------------------------------------------------

def make_driver(trace, **kwargs):
    sim = Simulator()
    reader = FakeReader(sim, **kwargs.pop("reader_kwargs", {}))
    driver = ReplayDriver(sim, trace, reader, ["/f0"],
                          hit_fn=reader.hit_fn, **kwargs)
    return sim, driver


def test_close_none_span_is_a_noop():
    _, driver = make_driver(uniform_trace(2, 1.0))
    driver._close(None)
    assert driver.result.windows == []


def test_flush_tail_idempotent_after_run():
    sim, driver = make_driver(uniform_trace(3, 1.0))
    sim.run(sim.spawn(driver.run(), name="replay"))
    before = [dict(w) for w in driver.result.windows]
    driver._flush_tail()
    assert driver.result.windows == before


def test_empty_trace_replays_to_zero():
    sim, driver = make_driver(Trace(workload="empty"))
    result = sim.run(sim.spawn(driver.run(), name="replay"))
    assert result.completed == 0
    assert result.hit_rate == 0.0


def test_job_start_without_setup_shares_the_reader():
    """With job_setup=None churn jobs fall back to the shared reader."""
    trace = Trace(workload="unit", requests=[
        TraceRequest(t=0.0, kind="job_start", job="j", share=0.5),
        TraceRequest(t=0.0, kind="read", file_index=0, nbytes=10, job="j"),
        TraceRequest(t=1.0, kind="job_end", job="j"),
    ])
    sim, driver = make_driver(trace)
    result = sim.run(sim.spawn(driver.run(), name="replay"))
    assert result.completed == 1


def test_reads_wait_on_a_slow_job_setup():
    """A job's reads queue on its setup gate, adding queueing latency."""
    trace = Trace(workload="unit", requests=[
        TraceRequest(t=0.0, kind="job_start", job="j", share=1.0),
        TraceRequest(t=0.0, kind="read", file_index=0, nbytes=10, job="j"),
        # the departure sets a 1 s horizon so windows stay coarse
        TraceRequest(t=1.0, kind="job_end", job="j"),
    ])
    sim = Simulator()
    shared = FakeReader(sim)

    def setup(job, share):
        yield sim.timeout(0.25)
        return FakeReader(sim)

    driver = ReplayDriver(sim, trace, shared, ["/f0"],
                          job_paths={"j": ["/f0"]}, job_setup=setup,
                          hit_fn=shared.hit_fn)
    result = sim.run(sim.spawn(driver.run(), name="replay"))
    assert result.completed == 1
    # the read's latency is the setup delay it waited out
    assert result.latency.max_s == pytest.approx(0.25)


def test_drain_closes_edges_past_the_horizon():
    """In-flight stragglers keep closing whole windows during the drain."""
    sim, driver = make_driver(uniform_trace(2, 1.0), windows=4,
                              reader_kwargs={"delay_s": 0.6})
    result = sim.run(sim.spawn(driver.run(), name="replay"))
    # horizon 1.0 -> 0.25 s windows; the last read completes at 1.6, so
    # edges 1.25 and 1.5 close inside the drain loop before the tail
    assert result.completed == 2
    assert sum(w["completed"] for w in result.windows) == 2
    assert result.windows[-1]["t_end"] == pytest.approx(1.6)
