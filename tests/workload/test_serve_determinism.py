"""Serving-run determinism and grid/cache equivalence.

The FIG-SERVE grid must be transparent to how it executes: ``--jobs 4``
fans runs out to worker processes, the run cache replays stored records
— both must merge back byte-identical to a fresh serial run.  A trace
saved to disk and replayed via ``trace=`` must behave exactly like the
generated one, and the end-to-end latency percentiles must agree with an
exact, numpy-free nearest-rank computation on the same samples.
"""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.data.imagenet import IMAGENET_100G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.executor import RunSpec, execute_grid
from repro.experiments.formats import ServeRunRecord
from repro.experiments.runner import run_once
from repro.experiments.scenarios import build_run
from repro.workload.spec import WORKLOADS

pytestmark = pytest.mark.serve

SCALE = 1 / 4096


def serve_specs(report: bool = False) -> list[RunSpec]:
    return [
        RunSpec(
            setup=setup,
            model="lenet",
            dataset=IMAGENET_100G,
            calib=DEFAULT_CALIBRATION,
            scale=SCALE,
            seed=0,
            report=report,
            workload=WORKLOADS["serve-zipf"],
        )
        for setup in ("vanilla-lustre", "monarch")
    ]


def as_dicts(records) -> list[dict]:
    return [dataclasses.asdict(r) for r in records]


def test_same_seed_runs_byte_identical():
    a = execute_grid(serve_specs(), jobs=1, cache=None)
    b = execute_grid(serve_specs(), jobs=1, cache=None)
    assert as_dicts(a) == as_dicts(b)
    assert all(isinstance(r, ServeRunRecord) for r in a)


def test_parallel_grid_matches_serial():
    serial = execute_grid(serve_specs(), jobs=1, cache=None)
    fanned = execute_grid(serve_specs(), jobs=4, cache=None)
    assert as_dicts(serial) == as_dicts(fanned)


def test_run_cache_round_trips_serve_records(tmp_path):
    fresh = execute_grid(serve_specs(report=True), jobs=1, cache=None)
    stored = execute_grid(serve_specs(report=True), jobs=1, cache=tmp_path)
    replayed = execute_grid(serve_specs(report=True), jobs=1, cache=tmp_path)
    assert as_dicts(fresh) == as_dicts(stored) == as_dicts(replayed)
    # the report payload survives the cache too, steady section included
    assert replayed[0].report is not None
    assert "steady" in replayed[0].report


def test_file_loaded_trace_matches_generated(tmp_path):
    """Replaying a saved trace equals replaying the generated one."""
    workload = WORKLOADS["serve-zipf"]
    handle = build_run(
        "monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
        scale=SCALE, seed=0, workload=workload,
    )
    path = tmp_path / "serve_zipf.jsonl"
    handle.replay.trace.save(path)

    generated = run_once("monarch", "lenet", IMAGENET_100G,
                         scale=SCALE, seed=0, workload=workload)
    from repro.workload.trace import Trace

    loaded = run_once("monarch", "lenet", IMAGENET_100G,
                      scale=SCALE, seed=0, trace=Trace.load(path))
    assert dataclasses.asdict(generated) == dataclasses.asdict(loaded)


def test_percentiles_match_exact_nearest_rank():
    """End-to-end p50/p99 agree with exact sorted-list percentiles."""
    handle = build_run(
        "monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
        scale=SCALE, seed=0, workload=WORKLOADS["serve-zipf"],
    )
    # intercept every latency sample the driver records
    samples: list[float] = []

    class Teeing(type(handle.replay.result.latency)):
        def add(self, value: float) -> None:
            samples.append(max(0.0, float(value)))
            super().add(value)

    handle.replay.result.latency = Teeing()
    result = handle.execute()
    assert len(samples) == result.completed > 0

    tol = 10 ** (1.5 / 24)  # one log-bucket of slack (plus rounding)
    for q in (0.5, 0.99):
        rank = max(1, math.ceil(q * len(samples)))
        exact = sorted(samples)[rank - 1]
        approx = result.latency.percentile(q)
        if exact == 0.0:
            assert approx <= result.latency.lo * tol
        else:
            assert exact / tol <= approx <= exact * tol, (q, exact, approx)


def test_serving_rejects_epoch_only_setups():
    with pytest.raises(ValueError, match="cannot serve"):
        build_run(
            "vanilla-caching", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
            scale=SCALE, seed=0, workload=WORKLOADS["serve-zipf"],
        )


def test_file_loaded_churn_trace_rejected(tmp_path):
    handle = build_run(
        "monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
        scale=SCALE, seed=0, workload=WORKLOADS["serve-churn"],
    )
    path = tmp_path / "churn.jsonl"
    handle.replay.trace.save(path)
    from repro.workload.trace import Trace

    with pytest.raises(ValueError, match="churn"):
        build_run(
            "monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
            scale=SCALE, seed=0, trace=Trace.load(path),
        )
