"""Property-based trace-generator and replay invariants (hypothesis).

Randomized workload shapes against the contracts the serving subsystem
must never break:

1. Zipf popularity is monotone: request frequency falls with popularity
   rank (exactly in the probabilities, statistically in the traces),
2. diurnal arrival counts follow the sinusoidal load curve within
   sampling tolerance,
3. every generated trace is byte-identical when regenerated from the
   same seed, and survives a JSONL round trip,
4. replaying a trace through the full monarch stack — with or without a
   mid-run tier fault — never violates capacity or namespace
   invariants, and completes every request.

Everything is seeded, so a failing example reproduces bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.imagenet import IMAGENET_100G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.scenarios import build_run, ssd_tier_down_plan
from repro.simkernel.rng import RngRegistry
from repro.workload.generators import generate_trace, zipf_popularity
from repro.workload.spec import WORKLOADS, WorkloadSpec
from repro.workload.trace import Trace

pytestmark = [pytest.mark.hypothesis_heavy, pytest.mark.serve]

MIB = 1 << 20


def zipf_spec(requests: int, s: float) -> WorkloadSpec:
    return WorkloadSpec(name="prop-zipf", kind="zipf", requests=requests,
                        rate_rps=100.0, zipf_s=s, read_bytes=4096)


# -- 1. Zipf popularity monotonicity ----------------------------------------

@given(
    n_files=st.integers(min_value=2, max_value=64),
    s=st.floats(min_value=0.3, max_value=2.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_zipf_probabilities_monotone_in_rank(n_files, s, seed):
    order, probs = zipf_popularity(n_files, s, np.random.default_rng(seed))
    assert sorted(order.tolist()) == list(range(n_files))
    assert probs.sum() == pytest.approx(1.0)
    assert all(a >= b for a, b in zip(probs, probs[1:]))
    assert probs[0] > probs[-1] or n_files == 1


@given(
    s=st.floats(min_value=0.8, max_value=1.6, allow_nan=False),
    n_files=st.integers(min_value=6, max_value=24),
    seed=st.integers(min_value=0, max_value=9999),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_zipf_trace_frequencies_rank_monotone(s, n_files, seed):
    """Observed per-rank request counts decay with popularity rank."""
    spec = zipf_spec(requests=4000, s=s)
    sizes = [MIB] * n_files
    trace = generate_trace(spec, sizes, 1.0, RngRegistry(seed))
    order = trace.meta["popularity"]
    rank_of = {file_idx: rank for rank, file_idx in enumerate(order)}
    counts = [0] * n_files
    for req in trace.requests:
        counts[rank_of[req.file_index]] += 1
    third = max(1, n_files // 3)
    assert sum(counts[:third]) > sum(counts[-third:])
    # the top-ranked file is sampled at least as often as the median rank
    assert counts[0] >= counts[n_files // 2]


# -- 2. diurnal arrivals follow the load curve -------------------------------

@given(
    amp=st.floats(min_value=0.5, max_value=0.9, allow_nan=False),
    rate=st.floats(min_value=60.0, max_value=120.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=9999),
)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_diurnal_counts_follow_load_curve(amp, rate, seed):
    period = 200.0
    spec = WorkloadSpec(name="prop-diurnal", kind="diurnal", rate_rps=rate,
                        duration_s=period, diurnal_amplitude=amp,
                        diurnal_period_s=period, read_bytes=4096)
    trace = generate_trace(spec, [MIB] * 8, 1.0, RngRegistry(seed))
    ts = np.array([r.t for r in trace.requests])
    # over one full period the sinusoid integrates out: the total is the
    # homogeneous expectation, within Poisson noise
    expected = rate * period
    assert abs(len(ts) - expected) < 0.15 * expected
    # the first half-period carries the positive sine lobe; with
    # amplitude >= 0.5 its expected share is >= 1.9x the trough half
    peak = int((ts < period / 2).sum())
    trough = len(ts) - peak
    assert peak > 1.3 * trough
    # arrivals are sorted and inside the horizon
    assert all(a <= b for a, b in zip(ts, ts[1:]))
    assert ts[-1] < period


# -- 3. same-seed byte-identity + JSONL round trip ---------------------------

def _trace_for(kind: str, seed: int) -> Trace:
    rngs = RngRegistry(seed)
    if kind == "zipf":
        return generate_trace(zipf_spec(500, 1.1), [MIB] * 6, 1.0, rngs)
    if kind == "diurnal":
        spec = WorkloadSpec(name="p", kind="diurnal", rate_rps=40.0,
                            duration_s=50.0, diurnal_amplitude=0.6,
                            diurnal_period_s=25.0, read_bytes=4096)
        return generate_trace(spec, [MIB] * 6, 1.0, rngs)
    assert kind == "churn"
    spec = WorkloadSpec(name="p", kind="churn", n_jobs=3,
                        job_interarrival_s=10.0, job_reads=200,
                        job_rate_rps=50.0, read_bytes=4096)
    return generate_trace(spec, [], 1.0, rngs,
                          job_sizes=[[MIB] * 4] * 3)


@given(
    kind=st.sampled_from(["zipf", "diurnal", "churn"]),
    seed=st.integers(min_value=0, max_value=9999),
)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_same_seed_trace_is_byte_identical(kind, seed):
    a = _trace_for(kind, seed)
    b = _trace_for(kind, seed)
    assert a.to_jsonl() == b.to_jsonl()
    again = Trace.from_jsonl(a.to_jsonl())
    assert again.to_jsonl() == a.to_jsonl()
    assert again.workload == a.workload
    assert again.seed == seed
    assert again.n_reads == a.n_reads


@given(seed=st.integers(min_value=0, max_value=9999))
@settings(max_examples=10, deadline=None)
def test_different_seeds_differ(seed):
    a = _trace_for("zipf", seed)
    b = _trace_for("zipf", seed + 1)
    assert a.to_jsonl() != b.to_jsonl()


# -- 4. full-stack replay invariants (fault plan armed) ----------------------

def _assert_capacity_invariants(handle):
    for _level, drv in handle.monarch.hierarchy.upper_levels():
        assert drv.occupancy_bytes <= drv.quota_bytes, (
            f"tier over quota: {drv.occupancy_bytes} > {drv.quota_bytes}")


@given(
    seed=st.integers(min_value=0, max_value=31),
    fail_frac=st.floats(min_value=0.2, max_value=0.8, allow_nan=False),
)
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_faulted_replay_never_violates_capacity(seed, fail_frac):
    """An SSD dying (and recovering) mid-replay breaks no invariant."""
    workload = WORKLOADS["serve-zipf"]
    horizon = workload.requests / workload.rate_rps
    plan = ssd_tier_down_plan(
        horizon * fail_frac, recover_at_s=horizon * fail_frac + horizon / 10)
    handle = build_run(
        "monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
        scale=1 / 4096, seed=seed, workload=workload, fault_plan=plan,
    )
    result = handle.execute()
    assert result.completed == result.n_requests
    _assert_capacity_invariants(handle)


@given(seed=st.integers(min_value=0, max_value=15))
@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_churn_replay_respects_namespaces_and_capacity(seed):
    """Job churn (per-job namespaces) replays clean through the arbiter.

    A cross-namespace read inside monarch raises NamespaceViolationError,
    so completing every request is itself the namespace invariant.
    """
    handle = build_run(
        "monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
        scale=1 / 4096, seed=seed, workload=WORKLOADS["serve-churn"],
    )
    result = handle.execute()
    assert result.completed == result.n_requests
    assert result.completed > 0
    _assert_capacity_invariants(handle)
