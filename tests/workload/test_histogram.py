"""LatencyHistogram: bounded memory, percentile accuracy, serialization.

The histogram backs the steady-state p50/p99/p999 numbers in every
ServeRunRecord, so its contract is pinned here: memory stays bounded by
the fixed log-bucket grid however many samples stream in, nearest-rank
percentiles agree with the exact answer to within one bucket's
resolution, and the dict form round-trips losslessly.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.workload.histogram import LatencyHistogram

pytestmark = pytest.mark.serve


def exact_percentile(xs: list[float], q: float) -> float:
    """Nearest-rank percentile on the raw samples (the reference)."""
    rank = max(1, math.ceil(q * len(xs)))
    return sorted(xs)[rank - 1]


def test_empty_histogram():
    h = LatencyHistogram()
    assert h.count == 0
    assert h.p50 == 0.0
    assert h.p99 == 0.0
    assert h.mean_s == 0.0


def test_exact_moments_and_extremes():
    h = LatencyHistogram()
    xs = [0.001, 0.004, 0.2, 3.5, 0.00025]
    for x in xs:
        h.add(x)
    assert h.count == len(xs)
    assert h.sum_s == pytest.approx(sum(xs))
    assert h.min_s == min(xs)
    assert h.max_s == max(xs)
    assert h.mean_s == pytest.approx(sum(xs) / len(xs))


def test_bounded_memory():
    """A million samples occupy no more buckets than the grid allows."""
    h = LatencyHistogram()
    rng = random.Random(7)
    for _ in range(100_000):
        h.add(rng.lognormvariate(-6, 2))
    assert h.count == 100_000
    assert len(h.buckets) <= h.n_buckets


def test_percentiles_within_bucket_resolution():
    """p50/p99 agree with exact nearest-rank to one bucket's ratio."""
    # one bucket spans a 10**(1/24) ≈ 1.10x ratio; allow a boundary
    # sample landing one bucket off (float log10 rounding)
    tol = 10 ** (1.5 / 24)
    rng = random.Random(3)
    xs = [rng.lognormvariate(-7, 1.5) for _ in range(5000)]
    h = LatencyHistogram()
    for x in xs:
        h.add(x)
    for q in (0.5, 0.9, 0.99, 0.999):
        exact = exact_percentile(xs, q)
        approx = h.percentile(q)
        assert exact / tol <= approx <= exact * tol, (q, exact, approx)


def test_percentile_never_exceeds_max():
    h = LatencyHistogram()
    for x in (0.01, 0.0101, 0.0102):
        h.add(x)
    assert h.percentile(0.999) <= 0.0102


def test_negative_and_zero_clamp_to_smallest_bucket():
    h = LatencyHistogram()
    h.add(-1.0)
    h.add(0.0)
    assert h.count == 2
    assert h.min_s == 0.0
    assert h.percentile(0.5) <= h.lo * 10 ** (1 / h.bins_per_decade)


def test_merge_matches_combined_stream():
    rng = random.Random(11)
    xs = [rng.expovariate(100.0) for _ in range(400)]
    a, b, both = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
    for i, x in enumerate(xs):
        (a if i % 2 else b).add(x)
        both.add(x)
    a.merge(b)
    assert a.count == both.count
    assert a.buckets == both.buckets
    assert a.sum_s == pytest.approx(both.sum_s)
    assert a.max_s == both.max_s
    assert a.p99 == both.p99


def test_merge_rejects_mismatched_grid():
    a = LatencyHistogram()
    b = LatencyHistogram(bins_per_decade=12)
    with pytest.raises(ValueError):
        a.merge(b)


def test_dict_round_trip():
    h = LatencyHistogram()
    rng = random.Random(5)
    for _ in range(300):
        h.add(rng.expovariate(50.0))
    h2 = LatencyHistogram.from_dict(h.to_dict())
    assert h2.count == h.count
    assert h2.buckets == h.buckets
    assert h2.min_s == h.min_s
    assert h2.max_s == h.max_s
    assert h2.p50 == h.p50
    assert h2.p999 == h.p999
    assert h2.to_dict() == h.to_dict()
