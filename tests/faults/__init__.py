"""Tests for the fault-injection subsystem."""
