"""Middleware degradation: routing around, quarantining and re-admitting tiers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MonarchConfig, TierSpec
from repro.core.metadata import FileState
from repro.core.middleware import Monarch
from repro.data.sharding import build_shards
from repro.data.virtual import materialize
from repro.faults import FaultInjector, FaultPlan, IOFaultError, TierDown, TransientFaults
from repro.simkernel.core import Simulator
from repro.storage.device import Device, SATA_SSD
from repro.storage.localfs import LocalFileSystem
from repro.storage.pfs import ParallelFileSystem
from repro.storage.vfs import MountTable
from tests.conftest import drive

SSD_MOUNT = "/mnt/ssd"
PFS_MOUNT = "/mnt/pfs"


def build_faulted_monarch(
    sim,
    pfs,
    manifest,
    ssd_events=(),
    pfs_events=(),
    seed=0,
    **config_kwargs,
):
    """A two-tier Monarch whose mounts run behind a fault injector."""
    paths = materialize(manifest, pfs, "/dataset")
    local = LocalFileSystem(sim, Device(sim, SATA_SSD), capacity_bytes=64 * 1024 * 1024)
    plan = FaultPlan(
        {
            mount: tuple(events)
            for mount, events in ((SSD_MOUNT, ssd_events), (PFS_MOUNT, pfs_events))
            if events
        }
    )
    injector = FaultInjector(sim, plan, np.random.default_rng(seed))
    mounts = MountTable()
    mounts.mount(PFS_MOUNT, injector.wrap_fs(PFS_MOUNT, pfs))
    mounts.mount(SSD_MOUNT, injector.wrap_fs(SSD_MOUNT, local))
    config = MonarchConfig(
        tiers=(TierSpec(mount_point=SSD_MOUNT), TierSpec(mount_point=PFS_MOUNT)),
        dataset_dir="/dataset",
        placement_threads=2,
        copy_chunk=256 * 1024,
        **config_kwargs,
    )
    monarch = Monarch(sim, config, mounts)
    drive(sim, monarch.initialize(), name="monarch-init")
    return monarch, local, injector, paths


def read_at(sim, monarch, name, at=None):
    """One full read of ``name`` driven to completion; returns byte count."""

    def job():
        if at is not None:
            yield sim.timeout_at(at)
        n = yield from monarch.read(name, 0, monarch.file_size(name))
        return n

    return drive(sim, job())


def place_all(sim, monarch, paths):
    """Read every shard once and wait for the background copies to land."""

    def job():
        for name in paths:
            yield from monarch.read(name, 0, monarch.file_size(name))
        yield from monarch.placement.drain()

    drive(sim, job())
    for name in paths:
        assert monarch.metadata.lookup(name).state is FileState.CACHED


class TestReadFallback:
    def test_tier_down_routes_reads_to_pfs(self, sim, pfs, tiny_manifest):
        monarch, _local, _inj, paths = build_faulted_monarch(
            sim, pfs, tiny_manifest, ssd_events=[TierDown(at=5.0)]
        )
        place_all(sim, monarch, paths)
        size = monarch.file_size(paths[0])
        pfs_level = monarch.hierarchy.pfs_level
        before = monarch.stats.reads_per_level.get(pfs_level, 0)
        for i in range(3):
            assert read_at(sim, monarch, paths[0], at=10.0 + i * 0.01) == size
        assert monarch.stats.fallback_reads == 3
        assert monarch.stats.tier_faults[0] == 3
        assert monarch.stats.reads_per_level[pfs_level] == before + 3
        assert monarch.health.quarantines == 1
        assert monarch.health.quarantined_levels() == [0]

    def test_quarantined_tier_serves_zero_reads(self, sim, pfs, tiny_manifest):
        monarch, _local, _inj, paths = build_faulted_monarch(
            sim, pfs, tiny_manifest, ssd_events=[TierDown(at=5.0)], probe_interval_s=100.0
        )
        place_all(sim, monarch, paths)
        for i in range(3):  # trip the quarantine
            read_at(sim, monarch, paths[0], at=10.0 + i * 0.01)
        served_before = monarch.stats.reads_per_level.get(0, 0)
        for name in paths:
            assert read_at(sim, monarch, name) == monarch.file_size(name)
        # Inside the probe cooldown nothing touches the quarantined tier.
        assert monarch.stats.reads_per_level.get(0, 0) == served_before

    def test_recovery_probe_readmits_tier(self, sim, pfs, tiny_manifest):
        monarch, _local, _inj, paths = build_faulted_monarch(
            sim,
            pfs,
            tiny_manifest,
            ssd_events=[TierDown(at=5.0, recover_at=6.0)],
            probe_interval_s=0.5,
        )
        place_all(sim, monarch, paths)
        for i in range(3):
            read_at(sim, monarch, paths[0], at=5.0 + i * 0.01)
        assert monarch.health.quarantined_levels() == [0]
        served_before = monarch.stats.reads_per_level.get(0, 0)
        # Past recovery and past the probe cooldown: the next read probes
        # the tier, succeeds, and re-admits it.
        assert read_at(sim, monarch, paths[0], at=8.0) == monarch.file_size(paths[0])
        assert monarch.health.readmissions == 1
        assert monarch.health.ok(0)
        assert monarch.stats.reads_per_level[0] == served_before + 1


class TestCopyRobustness:
    def test_transient_copy_faults_retry_then_land(self, sim, pfs, tiny_manifest):
        monarch, local, _inj, paths = build_faulted_monarch(
            sim,
            pfs,
            tiny_manifest,
            ssd_events=[TransientFaults(start=0.0, end=0.3, write_p=1.0)],
            copy_retries=6,
            retry_backoff_s=0.1,
        )
        name = paths[0]

        def job():
            yield from monarch.read(name, 0, monarch.file_size(name))
            yield from monarch.placement.drain()

        drive(sim, job())
        assert monarch.placement.stats.copy_retries >= 1
        assert monarch.placement.stats.copy_giveups == 0
        assert monarch.metadata.lookup(name).state is FileState.CACHED
        assert local.used_bytes == monarch.file_size(name)

    def test_persistent_copy_faults_give_up_cleanly(self, sim, pfs, tiny_manifest):
        monarch, local, _inj, paths = build_faulted_monarch(
            sim,
            pfs,
            tiny_manifest,
            ssd_events=[TransientFaults(start=0.0, end=1e9, write_p=1.0)],
            copy_retries=2,
        )
        name = paths[0]

        def job():
            yield from monarch.read(name, 0, monarch.file_size(name))
            yield from monarch.placement.drain()

        drive(sim, job())
        assert monarch.placement.stats.copy_giveups == 1
        assert monarch.metadata.lookup(name).state is FileState.PFS_ONLY
        assert local.used_bytes == 0
        assert all(v == 0 for v in monarch.placement._reserved.values())
        # initial attempt + 2 retries = 3 faults = quarantine threshold
        assert monarch.health.quarantines == 1
        # With the tier quarantined, further placement requests defer
        # instead of marking files unplaceable.
        read_at(sim, monarch, paths[1])
        assert monarch.placement.stats.deferred >= 1
        assert monarch.placement.stats.unplaceable == 0

    def test_nospace_gives_up_without_health_penalty(self, sim, pfs, tiny_manifest):
        monarch, local, _inj, paths = build_faulted_monarch(
            sim,
            pfs,
            tiny_manifest,
            ssd_events=[TransientFaults(start=0.0, end=1e9, write_p=1.0, error="nospace")],
        )
        name = paths[0]

        def job():
            yield from monarch.read(name, 0, monarch.file_size(name))
            yield from monarch.placement.drain()

        drive(sim, job())
        # Capacity exhaustion is not a device fault: clean give-up, no
        # quarantine, occupancy untouched.
        assert monarch.placement.stats.copy_giveups == 1
        assert monarch.health.quarantines == 0
        assert sum(monarch.health.faults) == 0
        assert local.used_bytes == 0


class TestPFSRetry:
    def test_transient_pfs_faults_are_retried(self, sim, pfs, tiny_manifest):
        monarch, _local, _inj, paths = build_faulted_monarch(
            sim,
            pfs,
            tiny_manifest,
            pfs_events=[TransientFaults(start=10.0, end=10.03, read_p=1.0)],
            read_retries=3,
            retry_backoff_s=0.01,
        )
        name = paths[0]
        # First-ever read lands in the fault window: the PFS attempt fails,
        # the retry loop backs off past the window and succeeds.
        assert read_at(sim, monarch, name, at=10.0) == monarch.file_size(name)
        assert monarch.stats.read_retries >= 1
        assert monarch.stats.tier_faults[monarch.hierarchy.pfs_level] >= 1
        assert monarch.health.quarantines == 0  # the PFS is never quarantined

    def test_pfs_retry_exhaustion_surfaces_the_fault(self, sim, pfs, tiny_manifest):
        monarch, _local, _inj, paths = build_faulted_monarch(
            sim,
            pfs,
            tiny_manifest,
            pfs_events=[TierDown(at=5.0)],
            read_retries=2,
        )
        with pytest.raises(IOFaultError):
            read_at(sim, monarch, paths[0], at=6.0)
        assert monarch.stats.read_retries == 2
        assert monarch.health.quarantines == 0


class TestTelemetry:
    def test_publish_metrics_exposes_every_counter_family(self, sim, pfs, tiny_manifest):
        monarch, _local, _inj, paths = build_faulted_monarch(
            sim, pfs, tiny_manifest, ssd_events=[TierDown(at=5.0)]
        )
        place_all(sim, monarch, paths)
        read_at(sim, monarch, paths[0], at=4.0)  # one healthy cached read
        for i in range(3):
            read_at(sim, monarch, paths[0], at=10.0 + i * 0.01)
        reg = monarch.publish_metrics()
        assert reg.counters["monarch.fallback_reads"] == 3
        assert reg.counters["monarch.tier_faults.l0"] == 3
        assert reg.counters["health.quarantines"] == 1
        assert reg.counters["placement.completed"] == len(paths)
        assert reg.counters["placement.copy_giveups"] == 0
        assert reg.counters["monarch.reads.l0"] > 0

    def test_same_seed_runs_produce_identical_counters(self, tiny_spec):
        def one_run():
            sim = Simulator()
            pfs = ParallelFileSystem(sim)
            manifest = build_shards(tiny_spec)
            monarch, _local, _inj, paths = build_faulted_monarch(
                sim,
                pfs,
                manifest,
                ssd_events=[
                    TransientFaults(start=0.0, end=1e9, read_p=0.3, write_p=0.1),
                ],
                seed=11,
            )

            def job():
                for _ in range(3):
                    for name in paths:
                        yield from monarch.read(name, 0, monarch.file_size(name))
                yield from monarch.placement.drain()

            drive(sim, job())
            counters = dict(monarch.stats.counters())
            counters.update(monarch.health.counters())
            counters["sim.now"] = sim.now
            return counters

        assert one_run() == one_run()
