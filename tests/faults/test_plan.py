"""FaultPlan: validation, schedule queries and (de)serialization."""

from __future__ import annotations

import json

import pytest

from repro.faults import FaultPlan, LatencySpike, TierDown, TransientFaults


class TestEventValidation:
    def test_transient_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            TransientFaults(start=0.0, end=1.0, read_p=1.5)
        with pytest.raises(ValueError):
            TransientFaults(start=0.0, end=1.0, write_p=-0.1)

    def test_transient_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            TransientFaults(start=2.0, end=1.0)

    def test_transient_rejects_unknown_error_kind(self):
        with pytest.raises(ValueError):
            TransientFaults(start=0.0, end=1.0, read_p=0.5, error="eperm")

    def test_nospace_is_write_only(self):
        with pytest.raises(ValueError):
            TransientFaults(start=0.0, end=1.0, read_p=0.5, error="nospace")

    def test_latency_rejects_submultiplier(self):
        with pytest.raises(ValueError):
            LatencySpike(start=0.0, end=1.0, multiplier=0.5)

    def test_tier_down_rejects_recovery_before_failure(self):
        with pytest.raises(ValueError):
            TierDown(at=5.0, recover_at=4.0)

    def test_window_membership(self):
        w = TransientFaults(start=1.0, end=2.0, read_p=0.5)
        assert not w.active(0.5)
        assert w.active(1.0)  # closed at the start
        assert not w.active(2.0)  # open at the end

    def test_tier_down_membership(self):
        d = TierDown(at=3.0, recover_at=5.0)
        assert not d.active(2.9)
        assert d.active(3.0)
        assert d.active(4.9)
        assert not d.active(5.0)
        forever = TierDown(at=3.0)
        assert forever.active(1e9)


class TestPlan:
    def test_mounts_sorted_and_queries(self):
        plan = FaultPlan(
            {
                "/mnt/ssd": [TierDown(at=1.0)],
                "/mnt/pfs": [LatencySpike(start=0.0, end=1.0, multiplier=2.0)],
            }
        )
        assert plan.mounts() == ["/mnt/pfs", "/mnt/ssd"]
        assert "/mnt/ssd" in plan
        assert "/mnt/ram" not in plan
        assert plan.for_mount("/mnt/ram") == ()
        assert not plan.is_empty()

    def test_empty_plan(self):
        assert FaultPlan({}).is_empty()
        assert FaultPlan({"/mnt/ssd": []}).is_empty()

    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            FaultPlan({"/mnt/ssd": ["tier_down"]})  # type: ignore[list-item]

    def test_round_trip_through_json(self):
        plan = FaultPlan(
            {
                "/mnt/ssd": [
                    TransientFaults(start=0.5, end=2.0, read_p=0.1, write_p=0.2),
                    TransientFaults(start=2.5, end=3.0, write_p=0.4, error="nospace"),
                    LatencySpike(start=1.0, end=3.0, multiplier=4.0),
                    TierDown(at=5.0, recover_at=9.0),
                    TierDown(at=20.0),
                ]
            }
        )
        again = FaultPlan.from_json(json.dumps(plan.to_dict()))
        assert again == plan

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultPlan.from_dict({"/mnt/ssd": [{"kind": "meteor", "at": 1.0}]})


class TestEnvHook:
    def test_absent_and_blank_give_none(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({"REPRO_FAULT_PLAN": "  "}) is None

    def test_json_env_parses(self):
        env = {"REPRO_FAULT_PLAN": '{"/mnt/ssd": [{"kind": "tier_down", "at": 12.5}]}'}
        plan = FaultPlan.from_env(env)
        assert plan is not None
        assert plan.for_mount("/mnt/ssd") == (TierDown(at=12.5),)

    def test_build_run_picks_up_env_plan(self, monkeypatch):
        from repro.experiments.calibration import DEFAULT_CALIBRATION
        from repro.experiments.scenarios import build_run
        from repro.data.imagenet import IMAGENET_100G

        monkeypatch.setenv(
            "REPRO_FAULT_PLAN", '{"/mnt/ssd": [{"kind": "tier_down", "at": 1e9}]}'
        )
        handle = build_run(
            "monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION, scale=1 / 4096, seed=0
        )
        assert handle.injector is not None
        assert handle.fault_plan is not None
        assert handle.fault_plan.for_mount("/mnt/ssd") == (TierDown(at=1e9),)
