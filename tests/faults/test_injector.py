"""FaultInjector proxies: schedule evaluation at the backend layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultyFileSystem,
    IOFaultError,
    LatencySpike,
    TierDown,
    TierFailedError,
    TransientFaults,
)
from repro.storage.base import NoSpaceError
from tests.conftest import drive

MOUNT = "/mnt/ssd"


def make_wrapped(sim, local_fs, events, seed=0):
    plan = FaultPlan({MOUNT: events})
    injector = FaultInjector(sim, plan, np.random.default_rng(seed))
    return injector, injector.wrap_fs(MOUNT, local_fs)


def put_file(sim, fs, path, size):
    def job():
        handle = yield from fs.open(path, "w")
        yield from fs.pwrite(handle, 0, size)
        return handle

    return drive(sim, job())


class TestWrapping:
    def test_unplanned_mount_is_not_wrapped(self, sim, local_fs):
        injector, wrapped = make_wrapped(sim, local_fs, [TierDown(at=1.0)])
        assert injector.wrap_fs("/mnt/other", local_fs) is local_fs
        assert isinstance(wrapped, FaultyFileSystem)
        assert wrapped.inner is local_fs

    def test_untimed_ops_delegate(self, sim, local_fs):
        _, wrapped = make_wrapped(sim, local_fs, [TierDown(at=0.0)])
        # The tier is already down, but bookkeeping still passes through.
        local_fs.add_file("/f", 100)
        assert wrapped.exists("/f")
        assert wrapped.file_size("/f") == 100
        assert wrapped.used_bytes == 100
        wrapped.unlink("/f")  # cleanup must never fault
        assert not local_fs.exists("/f")

    def test_open_rebinds_handle_to_proxy(self, sim, local_fs):
        _, wrapped = make_wrapped(sim, local_fs, [TierDown(at=1e9)])
        handle = put_file(sim, wrapped, "/f", 64)
        # Follow-up I/O routed via handle.fs must not tunnel past the proxy.
        assert handle.fs is wrapped


class TestTierDown:
    def test_down_raises_with_zero_sim_time(self, sim, local_fs):
        _, wrapped = make_wrapped(sim, local_fs, [TierDown(at=0.0)])

        def job():
            yield from wrapped.open("/f", "w")

        before = sim.now
        with pytest.raises(TierFailedError) as exc:
            drive(sim, job())
        assert sim.now == before
        assert exc.value.mount == MOUNT

    def test_recovery_restores_service(self, sim, local_fs):
        _, wrapped = make_wrapped(sim, local_fs, [TierDown(at=0.0, recover_at=5.0)])

        def job():
            yield sim.timeout(5.0)
            handle = yield from wrapped.open("/f", "w")
            n = yield from wrapped.pwrite(handle, 0, 128)
            return n

        assert drive(sim, job()) == 128

    def test_reads_fail_while_down(self, sim, local_fs):
        _, wrapped = make_wrapped(sim, local_fs, [TierDown(at=1.0)])
        handle = put_file(sim, wrapped, "/f", 64)

        def read_after_failure():
            yield sim.timeout(2.0)
            yield from wrapped.pread(handle, 0, 64)

        with pytest.raises(TierFailedError):
            drive(sim, read_after_failure())
        assert wrapped.fault_state.down_rejections >= 1


class TestTransients:
    def test_certain_read_fault_in_window_only(self, sim, local_fs):
        window = TransientFaults(start=1.0, end=2.0, read_p=1.0)
        _, wrapped = make_wrapped(sim, local_fs, [window])
        handle = put_file(sim, wrapped, "/f", 64)  # t < 1: writes unaffected

        def read_at(t):
            def job():
                yield sim.timeout_at(t)
                n = yield from wrapped.pread(handle, 0, 64)
                return n

            return job

        with pytest.raises(IOFaultError) as exc:
            drive(sim, read_at(1.5)())
        assert exc.value.mount == MOUNT
        assert drive(sim, read_at(3.0)()) == 64
        assert wrapped.fault_state.transient_reads == 1

    def test_write_p_does_not_touch_reads(self, sim, local_fs):
        window = TransientFaults(start=0.0, end=10.0, write_p=1.0)
        _, wrapped = make_wrapped(sim, local_fs, [window])
        local_fs.add_file("/f", 64)

        def job():
            handle = yield from wrapped.open("/f")
            n = yield from wrapped.pread(handle, 0, 64)
            return n

        assert drive(sim, job()) == 64

    def test_nospace_error_kind(self, sim, local_fs):
        window = TransientFaults(start=0.0, end=10.0, write_p=1.0, error="nospace")
        _, wrapped = make_wrapped(sim, local_fs, [window])

        def job():
            yield from wrapped.open("/f", "w")

        with pytest.raises(NoSpaceError) as exc:
            drive(sim, job())
        assert exc.value.mount == MOUNT  # type: ignore[attr-defined]

    def test_draws_are_seed_deterministic(self, sim, local_fs):
        # Two injectors with the same seed replay the identical fault
        # sequence over the identical op sequence.
        window = TransientFaults(start=0.0, end=100.0, read_p=0.35)
        outcomes = []
        for _ in range(2):
            _, wrapped = make_wrapped(sim, local_fs, [window], seed=9)
            local_fs.add_file("/g", 64) if not local_fs.exists("/g") else None
            seq = []

            def job(w=wrapped, out=seq):
                handle = None
                for _i in range(30):
                    try:
                        if handle is None:
                            handle = yield from w.open("/g")
                        n = yield from w.pread(handle, 0, 64)
                        out.append(("ok", n))
                    except IOFaultError:
                        out.append(("fault", 0))

            drive(sim, job())
            outcomes.append(seq)
        assert outcomes[0] == outcomes[1]
        assert ("fault", 0) in outcomes[0]  # p=0.35 over 30 ops: some faults
        assert ("ok", 64) in outcomes[0]


class TestLatencySpike:
    def test_pread_stretches_by_multiplier(self, sim, local_fs):
        spike = LatencySpike(start=10.0, end=20.0, multiplier=3.0)
        _, wrapped = make_wrapped(sim, local_fs, [spike])
        handle = put_file(sim, wrapped, "/f", 1 << 20)

        def timed_read(at):
            def job():
                yield sim.timeout_at(at)
                t0 = sim.now
                yield from wrapped.pread(handle, 0, 1 << 20)
                return sim.now - t0

            return drive(sim, job())

        plain = timed_read(1.0)
        spiked = timed_read(12.0)
        assert spiked == pytest.approx(3.0 * plain)

    def test_multiplier_applies_to_writes_and_metadata(self, sim, local_fs):
        spike = LatencySpike(start=0.0, end=100.0, multiplier=2.0)
        _, wrapped = make_wrapped(sim, local_fs, [spike])
        _, plain_fs = make_wrapped(sim, local_fs, [])

        def timed(fs, path):
            def job():
                t0 = sim.now
                handle = yield from fs.open(path, "w")
                yield from fs.pwrite(handle, 0, 4096)
                return sim.now - t0

            return drive(sim, job())

        base = timed(local_fs, "/a")
        doubled = timed(wrapped, "/b")
        assert doubled == pytest.approx(2.0 * base)

    def test_overlapping_spikes_compound(self, sim):
        from repro.faults.injector import TierFaultState

        state = TierFaultState(
            sim,
            MOUNT,
            [
                LatencySpike(start=0.0, end=10.0, multiplier=2.0),
                LatencySpike(start=5.0, end=10.0, multiplier=3.0),
            ],
            np.random.default_rng(0),
        )
        assert state.latency_multiplier(at=1.0) == 2.0
        assert state.latency_multiplier(at=6.0) == 6.0
        assert state.latency_multiplier(at=11.0) == 1.0


class TestBulkPaths:
    def test_bulk_prefix_executes_then_fault_surfaces(self, sim, local_fs):
        # Deterministically reproduce the draw sequence to predict where
        # the train dies, then check exactly that prefix landed.
        window = TransientFaults(start=0.5, end=100.0, write_p=0.5)
        injector, wrapped = make_wrapped(sim, local_fs, [window], seed=3)
        replica = np.random.default_rng(3).spawn(1)[0]
        sizes = [4096] * 8
        k = len(sizes)
        for i in range(len(sizes)):
            if replica.random() < 0.5:
                k = i
                break

        def job():
            # t=0: before the window, so the open consumes no draw.
            handle = yield from wrapped.open("/f", "a")
            yield sim.timeout_at(1.0)
            yield from wrapped.pwrite_bulk(handle, 0, sizes)

        if k == len(sizes):
            drive(sim, job())  # pragma: no cover - seed 3 faults early
            written = local_fs.file_size("/f")
        else:
            with pytest.raises(IOFaultError):
                drive(sim, job())
            written = local_fs.file_size("/f") if local_fs.exists("/f") else 0
        assert written == sum(sizes[:k])

    def test_bulk_read_faults_while_down(self, sim, local_fs):
        _, wrapped = make_wrapped(sim, local_fs, [TierDown(at=1.0)])
        handle = put_file(sim, wrapped, "/f", 1 << 16)

        def job():
            yield sim.timeout(2.0)
            yield from wrapped.pread_bulk(handle, 0, [4096, 4096])

        before_used = local_fs.used_bytes
        with pytest.raises(TierFailedError):
            drive(sim, job())
        assert local_fs.used_bytes == before_used


class TestFaultyDevice:
    def test_device_wrapper_faults_and_stretches(self, sim, ssd):
        plan = FaultPlan(
            {
                MOUNT: [
                    TierDown(at=100.0),
                    LatencySpike(start=10.0, end=20.0, multiplier=2.0),
                ]
            }
        )
        injector = FaultInjector(sim, plan, np.random.default_rng(0))
        dev = injector.wrap_device(MOUNT, ssd)

        def timed(at, op):
            def job():
                yield sim.timeout_at(at)
                t0 = sim.now
                yield from op()
                return sim.now - t0

            return drive(sim, job())

        plain = timed(0.0, lambda: dev.read(1 << 20))
        spiked = timed(12.0, lambda: dev.read(1 << 20))
        assert spiked == pytest.approx(2.0 * plain)

        def down_job():
            yield sim.timeout_at(101.0)
            yield from dev.write(4096)

        with pytest.raises(TierFailedError):
            drive(sim, down_job())

    def test_device_bulk_paths_fault(self, sim, ssd):
        plan = FaultPlan({MOUNT: [TierDown(at=0.0)]})
        injector = FaultInjector(sim, plan, np.random.default_rng(0))
        dev = injector.wrap_device(MOUNT, ssd)

        def job():
            yield from dev.read_bulk([4096, 4096])

        before = sim.now
        with pytest.raises(TierFailedError):
            drive(sim, job())
        assert sim.now == before


class TestCounters:
    def test_injector_counter_view(self, sim, local_fs):
        injector, wrapped = make_wrapped(sim, local_fs, [TierDown(at=0.0)])

        def job():
            yield from wrapped.open("/f", "w")

        with pytest.raises(TierFailedError):
            drive(sim, job())
        assert injector.counters() == {
            f"{MOUNT}/transient_reads": 0,
            f"{MOUNT}/transient_writes": 0,
            f"{MOUNT}/down_rejections": 1,
        }
        assert injector.state_for(MOUNT).faults_injected == 1
        assert injector.state_for("/mnt/other") is None
