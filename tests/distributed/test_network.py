"""Unit tests for the allreduce cost model."""

from __future__ import annotations

import pytest

from repro.distributed.network import GRAD_BYTES, AllReduceModel


class TestAllReduceModel:
    def test_single_node_free(self):
        assert AllReduceModel().step_time(10**9, 1) == 0.0

    def test_grows_with_nodes_then_saturates(self):
        m = AllReduceModel(base_latency_s=0.0)
        t2 = m.step_time(10**8, 2)
        t4 = m.step_time(10**8, 4)
        t64 = m.step_time(10**8, 64)
        assert t2 < t4 < t64
        # ring volume approaches 2x the gradient
        assert t64 < 2 * 10**8 / m.link_bw_bytes_per_s * 1.01

    def test_two_node_volume(self):
        m = AllReduceModel(link_bw_bytes_per_s=1e9, base_latency_s=0.0)
        # 2(N-1)/N = 1.0 at N=2
        assert m.step_time(10**9, 2) == pytest.approx(1.0)

    def test_latency_term(self):
        m = AllReduceModel(link_bw_bytes_per_s=1e12, base_latency_s=1e-3)
        assert m.step_time(0, 3) == pytest.approx(4e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            AllReduceModel(link_bw_bytes_per_s=0)
        with pytest.raises(ValueError):
            AllReduceModel(base_latency_s=-1)
        with pytest.raises(ValueError):
            AllReduceModel().step_time(-1, 2)
        with pytest.raises(ValueError):
            AllReduceModel().step_time(1, 0)

    def test_grad_bytes_presets(self):
        assert GRAD_BYTES["alexnet"] > GRAD_BYTES["resnet50"] > GRAD_BYTES["lenet"]


class TestClusterFabric:
    def _fabric(self, n=4, bw=1e9):
        from repro.distributed.network import ClusterFabric
        from repro.simkernel.core import Simulator

        sim = Simulator()
        model = AllReduceModel(link_bw_bytes_per_s=bw, base_latency_s=0.0)
        return sim, ClusterFabric(sim, n, model=model)

    def test_transfer_time_model(self):
        m = AllReduceModel(link_bw_bytes_per_s=1e9, base_latency_s=1e-3)
        assert m.transfer_time(10**9) == pytest.approx(1.001)
        with pytest.raises(ValueError):
            m.transfer_time(-1)

    def test_disjoint_transfers_run_in_parallel(self):
        sim, fabric = self._fabric()
        sim.spawn(fabric.transfer(0, 1, 10**9))
        sim.spawn(fabric.transfer(2, 3, 10**9))
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_shared_endpoint_serializes(self):
        sim, fabric = self._fabric()
        sim.spawn(fabric.transfer(0, 1, 10**9))
        sim.spawn(fabric.transfer(0, 2, 10**9))
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_allreduce_holds_every_link(self):
        sim, fabric = self._fabric()

        def later():
            yield sim.timeout(0.5)
            yield from fabric.transfer(2, 3, 10**9)

        sim.spawn(fabric.allreduce(1.0))
        sim.spawn(later())
        sim.run()
        # the transfer cannot start until the allreduce releases the links
        assert sim.now == pytest.approx(2.0)

    def test_counters(self):
        sim, fabric = self._fabric()
        sim.spawn(fabric.transfer(0, 1, 1000))
        sim.spawn(fabric.allreduce(0.1))
        sim.run()
        assert fabric.counters() == {
            "fabric.peer_transfers": 1,
            "fabric.peer_bytes": 1000,
            "fabric.allreduce_steps": 1,
        }

    def test_rejects_self_transfer_and_bad_sizes(self):
        sim, fabric = self._fabric()
        with pytest.raises(ValueError):
            next(fabric.transfer(1, 1, 10))
        with pytest.raises(ValueError):
            next(fabric.allreduce(-0.1))
        from repro.distributed.network import ClusterFabric

        with pytest.raises(ValueError):
            ClusterFabric(sim, 0)
