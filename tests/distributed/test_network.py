"""Unit tests for the allreduce cost model."""

from __future__ import annotations

import pytest

from repro.distributed.network import GRAD_BYTES, AllReduceModel


class TestAllReduceModel:
    def test_single_node_free(self):
        assert AllReduceModel().step_time(10**9, 1) == 0.0

    def test_grows_with_nodes_then_saturates(self):
        m = AllReduceModel(base_latency_s=0.0)
        t2 = m.step_time(10**8, 2)
        t4 = m.step_time(10**8, 4)
        t64 = m.step_time(10**8, 64)
        assert t2 < t4 < t64
        # ring volume approaches 2x the gradient
        assert t64 < 2 * 10**8 / m.link_bw_bytes_per_s * 1.01

    def test_two_node_volume(self):
        m = AllReduceModel(link_bw_bytes_per_s=1e9, base_latency_s=0.0)
        # 2(N-1)/N = 1.0 at N=2
        assert m.step_time(10**9, 2) == pytest.approx(1.0)

    def test_latency_term(self):
        m = AllReduceModel(link_bw_bytes_per_s=1e12, base_latency_s=1e-3)
        assert m.step_time(0, 3) == pytest.approx(4e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            AllReduceModel(link_bw_bytes_per_s=0)
        with pytest.raises(ValueError):
            AllReduceModel(base_latency_s=-1)
        with pytest.raises(ValueError):
            AllReduceModel().step_time(-1, 2)
        with pytest.raises(ValueError):
            AllReduceModel().step_time(1, 0)

    def test_grad_bytes_presets(self):
        assert GRAD_BYTES["alexnet"] > GRAD_BYTES["resnet50"] > GRAD_BYTES["lenet"]
