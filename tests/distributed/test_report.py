"""Distributed RunReport assembly and the FIG-DIST-CACHE figure plumbing.

The performance claims (p2p beats plain monarch, PFS ops collapse) are
pinned at benchmark scale in ``benchmarks/test_fig_dist_cache.py``; these
tests pin the *shape* of the artifacts at unit scale — per-node report
sections, counter namespaces, JSON round-trips, and the figure/render
helpers the CLI drives.
"""

from __future__ import annotations

import pytest

from repro.data.imagenet import IMAGENET_100G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.dist_scenarios import (
    run_distributed_once,
    run_distributed_report,
)
from repro.experiments.figures import fig_dist_cache, render_dist_cache
from repro.telemetry.runreport import RunReport

pytestmark = pytest.mark.dist

SCALE = 1 / 2048


@pytest.fixture(scope="module")
def p2p_report():
    return run_distributed_report(
        "monarch-p2p", "lenet", IMAGENET_100G, n_nodes=2,
        policy="reshuffle", calib=DEFAULT_CALIBRATION,
        scale=SCALE, seed=3)


class TestDistRunReport:
    def test_per_node_sections(self, p2p_report):
        record, report = p2p_report
        assert sorted(report.nodes) == ["n0", "n1"]
        for name, section in report.nodes.items():
            # every node carries its monarch counters and peer stats
            assert any(k.startswith("monarch.") for k in section["counters"])
            assert section["down_at_s"] == -1.0, name
        # the report's per-node stats agree with the record's totals, and
        # every hit on one node was served off another
        sections = report.nodes.values()
        assert (sum(s["peer_hits"] for s in sections)
                == record.total_peer_hits)
        assert (sum(s["fetches_served"] for s in sections)
                == record.total_peer_hits)

    def test_cluster_counters_and_events(self, p2p_report):
        record, report = p2p_report
        assert report.counters["fabric.peer_transfers"] > 0
        assert report.counters["fabric.allreduce_steps"] > 0
        assert report.counters["peers.fetch_faults"] == 0
        assert report.counters["peers.directory_files"] > 0
        assert report.event_kinds().get("peer.fetch", 0) > 0

    def test_epoch_entries_carry_peer_fields(self, p2p_report):
        record, report = p2p_report
        assert len(report.epochs) == len(record.epoch_times_s)
        cold, steady = report.epochs[0], report.epochs[-1]
        assert cold["peer_hits"] == 0
        assert steady["peer_hits"] > 0
        for entry in report.epochs:
            assert len(entry["node_hit_ratios"]) == 2
            assert set(entry["pfs_ops"]) >= {"read_ops", "open_ops"}

    def test_meta_identifies_the_run(self, p2p_report):
        record, report = p2p_report
        assert report.meta["setup"] == "monarch-p2p"
        assert report.meta["n_nodes"] == 2
        assert report.meta["partition_policy"] == "reshuffle"
        assert report.meta["seed"] == 3

    def test_json_round_trip_keeps_nodes(self, p2p_report):
        _, report = p2p_report
        back = RunReport.from_dict(report.to_dict())
        assert back.nodes == report.nodes
        assert back.to_json() == report.to_json()

    def test_nodes_key_omitted_when_empty(self):
        # single-node reports must serialize exactly as before the p2p
        # tier existed — golden fixtures depend on it
        assert "nodes" not in RunReport(meta={}, epochs=[]).to_dict()

    def test_report_skipped_without_event_recording(self):
        rec = run_distributed_once(
            "monarch-p2p", "lenet", IMAGENET_100G, n_nodes=2,
            policy="reshuffle", calib=DEFAULT_CALIBRATION,
            scale=SCALE, seed=3)
        assert rec.total_peer_hits > 0


class TestFigDistCache:
    def test_figure_and_render(self):
        result = fig_dist_cache(scale=SCALE, seed=3, nodes=(2,))
        assert result["nodes"] == (2,)
        assert set(result["runs"]) == {("monarch", 2), ("monarch-p2p", 2)}
        p2p = result["runs"][("monarch-p2p", 2)]
        assert p2p.total_peer_hits > 0

        text = render_dist_cache(result, title="FIG-DIST-CACHE (unit)")
        assert "FIG-DIST-CACHE (unit)" in text
        assert "monarch-p2p" in text
        assert "win condition" in text
