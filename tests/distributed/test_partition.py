"""Unit tests for shard-partition policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.partition import partition_shards


class TestPartitionShards:
    def test_every_shard_assigned_exactly_once(self):
        rng = np.random.default_rng(0)
        for policy in ("static", "reshuffle"):
            parts = partition_shards(37, 4, policy, epoch=0, rng=rng)
            flat = sorted(i for p in parts for i in p)
            assert flat == list(range(37))

    def test_balanced_within_one(self):
        rng = np.random.default_rng(0)
        parts = partition_shards(37, 4, "reshuffle", 0, rng)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_static_is_stable_across_epochs(self):
        rng = np.random.default_rng(0)
        a = partition_shards(20, 3, "static", 0, rng)
        b = partition_shards(20, 3, "static", 5, rng)
        assert a == b

    def test_reshuffle_changes_across_calls(self):
        rng = np.random.default_rng(0)
        a = partition_shards(40, 4, "reshuffle", 0, rng)
        b = partition_shards(40, 4, "reshuffle", 1, rng)
        assert a != b

    def test_single_node_gets_everything(self):
        rng = np.random.default_rng(0)
        parts = partition_shards(10, 1, "static", 0, rng)
        assert parts == [list(range(10))]

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            partition_shards(0, 1, "static", 0, rng)
        with pytest.raises(ValueError):
            partition_shards(2, 3, "static", 0, rng)
        with pytest.raises(ValueError):
            partition_shards(10, 2, "round-robin", 0, rng)  # type: ignore[arg-type]
