"""Unit and integration tests for the peer-to-peer cache tier."""

from __future__ import annotations

import pytest

from repro.data.imagenet import IMAGENET_100G
from repro.distributed.cluster import ClusterSpec, build_cluster, node_fault_mount
from repro.distributed.peercache import CacheDirectory
from repro.distributed.trainer import DistributedTrainer
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.dist_scenarios import run_distributed_once
from repro.faults.plan import FaultPlan, TierDown
from repro.framework.models import LENET

SCALE = 1 / 2048


class TestCacheDirectory:
    def test_publish_and_locate(self):
        d = CacheDirectory()
        d.add_node(0)
        d.add_node(2)
        assert d.publish("a", 2)
        assert d.publish("a", 0)
        assert d.locate("a") == 0
        assert d.locate("a", exclude=0) == 2
        assert d.holders("a") == [0, 2]
        assert len(d) == 2

    def test_publish_to_dead_node_ignored(self):
        d = CacheDirectory()
        d.add_node(0)
        assert not d.publish("a", 1)
        assert d.locate("a") is None

    def test_withdraw_is_idempotent(self):
        d = CacheDirectory()
        d.add_node(0)
        d.publish("a", 0)
        d.withdraw("a", 0)
        d.withdraw("a", 0)
        assert d.locate("a") is None
        assert d.files() == []

    def test_drop_node_purges_entries(self):
        d = CacheDirectory()
        for n in (0, 1):
            d.add_node(n)
        d.publish("a", 0)
        d.publish("a", 1)
        d.publish("b", 1)
        dropped = d.drop_node(1)
        assert dropped == ["a", "b"]
        assert not d.is_live(1)
        assert d.locate("a") == 0
        assert d.locate("b") is None
        assert len(d) == 1

    def test_locate_unknown_file(self):
        assert CacheDirectory().locate("nope") is None

    def test_live_nodes(self):
        d = CacheDirectory()
        for n in (3, 1):
            d.add_node(n)
        assert d.live_nodes() == [1, 3]
        d.drop_node(3)
        assert d.live_nodes() == [1]


def _p2p_cluster(n_nodes=2, seed=3, **kwargs):
    return build_cluster("monarch-p2p", IMAGENET_100G, DEFAULT_CALIBRATION,
                         ClusterSpec(n_nodes), scale=SCALE, seed=seed, **kwargs)


def _run(cluster, policy="reshuffle", epochs=2, seed=3):
    trainer = DistributedTrainer(
        cluster=cluster, model=LENET, pipeline_config=cluster.env.pipeline,
        partition_policy=policy, epochs=epochs, seed=seed,
    )
    return cluster.sim.run(cluster.sim.spawn(trainer.run()))


class TestPeerCacheService:
    def test_register_twice_rejected(self):
        cluster = _p2p_cluster()
        with pytest.raises(ValueError):
            cluster.peers.register(0, cluster.nodes[0].monarch)

    def test_reshuffle_run_hits_peers(self):
        cluster = _p2p_cluster()
        result = _run(cluster)
        peers = cluster.peers
        assert result.epochs[1].peer_hits > 0
        assert result.epochs[1].peer_hits == peers.total_peer_hits
        # every hit has a matching serve, and the bytes crossed the fabric
        served = sum(s.fetches_served for s in peers.stats.values())
        assert served == peers.total_peer_hits
        assert cluster.fabric.peer_bytes == peers.total_peer_bytes
        assert len(peers.directory) > 0

    def test_node_down_purges_and_node_up_restores(self):
        cluster = _p2p_cluster()
        _run(cluster, epochs=1, policy="static")
        peers = cluster.peers
        before = {name for name in peers.directory.files()
                  if 0 in peers.directory.holders(name)}
        assert before
        peers.node_down(0)
        assert peers.is_down(0)
        assert all(0 not in peers.directory.holders(n)
                   for n in peers.directory.files())
        peers.node_down(0)  # idempotent
        peers.node_up(0)
        assert not peers.is_down(0)
        after = {name for name in peers.directory.files()
                 if 0 in peers.directory.holders(name)}
        assert after == before

    def test_publishes_suppressed_while_down(self):
        cluster = _p2p_cluster()
        peers = cluster.peers
        peers.node_down(1)
        peers._on_residency(1, "x", True)
        assert peers.directory.locate("x") is None

    def test_tier_death_is_detected_and_run_completes(self):
        plan = FaultPlan({node_fault_mount(1): [TierDown(at=0.22)]})
        cluster = _p2p_cluster(n_nodes=2, fault_plan=plan)
        result = _run(cluster, epochs=3)
        peers = cluster.peers
        assert len(result.epochs) == 3
        assert peers.is_down(1)
        assert peers.node_down_s[1] >= 0.22
        # nothing was served off node 1 after it died
        last = peers.last_fetch_s_by_source.get(1)
        assert last is None or last <= peers.node_down_s[1]

    def test_dead_peer_rereplicates_hot_files(self):
        plan = FaultPlan({node_fault_mount(0): [TierDown(at=0.22)]})
        cluster = _p2p_cluster(n_nodes=3, fault_plan=plan)
        _run(cluster, epochs=3)
        peers = cluster.peers
        assert peers.is_down(0)
        survivors = sum(peers.stats[n].rereplications for n in (1, 2))
        assert survivors > 0
        assert peers.stats[0].rereplications == 0


class TestDistP2pRecord:
    def test_record_carries_peer_fields(self):
        rec = run_distributed_once("monarch-p2p", "lenet", IMAGENET_100G,
                                   n_nodes=2, policy="reshuffle",
                                   scale=SCALE, seed=3, epochs=2)
        assert sum(rec.peer_hits_per_epoch) == rec.total_peer_hits > 0
        assert sum(rec.peer_hits_by_node) == rec.total_peer_hits
        assert sum(rec.fetches_served_by_node) == rec.total_peer_hits
        assert rec.node_down_s == [-1.0, -1.0]
        assert all(t > 0 for t in rec.last_fetch_s_by_source)

    def test_non_p2p_record_has_empty_peer_fields(self):
        rec = run_distributed_once("monarch", "lenet", IMAGENET_100G,
                                   n_nodes=2, scale=SCALE, seed=3, epochs=1)
        assert rec.peer_hits_per_epoch == []
        assert rec.peer_hits_by_node == []
        assert rec.node_down_s == []
