"""Additional distributed-training consistency tests."""

from __future__ import annotations

import pytest

from repro.data.imagenet import IMAGENET_100G
from repro.distributed.cluster import ClusterSpec, build_cluster
from repro.distributed.network import AllReduceModel
from repro.distributed.trainer import DistributedTrainer
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.framework.models import MODELS

SCALE = 1 / 2048


def run(setup, n_nodes, policy="static", epochs=2, allreduce=None, seed=1):
    cluster = build_cluster(setup, IMAGENET_100G, DEFAULT_CALIBRATION,
                            ClusterSpec(n_nodes), scale=SCALE, seed=seed)
    trainer = DistributedTrainer(
        cluster, MODELS["lenet"], cluster.env.pipeline,
        partition_policy=policy, epochs=epochs, seed=seed,
        allreduce=allreduce,
    )
    result = cluster.sim.run(cluster.sim.spawn(trainer.run()))
    return cluster, result


class TestDropRemainder:
    def test_steps_gated_by_smallest_partition(self):
        """Synchronous epochs run exactly floor(min node records / batch)
        full global steps — the slowest-partition drop-remainder rule."""
        import numpy as np

        from repro.distributed.partition import partition_shards

        cluster, result = run("vanilla-lustre", 3)
        batch = cluster.env.pipeline.batch_size
        parts = partition_shards(len(cluster.shards), 3, "static", 0,
                                 np.random.default_rng(0))
        node_records = [
            sum(cluster.shards[i].n_records for i in p) for p in parts
        ]
        expected_steps = min(node_records) // batch
        for e in result.epochs:
            assert e.global_steps == expected_steps
            assert e.records == expected_steps * 3 * batch
            assert e.records <= cluster.dataset.n_samples

    def test_steps_equal_across_epochs_static(self):
        _, result = run("vanilla-lustre", 2, policy="static")
        steps = [e.global_steps for e in result.epochs]
        assert steps[0] == steps[1] > 0


class TestEpochAccounting:
    def test_pfs_ops_delta_per_epoch_sums(self):
        cluster, result = run("vanilla-lustre", 2, epochs=2)
        total = sum(e.pfs_ops.total_ops for e in result.epochs)
        assert total == cluster.pfs.stats.snapshot().total_ops

    def test_monarch_init_runs_in_parallel_across_nodes(self):
        """N namespaces traverse concurrently: init ~ one node's time."""
        _, r1 = run("monarch", 1, epochs=1)
        _, r4 = run("monarch", 4, epochs=1)
        assert r4.init_time_s < 1.8 * r1.init_time_s

    def test_trainer_validation(self):
        cluster = build_cluster("monarch", IMAGENET_100G, DEFAULT_CALIBRATION,
                                ClusterSpec(1), scale=SCALE)
        with pytest.raises(ValueError):
            DistributedTrainer(cluster, MODELS["lenet"], cluster.env.pipeline,
                               epochs=0)


class TestAllReduceImpact:
    def test_slower_fabric_slows_epochs(self):
        fast = AllReduceModel(link_bw_bytes_per_s=12.5e9)
        slow = AllReduceModel(link_bw_bytes_per_s=0.5e9)
        _, rf = run("vanilla-lustre", 2, epochs=1, allreduce=fast)
        _, rs = run("vanilla-lustre", 2, epochs=1, allreduce=slow)
        assert rs.epoch_times[0] > rf.epoch_times[0]

    def test_no_allreduce_cost_single_node(self):
        slow = AllReduceModel(link_bw_bytes_per_s=0.5e9)
        _, a = run("vanilla-lustre", 1, epochs=1, allreduce=slow)
        _, b = run("vanilla-lustre", 1, epochs=1)
        assert a.epoch_times[0] == pytest.approx(b.epoch_times[0])
