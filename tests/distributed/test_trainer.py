"""Integration tests for the distributed trainer (tiny scale)."""

from __future__ import annotations

import pytest

from repro.data.imagenet import IMAGENET_100G, IMAGENET_200G
from repro.distributed.cluster import ClusterSpec, build_cluster
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.dist_scenarios import run_distributed_once

SCALE = 1 / 2048


class TestBuildCluster:
    def test_node_count_and_shared_pfs(self):
        cluster = build_cluster("monarch", IMAGENET_100G, DEFAULT_CALIBRATION,
                                ClusterSpec(3), scale=SCALE, seed=1)
        assert len(cluster.nodes) == 3
        # one PFS object, three distinct local tiers / monarch namespaces
        locals_ = {id(ns.local_fs) for ns in cluster.nodes}
        monarchs = {id(ns.monarch) for ns in cluster.nodes}
        assert len(locals_) == 3
        assert len(monarchs) == 3
        for ns in cluster.nodes:
            fs, _ = ns.mounts.resolve("/mnt/pfs/x")
            assert fs is cluster.pfs

    def test_vanilla_nodes_have_no_tier(self):
        cluster = build_cluster("vanilla-lustre", IMAGENET_100G, DEFAULT_CALIBRATION,
                                ClusterSpec(2), scale=SCALE, seed=1)
        assert all(ns.local_fs is None for ns in cluster.nodes)

    def test_unknown_setup(self):
        with pytest.raises(ValueError):
            build_cluster("vanilla-caching", IMAGENET_100G, DEFAULT_CALIBRATION,
                          ClusterSpec(2), scale=SCALE)


class TestDistributedRuns:
    def test_single_node_matches_structure(self):
        rec = run_distributed_once("vanilla-lustre", "lenet", IMAGENET_100G,
                                   n_nodes=1, scale=SCALE, seed=2, epochs=2)
        assert len(rec.epoch_times_s) == 2
        assert all(t > 0 for t in rec.epoch_times_s)

    def test_monarch_multi_node_completes_and_caches(self):
        rec = run_distributed_once("monarch", "lenet", IMAGENET_100G,
                                   n_nodes=2, policy="static",
                                   scale=SCALE, seed=2, epochs=3)
        # after epoch 1 both nodes serve their slice locally
        assert rec.tier_hit_ratio_per_epoch[-1] == pytest.approx(1.0, abs=0.02)
        assert rec.pfs_ops_per_epoch[-1] < 0.05 * rec.pfs_ops_per_epoch[0]
        assert rec.init_time_s > 0

    def test_static_beats_reshuffle_on_misses(self):
        """The §VI data-placement question: reshuffling starves the tier."""
        calib = DEFAULT_CALIBRATION.busy()
        static = run_distributed_once("monarch", "lenet", IMAGENET_200G,
                                      n_nodes=2, policy="static",
                                      calib=calib, scale=SCALE, seed=2)
        reshuffle = run_distributed_once("monarch", "lenet", IMAGENET_200G,
                                         n_nodes=2, policy="reshuffle",
                                         calib=calib, scale=SCALE, seed=2)
        assert static.steady_hit_ratio > reshuffle.steady_hit_ratio
        assert static.epoch_times_s[-1] <= reshuffle.epoch_times_s[-1]

    def test_more_nodes_cut_steady_epochs_with_monarch(self):
        calib = DEFAULT_CALIBRATION.busy()
        one = run_distributed_once("monarch", "lenet", IMAGENET_200G,
                                   n_nodes=1, calib=calib, scale=SCALE, seed=2)
        four = run_distributed_once("monarch", "lenet", IMAGENET_200G,
                                    n_nodes=4, calib=calib, scale=SCALE, seed=2)
        assert four.epoch_times_s[-1] < 0.5 * one.epoch_times_s[-1]

    def test_vanilla_scaling_is_pfs_bound(self):
        """Epoch time barely improves with nodes when all I/O is shared."""
        calib = DEFAULT_CALIBRATION.busy()
        one = run_distributed_once("vanilla-lustre", "lenet", IMAGENET_200G,
                                   n_nodes=1, calib=calib, scale=SCALE, seed=2)
        four = run_distributed_once("vanilla-lustre", "lenet", IMAGENET_200G,
                                    n_nodes=4, calib=calib, scale=SCALE, seed=2)
        # nowhere near the 4x a compute-bound workload would get
        assert four.epoch_times_s[-1] > 0.55 * one.epoch_times_s[-1]

    def test_allreduce_overhead_visible_for_big_models(self):
        """AlexNet's 244 MB gradients make multi-node steps pay real sync."""
        rec1 = run_distributed_once("monarch", "alexnet", IMAGENET_100G,
                                    n_nodes=1, scale=SCALE, seed=2, epochs=1)
        rec4 = run_distributed_once("monarch", "alexnet", IMAGENET_100G,
                                    n_nodes=4, scale=SCALE, seed=2, epochs=1)
        # per-record work is fixed; 4 nodes process 1/4 the records each but
        # pay allreduce per step, so speedup is clearly sublinear
        assert rec4.epoch_times_s[0] > rec1.epoch_times_s[0] / 4

    def test_deterministic(self):
        def once():
            return run_distributed_once("monarch", "lenet", IMAGENET_100G,
                                        n_nodes=2, scale=SCALE, seed=5,
                                        epochs=2).epoch_times_s

        assert once() == once()


class TestHitRatioAccounting:
    """The pooled-vs-per-node semantics fix (cluster-wide vs node means)."""

    def _record(self):
        return run_distributed_once("monarch", "lenet", IMAGENET_100G,
                                    n_nodes=2, policy="static",
                                    scale=SCALE, seed=2, epochs=2)

    def test_reports_both_pooled_and_per_node(self):
        rec = self._record()
        assert len(rec.node_hit_ratios_per_epoch) == 2
        assert all(len(per_node) == 2 for per_node in rec.node_hit_ratios_per_epoch)
        assert len(rec.mean_node_hit_ratio_per_epoch) == 2

    def test_pooled_ratio_is_read_weighted(self):
        """Pooled = sum(hits)/sum(reads); per-node mean is unweighted."""
        rec = self._record()
        for pooled, per_node in zip(rec.tier_hit_ratio_per_epoch,
                                    rec.node_hit_ratios_per_epoch):
            assert min(per_node) <= pooled <= max(per_node)

    def test_pinned_values_on_two_node_run(self):
        rec = self._record()
        # steady state: both nodes serve their static slice locally, so
        # pooled and per-node agree at ~1.0
        assert rec.tier_hit_ratio_per_epoch[1] == pytest.approx(1.0, abs=0.02)
        for r in rec.node_hit_ratios_per_epoch[1]:
            assert r == pytest.approx(1.0, abs=0.02)
        assert rec.mean_node_hit_ratio_per_epoch[1] == pytest.approx(
            sum(rec.node_hit_ratios_per_epoch[1]) / 2)
        # epoch 1 is the cold pass: every figure agrees it is partial
        assert 0.0 < rec.tier_hit_ratio_per_epoch[0] < 1.0
        assert rec.mean_node_hit_ratio_per_epoch[0] < 1.0


class TestGradBytesResolution:
    """grad bytes come from the profile, the registry, or fail loudly."""

    def _trainer(self, model):
        from repro.distributed.trainer import DistributedTrainer

        cluster = build_cluster("vanilla-lustre", IMAGENET_100G,
                                DEFAULT_CALIBRATION, ClusterSpec(2),
                                scale=SCALE, seed=1)
        return DistributedTrainer(cluster=cluster, model=model,
                                  pipeline_config=cluster.env.pipeline)

    def test_profile_grad_bytes_wins(self):
        from repro.framework.models import ModelProfile

        model = ModelProfile(name="lenet", gpu_time_per_image_us=380.0,
                             cpu_time_per_image_us=4300.0, grad_bytes=123)
        assert self._trainer(model).grad_bytes == 123

    def test_registry_fallback_by_name(self):
        from repro.distributed.network import GRAD_BYTES
        from repro.framework.models import ModelProfile

        model = ModelProfile(name="lenet", gpu_time_per_image_us=380.0,
                             cpu_time_per_image_us=4300.0)
        assert self._trainer(model).grad_bytes == GRAD_BYTES["lenet"]

    def test_unknown_model_raises_instead_of_guessing(self):
        from repro.framework.models import ModelProfile

        model = ModelProfile(name="mystery-net", gpu_time_per_image_us=100.0,
                             cpu_time_per_image_us=100.0)
        with pytest.raises(ValueError, match="mystery-net"):
            self._trainer(model)


class TestP2pRuns:
    def test_p2p_beats_monarch_under_reshuffle(self):
        calib = DEFAULT_CALIBRATION.busy()
        plain = run_distributed_once("monarch", "lenet", IMAGENET_200G,
                                     n_nodes=4, policy="reshuffle",
                                     calib=calib, scale=SCALE, seed=7)
        p2p = run_distributed_once("monarch-p2p", "lenet", IMAGENET_200G,
                                   n_nodes=4, policy="reshuffle",
                                   calib=calib, scale=SCALE, seed=7)
        assert p2p.total_time_s < plain.total_time_s
        assert p2p.pfs_ops_per_epoch[1] < plain.pfs_ops_per_epoch[1]

    def test_p2p_epoch_one_matches_monarch_semantics(self):
        """No peers hold anything yet, so epoch 1 pays the same PFS cost."""
        rec = run_distributed_once("monarch-p2p", "lenet", IMAGENET_100G,
                                   n_nodes=2, policy="reshuffle",
                                   scale=SCALE, seed=5, epochs=2)
        assert rec.peer_hits_per_epoch[0] == 0
        assert rec.peer_hits_per_epoch[1] > 0

    def test_p2p_deterministic(self):
        from dataclasses import asdict

        def once():
            return asdict(run_distributed_once(
                "monarch-p2p", "lenet", IMAGENET_100G, n_nodes=2,
                policy="reshuffle", scale=SCALE, seed=5, epochs=2))

        assert once() == once()
