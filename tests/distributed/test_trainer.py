"""Integration tests for the distributed trainer (tiny scale)."""

from __future__ import annotations

import pytest

from repro.data.imagenet import IMAGENET_100G, IMAGENET_200G
from repro.distributed.cluster import ClusterSpec, build_cluster
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.dist_scenarios import run_distributed_once

SCALE = 1 / 2048


class TestBuildCluster:
    def test_node_count_and_shared_pfs(self):
        cluster = build_cluster("monarch", IMAGENET_100G, DEFAULT_CALIBRATION,
                                ClusterSpec(3), scale=SCALE, seed=1)
        assert len(cluster.nodes) == 3
        # one PFS object, three distinct local tiers / monarch namespaces
        locals_ = {id(ns.local_fs) for ns in cluster.nodes}
        monarchs = {id(ns.monarch) for ns in cluster.nodes}
        assert len(locals_) == 3
        assert len(monarchs) == 3
        for ns in cluster.nodes:
            fs, _ = ns.mounts.resolve("/mnt/pfs/x")
            assert fs is cluster.pfs

    def test_vanilla_nodes_have_no_tier(self):
        cluster = build_cluster("vanilla-lustre", IMAGENET_100G, DEFAULT_CALIBRATION,
                                ClusterSpec(2), scale=SCALE, seed=1)
        assert all(ns.local_fs is None for ns in cluster.nodes)

    def test_unknown_setup(self):
        with pytest.raises(ValueError):
            build_cluster("vanilla-caching", IMAGENET_100G, DEFAULT_CALIBRATION,
                          ClusterSpec(2), scale=SCALE)


class TestDistributedRuns:
    def test_single_node_matches_structure(self):
        rec = run_distributed_once("vanilla-lustre", "lenet", IMAGENET_100G,
                                   n_nodes=1, scale=SCALE, seed=2, epochs=2)
        assert len(rec.epoch_times_s) == 2
        assert all(t > 0 for t in rec.epoch_times_s)

    def test_monarch_multi_node_completes_and_caches(self):
        rec = run_distributed_once("monarch", "lenet", IMAGENET_100G,
                                   n_nodes=2, policy="static",
                                   scale=SCALE, seed=2, epochs=3)
        # after epoch 1 both nodes serve their slice locally
        assert rec.tier_hit_ratio_per_epoch[-1] == pytest.approx(1.0, abs=0.02)
        assert rec.pfs_ops_per_epoch[-1] < 0.05 * rec.pfs_ops_per_epoch[0]
        assert rec.init_time_s > 0

    def test_static_beats_reshuffle_on_misses(self):
        """The §VI data-placement question: reshuffling starves the tier."""
        calib = DEFAULT_CALIBRATION.busy()
        static = run_distributed_once("monarch", "lenet", IMAGENET_200G,
                                      n_nodes=2, policy="static",
                                      calib=calib, scale=SCALE, seed=2)
        reshuffle = run_distributed_once("monarch", "lenet", IMAGENET_200G,
                                         n_nodes=2, policy="reshuffle",
                                         calib=calib, scale=SCALE, seed=2)
        assert static.steady_hit_ratio > reshuffle.steady_hit_ratio
        assert static.epoch_times_s[-1] <= reshuffle.epoch_times_s[-1]

    def test_more_nodes_cut_steady_epochs_with_monarch(self):
        calib = DEFAULT_CALIBRATION.busy()
        one = run_distributed_once("monarch", "lenet", IMAGENET_200G,
                                   n_nodes=1, calib=calib, scale=SCALE, seed=2)
        four = run_distributed_once("monarch", "lenet", IMAGENET_200G,
                                    n_nodes=4, calib=calib, scale=SCALE, seed=2)
        assert four.epoch_times_s[-1] < 0.5 * one.epoch_times_s[-1]

    def test_vanilla_scaling_is_pfs_bound(self):
        """Epoch time barely improves with nodes when all I/O is shared."""
        calib = DEFAULT_CALIBRATION.busy()
        one = run_distributed_once("vanilla-lustre", "lenet", IMAGENET_200G,
                                   n_nodes=1, calib=calib, scale=SCALE, seed=2)
        four = run_distributed_once("vanilla-lustre", "lenet", IMAGENET_200G,
                                    n_nodes=4, calib=calib, scale=SCALE, seed=2)
        # nowhere near the 4x a compute-bound workload would get
        assert four.epoch_times_s[-1] > 0.55 * one.epoch_times_s[-1]

    def test_allreduce_overhead_visible_for_big_models(self):
        """AlexNet's 244 MB gradients make multi-node steps pay real sync."""
        rec1 = run_distributed_once("monarch", "alexnet", IMAGENET_100G,
                                    n_nodes=1, scale=SCALE, seed=2, epochs=1)
        rec4 = run_distributed_once("monarch", "alexnet", IMAGENET_100G,
                                    n_nodes=4, scale=SCALE, seed=2, epochs=1)
        # per-record work is fixed; 4 nodes process 1/4 the records each but
        # pay allreduce per step, so speedup is clearly sublinear
        assert rec4.epoch_times_s[0] > rec1.epoch_times_s[0] / 4

    def test_deterministic(self):
        def once():
            return run_distributed_once("monarch", "lenet", IMAGENET_100G,
                                        n_nodes=2, scale=SCALE, seed=5,
                                        epochs=2).epoch_times_s

        assert once() == once()
