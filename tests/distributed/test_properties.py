"""Property-based invariants for shard partitioning and the cache directory.

Two pieces of the distributed layer are pure data structures whose
correctness the p2p cache tier leans on completely:

* :func:`partition_shards` — every shard must land on exactly one node,
  partitions must balance within one shard, ``static`` must ignore both
  the epoch and the RNG, and ``reshuffle`` must be a pure function of the
  RNG stream (same seed ⇒ same permutations).
* :class:`CacheDirectory` — under arbitrary interleavings of publish /
  withdraw / drop_node / add_node, an entry must always name a live node
  that actually holds the file, and dropping a node must leave no
  dangling reference to it anywhere.

Everything runs derandomized so a failing example reproduces bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distributed.partition import partition_shards
from repro.distributed.peercache import CacheDirectory

pytestmark = [pytest.mark.dist, pytest.mark.hypothesis_heavy]

SETTINGS = dict(
    max_examples=60,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

shard_counts = st.integers(min_value=1, max_value=200)
node_counts = st.integers(min_value=1, max_value=16)
epochs = st.integers(min_value=0, max_value=20)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
policies = st.sampled_from(["static", "reshuffle"])


@st.composite
def shard_layout(draw):
    n_nodes = draw(node_counts)
    n_shards = draw(shard_counts.filter(lambda s: s >= n_nodes))
    return n_shards, n_nodes


# -- partition_shards --------------------------------------------------------


@settings(**SETTINGS)
@given(layout=shard_layout(), policy=policies, epoch=epochs, seed=seeds)
def test_every_shard_assigned_exactly_once(layout, policy, epoch, seed):
    n_shards, n_nodes = layout
    rng = np.random.default_rng(seed)
    parts = partition_shards(n_shards, n_nodes, policy, epoch, rng)
    assert len(parts) == n_nodes
    flat = sorted(i for p in parts for i in p)
    assert flat == list(range(n_shards))


@settings(**SETTINGS)
@given(layout=shard_layout(), policy=policies, epoch=epochs, seed=seeds)
def test_partitions_balance_within_one_shard(layout, policy, epoch, seed):
    n_shards, n_nodes = layout
    rng = np.random.default_rng(seed)
    sizes = [len(p) for p in partition_shards(n_shards, n_nodes, policy, epoch, rng)]
    assert max(sizes) - min(sizes) <= 1


@settings(**SETTINGS)
@given(layout=shard_layout(), epoch_a=epochs, epoch_b=epochs,
       seed_a=seeds, seed_b=seeds)
def test_static_ignores_epoch_and_rng(layout, epoch_a, epoch_b, seed_a, seed_b):
    n_shards, n_nodes = layout
    a = partition_shards(n_shards, n_nodes, "static", epoch_a,
                         np.random.default_rng(seed_a))
    b = partition_shards(n_shards, n_nodes, "static", epoch_b,
                         np.random.default_rng(seed_b))
    assert a == b


@settings(**SETTINGS)
@given(layout=shard_layout(), seed=seeds, n_epochs=st.integers(1, 6))
def test_reshuffle_same_seed_is_deterministic(layout, seed, n_epochs):
    n_shards, n_nodes = layout

    def sequence():
        rng = np.random.default_rng(seed)
        return [partition_shards(n_shards, n_nodes, "reshuffle", e, rng)
                for e in range(n_epochs)]

    assert sequence() == sequence()


# -- CacheDirectory ----------------------------------------------------------

node_ids = st.integers(min_value=0, max_value=7)
file_names = st.sampled_from([f"f{i}" for i in range(12)])

ops = st.lists(
    st.one_of(
        st.tuples(st.just("add_node"), node_ids),
        st.tuples(st.just("publish"), file_names, node_ids),
        st.tuples(st.just("withdraw"), file_names, node_ids),
        st.tuples(st.just("drop_node"), node_ids),
    ),
    min_size=1,
    max_size=60,
)


def _apply(directory: CacheDirectory, op) -> None:
    if op[0] == "add_node":
        directory.add_node(op[1])
    elif op[0] == "publish":
        directory.publish(op[1], op[2])
    elif op[0] == "withdraw":
        directory.withdraw(op[1], op[2])
    else:
        directory.drop_node(op[1])


@settings(**SETTINGS)
@given(sequence=ops)
def test_entries_always_name_live_holders(sequence):
    d = CacheDirectory()
    for op in sequence:
        _apply(d, op)
        for name in d.files():
            holders = d.holders(name)
            assert holders, "files() listed a file with no holder"
            for node in holders:
                assert d.is_live(node)
        located = {name: d.locate(name) for name in d.files()}
        for name, node in located.items():
            assert node == min(d.holders(name))


@settings(**SETTINGS)
@given(sequence=ops, victim=node_ids)
def test_drop_node_leaves_no_dangling_entries(sequence, victim):
    d = CacheDirectory()
    for op in sequence:
        _apply(d, op)
    held_before = {name for name in d.files() if victim in d.holders(name)}
    dropped = d.drop_node(victim)
    assert sorted(held_before) == dropped
    assert not d.is_live(victim)
    for name in d.files():
        assert victim not in d.holders(name)
    assert d.locate("anything-else") is None or True  # locate never raises
    # the count matches the surviving holder sets exactly
    assert len(d) == sum(len(d.holders(name)) for name in d.files())
