"""Unit tests for the page-cache model."""

from __future__ import annotations

import pytest

from repro.storage.pagecache import PageCache

MIB = 1024 * 1024


class TestPageCache:
    def test_validation(self):
        with pytest.raises(ValueError):
            PageCache(0)
        with pytest.raises(ValueError):
            PageCache(10, ram_bw_mib=0)

    def test_miss_then_hit(self):
        pc = PageCache(10 * MIB)
        assert not pc.lookup("/f")
        pc.insert("/f", MIB)
        assert pc.lookup("/f")
        assert pc.hits == 1
        assert pc.misses == 1

    def test_hit_time_scales_with_bytes(self):
        pc = PageCache(10 * MIB, ram_bw_mib=1024)
        assert pc.hit_time(2 * MIB) > pc.hit_time(MIB)
        assert pc.hit_time(1024 * MIB) == pytest.approx(1.0, rel=0.01)

    def test_lru_eviction_order(self):
        pc = PageCache(3 * MIB)
        pc.insert("/a", MIB)
        pc.insert("/b", MIB)
        pc.insert("/c", MIB)
        pc.lookup("/a")  # touch /a so /b is LRU
        pc.insert("/d", MIB)
        assert "/b" not in pc
        assert "/a" in pc
        assert "/c" in pc
        assert "/d" in pc

    def test_used_bytes_accounting(self):
        pc = PageCache(10 * MIB)
        pc.insert("/a", 4 * MIB)
        pc.insert("/b", 4 * MIB)
        assert pc.used_bytes == 8 * MIB
        pc.discard("/a")
        assert pc.used_bytes == 4 * MIB

    def test_reinsert_updates_size(self):
        pc = PageCache(10 * MIB)
        pc.insert("/a", 2 * MIB)
        pc.insert("/a", 5 * MIB)
        assert pc.used_bytes == 5 * MIB

    def test_oversized_file_not_cached(self):
        pc = PageCache(MIB)
        pc.insert("/huge", 2 * MIB)
        assert "/huge" not in pc
        assert pc.used_bytes == 0

    def test_oversized_insert_discards_stale_entry(self):
        pc = PageCache(2 * MIB)
        pc.insert("/f", MIB)
        pc.insert("/f", 3 * MIB)  # grew past budget
        assert "/f" not in pc

    def test_discard_unknown_is_noop(self):
        pc = PageCache(MIB)
        pc.discard("/nope")

    def test_hit_ratio(self):
        pc = PageCache(10 * MIB)
        pc.insert("/a", MIB)
        pc.lookup("/a")
        pc.lookup("/b")
        assert pc.hit_ratio() == pytest.approx(0.5)

    def test_hit_ratio_empty(self):
        assert PageCache(MIB).hit_ratio() == 0.0

    def test_never_exceeds_budget(self):
        pc = PageCache(5 * MIB)
        for i in range(50):
            pc.insert(f"/f{i}", MIB + i)
        assert pc.used_bytes <= 5 * MIB
