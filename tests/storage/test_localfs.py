"""Unit tests for the local file system (XFS-on-SSD stand-in)."""

from __future__ import annotations

import pytest

from repro.storage.base import FileNotFoundInFS, NoSpaceError
from repro.storage.localfs import LocalFileSystem
from repro.storage.pagecache import PageCache
from tests.conftest import drive

MIB = 1024 * 1024


class TestNamespace:
    def test_starts_empty(self, local_fs):
        assert local_fs.paths() == []
        assert local_fs.used_bytes == 0

    def test_add_file_populates(self, sim, local_fs):
        local_fs.add_file("/data/a", 1000)
        assert local_fs.exists("/data/a")
        assert local_fs.file_size("/data/a") == 1000
        assert local_fs.used_bytes == 1000

    def test_add_duplicate_raises(self, local_fs):
        local_fs.add_file("/a", 10)
        with pytest.raises(ValueError):
            local_fs.add_file("/a", 10)

    def test_add_beyond_capacity_raises(self, local_fs):
        with pytest.raises(NoSpaceError):
            local_fs.add_file("/big", local_fs.capacity_bytes + 1)

    def test_file_size_missing_raises(self, local_fs):
        with pytest.raises(FileNotFoundInFS):
            local_fs.file_size("/nope")

    def test_paths_sorted(self, local_fs):
        local_fs.add_file("/b", 1)
        local_fs.add_file("/a", 1)
        assert local_fs.paths() == ["/a", "/b"]


class TestOpenReadWrite:
    def test_open_missing_read_raises(self, sim, local_fs):
        def job():
            yield from local_fs.open("/missing", "r")

        with pytest.raises(FileNotFoundInFS):
            drive(sim, job())

    def test_create_write_read_roundtrip(self, sim, local_fs):
        def job():
            h = yield from local_fs.open("/f", "w")
            yield from local_fs.pwrite(h, 0, 4096)
            rh = yield from local_fs.open("/f", "r")
            n = yield from local_fs.pread(rh, 0, 10000)
            return n

        assert drive(sim, job()) == 4096
        assert local_fs.used_bytes == 4096

    def test_read_past_eof_returns_zero(self, sim, local_fs):
        local_fs.add_file("/f", 100)

        def job():
            h = yield from local_fs.open("/f")
            return (yield from local_fs.pread(h, 100, 50))

        assert drive(sim, job()) == 0

    def test_partial_read_at_eof(self, sim, local_fs):
        local_fs.add_file("/f", 100)

        def job():
            h = yield from local_fs.open("/f")
            return (yield from local_fs.pread(h, 80, 50))

        assert drive(sim, job()) == 20

    def test_write_on_readonly_handle_fails(self, sim, local_fs):
        local_fs.add_file("/f", 10)

        def job():
            h = yield from local_fs.open("/f", "r")
            yield from local_fs.pwrite(h, 0, 10)

        with pytest.raises(PermissionError):
            drive(sim, job())

    def test_write_truncate_reclaims_space(self, sim, local_fs):
        local_fs.add_file("/f", 1000)

        def job():
            h = yield from local_fs.open("/f", "w")
            assert local_fs.used_bytes == 0  # truncated
            yield from local_fs.pwrite(h, 0, 500)

        drive(sim, job())
        assert local_fs.used_bytes == 500

    def test_enospc_on_overflow_write(self, sim, local_fs):
        def job():
            h = yield from local_fs.open("/f", "w")
            yield from local_fs.pwrite(h, 0, local_fs.capacity_bytes + 1)

        with pytest.raises(NoSpaceError):
            drive(sim, job())
        # nothing was accounted
        assert local_fs.used_bytes == 0

    def test_overwrite_does_not_grow(self, sim, local_fs):
        def job():
            h = yield from local_fs.open("/f", "w")
            yield from local_fs.pwrite(h, 0, 1000)
            yield from local_fs.pwrite(h, 0, 1000)  # same range again

        drive(sim, job())
        assert local_fs.used_bytes == 1000

    def test_negative_offsets_rejected(self, sim, local_fs):
        local_fs.add_file("/f", 10)

        def job():
            h = yield from local_fs.open("/f")
            yield from local_fs.pread(h, -1, 10)

        with pytest.raises(ValueError):
            drive(sim, job())

    def test_read_takes_device_time(self, sim, local_fs):
        local_fs.add_file("/f", 52 * MIB)

        def job():
            h = yield from local_fs.open("/f")
            yield from local_fs.pread(h, 0, 52 * MIB)
            return sim.now

        t = drive(sim, job())
        assert t == pytest.approx(0.1, rel=1e-2)


class TestMetadata:
    def test_stat_returns_meta(self, sim, local_fs):
        local_fs.add_file("/dir/f", 123)

        def job():
            meta = yield from local_fs.stat("/dir/f")
            return meta

        meta = drive(sim, job())
        assert meta.size == 123
        assert meta.name == "f"

    def test_stat_missing_raises(self, sim, local_fs):
        def job():
            yield from local_fs.stat("/nope")

        with pytest.raises(FileNotFoundInFS):
            drive(sim, job())

    def test_listdir_recursive_prefix(self, sim, local_fs):
        local_fs.add_file("/d/a", 1)
        local_fs.add_file("/d/sub/b", 1)
        local_fs.add_file("/other/c", 1)

        def job():
            return (yield from local_fs.listdir("/d"))

        assert drive(sim, job()) == ["/d/a", "/d/sub/b"]

    def test_stats_counters(self, sim, local_fs):
        local_fs.add_file("/f", 100)

        def job():
            h = yield from local_fs.open("/f")
            yield from local_fs.pread(h, 0, 100)
            yield from local_fs.stat("/f")
            yield from local_fs.listdir("/")

        drive(sim, job())
        snap = local_fs.stats.snapshot()
        assert snap.open_ops == 1
        assert snap.read_ops == 1
        assert snap.stat_ops == 1
        assert snap.listdir_ops == 1
        assert snap.bytes_read == 100


class TestUnlinkAndTimes:
    def test_unlink_reclaims(self, sim, local_fs):
        local_fs.add_file("/f", 500)
        local_fs.unlink("/f")
        assert not local_fs.exists("/f")
        assert local_fs.used_bytes == 0

    def test_unlink_missing_raises(self, local_fs):
        with pytest.raises(FileNotFoundInFS):
            local_fs.unlink("/nope")

    def test_last_access_updates_on_read(self, sim, local_fs):
        local_fs.add_file("/f", 100)

        def job():
            yield sim.timeout(5.0)
            h = yield from local_fs.open("/f")
            yield from local_fs.pread(h, 0, 10)

        drive(sim, job())
        assert local_fs.last_access_time("/f") >= 5.0

    def test_created_time(self, sim, local_fs):
        def job():
            yield sim.timeout(3.0)
            yield from local_fs.open("/f", "w")

        drive(sim, job())
        assert local_fs.created_time("/f") == pytest.approx(3.0, abs=1e-3)


class TestWithPageCache:
    def test_second_read_hits_cache(self, sim, ssd):
        fs = LocalFileSystem(sim, ssd, capacity_bytes=64 * MIB,
                             page_cache=PageCache(32 * MIB))
        fs.add_file("/f", 10 * MIB)

        def job():
            h = yield from fs.open("/f")
            t0 = sim.now
            yield from fs.pread(h, 0, 10 * MIB)
            cold = sim.now - t0
            t0 = sim.now
            yield from fs.pread(h, 0, 10 * MIB)
            warm = sim.now - t0
            return cold, warm

        cold, warm = drive(sim, job())
        assert warm < cold / 10

    def test_write_primes_cache(self, sim, ssd):
        fs = LocalFileSystem(sim, ssd, capacity_bytes=64 * MIB,
                             page_cache=PageCache(32 * MIB))

        def job():
            h = yield from fs.open("/f", "w")
            yield from fs.pwrite(h, 0, 8 * MIB)
            t0 = sim.now
            rh = yield from fs.open("/f")
            yield from fs.pread(rh, 0, 8 * MIB)
            return sim.now - t0

        warm = drive(sim, job())
        # RAM-speed, far below the ~15ms SSD read time
        assert warm < 0.005

    def test_unlink_discards_cached(self, sim, ssd):
        cache = PageCache(32 * MIB)
        fs = LocalFileSystem(sim, ssd, capacity_bytes=64 * MIB, page_cache=cache)
        fs.add_file("/f", MIB)

        def job():
            h = yield from fs.open("/f")
            yield from fs.pread(h, 0, MIB)

        drive(sim, job())
        assert "/f" in cache
        fs.unlink("/f")
        assert "/f" not in cache
