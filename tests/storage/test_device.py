"""Unit tests for block-device models."""

from __future__ import annotations

import pytest

from repro.storage.blockmath import MIB
from repro.storage.device import (
    Device,
    DeviceProfile,
    HDD_7200,
    NVME_GEN3,
    RAMDISK,
    SATA_SSD,
)
from tests.conftest import drive


class TestDeviceProfile:
    def test_presets_are_sane(self):
        for profile in (SATA_SSD, NVME_GEN3, HDD_7200, RAMDISK):
            assert profile.read_bw_mib > 0
            assert profile.write_bw_mib > 0
            assert profile.channels >= 1

    def test_relative_speeds(self):
        assert RAMDISK.read_bw_mib > NVME_GEN3.read_bw_mib > SATA_SSD.read_bw_mib > HDD_7200.read_bw_mib

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceProfile(name="bad", read_bw_mib=0, write_bw_mib=1,
                          read_latency_us=1, write_latency_us=1)
        with pytest.raises(ValueError):
            DeviceProfile(name="bad", read_bw_mib=1, write_bw_mib=1,
                          read_latency_us=1, write_latency_us=1, channels=0)


class TestDevice:
    def test_read_time_formula(self, sim):
        dev = Device(sim, SATA_SSD)
        t = dev.read_time(520 * MIB)
        assert t == pytest.approx(1.0 + SATA_SSD.read_latency_us * 1e-6, rel=1e-6)

    def test_write_slower_than_read_for_ssd(self, sim):
        dev = Device(sim, SATA_SSD)
        assert dev.write_time(MIB) > dev.read_time(MIB)

    def test_read_advances_clock(self, sim):
        dev = Device(sim, SATA_SSD)

        def job():
            n = yield from dev.read(52 * MIB)
            return (n, sim.now)

        n, t = drive(sim, job())
        assert n == 52 * MIB
        assert t == pytest.approx(0.1 + SATA_SSD.read_latency_us * 1e-6, rel=1e-4)

    def test_single_lane_serializes(self, sim):
        dev = Device(sim, SATA_SSD)
        done = []

        def job(i):
            yield from dev.read(52 * MIB)
            done.append((round(sim.now, 4), i))

        for i in range(3):
            sim.spawn(job(i))
        sim.run()
        # three 0.1s reads share one lane: finish at ~0.1, 0.2, 0.3
        times = [t for t, _ in done]
        assert times == pytest.approx([0.1, 0.2, 0.3], rel=1e-2)

    def test_queue_len_reflects_waiters(self, sim):
        dev = Device(sim, SATA_SSD)
        for _ in range(3):
            sim.spawn(iter_read(dev))
        sim.run(until=1e-9)
        assert dev.queue_len == 2

    def test_aggregate_bandwidth_matches_profile(self, sim):
        """N concurrent streams: total time == total bytes / bandwidth."""
        dev = Device(sim, SATA_SSD)

        def job():
            yield from dev.read(52 * MIB)

        for _ in range(8):
            sim.spawn(job())
        sim.run()
        expected = 8 * 52 / 520  # seconds
        assert sim.now == pytest.approx(expected, rel=1e-2)

    def test_jitter_changes_time_but_stays_bounded(self, sim, rng):
        dev = Device(sim, SATA_SSD, rng=rng)
        base = dev.read_time(MIB)
        times = []

        def job():
            t0 = sim.now
            yield from dev.read(MIB)
            times.append(sim.now - t0)

        for _ in range(50):
            p = sim.spawn(job())
            sim.run(p)
        assert any(abs(t - base) > 1e-9 for t in times)
        assert all(base * 0.2 <= t <= base * 4.5 for t in times)


def iter_read(dev):
    yield from dev.read(52 * MIB)
