"""Property-based tests for interference models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.interference import (
    ARInterference,
    BurstInterference,
    CompositeInterference,
    ConstantInterference,
)

pytestmark = pytest.mark.hypothesis_heavy


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    mean_load=st.floats(min_value=0.0, max_value=0.8),
    sigma=st.floats(min_value=0.0, max_value=0.2),
    rho=st.floats(min_value=0.0, max_value=0.999),
    queries=st.lists(st.floats(min_value=0.0, max_value=5000.0), min_size=1, max_size=40),
)
@settings(max_examples=50, deadline=None)
def test_ar_share_always_valid(seed, mean_load, sigma, rho, queries):
    """share_at stays in (0, 1] for any parameters and query pattern."""
    max_load = min(0.95, max(mean_load, 0.5))
    m = ARInterference(np.random.default_rng(seed), mean_load=mean_load,
                       sigma=sigma, rho=rho, interval=1.0, max_load=max_load)
    for t in sorted(queries):
        share = m.share_at(t)
        assert 0.0 < share <= 1.0


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    t=st.floats(min_value=0.0, max_value=10_000.0),
)
@settings(max_examples=50)
def test_models_are_deterministic_given_seed(seed, t):
    """Identical construction + query time => identical share."""
    def build():
        rng = np.random.default_rng(seed)
        return CompositeInterference(
            ARInterference(np.random.default_rng(seed), mean_load=0.3),
            BurstInterference(rng, burst_share=0.4, p_burst=0.02, p_recover=0.1),
        )

    assert build().share_at(t) == build().share_at(t)


@given(
    shares=st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=5)
)
def test_composite_product_bounds(shares):
    m = CompositeInterference(*[ConstantInterference(s) for s in shares])
    got = m.share_at(0.0)
    assert got == pytest.approx(float(np.prod(shares)))
    assert 0.0 < got <= 1.0

