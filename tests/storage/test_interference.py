"""Unit tests for the PFS interference models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.interference import (
    ARInterference,
    BurstInterference,
    CompositeInterference,
    ConstantInterference,
)


class TestConstant:
    def test_fixed_share(self):
        m = ConstantInterference(0.7)
        assert m.share_at(0.0) == 0.7
        assert m.share_at(1e6) == 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantInterference(0.0)
        with pytest.raises(ValueError):
            ConstantInterference(1.5)

    def test_reset_noop(self):
        m = ConstantInterference(0.5)
        m.reset()
        assert m.share_at(10.0) == 0.5


class TestAR:
    def make(self, **kw):
        defaults = dict(mean_load=0.3, sigma=0.05, rho=0.9, interval=1.0, max_load=0.8)
        defaults.update(kw)
        return ARInterference(np.random.default_rng(0), **defaults)

    def test_share_bounded(self):
        m = self.make()
        shares = [m.share_at(float(t)) for t in range(2000)]
        assert all(0.2 - 1e-9 <= s <= 1.0 for s in shares)

    def test_starts_at_mean(self):
        m = self.make()
        assert m.share_at(0.0) == pytest.approx(0.7)

    def test_long_run_mean_near_target(self):
        m = self.make(sigma=0.02)
        shares = [m.share_at(float(t)) for t in range(20000)]
        assert np.mean(shares) == pytest.approx(0.7, abs=0.1)

    def test_lazy_sampling_is_consistent(self):
        """share_at(t) must not depend on intermediate query points."""
        m1 = self.make()
        m2 = self.make()
        a = m1.share_at(500.0)
        for t in range(0, 500, 7):
            m2.share_at(float(t))
        b = m2.share_at(500.0)
        assert a == b

    def test_reset_rewinds_state(self):
        m = self.make()
        m.share_at(100.0)
        m.reset()
        assert m.share_at(0.0) == pytest.approx(0.7)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ARInterference(rng, mean_load=1.0)
        with pytest.raises(ValueError):
            ARInterference(rng, rho=1.0)
        with pytest.raises(ValueError):
            ARInterference(rng, interval=0.0)
        with pytest.raises(ValueError):
            ARInterference(rng, mean_load=0.5, max_load=0.4)


class TestBurst:
    def make(self, **kw):
        defaults = dict(quiet_share=0.9, burst_share=0.3, p_burst=0.05,
                        p_recover=0.2, interval=1.0)
        defaults.update(kw)
        return BurstInterference(np.random.default_rng(1), **defaults)

    def test_only_two_levels(self):
        m = self.make()
        shares = {m.share_at(float(t)) for t in range(5000)}
        assert shares <= {0.9, 0.3}
        assert len(shares) == 2  # both states visited

    def test_burst_fraction_matches_stationary(self):
        m = self.make()
        shares = [m.share_at(float(t)) for t in range(50000)]
        frac = sum(1 for s in shares if s == 0.3) / len(shares)
        expected = 0.05 / (0.05 + 0.2)
        assert frac == pytest.approx(expected, abs=0.05)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            BurstInterference(rng, quiet_share=0.5, burst_share=0.6)
        with pytest.raises(ValueError):
            BurstInterference(rng, p_burst=0.0)
        with pytest.raises(ValueError):
            BurstInterference(rng, interval=0.0)

    def test_reset(self):
        m = self.make()
        m.share_at(1000.0)
        m.reset()
        assert m.share_at(0.0) == 0.9  # starts quiet


class TestComposite:
    def test_product_of_shares(self):
        m = CompositeInterference(ConstantInterference(0.5), ConstantInterference(0.8))
        assert m.share_at(3.0) == pytest.approx(0.4)

    def test_requires_models(self):
        with pytest.raises(ValueError):
            CompositeInterference()

    def test_reset_forwards(self):
        ar = ARInterference(np.random.default_rng(0), mean_load=0.2)
        m = CompositeInterference(ar, ConstantInterference(0.9))
        m.share_at(100.0)
        m.reset()
        assert m.share_at(0.0) == pytest.approx(0.8 * 0.9)
