"""Unit tests for the mount table / POSIX-ish routing layer."""

from __future__ import annotations

import pytest

from repro.storage.base import StorageError
from repro.storage.vfs import MountTable
from tests.conftest import drive


class TestMounting:
    def test_mount_and_resolve(self, mounts, pfs, local_fs):
        fs, rel = mounts.resolve("/mnt/pfs/dataset/a")
        assert fs is pfs
        assert rel == "/dataset/a"
        fs, rel = mounts.resolve("/mnt/ssd/x")
        assert fs is local_fs
        assert rel == "/x"

    def test_longest_prefix_wins(self, sim, pfs, local_fs):
        mt = MountTable()
        mt.mount("/mnt", pfs)
        mt.mount("/mnt/ssd", local_fs)
        fs, rel = mt.resolve("/mnt/ssd/f")
        assert fs is local_fs
        assert rel == "/f"
        fs, rel = mt.resolve("/mnt/other")
        assert fs is pfs

    def test_duplicate_mount_raises(self, mounts, pfs):
        with pytest.raises(StorageError):
            mounts.mount("/mnt/pfs", pfs)

    def test_unmount(self, mounts):
        mounts.unmount("/mnt/ssd")
        with pytest.raises(StorageError):
            mounts.resolve("/mnt/ssd/x")

    def test_unmount_missing_raises(self, mounts):
        with pytest.raises(StorageError):
            mounts.unmount("/not/mounted")

    def test_unresolvable_path_raises(self, mounts):
        with pytest.raises(StorageError):
            mounts.resolve("/elsewhere/f")

    def test_mounts_snapshot(self, mounts, pfs, local_fs):
        snap = mounts.mounts()
        assert snap["/mnt/pfs"] is pfs
        assert snap["/mnt/ssd"] is local_fs


class TestForwarding:
    def test_open_read_through_mount(self, sim, mounts, pfs):
        pfs.add_file("/dataset/a", 1000)

        def job():
            h = yield from mounts.open("/mnt/pfs/dataset/a")
            return (yield from mounts.pread(h, 0, 400))

        assert drive(sim, job()) == 400

    def test_write_through_mount(self, sim, mounts, local_fs):
        def job():
            h = yield from mounts.open("/mnt/ssd/f", "w")
            yield from mounts.pwrite(h, 0, 2048)

        drive(sim, job())
        assert local_fs.file_size("/f") == 2048

    def test_stat_through_mount(self, sim, mounts, pfs):
        pfs.add_file("/dataset/a", 777)

        def job():
            return (yield from mounts.stat("/mnt/pfs/dataset/a"))

        assert drive(sim, job()).size == 777

    def test_listdir_reprefixes_results(self, sim, mounts, pfs):
        pfs.add_file("/dataset/a", 1)
        pfs.add_file("/dataset/b", 1)

        def job():
            return (yield from mounts.listdir("/mnt/pfs/dataset"))

        assert drive(sim, job()) == ["/mnt/pfs/dataset/a", "/mnt/pfs/dataset/b"]

    def test_exists_and_file_size(self, mounts, pfs):
        pfs.add_file("/dataset/a", 9)
        assert mounts.exists("/mnt/pfs/dataset/a")
        assert not mounts.exists("/mnt/pfs/dataset/b")
        assert not mounts.exists("/unmounted/x")
        assert mounts.file_size("/mnt/pfs/dataset/a") == 9

    def test_unlink_through_mount(self, mounts, local_fs):
        local_fs.add_file("/f", 10)
        mounts.unlink("/mnt/ssd/f")
        assert not local_fs.exists("/f")
