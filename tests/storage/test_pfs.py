"""Unit tests for the Lustre-like parallel file system."""

from __future__ import annotations

import pytest

from repro.storage.base import FileNotFoundInFS
from repro.storage.interference import ConstantInterference
from repro.storage.pfs import ParallelFileSystem, PFSConfig
from tests.conftest import drive

MIB = 1024 * 1024


class TestConfig:
    def test_defaults_valid(self):
        PFSConfig()

    def test_validation(self):
        with pytest.raises(ValueError):
            PFSConfig(n_osts=0)
        with pytest.raises(ValueError):
            PFSConfig(stripe_size=0)
        with pytest.raises(ValueError):
            PFSConfig(random_read_penalty=0.0)
        with pytest.raises(ValueError):
            PFSConfig(random_read_penalty=1.5)


class TestNamespace:
    def test_add_and_stat(self, sim, pfs):
        pfs.add_file("/dataset/x", 1234)
        assert pfs.exists("/dataset/x")
        assert pfs.file_size("/dataset/x") == 1234
        assert pfs.used_bytes == 1234

    def test_duplicate_add_raises(self, pfs):
        pfs.add_file("/x", 1)
        with pytest.raises(ValueError):
            pfs.add_file("/x", 1)

    def test_unbounded_capacity(self, pfs):
        assert pfs.capacity_bytes is None
        assert pfs.free_bytes is None

    def test_listdir_costs_mds_time(self, sim, pfs):
        for i in range(4):
            pfs.add_file(f"/dataset/f{i}", 100)

        def job():
            entries = yield from pfs.listdir("/dataset")
            return entries, sim.now

        entries, t = drive(sim, job())
        assert len(entries) == 4
        assert t >= pfs.config.mds_latency_s * 0.9

    def test_unlink(self, pfs):
        pfs.add_file("/x", 100)
        pfs.unlink("/x")
        assert not pfs.exists("/x")
        assert pfs.used_bytes == 0


class TestReads:
    def test_read_missing_file_raises(self, sim, pfs):
        def job():
            yield from pfs.open("/nope", "r")

        with pytest.raises(FileNotFoundInFS):
            drive(sim, job())

    def test_read_returns_clamped_bytes(self, sim, pfs):
        pfs.add_file("/f", 1000)

        def job():
            h = yield from pfs.open("/f")
            full = yield from pfs.pread(h, 0, 500)
            tail = yield from pfs.pread(h, 900, 500)
            eof = yield from pfs.pread(h, 1000, 10)
            return full, tail, eof

        assert drive(sim, job()) == (500, 100, 0)

    def test_sequential_faster_than_random(self, sim):
        cfg = PFSConfig(random_read_penalty=0.5)
        pfs = ParallelFileSystem(sim, config=cfg)
        pfs.add_file("/f", 64 * MIB)

        def timed(sequential):
            h = yield from pfs.open("/f")
            t0 = sim.now
            # sub-stripe reads so each hits one OST
            for off in range(0, 8 * MIB, 256 * 1024):
                yield from pfs.pread(h, off, 256 * 1024, sequential=sequential)
            return sim.now - t0

        t_rand = drive(sim, timed(False))
        t_seq = drive(sim, timed(True))
        assert t_seq < t_rand
        assert t_rand / t_seq == pytest.approx(1 / cfg.random_read_penalty, rel=0.15)

    def test_striped_read_parallelizes_across_osts(self, sim):
        cfg = PFSConfig(n_osts=8, stripe_size=MIB)
        pfs = ParallelFileSystem(sim, config=cfg)
        pfs.add_file("/f", 64 * MIB)

        def timed(nbytes):
            h = yield from pfs.open("/f")
            t0 = sim.now
            yield from pfs.pread(h, 0, nbytes, sequential=True)
            return sim.now - t0

        one_stripe = drive(sim, timed(MIB))
        eight_stripes = drive(sim, timed(8 * MIB))
        # eight stripes land on eight OSTs concurrently: far less than 8x
        assert eight_stripes < 2.0 * one_stripe

    def test_aggregate_bandwidth_cap(self, sim):
        """Many concurrent sequential streams cannot exceed client bw."""
        cfg = PFSConfig(n_osts=4, stripe_size=MIB, jitter_sigma=0.0)
        pfs = ParallelFileSystem(sim, config=cfg)
        total = 256 * MIB
        for i in range(16):
            pfs.add_file(f"/f{i}", total // 16)

        def job(i):
            h = yield from pfs.open(f"/f{i}")
            yield from pfs.pread(h, 0, total // 16, sequential=True)

        for i in range(16):
            sim.spawn(job(i))
        sim.run()
        floor = total / (cfg.client_read_bw_mib * MIB)
        assert sim.now >= floor * 0.95

    def test_interference_slows_reads(self, sim):
        quiet = ParallelFileSystem(sim, interference=ConstantInterference(1.0), name="q")
        busy = ParallelFileSystem(sim, interference=ConstantInterference(0.5), name="b")
        quiet.add_file("/f", 8 * MIB)
        busy.add_file("/f", 8 * MIB)

        def timed(fs):
            h = yield from fs.open("/f")
            t0 = sim.now
            yield from fs.pread(h, 0, 8 * MIB, sequential=True)
            return sim.now - t0

        t_q = drive(sim, timed(quiet))
        t_b = drive(sim, timed(busy))
        assert t_b == pytest.approx(2.0 * t_q, rel=0.1)

    def test_stats_count_ops_and_bytes(self, sim, pfs):
        pfs.add_file("/f", 1000)

        def job():
            h = yield from pfs.open("/f")
            yield from pfs.pread(h, 0, 600)
            yield from pfs.pread(h, 600, 600)

        drive(sim, job())
        snap = pfs.stats.snapshot()
        assert snap.open_ops == 1
        assert snap.read_ops == 2
        assert snap.bytes_read == 1000


class TestWrites:
    def test_write_extends_file(self, sim, pfs):
        def job():
            h = yield from pfs.open("/new", "w")
            yield from pfs.pwrite(h, 0, 5000)
            return h.size

        assert drive(sim, job()) == 5000
        assert pfs.used_bytes == 5000

    def test_write_on_readonly_handle_fails(self, sim, pfs):
        pfs.add_file("/f", 10)

        def job():
            h = yield from pfs.open("/f", "r")
            yield from pfs.pwrite(h, 0, 10)

        with pytest.raises(PermissionError):
            drive(sim, job())
