"""Property-based tests for the storage substrate."""

from __future__ import annotations

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel.core import Simulator
from repro.storage.base import NoSpaceError
from repro.storage.blockmath import split_into_chunks
from repro.storage.device import Device, SATA_SSD
from repro.storage.localfs import LocalFileSystem
from repro.storage.pagecache import PageCache


pytestmark = pytest.mark.hypothesis_heavy

@given(
    offset=st.integers(min_value=0, max_value=1 << 40),
    nbytes=st.integers(min_value=0, max_value=1 << 24),
    chunk=st.integers(min_value=4096, max_value=1 << 22),
)
@settings(max_examples=100, deadline=None)
def test_split_into_chunks_partitions_the_range(offset, nbytes, chunk):
    """Pieces are contiguous, non-empty, chunk-bounded, and sum to nbytes."""
    pieces = split_into_chunks(offset, nbytes, chunk)
    assert sum(n for _, n in pieces) == nbytes
    pos = offset
    for off, n in pieces:
        assert off == pos
        assert 0 < n <= chunk
        # each piece stays inside one chunk
        assert off // chunk == (off + n - 1) // chunk
        pos += n


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["create", "write", "unlink"]),
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=0, max_value=4 * 1024 * 1024),
        ),
        max_size=30,
    )
)
@settings(max_examples=40, deadline=None)
def test_localfs_capacity_accounting_is_exact(ops):
    """used_bytes always equals the sum of file sizes and never exceeds capacity."""
    sim = Simulator()
    fs = LocalFileSystem(sim, Device(sim, SATA_SSD), capacity_bytes=8 * 1024 * 1024)

    def run_ops():
        for kind, idx, size in ops:
            path = f"/f{idx}"
            try:
                if kind == "create":
                    h = yield from fs.open(path, "w")
                    yield from fs.pwrite(h, 0, size)
                elif kind == "write" and fs.exists(path):
                    h = yield from fs.open(path, "a")
                    yield from fs.pwrite(h, fs.file_size(path), size)
                elif kind == "unlink" and fs.exists(path):
                    fs.unlink(path)
            except NoSpaceError:
                pass
            expected = sum(fs.file_size(p) for p in fs.paths())
            assert fs.used_bytes == expected
            assert fs.used_bytes <= fs.capacity_bytes

    p = sim.spawn(run_ops())
    sim.run(p)


@given(
    budget_mib=st.integers(min_value=1, max_value=64),
    inserts=st.lists(
        st.tuples(st.integers(min_value=0, max_value=20),
                  st.integers(min_value=0, max_value=8 * 1024 * 1024)),
        max_size=60,
    ),
)
@settings(max_examples=40)
def test_pagecache_budget_invariant(budget_mib, inserts):
    """used_bytes <= capacity after any insert sequence; entries consistent."""
    pc = PageCache(budget_mib * 1024 * 1024)
    for idx, size in inserts:
        pc.insert(f"/f{idx}", size)
        assert pc.used_bytes <= pc.capacity_bytes
        assert pc.used_bytes >= 0
