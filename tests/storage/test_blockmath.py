"""Unit tests for transfer-time arithmetic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.blockmath import (
    GIB,
    KIB,
    MIB,
    jitter_factor,
    mib_per_s,
    split_into_chunks,
    transfer_time,
)


class TestUnits:
    def test_constants(self):
        assert KIB == 1024
        assert MIB == 1024**2
        assert GIB == 1024**3

    def test_mib_per_s(self):
        assert mib_per_s(1.0) == MIB
        assert mib_per_s(520.0) == 520 * MIB


class TestTransferTime:
    def test_latency_plus_streaming(self):
        t = transfer_time(MIB, mib_per_s(1.0), 0.001)
        assert t == pytest.approx(1.001)

    def test_zero_bytes_is_pure_latency(self):
        assert transfer_time(0, mib_per_s(100), 5e-4) == pytest.approx(5e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            transfer_time(-1, 1.0, 0.0)
        with pytest.raises(ValueError):
            transfer_time(1, 0.0, 0.0)
        with pytest.raises(ValueError):
            transfer_time(1, 1.0, -0.1)


class TestJitter:
    def test_disabled_without_rng(self):
        assert jitter_factor(None, 0.5) == 1.0

    def test_disabled_with_zero_sigma(self):
        assert jitter_factor(np.random.default_rng(0), 0.0) == 1.0

    def test_clipped_to_bounds(self):
        rng = np.random.default_rng(0)
        factors = [jitter_factor(rng, 3.0) for _ in range(200)]
        assert all(0.25 <= f <= 4.0 for f in factors)

    def test_unit_median_scale(self):
        rng = np.random.default_rng(1)
        factors = [jitter_factor(rng, 0.05) for _ in range(2000)]
        assert np.median(factors) == pytest.approx(1.0, abs=0.01)


class TestSplitIntoChunks:
    def test_aligned_exact(self):
        assert split_into_chunks(0, 2048, 1024) == [(0, 1024), (1024, 1024)]

    def test_unaligned_start(self):
        assert split_into_chunks(500, 1000, 1024) == [(500, 524), (1024, 476)]

    def test_within_one_chunk(self):
        assert split_into_chunks(100, 50, 1024) == [(100, 50)]

    def test_zero_bytes(self):
        assert split_into_chunks(0, 0, 1024) == []

    def test_total_preserved(self):
        pieces = split_into_chunks(333, 98765, 4096)
        assert sum(n for _, n in pieces) == 98765
        # pieces are contiguous
        pos = 333
        for off, n in pieces:
            assert off == pos
            pos += n

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            split_into_chunks(0, 10, 0)
