"""Unit tests for backend I/O accounting."""

from __future__ import annotations

from repro.storage.stats import BackendStats, StatsSnapshot


class TestBackendStats:
    def test_record_read_write(self):
        s = BackendStats(name="t")
        s.record_read(100)
        s.record_read(50)
        s.record_write(200)
        snap = s.snapshot()
        assert snap.read_ops == 2
        assert snap.write_ops == 1
        assert snap.bytes_read == 150
        assert snap.bytes_written == 200

    def test_metadata_counters(self):
        s = BackendStats()
        s.record_open()
        s.record_stat()
        s.record_stat()
        s.record_listdir()
        snap = s.snapshot()
        assert snap.open_ops == 1
        assert snap.stat_ops == 2
        assert snap.listdir_ops == 1
        assert snap.metadata_ops == 4

    def test_total_ops(self):
        s = BackendStats()
        s.record_read(1)
        s.record_open()
        assert s.snapshot().total_ops == 2

    def test_snapshot_is_immutable_copy(self):
        s = BackendStats()
        s.record_read(10)
        snap = s.snapshot()
        s.record_read(10)
        assert snap.read_ops == 1
        assert s.snapshot().read_ops == 2

    def test_delta(self):
        a = StatsSnapshot(read_ops=5, bytes_read=500, open_ops=2)
        b = StatsSnapshot(read_ops=8, bytes_read=900, open_ops=3)
        d = b.delta(a)
        assert d.read_ops == 3
        assert d.bytes_read == 400
        assert d.open_ops == 1

    def test_mark_epoch_returns_delta(self):
        s = BackendStats()
        s.record_read(100)
        d1 = s.mark_epoch()
        assert d1.read_ops == 1
        s.record_read(100)
        s.record_read(100)
        d2 = s.mark_epoch()
        assert d2.read_ops == 2

    def test_epoch_deltas(self):
        s = BackendStats()
        s.record_read(10)
        s.mark_epoch()
        s.record_write(20)
        s.mark_epoch()
        deltas = s.epoch_deltas()
        assert len(deltas) == 2
        assert deltas[0].read_ops == 1
        assert deltas[0].write_ops == 0
        assert deltas[1].write_ops == 1
        assert deltas[1].read_ops == 0
