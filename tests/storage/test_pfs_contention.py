"""Cross-client PFS contention tests.

The distributed study's premise is that N nodes share the same OST and
MDS queues: adding readers adds pressure, not bandwidth.  These tests pin
that behaviour of the model.
"""

from __future__ import annotations

import pytest

from repro.storage.pfs import ParallelFileSystem, PFSConfig
from tests.conftest import drive

MIB = 1024 * 1024


def stream(pfs, path, nbytes):
    def job():
        h = yield from pfs.open(path)
        yield from pfs.pread(h, 0, nbytes, sequential=True)

    return job()


class TestSharedBandwidth:
    def test_two_streams_halve_per_stream_rate(self, sim):
        cfg = PFSConfig(n_osts=4, stripe_size=MIB, jitter_sigma=0.0)
        pfs = ParallelFileSystem(sim, config=cfg)
        pfs.add_file("/a", 64 * MIB)
        pfs.add_file("/b", 64 * MIB)

        # one stream alone
        p = sim.spawn(stream(pfs, "/a", 64 * MIB))
        sim.run(p)
        solo = sim.now

        # two concurrent streams of the same size
        sim2_base = sim.now
        p1 = sim.spawn(stream(pfs, "/a", 64 * MIB))
        p2 = sim.spawn(stream(pfs, "/b", 64 * MIB))
        sim.run(sim.all_of([p1, p2]))
        duo = sim.now - sim2_base
        assert duo == pytest.approx(2 * solo, rel=0.15)

    def test_mds_shared_across_clients(self, sim):
        cfg = PFSConfig(mds_channels=2, jitter_sigma=0.0)
        pfs = ParallelFileSystem(sim, config=cfg)
        for i in range(64):
            pfs.add_file(f"/f{i}", 100)

        def opener(lo, hi):
            for i in range(lo, hi):
                yield from pfs.open(f"/f{i}")

        t0 = sim.now
        p = sim.spawn(opener(0, 16))
        sim.run(p)
        solo = sim.now - t0

        t0 = sim.now
        procs = [sim.spawn(opener(16 + 16 * k, 32 + 16 * k)) for k in range(3)]
        sim.run(sim.all_of(procs))
        trio = sim.now - t0
        # 3 clients, 2 MDS channels: at least 1.4x one client's time
        assert trio > 1.4 * solo

    def test_interleaved_files_land_on_different_osts(self, sim):
        """Round-robin stripe_offset spreads files across OSTs."""
        cfg = PFSConfig(n_osts=4, stripe_size=MIB, jitter_sigma=0.0)
        pfs = ParallelFileSystem(sim, config=cfg)
        for i in range(4):
            pfs.add_file(f"/f{i}", MIB)

        # reading the first stripe of 4 consecutive files uses 4 OSTs in
        # parallel: the whole thing takes about one stripe's service time
        def job(i):
            h = yield from pfs.open(f"/f{i}")
            yield from pfs.pread(h, 0, MIB, sequential=True)

        t0 = sim.now
        procs = [sim.spawn(job(i)) for i in range(4)]
        sim.run(sim.all_of(procs))
        parallel_time = sim.now - t0

        t0 = sim.now
        p = sim.spawn(job(0))
        sim.run(p)
        single = sim.now - t0
        assert parallel_time < 1.5 * single
