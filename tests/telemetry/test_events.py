"""Unit tests for the structured run-event stream."""

from __future__ import annotations

from repro.telemetry.events import (
    EventRecorder,
    NULL_RECORDER,
    NullRecorder,
    RunEvent,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestRunEvent:
    def test_to_dict_sorts_detail_keys(self):
        e = RunEvent(1.5, "copy.scheduled", "/f", {"z": 1, "a": 2})
        d = e.to_dict()
        assert list(d["detail"]) == ["a", "z"]
        assert d == {"t": 1.5, "kind": "copy.scheduled", "subject": "/f",
                     "detail": {"a": 2, "z": 1}}

    def test_defaults(self):
        e = RunEvent(0.0, "epoch.start")
        assert e.subject == ""
        assert e.detail == {}


class TestNullRecorder:
    def test_disabled_and_silent(self):
        r = NullRecorder()
        assert r.enabled is False
        r.emit("copy.scheduled", "/f", level=0)  # must be a harmless no-op

    def test_shared_singleton(self):
        assert isinstance(NULL_RECORDER, NullRecorder)
        assert NULL_RECORDER.enabled is False


class TestEventRecorder:
    def test_emit_stamps_the_clock(self):
        clock = FakeClock()
        rec = EventRecorder(clock)
        assert rec.enabled is True
        rec.emit("epoch.start", "0")
        clock.now = 2.5
        rec.emit("epoch.end", "0", steps=10)
        assert len(rec) == 2
        assert rec.events[0] == RunEvent(0.0, "epoch.start", "0", {})
        assert rec.events[1] == RunEvent(2.5, "epoch.end", "0", {"steps": 10})

    def test_filtered_exact_and_prefix(self):
        rec = EventRecorder(FakeClock())
        rec.emit("copy.scheduled", "/a")
        rec.emit("copy.completed", "/a")
        rec.emit("copy.completed", "/b")
        rec.emit("copyish.other", "/a")
        rec.emit("eviction", "/c")
        assert len(rec.filtered("copy")) == 3  # prefix, not substring
        assert len(rec.filtered("copy.completed")) == 2
        assert len(rec.filtered("copy", subject="/a")) == 2
        assert len(rec.filtered(subject="/c")) == 1
        assert len(rec.filtered()) == 5

    def test_kind_counts(self):
        rec = EventRecorder(FakeClock())
        rec.emit("tier.probe", "l0")
        rec.emit("tier.probe", "l0")
        rec.emit("tier.readmitted", "l0")
        assert rec.kind_counts() == {"tier.probe": 2, "tier.readmitted": 1}

    def test_to_payload_preserves_emission_order(self):
        clock = FakeClock()
        rec = EventRecorder(clock)
        rec.emit("a", "1")
        clock.now = 1.0
        rec.emit("b", "2", z=1, a=2)
        payload = rec.to_payload()
        assert [p["kind"] for p in payload] == ["a", "b"]
        assert list(payload[1]["detail"]) == ["a", "z"]
