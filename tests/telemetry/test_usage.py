"""Unit tests for resource-usage summarization."""

from __future__ import annotations

import pytest

from repro.framework.pipeline import PipelineConfig
from repro.framework.training import EpochResult, TrainResult
from repro.storage.blockmath import GIB
from repro.telemetry.usage import memory_estimate_bytes, summarize_usage


def epoch(idx, wall, cpu, gpu):
    return EpochResult(index=idx, wall_time_s=wall, steps=10, records=100,
                       cpu_utilization=cpu, gpu_utilization=gpu)


class TestMemoryEstimate:
    def test_near_paper_10gib(self):
        cfg = PipelineConfig(shuffle_buffer_records=4096, prefetch_batches=8,
                             batch_size=128)
        mem = memory_estimate_bytes(cfg, mean_sample_bytes=119_000)
        assert 9.5 * GIB < mem < 11 * GIB

    def test_flat_across_dataset_sizes(self):
        cfg = PipelineConfig()
        a = memory_estimate_bytes(cfg, 119_000)
        b = memory_estimate_bytes(cfg, 70_000)
        # paper: "memory consumption is identical for all setups" ~10 GiB
        assert abs(a - b) / a < 0.05

    def test_grows_with_buffers(self):
        small = PipelineConfig(shuffle_buffer_records=128)
        big = PipelineConfig(shuffle_buffer_records=65536)
        assert memory_estimate_bytes(big, 119_000) > memory_estimate_bytes(small, 119_000)


class TestSummarizeUsage:
    def test_time_weighted_average(self):
        result = TrainResult(epochs=[
            epoch(0, wall=10.0, cpu=0.2, gpu=0.4),
            epoch(1, wall=30.0, cpu=0.6, gpu=0.8),
        ])
        usage = summarize_usage(result, PipelineConfig(), 119_000)
        assert usage.cpu_percent == pytest.approx(100 * (0.2 * 10 + 0.6 * 30) / 40)
        assert usage.gpu_percent == pytest.approx(100 * (0.4 * 10 + 0.8 * 30) / 40)
        assert usage.memory_gib > 9.0

    def test_empty_run_rejected(self):
        with pytest.raises(ValueError):
            summarize_usage(TrainResult(), PipelineConfig(), 119_000)

    def test_zero_duration_rejected(self):
        result = TrainResult(epochs=[epoch(0, wall=0.0, cpu=0.1, gpu=0.1)])
        with pytest.raises(ValueError):
            summarize_usage(result, PipelineConfig(), 119_000)
