"""Unit tests for I/O tracing and variability analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.stats import BackendStats
from repro.telemetry.tracing import (
    IOTrace,
    TraceEvent,
    throughput_series,
    variability,
)
from tests.conftest import drive


class TestIOTrace:
    def test_attach_records_events(self, sim):
        trace = IOTrace(sim)
        stats = BackendStats(name="dev")
        trace.attach(stats)

        def job():
            yield sim.timeout(1.0)
            stats.record_read(100)
            yield sim.timeout(1.0)
            stats.record_write(200)

        drive(sim, job())
        assert len(trace) == 2
        assert trace.events[0] == TraceEvent(1.0, "dev", "read", 100)
        assert trace.events[1] == TraceEvent(2.0, "dev", "write", 200)

    def test_original_counters_still_update(self, sim):
        trace = IOTrace(sim)
        stats = BackendStats(name="dev")
        trace.attach(stats)
        stats.record_read(64)
        assert stats.read_ops == 1
        assert stats.bytes_read == 64

    def test_double_attach_rejected(self, sim):
        trace = IOTrace(sim)
        stats = BackendStats(name="dev")
        trace.attach(stats)
        with pytest.raises(ValueError, match="already traced"):
            trace.attach(stats)

    def test_filtered(self, sim):
        trace = IOTrace(sim)
        a, b = BackendStats(name="a"), BackendStats(name="b")
        trace.attach(a)
        trace.attach(b)
        a.record_read(1)
        a.record_write(2)
        b.record_read(3)
        assert len(trace.filtered(backend="a")) == 2
        assert len(trace.filtered(kind="read")) == 2
        assert len(trace.filtered(backend="a", kind="write")) == 1

    def test_bulk_record_reads_traced_with_op_count(self, sim):
        """Regression: the bulk fast path accounts through
        ``record_reads``/``record_writes``; the trace must wrap those too,
        or every background chunk train goes unseen."""
        trace = IOTrace(sim)
        stats = BackendStats(name="dev")
        trace.attach(stats)
        stats.record_reads(5, 5000)
        stats.record_writes(3, 3000)
        assert len(trace) == 2
        assert trace.events[0] == TraceEvent(0.0, "dev", "read", 5000, ops=5)
        assert trace.events[1] == TraceEvent(0.0, "dev", "write", 3000, ops=3)
        # the wrapped counters still advanced underneath
        assert stats.read_ops == 5 and stats.bytes_read == 5000
        assert stats.write_ops == 3 and stats.bytes_written == 3000

    def test_totals_are_bulk_aware(self, sim):
        trace = IOTrace(sim)
        stats = BackendStats(name="dev")
        trace.attach(stats)
        stats.record_read(100)
        stats.record_reads(4, 400)
        stats.record_write(50)
        assert trace.total_ops("dev", "read") == 5
        assert trace.total_bytes("dev", "read") == 500
        assert trace.total_ops("dev", "write") == 1
        assert trace.total_bytes("dev") == 550

    def test_live_backend_integration(self, sim, pfs):
        """Tracing a real PFS picks up its pread traffic."""
        trace = IOTrace(sim)
        trace.attach(pfs.stats)
        pfs.add_file("/f", 10_000)

        def job():
            h = yield from pfs.open("/f")
            yield from pfs.pread(h, 0, 4_000)
            yield from pfs.pread(h, 4_000, 4_000)

        drive(sim, job())
        reads = trace.filtered(kind="read")
        assert len(reads) == 2
        assert sum(e.nbytes for e in reads) == 8_000


class TestThroughputSeries:
    def make_events(self):
        return [
            TraceEvent(0.5, "pfs", "read", 1000),
            TraceEvent(1.5, "pfs", "read", 3000),
            TraceEvent(2.5, "pfs", "read", 2000),
        ]

    def test_binning(self):
        t, bps = throughput_series(self.make_events(), 0.0, 3.0, bins=3)
        assert len(t) == 3
        assert bps.tolist() == [1000.0, 3000.0, 2000.0]

    def test_events_outside_window_excluded(self):
        events = [*self.make_events(), TraceEvent(10.0, "pfs", "read", 1 << 30)]
        _, bps = throughput_series(events, 0.0, 3.0, bins=3)
        assert bps.sum() * 1.0 == pytest.approx(6000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            throughput_series([], 1.0, 1.0)
        with pytest.raises(ValueError):
            throughput_series([], 0.0, 1.0, bins=0)

    def test_event_at_exact_right_edge_lands_in_last_bin(self):
        """Regression: the window used to be half-open (``t < t1``), so a
        completion at exactly ``t1`` — the last I/O of a run binned over
        ``[0, sim.now]`` — silently vanished from the series."""
        events = [*self.make_events(), TraceEvent(3.0, "pfs", "read", 900)]
        _, bps = throughput_series(events, 0.0, 3.0, bins=3)
        assert bps[-1] == pytest.approx(2900.0)  # 2000 + the edge event


class TestTraceMatchesBackendCounters:
    """Satellite contract: traced totals equal the backend counters they
    shadow, on both the bulk and the per-chunk copy execution paths."""

    @pytest.mark.parametrize("disable_bulk", [False, True])
    def test_full_run_traced_totals(self, monkeypatch, disable_bulk):
        from repro.data.imagenet import IMAGENET_100G
        from repro.experiments.calibration import DEFAULT_CALIBRATION
        from repro.experiments.scenarios import build_run

        if disable_bulk:
            monkeypatch.setenv("REPRO_DISABLE_BULK_IO", "1")
        else:
            monkeypatch.delenv("REPRO_DISABLE_BULK_IO", raising=False)
        handle = build_run(
            "monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
            scale=1 / 2048, seed=1, telemetry=True,
        )
        handle.execute()
        tele = handle.telemetry
        assert tele is not None
        for name, stats in tele.backends.items():
            assert tele.trace.total_bytes(name, "read") == stats.bytes_read, name
            assert tele.trace.total_bytes(name, "write") == stats.bytes_written, name
            assert tele.trace.total_ops(name, "read") == stats.read_ops, name
            assert tele.trace.total_ops(name, "write") == stats.write_ops, name


class TestVariability:
    def test_constant_series_has_zero_cv(self):
        v = variability(np.array([100.0, 100.0, 100.0]))
        assert v.cv == 0.0
        assert v.mean_bps == 100.0

    def test_idle_edges_trimmed(self):
        v = variability(np.array([0.0, 0.0, 10.0, 20.0, 0.0]))
        assert v.mean_bps == pytest.approx(15.0)
        assert v.min_bps == 10.0

    def test_empty_series(self):
        v = variability(np.zeros(5))
        assert v.mean_bps == 0.0
        assert v.cv == 0.0

    def test_cv_orders_noisiness(self):
        smooth = variability(np.array([90.0, 100.0, 110.0]))
        noisy = variability(np.array([10.0, 100.0, 190.0]))
        assert noisy.cv > smooth.cv
