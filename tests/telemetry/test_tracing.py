"""Unit tests for I/O tracing and variability analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.stats import BackendStats
from repro.telemetry.tracing import (
    IOTrace,
    TraceEvent,
    throughput_series,
    variability,
)
from tests.conftest import drive


class TestIOTrace:
    def test_attach_records_events(self, sim):
        trace = IOTrace(sim)
        stats = BackendStats(name="dev")
        trace.attach(stats)

        def job():
            yield sim.timeout(1.0)
            stats.record_read(100)
            yield sim.timeout(1.0)
            stats.record_write(200)

        drive(sim, job())
        assert len(trace) == 2
        assert trace.events[0] == TraceEvent(1.0, "dev", "read", 100)
        assert trace.events[1] == TraceEvent(2.0, "dev", "write", 200)

    def test_original_counters_still_update(self, sim):
        trace = IOTrace(sim)
        stats = BackendStats(name="dev")
        trace.attach(stats)
        stats.record_read(64)
        assert stats.read_ops == 1
        assert stats.bytes_read == 64

    def test_double_attach_rejected(self, sim):
        trace = IOTrace(sim)
        stats = BackendStats(name="dev")
        trace.attach(stats)
        with pytest.raises(ValueError, match="already traced"):
            trace.attach(stats)

    def test_filtered(self, sim):
        trace = IOTrace(sim)
        a, b = BackendStats(name="a"), BackendStats(name="b")
        trace.attach(a)
        trace.attach(b)
        a.record_read(1)
        a.record_write(2)
        b.record_read(3)
        assert len(trace.filtered(backend="a")) == 2
        assert len(trace.filtered(kind="read")) == 2
        assert len(trace.filtered(backend="a", kind="write")) == 1

    def test_live_backend_integration(self, sim, pfs):
        """Tracing a real PFS picks up its pread traffic."""
        trace = IOTrace(sim)
        trace.attach(pfs.stats)
        pfs.add_file("/f", 10_000)

        def job():
            h = yield from pfs.open("/f")
            yield from pfs.pread(h, 0, 4_000)
            yield from pfs.pread(h, 4_000, 4_000)

        drive(sim, job())
        reads = trace.filtered(kind="read")
        assert len(reads) == 2
        assert sum(e.nbytes for e in reads) == 8_000


class TestThroughputSeries:
    def make_events(self):
        return [
            TraceEvent(0.5, "pfs", "read", 1000),
            TraceEvent(1.5, "pfs", "read", 3000),
            TraceEvent(2.5, "pfs", "read", 2000),
        ]

    def test_binning(self):
        t, bps = throughput_series(self.make_events(), 0.0, 3.0, bins=3)
        assert len(t) == 3
        assert bps.tolist() == [1000.0, 3000.0, 2000.0]

    def test_events_outside_window_excluded(self):
        events = [*self.make_events(), TraceEvent(10.0, "pfs", "read", 1 << 30)]
        _, bps = throughput_series(events, 0.0, 3.0, bins=3)
        assert bps.sum() * 1.0 == pytest.approx(6000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            throughput_series([], 1.0, 1.0)
        with pytest.raises(ValueError):
            throughput_series([], 0.0, 1.0, bins=0)


class TestVariability:
    def test_constant_series_has_zero_cv(self):
        v = variability(np.array([100.0, 100.0, 100.0]))
        assert v.cv == 0.0
        assert v.mean_bps == 100.0

    def test_idle_edges_trimmed(self):
        v = variability(np.array([0.0, 0.0, 10.0, 20.0, 0.0]))
        assert v.mean_bps == pytest.approx(15.0)
        assert v.min_bps == 10.0

    def test_empty_series(self):
        v = variability(np.zeros(5))
        assert v.mean_bps == 0.0
        assert v.cv == 0.0

    def test_cv_orders_noisiness(self):
        smooth = variability(np.array([90.0, 100.0, 110.0]))
        noisy = variability(np.array([10.0, 100.0, 190.0]))
        assert noisy.cv > smooth.cv
