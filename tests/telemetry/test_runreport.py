"""RunReport: aggregation, serialization determinism, and diffing.

The unit half exercises the interval/pairing helpers and the report
dataclass directly; the integration half runs real (tiny) experiments and
asserts the contracts the observability layer advertises: same seed ⇒
byte-identical JSON, tier-read deltas re-sum to the middleware counters,
traced bytes equal backend counters, and the paper's Fig. 5 op-reduction
shape is visible straight from the report.
"""

from __future__ import annotations

import pytest

from repro.data.imagenet import IMAGENET_100G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.runner import run_once
from repro.experiments.scenarios import build_run
from repro.faults import FaultPlan, TierDown
from repro.simkernel.core import Simulator
from repro.storage.stats import BackendStats
from repro.telemetry.events import EventRecorder, RunEvent
from repro.telemetry.runreport import (
    RunReport,
    RunTelemetry,
    _copy_spans,
    _merge_intervals,
    _overlap,
    _tier_delta,
    build_run_report,
    diff_reports,
    render_diff,
    render_report,
)

SCALE = 1 / 4096


def _report(setup: str = "monarch", seed: int = 7, scale: float = SCALE,
            **kwargs) -> RunReport:
    rec = run_once(setup, "lenet", IMAGENET_100G, scale=scale, seed=seed,
                   report=True, **kwargs)
    assert rec.report is not None
    return RunReport.from_dict(rec.report)


class TestIntervalHelpers:
    def test_merge_overlapping(self):
        assert _merge_intervals([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]

    def test_merge_touching(self):
        assert _merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_overlap_clips_to_window(self):
        spans = [(0.0, 2.0), (5.0, 7.0)]
        assert _overlap(spans, 1.0, 6.0) == pytest.approx(2.0)
        assert _overlap(spans, 10.0, 11.0) == 0.0

    def test_tier_delta_labels_and_subtracts(self):
        assert _tier_delta({0: 10, 1: 4}, {0: 3}) == {"l0": 7, "l1": 4}


class TestCopySpans:
    def test_fifo_pairing_and_unmatched_close_at_final(self):
        rec = EventRecorder(lambda: 0.0)
        rec.events[:] = [
            RunEvent(1.0, "copy.started", "/a"),
            RunEvent(2.0, "copy.started", "/b"),
            RunEvent(3.0, "copy.completed", "/a"),
            RunEvent(4.0, "copy.started", "/a"),
            RunEvent(5.0, "copy.gave_up", "/a"),
        ]
        spans = _copy_spans(rec, t_final=10.0)
        # /b never finished: closes at t_final; /a pairs FIFO twice
        assert spans == _merge_intervals([(1.0, 3.0), (4.0, 5.0), (2.0, 10.0)])

    def test_terminal_without_start_ignored(self):
        rec = EventRecorder(lambda: 0.0)
        rec.events[:] = [RunEvent(3.0, "copy.completed", "/a")]
        assert _copy_spans(rec, t_final=5.0) == []


class TestRunTelemetry:
    def test_attach_backends_skips_tracked(self):
        sim = Simulator()
        tele = RunTelemetry(sim)
        stats = BackendStats(name="dev")
        tele.track_backend("dev", stats)
        tele.attach_backends({"dev": stats})  # second attach must not raise
        assert list(tele.backends) == ["dev"]

    def test_epoch_mark_without_monarch_has_no_tier_counters(self):
        tele = RunTelemetry(Simulator())
        tele.on_epoch_end(0)
        assert tele.epoch_marks == [{"t": 0.0}]


class TestSerialization:
    def test_roundtrip_and_newline_termination(self):
        rep = _report()
        js = rep.to_json()
        assert js.endswith("\n")
        again = RunReport.from_json(js)
        assert again.to_dict() == rep.to_dict()
        assert again.to_json() == js

    def test_same_seed_byte_identical(self):
        assert _report(seed=11).to_json() == _report(seed=11).to_json()

    def test_different_seed_differs(self):
        assert _report(seed=11).to_json() != _report(seed=12).to_json()

    def test_schema_version_present(self):
        assert _report().to_dict()["schema_version"] == 2


class TestReportContents:
    def test_tier_reads_resum_to_published_counters(self):
        rep = _report()
        published = {
            k.rsplit(".", 1)[1]: v
            for k, v in rep.counters.items()
            if k.startswith("monarch.reads.")
        }
        assert rep.tier_read_totals() == published
        assert rep.total_tier_reads() == sum(published.values())

    def test_traced_bytes_equal_backend_counters(self):
        rep = _report()
        for name, b in rep.backends.items():
            assert b["traced_bytes_read"] == b["bytes_read"], name
            assert b["traced_bytes_written"] == b["bytes_written"], name
            assert b["traced_read_ops"] == b["read_ops"], name
            assert b["traced_write_ops"] == b["write_ops"], name

    def test_phase_breakdown_sums_to_wall_time(self):
        rep = _report()
        for e in rep.epochs:
            p = e["phases"]
            assert p["compute_s"] + p["io_wait_s"] == pytest.approx(e["wall_time_s"])
            assert 0.0 <= p["placement_active_s"] <= e["wall_time_s"] + 1e-9

    def test_epoch_windows_are_contiguous(self):
        rep = _report()
        for prev, cur in zip(rep.epochs, rep.epochs[1:]):
            assert cur["t_start"] == pytest.approx(prev["t_end"])

    def test_event_stream_has_epoch_boundaries(self):
        rep = _report()
        kinds = rep.event_kinds()
        n = rep.meta["n_epochs"]
        assert kinds["epoch.start"] == n
        assert kinds["epoch.end"] == n

    def test_vanilla_run_has_no_middleware_sections(self):
        rep = _report(setup="vanilla-lustre")
        assert rep.counters == {}
        assert all("tier_reads" not in e for e in rep.epochs)
        assert "pfs" in rep.backends

    def test_fig5_shape_pfs_ops_collapse_after_epoch_one(self):
        """Paper Fig. 5: with MONARCH the PFS absorbs nearly all ops in
        epoch 1 (cold cache + background copies); epochs 2-3 run from the
        local tier and barely touch it."""
        rep = _report(scale=1 / 1024, seed=0)
        pfs_ops = rep.backend_ops_per_epoch("pfs")
        assert len(pfs_ops) == 3
        assert pfs_ops[0] > 10 * max(pfs_ops[1], pfs_ops[2], 1)
        # and the mirror image: the local tier serves the steady state
        tier_reads = [e["tier_reads"] for e in rep.epochs]
        assert tier_reads[1]["l1"] == 0
        assert tier_reads[2]["l1"] == 0
        assert tier_reads[1]["l0"] > 0


class TestFaultedRunEvents:
    def test_quarantine_story_lands_in_the_event_stream(self):
        plan = FaultPlan({"/mnt/ssd": (TierDown(at=0.05),)})
        handle = build_run(
            "monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
            scale=SCALE, seed=3, fault_plan=plan, telemetry=True,
        )
        result = handle.execute()
        rep = build_run_report(handle.telemetry, result, setup="monarch",
                               model="lenet", dataset="100g", scale=SCALE, seed=3)
        kinds = rep.event_kinds()
        monarch = handle.monarch
        assert kinds.get("tier.quarantined", 0) == monarch.health.quarantines >= 1
        assert kinds.get("read.fallback", 0) == monarch.stats.fallback_reads > 0
        assert kinds.get("tier.readmitted", 0) == 0
        # every quarantine event names the tier and its fault streak
        for e in rep.events:
            if e["kind"] == "tier.quarantined":
                assert e["subject"] == "l0"
                assert e["detail"]["consecutive"] >= 1


class TestDiff:
    def test_identical_reports_have_no_diff(self):
        rep = _report()
        assert diff_reports(rep, rep) == []

    def test_value_change_surfaces_with_path(self):
        a, b = _report(), _report()
        b.meta["seed"] = 999
        diffs = diff_reports(a, b)
        assert ("meta.seed", 7, 999) in diffs

    def test_missing_list_entry_uses_absent_sentinel(self):
        a, b = _report(), _report()
        b.events = b.events[:-1]
        diffs = diff_reports(a, b)
        assert any(vb == "<absent>" for _, _, vb in diffs)

    def test_render_diff(self):
        a, b = _report(), _report()
        assert render_diff(diff_reports(a, b)) == "reports are identical"
        b.meta["seed"] = 999
        text = render_diff(diff_reports(a, b))
        assert "meta.seed" in text and "999" in text

    def test_render_diff_truncates(self):
        diffs = [(f"p{i}", i, -i) for i in range(50)]
        text = render_diff(diffs, limit=40)
        assert "and 10 more" in text


class TestRender:
    def test_render_report_mentions_the_run(self):
        text = render_report(_report())
        assert "monarch / lenet" in text
        assert "per-epoch" in text
        assert "per-backend" in text
        assert "counters (nonzero)" in text

    def test_render_vanilla_report_omits_tier_column(self):
        text = render_report(_report(setup="vanilla-lustre"))
        assert "tier reads" not in text
        assert "counters" not in text
