"""Unit tests for table rendering."""

from __future__ import annotations

import pytest

from repro.telemetry.report import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        assert lines[2].startswith("a")
        assert lines[3].startswith("longer")
        # columns align: 'value' header position matches cell position
        assert lines[0].index("value") == lines[2].index("1")

    def test_title_prepended(self):
        text = format_table(["h"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159]], float_fmt="{:.2f}")
        assert "3.14" in text
        assert "3.1415" not in text

    def test_bool_not_treated_as_number(self):
        text = format_table(["flag"], [[True]])
        assert "True" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])
