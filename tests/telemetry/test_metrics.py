"""Unit tests for the metrics registry."""

from __future__ import annotations

import pytest

from repro.telemetry.metrics import MetricsRegistry, _quantile


class TestCountersAndGauges:
    def test_incr(self):
        m = MetricsRegistry()
        m.incr("reads")
        m.incr("reads", by=4)
        assert m.counters["reads"] == 5

    def test_gauge_overwrites(self):
        m = MetricsRegistry()
        m.gauge("load", 0.5)
        m.gauge("load", 0.7)
        assert m.gauges["load"] == 0.7

    def test_set_counter_is_absolute(self):
        m = MetricsRegistry()
        m.set_counter("reads", 10)
        m.set_counter("reads", 10)  # snapshot semantics: no accumulation
        assert m.counters["reads"] == 10
        m.set_counter("reads", 7)  # may move down (e.g. a fresh registry)
        assert m.counters["reads"] == 7

    def test_set_counter_coerces_int(self):
        m = MetricsRegistry()
        m.set_counter("x", 3.0)
        assert m.counters["x"] == 3
        assert isinstance(m.counters["x"], int)


class TestHistograms:
    def test_observe_and_summary(self):
        m = MetricsRegistry()
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            m.observe("lat", v)
        s = m.summary("lat")
        assert s.count == 5
        assert s.mean == pytest.approx(3.0)
        assert s.min == 1.0
        assert s.max == 5.0
        assert s.p50 == pytest.approx(3.0)

    def test_empty_summary_raises(self):
        m = MetricsRegistry()
        with pytest.raises(KeyError):
            m.summary("nope")
        m.histograms["empty"] = []
        with pytest.raises(KeyError):
            m.summary("empty")

    def test_p95_interpolates(self):
        m = MetricsRegistry()
        for v in range(101):
            m.observe("x", float(v))
        assert m.summary("x").p95 == pytest.approx(95.0)


class TestQuantile:
    def test_single_value(self):
        assert _quantile([7.0], 0.5) == 7.0

    def test_endpoints(self):
        data = [1.0, 2.0, 3.0]
        assert _quantile(data, 0.0) == 1.0
        assert _quantile(data, 1.0) == 3.0

    def test_midpoint_interpolation(self):
        assert _quantile([0.0, 10.0], 0.5) == pytest.approx(5.0)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            _quantile([1.0], 1.5)
