"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import DatasetSpec, SampleSizeModel
from repro.data.sharding import build_shards
from repro.framework.resources import ComputeNode, NodeSpec
from repro.simkernel.core import Simulator
from repro.storage.device import Device, SATA_SSD
from repro.storage.localfs import LocalFileSystem
from repro.storage.pfs import ParallelFileSystem
from repro.storage.vfs import MountTable


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG."""
    return np.random.default_rng(42)


@pytest.fixture
def ssd(sim: Simulator) -> Device:
    """A SATA-SSD device (no jitter RNG: deterministic service times)."""
    return Device(sim, SATA_SSD)


@pytest.fixture
def local_fs(sim: Simulator, ssd: Device) -> LocalFileSystem:
    """A 64 MiB local file system."""
    return LocalFileSystem(sim, ssd, capacity_bytes=64 * 1024 * 1024)


@pytest.fixture
def pfs(sim: Simulator) -> ParallelFileSystem:
    """A PFS with deterministic service times (no jitter RNG)."""
    return ParallelFileSystem(sim)


@pytest.fixture
def mounts(local_fs: LocalFileSystem, pfs: ParallelFileSystem) -> MountTable:
    """Mount table with the PFS at /mnt/pfs and the local FS at /mnt/ssd."""
    mt = MountTable()
    mt.mount("/mnt/pfs", pfs)
    mt.mount("/mnt/ssd", local_fs)
    return mt


@pytest.fixture
def node(sim: Simulator) -> ComputeNode:
    """A small compute node (8 cores, 2 GPUs)."""
    return ComputeNode(sim, NodeSpec(cpu_cores=8, n_gpus=2, memory_limit_bytes=1 << 30))


@pytest.fixture
def fast_model():
    """A cheap model profile so tests run in trivial simulated time."""
    from repro.framework.models import ModelProfile

    return ModelProfile(
        name="fast",
        gpu_time_per_image_us=50.0,
        cpu_time_per_image_us=100.0,
        host_time_per_step_us=200.0,
    )


@pytest.fixture
def tiny_spec() -> DatasetSpec:
    """A tiny deterministic dataset: 96 samples of exactly 8 KiB."""
    return DatasetSpec(
        name="tiny",
        n_samples=96,
        size_model=SampleSizeModel(mean_bytes=8192, sigma=0.0),
        shard_target_bytes=12 * (8192 + 16),  # 12 records per shard
    )


@pytest.fixture
def tiny_manifest(tiny_spec: DatasetSpec):
    """Shard manifest for the tiny dataset (8 shards of 12 records)."""
    return build_shards(tiny_spec)


def drive(sim: Simulator, gen, name: str = "test-proc"):
    """Spawn ``gen`` and run the simulation until it finishes."""
    proc = sim.spawn(gen, name=name)
    return sim.run(proc)


@pytest.fixture(autouse=True)
def _isolated_run_cache(tmp_path_factory, monkeypatch):
    """Point the content-keyed run cache at a per-test scratch dir.

    Tests must never read or write the real user cache: a hit there could
    mask a behaviour change, and a store would leak test artifacts.
    """
    monkeypatch.setenv("REPRO_RUN_CACHE", str(tmp_path_factory.mktemp("runcache")))
