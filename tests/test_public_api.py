"""Tests for the top-level public API surface."""

from __future__ import annotations

import importlib

import pytest


class TestPackageSurface:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize("module", [
        "repro.simkernel", "repro.storage", "repro.data", "repro.framework",
        "repro.core", "repro.telemetry", "repro.experiments", "repro.faults",
    ])
    def test_subpackage_alls_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert getattr(mod, name, None) is not None, f"{module}.{name}"

    def test_docstring_quickstart_runs(self):
        """The README / package docstring quickstart must actually work."""
        from repro.data import IMAGENET_100G
        from repro.experiments import run_once

        record = run_once("monarch", "lenet", IMAGENET_100G, scale=1 / 4096, seed=0)
        assert len(record.epoch_times_s) == 3
        assert all(t > 0 for t in record.epoch_times_s)
