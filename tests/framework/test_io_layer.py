"""Unit tests for the pluggable reader interface."""

from __future__ import annotations

import pytest

from repro.framework.io_layer import PosixReader
from repro.storage.base import FileNotFoundInFS
from tests.conftest import drive


class TestPosixReader:
    def test_open_returns_size(self, sim, mounts, pfs):
        pfs.add_file("/dataset/a", 12345)
        reader = PosixReader(mounts)

        def job():
            f = yield from reader.open("/mnt/pfs/dataset/a")
            return f

        f = drive(sim, job())
        assert f.size == 12345
        assert f.path == "/mnt/pfs/dataset/a"

    def test_pread_transfers(self, sim, mounts, pfs):
        pfs.add_file("/dataset/a", 1000)
        reader = PosixReader(mounts)

        def job():
            f = yield from reader.open("/mnt/pfs/dataset/a")
            a = yield from reader.pread(f, 0, 600)
            b = yield from reader.pread(f, 600, 600)
            return a, b

        assert drive(sim, job()) == (600, 400)

    def test_open_missing_raises(self, sim, mounts):
        reader = PosixReader(mounts)

        def job():
            yield from reader.open("/mnt/pfs/nope")

        with pytest.raises(FileNotFoundInFS):
            drive(sim, job())

    def test_open_charges_backend_open(self, sim, mounts, pfs):
        pfs.add_file("/dataset/a", 10)
        reader = PosixReader(mounts)

        def job():
            yield from reader.open("/mnt/pfs/dataset/a")

        drive(sim, job())
        assert pfs.stats.open_ops == 1

    def test_close_is_noop(self, sim, mounts, pfs):
        pfs.add_file("/dataset/a", 10)
        reader = PosixReader(mounts)

        def job():
            f = yield from reader.open("/mnt/pfs/dataset/a")
            reader.close(f)

        drive(sim, job())

    def test_routes_to_local_mount(self, sim, mounts, local_fs):
        local_fs.add_file("/x", 500)
        reader = PosixReader(mounts)

        def job():
            f = yield from reader.open("/mnt/ssd/x")
            return (yield from reader.pread(f, 0, 500))

        assert drive(sim, job()) == 500
        assert local_fs.stats.read_ops == 1
