"""Fixtures for framework-level tests: a fully wired tiny training stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.virtual import materialize
from repro.framework.io_layer import PosixReader
from repro.framework.pipeline import PipelineConfig, shards_from_manifest


@pytest.fixture
def small_config() -> PipelineConfig:
    """A small pipeline: 2 readers, 4 mappers, batches of 16."""
    return PipelineConfig(
        read_chunk=16 * 1024,
        cycle_length=2,
        num_map_workers=4,
        shuffle_buffer_records=64,
        prefetch_batches=2,
        batch_size=16,
        reference_batch=16,
    )


@pytest.fixture
def pfs_shards(sim, pfs, tiny_manifest):
    """The tiny dataset materialized on the PFS, as pipeline ShardInfos."""
    paths = materialize(tiny_manifest, pfs, "/dataset")
    return shards_from_manifest(tiny_manifest, ["/mnt/pfs" + p for p in paths])


@pytest.fixture
def posix_reader(mounts) -> PosixReader:
    """Vanilla reader over the test mount table."""
    return PosixReader(mounts)


@pytest.fixture
def shuffle_rng() -> np.random.Generator:
    """Deterministic shuffle stream."""
    return np.random.default_rng(7)
