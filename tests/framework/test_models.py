"""Unit tests for the model compute profiles."""

from __future__ import annotations

import pytest

from repro.framework.models import ALEXNET, LENET, MODELS, RESNET50, ModelProfile


class TestPresets:
    def test_registry_contains_all(self):
        assert set(MODELS) == {"lenet", "alexnet", "resnet50"}
        assert MODELS["lenet"] is LENET

    def test_io_bound_to_compute_bound_ordering(self):
        assert LENET.gpu_time_per_image_us < ALEXNET.gpu_time_per_image_us
        assert ALEXNET.gpu_time_per_image_us < RESNET50.gpu_time_per_image_us

    def test_resnet_preprocess_cheapest(self):
        assert RESNET50.cpu_time_per_image_us < LENET.cpu_time_per_image_us


class TestStepTime:
    def test_divides_across_gpus(self):
        m = ModelProfile(name="m", gpu_time_per_image_us=1000, cpu_time_per_image_us=0)
        assert m.step_time(batch_size=128, n_gpus=4) == pytest.approx(32 * 1e-3)

    def test_ceil_division_gates_on_slowest_gpu(self):
        m = ModelProfile(name="m", gpu_time_per_image_us=1000, cpu_time_per_image_us=0)
        # 5 images on 4 GPUs: one GPU gets 2
        assert m.step_time(batch_size=5, n_gpus=4) == pytest.approx(2e-3)

    def test_single_gpu(self):
        m = ModelProfile(name="m", gpu_time_per_image_us=500, cpu_time_per_image_us=0)
        assert m.step_time(batch_size=10, n_gpus=1) == pytest.approx(5e-3)

    def test_validation(self):
        m = ModelProfile(name="m", gpu_time_per_image_us=1, cpu_time_per_image_us=0)
        with pytest.raises(ValueError):
            m.step_time(0, 4)
        with pytest.raises(ValueError):
            m.step_time(4, 0)


class TestPreprocessTime:
    def test_reference_cost(self):
        m = ModelProfile(name="m", gpu_time_per_image_us=1,
                         cpu_time_per_image_us=4000, cpu_reference_bytes=100_000)
        assert m.preprocess_time() == pytest.approx(4e-3)

    def test_scales_with_payload(self):
        m = ModelProfile(name="m", gpu_time_per_image_us=1,
                         cpu_time_per_image_us=4000, cpu_reference_bytes=100_000)
        assert m.preprocess_time(50_000) == pytest.approx(2e-3)
        assert m.preprocess_time(200_000) == pytest.approx(8e-3)


class TestHostTime:
    def test_seconds_conversion(self):
        m = ModelProfile(name="m", gpu_time_per_image_us=1,
                         cpu_time_per_image_us=0, host_time_per_step_us=13_000)
        assert m.host_time() == pytest.approx(0.013)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ModelProfile(name="m", gpu_time_per_image_us=0, cpu_time_per_image_us=0)
        with pytest.raises(ValueError):
            ModelProfile(name="m", gpu_time_per_image_us=1, cpu_time_per_image_us=-1)
        with pytest.raises(ValueError):
            ModelProfile(name="m", gpu_time_per_image_us=1, cpu_time_per_image_us=0,
                         host_time_per_step_us=-1)
