"""Unit tests for the tf.data cache stand-in (vanilla-caching)."""

from __future__ import annotations

import pytest

from repro.framework.cache import CacheOverflowError, TFDataCache
from tests.conftest import drive


class TestTFDataCache:
    def test_cached_path_mirrors_basename(self, mounts):
        cache = TFDataCache(mounts, "/mnt/ssd/cache")
        assert cache.cached_path("/mnt/pfs/dataset/train-0001.tfrecord") == (
            "/mnt/ssd/cache/train-0001.tfrecord"
        )

    def test_write_chunk_appends(self, sim, mounts, local_fs):
        cache = TFDataCache(mounts, "/mnt/ssd/cache")

        def job():
            yield from cache.write_chunk("/mnt/pfs/dataset/a", 1000)
            yield from cache.write_chunk("/mnt/pfs/dataset/a", 500)

        drive(sim, job())
        assert local_fs.file_size("/cache/a") == 1500
        assert cache.bytes_cached == 1500

    def test_overflow_raises_cache_error(self, sim, mounts, local_fs):
        cache = TFDataCache(mounts, "/mnt/ssd/cache")

        def job():
            yield from cache.write_chunk("/mnt/pfs/dataset/a", local_fs.capacity_bytes + 1)

        with pytest.raises(CacheOverflowError):
            drive(sim, job())

    def test_not_ready_until_finalized(self, mounts, tiny_manifest):
        from repro.framework.pipeline import shards_from_manifest

        cache = TFDataCache(mounts, "/mnt/ssd/cache")
        shards = shards_from_manifest(
            tiny_manifest, [f"/mnt/pfs/dataset/{s.filename}" for s in tiny_manifest.shards]
        )
        assert cache.effective_shards(shards) == shards
        cache.finalize_epoch()
        redirected = cache.effective_shards(shards)
        assert all(s.path.startswith("/mnt/ssd/cache/") for s in redirected)
        assert [s.size for s in redirected] == [s.size for s in shards]

    def test_write_after_finalize_rejected(self, sim, mounts):
        cache = TFDataCache(mounts, "/mnt/ssd/cache")
        cache.finalize_epoch()

        def job():
            yield from cache.write_chunk("/mnt/pfs/dataset/a", 10)

        with pytest.raises(RuntimeError, match="finalized"):
            drive(sim, job())

    def test_writes_charge_local_backend(self, sim, mounts, local_fs):
        cache = TFDataCache(mounts, "/mnt/ssd/cache")

        def job():
            yield from cache.write_chunk("/mnt/pfs/dataset/a", 4096)

        drive(sim, job())
        assert local_fs.stats.write_ops == 1
        assert local_fs.stats.bytes_written == 4096
