"""Golden comparison: fused pipeline vs generator pipeline, bit for bit.

The fused callback state machines in ``framework.pipeline`` are a pure
speed optimization; ``REPRO_DISABLE_FUSED_PIPELINE=1`` runs the original
generator workers.  These tests pin the acceptance bar for the whole
batch-advance kernel: a full seeded run must produce a *byte-identical*
``RunRecord`` either way — every epoch time, utilization average and
backend counter, down to float repr.  An engagement spy guards against
the comparison going vacuous (both sides silently running legacy).
"""

from __future__ import annotations

import pytest

import repro.framework.pipeline as pipeline_mod
from repro.data.imagenet import IMAGENET_100G
from repro.experiments.runner import run_once

#: small but contended: 16 shards, multi-epoch, both OST queueing and
#: CPU-bound mapper stretches — the kernel-speed probe's little sibling
_SCALE = 1 / 256


@pytest.mark.parametrize("setup", ["vanilla-lustre", "vanilla-local"])
def test_fused_and_generator_records_byte_identical(setup, monkeypatch):
    started = []
    real_start = pipeline_mod._FusedReader._start

    def spying_start(self, arg):
        started.append(self)
        real_start(self, arg)

    monkeypatch.setattr(pipeline_mod._FusedReader, "_start", spying_start)
    monkeypatch.delenv("REPRO_DISABLE_FUSED_PIPELINE", raising=False)
    fused = repr(run_once(setup, "resnet50", IMAGENET_100G, scale=_SCALE, seed=0))
    assert started, "fused readers never engaged — comparison would be vacuous"

    monkeypatch.setenv("REPRO_DISABLE_FUSED_PIPELINE", "1")
    started.clear()
    legacy = repr(run_once(setup, "resnet50", IMAGENET_100G, scale=_SCALE, seed=0))
    assert not started, "gate ignored — legacy run used the fused readers"

    assert fused == legacy


def test_monarch_setup_unaffected_by_gate(monkeypatch):
    """MONARCH's reader isn't continuation-capable: both modes must fall
    back to (identical) generator readers, with fused mappers still on."""
    monkeypatch.delenv("REPRO_DISABLE_FUSED_PIPELINE", raising=False)
    default = repr(run_once("monarch", "resnet50", IMAGENET_100G,
                            scale=_SCALE, seed=0))
    monkeypatch.setenv("REPRO_DISABLE_FUSED_PIPELINE", "1")
    gated = repr(run_once("monarch", "resnet50", IMAGENET_100G,
                          scale=_SCALE, seed=0))
    assert default == gated
