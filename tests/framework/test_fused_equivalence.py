"""Golden comparison: fused pipeline vs generator pipeline, bit for bit.

The fused callback state machines in ``framework.pipeline`` are a pure
speed optimization; ``REPRO_DISABLE_FUSED_PIPELINE=1`` runs the original
generator workers.  These tests pin the acceptance bar for the whole
batch-advance kernel: a full seeded run must produce a *byte-identical*
``RunRecord`` either way — every epoch time, utilization average and
backend counter, down to float repr.  An engagement spy guards against
the comparison going vacuous (both sides silently running legacy).

Monarch and monarch-p2p cells engage the fused FSMs too (the middleware
and peer-cache readers speak the continuation protocol, routing per
read), so they get the same spy-guarded treatment — including under
fault plans, where the inlined fast paths must hand off to the legacy
generator without perturbing a single event slot.
"""

from __future__ import annotations

import pytest

import repro.framework.pipeline as pipeline_mod
from repro.data.imagenet import IMAGENET_100G
from repro.experiments.dist_scenarios import run_distributed_once
from repro.experiments.runner import run_once
from repro.experiments.scenarios import ssd_tier_down_plan
from repro.faults import FaultPlan, TransientFaults

#: small but contended: 16 shards, multi-epoch, both OST queueing and
#: CPU-bound mapper stretches — the kernel-speed probe's little sibling
_SCALE = 1 / 256


@pytest.fixture
def fused_spy(monkeypatch):
    """Record every fused-reader FSM start (the engagement signal)."""
    started = []
    real_start = pipeline_mod._FusedReader._start

    def spying_start(self, arg):
        started.append(self)
        real_start(self, arg)

    monkeypatch.setattr(pipeline_mod._FusedReader, "_start", spying_start)
    return started


@pytest.mark.parametrize("setup", ["vanilla-lustre", "vanilla-local", "monarch"])
def test_fused_and_generator_records_byte_identical(setup, fused_spy, monkeypatch):
    monkeypatch.delenv("REPRO_DISABLE_FUSED_PIPELINE", raising=False)
    fused = repr(run_once(setup, "resnet50", IMAGENET_100G, scale=_SCALE, seed=0))
    assert fused_spy, "fused readers never engaged — comparison would be vacuous"

    monkeypatch.setenv("REPRO_DISABLE_FUSED_PIPELINE", "1")
    fused_spy.clear()
    legacy = repr(run_once(setup, "resnet50", IMAGENET_100G, scale=_SCALE, seed=0))
    assert not fused_spy, "gate ignored — legacy run used the fused readers"

    assert fused == legacy


def test_monarch_p2p_fused_and_generator_identical(fused_spy, monkeypatch):
    """Peer-cache cells engage the fused FSMs and stay bit-identical:
    the peer-fetch continuation chain (remote SSD read + fabric transfer)
    must land every hold and counter in the generator path's slots."""
    monkeypatch.delenv("REPRO_DISABLE_FUSED_PIPELINE", raising=False)
    fused = repr(run_distributed_once(
        "monarch-p2p", "resnet50", IMAGENET_100G, n_nodes=3,
        policy="reshuffle", scale=_SCALE, seed=0,
    ))
    assert fused_spy, "fused readers never engaged on monarch-p2p"

    monkeypatch.setenv("REPRO_DISABLE_FUSED_PIPELINE", "1")
    fused_spy.clear()
    legacy = repr(run_distributed_once(
        "monarch-p2p", "resnet50", IMAGENET_100G, n_nodes=3,
        policy="reshuffle", scale=_SCALE, seed=0,
    ))
    assert not fused_spy

    assert fused == legacy


def test_faulted_monarch_engages_fused_and_stays_identical(fused_spy, monkeypatch):
    """Under a fault plan the monarch reader still engages (capability is
    per read), but every read on the fault-wrapped mounts replays the
    legacy generator — injection, quarantine and recovery included."""
    plan = ssd_tier_down_plan(0.05, recover_at_s=0.4)
    monkeypatch.delenv("REPRO_DISABLE_FUSED_PIPELINE", raising=False)
    fused = repr(run_once("monarch", "resnet50", IMAGENET_100G,
                          scale=_SCALE, seed=3, fault_plan=plan))
    assert fused_spy, "fault plan must not disengage the monarch fused readers"

    monkeypatch.setenv("REPRO_DISABLE_FUSED_PIPELINE", "1")
    fused_spy.clear()
    legacy = repr(run_once("monarch", "resnet50", IMAGENET_100G,
                           scale=_SCALE, seed=3, fault_plan=plan))
    assert fused == legacy


def test_faulted_vanilla_mount_disengages_fused(fused_spy, monkeypatch):
    """A fault-wrapped POSIX mount is not continuation-capable *as a
    class* — the proxy's ``__getattr__`` would otherwise tunnel fused
    reads around the injector.  The pipeline must fall back wholesale
    and report the capability miss in the RunReport meta."""
    plan = FaultPlan({
        "/mnt/pfs": (TransientFaults(start=0.0, end=1e9, read_p=0.0),)
    })
    monkeypatch.delenv("REPRO_DISABLE_FUSED_PIPELINE", raising=False)
    record = run_once("vanilla-lustre", "resnet50", IMAGENET_100G,
                      scale=_SCALE, seed=0, fault_plan=plan, report=True)
    assert not fused_spy, "fused readers tunnelled past the fault injector"
    misses = record.report["meta"]["fused_capability_misses"]
    assert misses == {"backend:FaultyFileSystem": len(record.epoch_times_s)}


def test_clean_reports_carry_no_miss_key(monkeypatch):
    """Fusion engaging (or being gated off deliberately) is not a miss:
    the meta key must stay absent so golden reports stay byte-stable."""
    monkeypatch.delenv("REPRO_DISABLE_FUSED_PIPELINE", raising=False)
    record = run_once("monarch", "resnet50", IMAGENET_100G,
                      scale=_SCALE, seed=0, report=True)
    assert "fused_capability_misses" not in record.report["meta"]

    monkeypatch.setenv("REPRO_DISABLE_FUSED_PIPELINE", "1")
    gated = run_once("monarch", "resnet50", IMAGENET_100G,
                     scale=_SCALE, seed=0, report=True)
    assert "fused_capability_misses" not in gated.report["meta"]
