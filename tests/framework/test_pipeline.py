"""Unit tests for the tf.data-like input pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.framework.pipeline import (
    EpochPipeline,
    PipelineConfig,
    RecordRef,
    shards_from_manifest,
)


def run_epoch(sim, pipe):
    """Consume the whole epoch; returns the list of batches."""

    def consumer():
        batches = []
        while True:
            batch = yield from pipe.next_batch()
            if batch is None:
                return batches
            batches.append(batch)

    pipe.start()
    proc = sim.spawn(consumer())
    return sim.run(proc)


class TestConfig:
    def test_defaults_valid(self):
        PipelineConfig()

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(read_chunk=0)
        with pytest.raises(ValueError):
            PipelineConfig(cycle_length=0)
        with pytest.raises(ValueError):
            PipelineConfig(shuffle_buffer_records=0)
        with pytest.raises(ValueError):
            PipelineConfig(batch_size=0)

    def test_host_scale(self):
        cfg = PipelineConfig(batch_size=32, reference_batch=128)
        assert cfg.host_scale == pytest.approx(0.25)


class TestShardsFromManifest:
    def test_binds_paths(self, tiny_manifest):
        paths = [f"/mnt/pfs/dataset/{s.filename}" for s in tiny_manifest.shards]
        shards = shards_from_manifest(tiny_manifest, paths)
        assert [s.path for s in shards] == paths
        assert all(s.size == layout.size_bytes
                   for s, layout in zip(shards, tiny_manifest.shards))

    def test_path_count_mismatch(self, tiny_manifest):
        with pytest.raises(ValueError):
            shards_from_manifest(tiny_manifest, ["/one/path"])

    def test_with_path_copy(self, tiny_manifest):
        shards = shards_from_manifest(
            tiny_manifest, [f"/p/{s.filename}" for s in tiny_manifest.shards]
        )
        redirected = shards[0].with_path("/cache/x")
        assert redirected.path == "/cache/x"
        assert redirected.size == shards[0].size
        assert shards[0].path.startswith("/p/")


class TestEpochPipeline:
    def test_delivers_every_record_once(self, sim, small_config, pfs_shards,
                                         posix_reader, node, fast_model, shuffle_rng):
        pipe = EpochPipeline(sim, small_config, pfs_shards, posix_reader, node,
                             fast_model, shuffle_rng)
        batches = run_epoch(sim, pipe)
        records = [r for b in batches for r in b]
        assert len(records) == 96
        assert sorted(r.sample_id for r in records) == list(range(96))

    def test_batch_sizes(self, sim, small_config, pfs_shards, posix_reader,
                         node, fast_model, shuffle_rng):
        pipe = EpochPipeline(sim, small_config, pfs_shards, posix_reader, node,
                             fast_model, shuffle_rng)
        batches = run_epoch(sim, pipe)
        assert pipe.total_batches == 6  # 96 / 16
        assert len(batches) == 6
        assert all(len(b) == 16 for b in batches)

    def test_remainder_batch(self, sim, small_config, pfs_shards, posix_reader,
                             node, fast_model, shuffle_rng):
        from dataclasses import replace

        cfg = replace(small_config, batch_size=36)
        pipe = EpochPipeline(sim, cfg, pfs_shards, posix_reader, node,
                             fast_model, shuffle_rng)
        batches = run_epoch(sim, pipe)
        assert [len(b) for b in batches] == [36, 36, 24]

    def test_shard_order_reshuffles_between_epochs(self, sim, small_config,
                                                   pfs_shards, posix_reader, node,
                                                   fast_model):
        rng = np.random.default_rng(0)
        p1 = EpochPipeline(sim, small_config, pfs_shards, posix_reader, node,
                           fast_model, rng)
        order1 = list(p1._shard_queue)
        p2 = EpochPipeline(sim, small_config, pfs_shards, posix_reader, node,
                           fast_model, rng)
        order2 = list(p2._shard_queue)
        assert order1 != order2
        assert sorted(order1) == sorted(order2) == list(range(len(pfs_shards)))

    def test_reads_charge_the_pfs(self, sim, small_config, pfs_shards, pfs,
                                  posix_reader, node, fast_model, shuffle_rng):
        pipe = EpochPipeline(sim, small_config, pfs_shards, posix_reader, node,
                             fast_model, shuffle_rng)
        run_epoch(sim, pipe)
        total_bytes = sum(s.size for s in pfs_shards)
        assert pfs.stats.bytes_read == total_bytes
        assert pfs.stats.open_ops == len(pfs_shards)
        # chunked reads: ceil(size / chunk) per shard
        expected_reads = sum(-(-s.size // small_config.read_chunk) for s in pfs_shards)
        assert pfs.stats.read_ops == expected_reads

    def test_map_stage_occupies_cpu(self, sim, small_config, pfs_shards,
                                    posix_reader, node, fast_model, shuffle_rng):
        pipe = EpochPipeline(sim, small_config, pfs_shards, posix_reader, node,
                             fast_model, shuffle_rng)
        run_epoch(sim, pipe)
        busy = node.cpu.monitor.mean_level(0.0, sim.now) * sim.now
        # 96 records at the byte-scaled per-record cost
        per_record = fast_model.preprocess_time(8192)
        assert busy == pytest.approx(96 * per_record, rel=0.05)

    def test_empty_shards_rejected(self, sim, small_config, posix_reader, node,
                                   fast_model, shuffle_rng):
        with pytest.raises(ValueError):
            EpochPipeline(sim, small_config, [], posix_reader, node,
                          fast_model, shuffle_rng)

    def test_stage_failure_propagates(self, sim, small_config, pfs_shards,
                                      node, fast_model, shuffle_rng):
        class BrokenReader:
            def open(self, path):
                raise RuntimeError("reader exploded")
                yield  # pragma: no cover

            def pread(self, f, offset, nbytes):
                yield  # pragma: no cover

            def close(self, f):
                pass

        pipe = EpochPipeline(sim, small_config, pfs_shards, BrokenReader(), node,
                             fast_model, shuffle_rng)
        with pytest.raises(RuntimeError, match="reader exploded"):
            run_epoch(sim, pipe)

    def test_abort_kills_stages(self, sim, small_config, pfs_shards, posix_reader,
                                node, fast_model, shuffle_rng):
        pipe = EpochPipeline(sim, small_config, pfs_shards, posix_reader, node,
                             fast_model, shuffle_rng)
        pipe.start()
        sim.run(until=1e-6)
        pipe.abort()
        sim.run()
        assert all(not p.is_alive for p in pipe._procs)

    def test_record_ref_fields(self):
        r = RecordRef(sample_id=3, payload_len=100)
        assert r.sample_id == 3
        assert r.payload_len == 100
