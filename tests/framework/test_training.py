"""Unit tests for the trainer and per-epoch accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.framework.cache import TFDataCache
from repro.framework.training import Trainer


def make_trainer(sim, node, fast_model, small_config, pfs_shards, posix_reader,
                 pfs, local_fs=None, cache=None, epochs=2, init_hook=None):
    backends = {"pfs": pfs.stats}
    if local_fs is not None:
        backends["local"] = local_fs.stats
    return Trainer(
        sim=sim,
        node=node,
        model=fast_model,
        config=small_config,
        shards=pfs_shards,
        reader=posix_reader,
        shuffle_rng=np.random.default_rng(11),
        backends=backends,
        cache=cache,
        epochs=epochs,
        init_hook=init_hook,
    )


class TestTrainer:
    def test_epoch_count_and_steps(self, sim, node, fast_model, small_config,
                                   pfs_shards, posix_reader, pfs):
        tr = make_trainer(sim, node, fast_model, small_config, pfs_shards,
                          posix_reader, pfs, epochs=2)
        result = sim.run(sim.spawn(tr.run()))
        assert len(result.epochs) == 2
        for e in result.epochs:
            assert e.steps == 6
            assert e.records == 96
            assert e.wall_time_s > 0

    def test_epochs_validation(self, sim, node, fast_model, small_config,
                               pfs_shards, posix_reader, pfs):
        with pytest.raises(ValueError):
            make_trainer(sim, node, fast_model, small_config, pfs_shards,
                         posix_reader, pfs, epochs=0)

    def test_utilizations_in_range(self, sim, node, fast_model, small_config,
                                   pfs_shards, posix_reader, pfs):
        tr = make_trainer(sim, node, fast_model, small_config, pfs_shards,
                          posix_reader, pfs)
        result = sim.run(sim.spawn(tr.run()))
        for e in result.epochs:
            assert 0.0 < e.cpu_utilization <= 1.0
            assert 0.0 < e.gpu_utilization <= 1.0

    def test_backend_ops_per_epoch(self, sim, node, fast_model, small_config,
                                   pfs_shards, posix_reader, pfs):
        tr = make_trainer(sim, node, fast_model, small_config, pfs_shards,
                          posix_reader, pfs)
        result = sim.run(sim.spawn(tr.run()))
        epoch_bytes = sum(s.size for s in pfs_shards)
        for e in result.epochs:
            assert e.backend_ops["pfs"].bytes_read == epoch_bytes
        assert result.backend_epoch_ops("pfs")[0] > 0

    def test_gpu_busy_time_matches_model(self, sim, node, fast_model, small_config,
                                         pfs_shards, posix_reader, pfs):
        tr = make_trainer(sim, node, fast_model, small_config, pfs_shards,
                          posix_reader, pfs, epochs=1)
        result = sim.run(sim.spawn(tr.run()))
        e = result.epochs[0]
        expected_busy = sum(
            fast_model.step_time(16, node.spec.n_gpus) for _ in range(6)
        )
        assert e.gpu_utilization * e.wall_time_s == pytest.approx(expected_busy, rel=0.02)

    def test_init_hook_timed_separately(self, sim, node, fast_model, small_config,
                                        pfs_shards, posix_reader, pfs):
        def init():
            yield sim.timeout(2.5)

        tr = make_trainer(sim, node, fast_model, small_config, pfs_shards,
                          posix_reader, pfs, epochs=1, init_hook=init)
        result = sim.run(sim.spawn(tr.run()))
        assert result.init_time_s == pytest.approx(2.5)
        # epoch wall time excludes init
        assert result.total_time_s < sim.now
        assert result.total_time_s + result.init_time_s == pytest.approx(sim.now)

    def test_total_time_is_sum_of_epochs(self, sim, node, fast_model, small_config,
                                         pfs_shards, posix_reader, pfs):
        tr = make_trainer(sim, node, fast_model, small_config, pfs_shards,
                          posix_reader, pfs)
        result = sim.run(sim.spawn(tr.run()))
        assert result.total_time_s == pytest.approx(sum(result.epoch_times))

    def test_cache_first_epoch_writes_then_redirects(self, sim, node, fast_model,
                                                     small_config, pfs_shards,
                                                     posix_reader, pfs, local_fs,
                                                     mounts):
        cache = TFDataCache(mounts, "/mnt/ssd/cache")
        tr = make_trainer(sim, node, fast_model, small_config, pfs_shards,
                          posix_reader, pfs, local_fs=local_fs, cache=cache,
                          epochs=3)
        result = sim.run(sim.spawn(tr.run()))
        pfs_ops = result.backend_epoch_ops("pfs")
        # epoch 1 hits the PFS; epochs 2-3 are served from the local cache
        assert pfs_ops[0] > 0
        assert pfs_ops[1] == 0
        assert pfs_ops[2] == 0
        epoch_bytes = sum(s.size for s in pfs_shards)
        assert result.epochs[0].backend_ops["local"].bytes_written == epoch_bytes
        assert result.epochs[1].backend_ops["local"].bytes_read == epoch_bytes

    def test_cache_epoch1_slower_than_plain(self, sim, node, fast_model, small_config,
                                            pfs_shards, posix_reader, pfs, local_fs,
                                            mounts):
        """The extra copy makes caching's first epoch slower (paper Fig. 1)."""
        # run without cache first
        tr_plain = make_trainer(sim, node, fast_model, small_config, pfs_shards,
                                posix_reader, pfs, epochs=1)
        plain = sim.run(sim.spawn(tr_plain.run())).epochs[0].wall_time_s
        cache = TFDataCache(mounts, "/mnt/ssd/cache")
        tr_cache = make_trainer(sim, node, fast_model, small_config, pfs_shards,
                                posix_reader, pfs, local_fs=local_fs, cache=cache,
                                epochs=1)
        cached = sim.run(sim.spawn(tr_cache.run())).epochs[0].wall_time_s
        assert cached > plain
