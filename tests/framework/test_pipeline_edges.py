"""Edge-case tests for the input pipeline."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.data.dataset import DatasetSpec, SampleSizeModel
from repro.data.sharding import build_shards
from repro.data.virtual import materialize
from repro.framework.pipeline import EpochPipeline, shards_from_manifest
from tests.framework.test_pipeline import run_epoch


def stage(sim, pfs, spec):
    manifest = build_shards(spec)
    paths = materialize(manifest, pfs, "/dataset")
    return shards_from_manifest(manifest, ["/mnt/pfs" + p for p in paths])


class TestPipelineEdges:
    def test_single_shard_dataset(self, sim, pfs, posix_reader, node, fast_model,
                                  small_config, shuffle_rng):
        spec = DatasetSpec(
            name="one-shard", n_samples=5,
            size_model=SampleSizeModel(mean_bytes=4096, sigma=0.0),
            shard_target_bytes=1 << 20,
        )
        shards = stage(sim, pfs, spec)
        assert len(shards) == 1
        pipe = EpochPipeline(sim, small_config, shards, posix_reader, node,
                             fast_model, shuffle_rng)
        batches = run_epoch(sim, pipe)
        assert sum(len(b) for b in batches) == 5

    def test_batch_larger_than_dataset(self, sim, pfs, posix_reader, node,
                                       fast_model, small_config, shuffle_rng):
        spec = DatasetSpec(
            name="small", n_samples=7,
            size_model=SampleSizeModel(mean_bytes=2048, sigma=0.0),
            shard_target_bytes=1 << 20,
        )
        shards = stage(sim, pfs, spec)
        cfg = replace(small_config, batch_size=100)
        pipe = EpochPipeline(sim, cfg, shards, posix_reader, node,
                             fast_model, shuffle_rng)
        batches = run_epoch(sim, pipe)
        assert [len(b) for b in batches] == [7]

    def test_more_readers_than_shards(self, sim, pfs, posix_reader, node,
                                      fast_model, small_config, shuffle_rng):
        spec = DatasetSpec(
            name="few-shards", n_samples=10,
            size_model=SampleSizeModel(mean_bytes=2048, sigma=0.0),
            shard_target_bytes=5 * (2048 + 16),
        )
        shards = stage(sim, pfs, spec)
        cfg = replace(small_config, cycle_length=16)
        pipe = EpochPipeline(sim, cfg, shards, posix_reader, node,
                             fast_model, shuffle_rng)
        batches = run_epoch(sim, pipe)
        assert sum(len(b) for b in batches) == 10

    def test_read_chunk_larger_than_shard(self, sim, pfs, posix_reader, node,
                                          fast_model, small_config, shuffle_rng):
        spec = DatasetSpec(
            name="tiny-shards", n_samples=12,
            size_model=SampleSizeModel(mean_bytes=1024, sigma=0.0),
            shard_target_bytes=3 * (1024 + 16),
        )
        shards = stage(sim, pfs, spec)
        cfg = replace(small_config, read_chunk=1 << 20)
        pipe = EpochPipeline(sim, cfg, shards, posix_reader, node,
                             fast_model, shuffle_rng)
        batches = run_epoch(sim, pipe)
        assert sum(len(b) for b in batches) == 12
        # one read per shard suffices
        assert pfs.stats.read_ops == len(shards)

    def test_single_map_worker_preserves_count(self, sim, pfs, posix_reader,
                                               node, fast_model, small_config,
                                               shuffle_rng, tiny_spec):
        shards = stage(sim, pfs, tiny_spec)
        cfg = replace(small_config, num_map_workers=1)
        pipe = EpochPipeline(sim, cfg, shards, posix_reader, node,
                             fast_model, shuffle_rng)
        batches = run_epoch(sim, pipe)
        assert sum(len(b) for b in batches) == 96

    def test_prefetch_of_one_still_completes(self, sim, pfs, posix_reader, node,
                                             fast_model, small_config,
                                             shuffle_rng, tiny_spec):
        shards = stage(sim, pfs, tiny_spec)
        cfg = replace(small_config, prefetch_batches=1)
        pipe = EpochPipeline(sim, cfg, shards, posix_reader, node,
                             fast_model, shuffle_rng)
        batches = run_epoch(sim, pipe)
        assert sum(len(b) for b in batches) == 96


class TestPipelineProperty:
    def test_record_conservation_across_random_configs(self, sim, pfs,
                                                       posix_reader, node,
                                                       fast_model, small_config,
                                                       tiny_spec):
        """Any (cycle, mappers, batch, chunk) combo delivers each record once."""
        shards = stage(sim, pfs, tiny_spec)
        rng = np.random.default_rng(0)
        for _ in range(6):
            cfg = replace(
                small_config,
                cycle_length=int(rng.integers(1, 6)),
                num_map_workers=int(rng.integers(1, 8)),
                batch_size=int(rng.integers(1, 40)),
                read_chunk=int(rng.integers(1024, 1 << 18)),
                shuffle_buffer_records=int(rng.integers(1, 128)),
            )
            pipe = EpochPipeline(sim, cfg, shards, posix_reader, node,
                                 fast_model, np.random.default_rng(1))
            batches = run_epoch(sim, pipe)
            ids = sorted(r.sample_id for b in batches for r in b)
            assert ids == list(range(96)), cfg
