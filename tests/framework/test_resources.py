"""Unit tests for the compute-node resources."""

from __future__ import annotations

import pytest

from repro.framework.resources import ComputeNode, NodeSpec
from repro.storage.blockmath import GIB


class TestNodeSpec:
    def test_defaults_match_frontera_rtx(self):
        spec = NodeSpec()
        assert spec.cpu_cores == 32
        assert spec.n_gpus == 4
        assert spec.memory_limit_bytes == 68 * GIB

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(cpu_cores=0)
        with pytest.raises(ValueError):
            NodeSpec(n_gpus=0)
        with pytest.raises(ValueError):
            NodeSpec(memory_limit_bytes=0)


class TestComputeNode:
    def test_cpu_pool_capacity(self, sim):
        node = ComputeNode(sim, NodeSpec(cpu_cores=4, n_gpus=1))
        assert node.cpu.capacity == 4

    def test_gpu_group_is_lockstep(self, sim):
        node = ComputeNode(sim, NodeSpec(cpu_cores=4, n_gpus=4))
        assert node.gpu_group.capacity == 1

    def test_cpu_contention_serializes(self, sim):
        node = ComputeNode(sim, NodeSpec(cpu_cores=2, n_gpus=1))

        def worker():
            yield from node.cpu.using(1.0)

        for _ in range(4):
            sim.spawn(worker())
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_epoch_utilization_windows(self, sim):
        node = ComputeNode(sim, NodeSpec(cpu_cores=2, n_gpus=1))

        def job():
            yield from node.cpu.using(1.0)  # 1 of 2 cores for 1s -> 50%
            node.mark_epoch()
            yield sim.timeout(1.0)  # idle epoch
            node.mark_epoch()

        p = sim.spawn(job())
        sim.run(p)
        cpu = node.cpu_utilization_per_epoch()
        assert cpu[0] == pytest.approx(0.5)
        assert cpu[1] == pytest.approx(0.0)

    def test_gpu_utilization_per_epoch(self, sim):
        node = ComputeNode(sim, NodeSpec(cpu_cores=1, n_gpus=2))

        def job():
            yield from node.gpu_group.using(3.0)
            yield sim.timeout(1.0)
            node.mark_epoch()

        p = sim.spawn(job())
        sim.run(p)
        assert node.gpu_utilization_per_epoch()[0] == pytest.approx(0.75)
