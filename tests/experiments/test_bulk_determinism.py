"""The bulk-I/O escape hatch must not change simulated results.

``REPRO_DISABLE_BULK_IO=1`` forces every background copy onto the legacy
per-chunk execution path.  Because the bulk engine is equivalence
preserving (and falls back to per-chunk under contention anyway), the
*entire* experiment grid must come out bit-identical either way — this is
the regression gate for the fast path.
"""

from __future__ import annotations

from repro.experiments.figures import fig3


def test_fig3_bit_identical_with_bulk_disabled(monkeypatch):
    monkeypatch.delenv("REPRO_DISABLE_BULK_IO", raising=False)
    with_bulk = fig3(scale=1 / 256, runs=2)
    monkeypatch.setenv("REPRO_DISABLE_BULK_IO", "1")
    without_bulk = fig3(scale=1 / 256, runs=2)

    assert set(with_bulk) == set(without_bulk)
    for key, on in with_bulk.items():
        off = without_bulk[key]
        assert on.total_mean == off.total_mean, key
        assert on.epoch_mean_std() == off.epoch_mean_std(), key
