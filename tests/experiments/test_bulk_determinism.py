"""The bulk-I/O escape hatch must not change simulated results.

``REPRO_DISABLE_BULK_IO=1`` forces every background copy onto the legacy
per-chunk execution path.  Because the bulk engine is equivalence
preserving (and falls back to per-chunk under contention anyway), the
*entire* experiment grid must come out bit-identical either way — this is
the regression gate for the fast path.
"""

from __future__ import annotations

from repro.data.imagenet import IMAGENET_100G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.figures import fig3
from repro.experiments.scenarios import build_run
from repro.faults import FaultPlan, LatencySpike, TierDown, TransientFaults


def test_fig3_bit_identical_with_bulk_disabled(monkeypatch):
    monkeypatch.delenv("REPRO_DISABLE_BULK_IO", raising=False)
    with_bulk = fig3(scale=1 / 256, runs=2)
    monkeypatch.setenv("REPRO_DISABLE_BULK_IO", "1")
    without_bulk = fig3(scale=1 / 256, runs=2)

    assert set(with_bulk) == set(without_bulk)
    for key, on in with_bulk.items():
        off = without_bulk[key]
        assert on.total_mean == off.total_mean, key
        assert on.epoch_mean_std() == off.epoch_mean_std(), key


def _chaos_plan() -> FaultPlan:
    """A busy schedule: flaky SSD, a latency spike, one brief outage."""
    return FaultPlan(
        {
            "/mnt/ssd": [
                TransientFaults(start=0.0, end=1e9, read_p=0.1, write_p=0.1),
                LatencySpike(start=0.5, end=1.5, multiplier=2.0),
                TierDown(at=2.0, recover_at=2.5),
            ]
        }
    )


def _faulted_fingerprint() -> dict:
    """One faulted MONARCH run reduced to everything that must replay."""
    handle = build_run(
        "monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
        scale=1 / 512, seed=5, epochs=2, fault_plan=_chaos_plan(),
    )
    result = handle.execute()
    registry = handle.monarch.publish_metrics()
    assert handle.injector is not None
    return {
        "init": result.init_time_s,
        "epochs": [e.wall_time_s for e in result.epochs],
        "counters": dict(sorted(registry.counters.items())),
        "injector": handle.injector.counters(),
    }


def test_fault_injection_bit_identical_with_bulk_disabled(monkeypatch):
    """Chaos determinism: the fault draws come from a dedicated RNG
    substream, so the bulk-I/O escape hatch changes nothing faulted either."""
    monkeypatch.delenv("REPRO_DISABLE_BULK_IO", raising=False)
    on = _faulted_fingerprint()
    monkeypatch.setenv("REPRO_DISABLE_BULK_IO", "1")
    off = _faulted_fingerprint()
    assert sum(on["injector"].values()) > 0  # the plan really fired
    assert on == off


def test_same_seed_faulted_runs_replay_identically(monkeypatch):
    """Acceptance: same seed + same FaultPlan → identical MonarchStats
    counters and epoch times, run to run."""
    monkeypatch.delenv("REPRO_DISABLE_BULK_IO", raising=False)
    assert _faulted_fingerprint() == _faulted_fingerprint()
