"""Unit tests for the scenario builders (fast, tiny-scale runs)."""

from __future__ import annotations

import pytest

from repro.data.imagenet import IMAGENET_100G, IMAGENET_200G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.scenarios import SETUPS, build_run
from repro.storage.base import NoSpaceError

SCALE = 1 / 4096  # ~220 samples; runs in well under a second


class TestBuildRun:
    def test_unknown_setup_rejected(self):
        with pytest.raises(ValueError, match="unknown setup"):
            build_run("bogus", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION, SCALE)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            build_run("monarch", "vgg", IMAGENET_100G, DEFAULT_CALIBRATION, SCALE)

    def test_vanilla_lustre_has_no_local_tier(self):
        h = build_run("vanilla-lustre", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION, SCALE)
        assert h.local_fs is None
        assert h.monarch is None

    def test_vanilla_local_stages_dataset(self):
        h = build_run("vanilla-local", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION, SCALE)
        assert h.local_fs is not None
        assert h.local_fs.used_bytes == h.manifest.total_bytes

    def test_vanilla_local_rejects_oversized_dataset(self):
        with pytest.raises(NoSpaceError):
            build_run("vanilla-local", "lenet", IMAGENET_200G, DEFAULT_CALIBRATION, SCALE)

    def test_monarch_setup_wires_middleware(self):
        h = build_run("monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION, SCALE)
        assert h.monarch is not None
        assert len(h.monarch.hierarchy) == 2

    def test_setups_constant(self):
        assert SETUPS == ("vanilla-lustre", "vanilla-local", "vanilla-caching", "monarch")

    def test_monarch_overrides_applied(self):
        h = build_run(
            "monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION, SCALE,
            monarch_overrides={"placement_threads": 3, "eviction": "lru",
                               "full_fetch_on_partial_read": False},
        )
        assert h.monarch is not None
        assert h.monarch.config.placement_threads == 3
        assert h.monarch.config.eviction == "lru"
        assert not h.monarch.config.full_fetch_on_partial_read

    def test_execute_returns_result(self):
        h = build_run("vanilla-lustre", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
                      SCALE, epochs=1)
        result = h.execute()
        assert len(result.epochs) == 1
        assert result.epochs[0].records == h.dataset.n_samples

    def test_execute_monarch_shuts_down(self):
        h = build_run("monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
                      SCALE, epochs=1)
        h.execute()
        assert len(h.monarch.metadata) == 0  # ephemeral namespace dropped

    def test_same_seed_reproducible(self):
        def run():
            h = build_run("monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
                          SCALE, seed=5, epochs=2)
            return h.execute().epoch_times

        assert run() == run()

    def test_different_seeds_differ(self):
        def run(seed):
            h = build_run("vanilla-lustre", "lenet", IMAGENET_100G,
                          DEFAULT_CALIBRATION, SCALE, seed=seed, epochs=1)
            return h.execute().epoch_times

        assert run(1) != run(2)
