"""Correctness tests for the content-keyed run cache.

Two properties matter: a hit must return a record bit-identical to
recomputing, and anything that could change the run's outcome — seed,
scale, a calibration constant, the fault plan, an env knob, the source
tree — must change the key.  Damaged entries are detected and
recomputed, never trusted.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.data.imagenet import IMAGENET_100G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.dist_scenarios import run_distributed_experiment
from repro.experiments.executor import (
    GridExecutor,
    RunCache,
    RunSpec,
    default_cache_dir,
    resolve_cache,
    spec_key,
)
from repro.experiments.scenarios import ssd_tier_down_plan

SCALE = 1 / 4096

BASE = RunSpec("monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
               scale=SCALE, seed=5, report=True)


class TestKeySensitivity:
    def test_identical_specs_share_a_key(self):
        clone = RunSpec("monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
                        scale=SCALE, seed=5, report=True)
        assert spec_key(BASE) == spec_key(clone)

    @pytest.mark.parametrize("change", [
        dict(seed=6),
        dict(scale=1 / 2048),
        dict(setup="vanilla-lustre"),
        dict(model="alexnet"),
        dict(epochs=1),
        dict(report=False),
        dict(fault_plan=ssd_tier_down_plan(0.05)),
        dict(monarch_overrides={"eviction": "fifo"}),
    ])
    def test_spec_field_changes_miss(self, change):
        assert spec_key(dataclasses.replace(BASE, **change)) != spec_key(BASE)

    def test_calibration_constant_changes_miss(self):
        """Every calibration constant is part of the key — nested ones too."""
        calib = dataclasses.replace(DEFAULT_CALIBRATION,
                                    interference_mean_load=0.42)
        assert spec_key(dataclasses.replace(BASE, calib=calib)) != spec_key(BASE)
        nested = dataclasses.replace(
            DEFAULT_CALIBRATION,
            ssd=dataclasses.replace(DEFAULT_CALIBRATION.ssd,
                                    read_bw_mib=DEFAULT_CALIBRATION.ssd.read_bw_mib + 1),
        )
        assert spec_key(dataclasses.replace(BASE, calib=nested)) != spec_key(BASE)

    def test_env_knob_changes_miss(self, monkeypatch):
        before = spec_key(BASE)
        monkeypatch.setenv("REPRO_DISABLE_BULK_IO", "1")
        assert spec_key(BASE) != before

    def test_code_salt_changes_miss(self):
        assert spec_key(BASE, salt="aaaa") != spec_key(BASE, salt="bbbb")


class TestHitFidelity:
    def test_hit_is_bit_identical_including_report(self, tmp_path):
        first = GridExecutor(jobs=1, cache=RunCache(tmp_path)).map([BASE])[0]
        ex = GridExecutor(jobs=1, cache=RunCache(tmp_path))
        second = ex.map([BASE])[0]
        assert ex.cache.stats() == {"hits": 1, "misses": 0, "stores": 0,
                                    "corrupt": 0}
        assert type(second) is type(first)
        assert json.dumps(dataclasses.asdict(first), sort_keys=True) == \
            json.dumps(dataclasses.asdict(second), sort_keys=True)
        assert second.report == first.report

    def test_dist_record_round_trips(self, tmp_path):
        kwargs = dict(
            setup="monarch", model_name="lenet", dataset=IMAGENET_100G,
            n_nodes=2, scale=SCALE, runs=2, epochs=1,
        )
        first = run_distributed_experiment(**kwargs, cache=tmp_path)
        second = run_distributed_experiment(**kwargs, cache=tmp_path)
        assert [dataclasses.asdict(r) for r in first] == [
            dataclasses.asdict(r) for r in second
        ]
        assert all(type(r).__name__ == "DistRunRecord" for r in second)


class TestCorruptEntries:
    def _entry(self, cache: RunCache):
        paths = cache.entries()
        assert len(paths) == 1
        return paths[0]

    def _prime(self, tmp_path):
        cache = RunCache(tmp_path)
        record = GridExecutor(jobs=1, cache=cache).map([BASE])[0]
        return cache, record

    def test_truncated_entry_recomputed(self, tmp_path):
        cache, record = self._prime(tmp_path)
        path = self._entry(cache)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        ex = GridExecutor(jobs=1, cache=RunCache(tmp_path))
        again = ex.map([BASE])[0]
        assert ex.cache.stats()["corrupt"] == 1
        assert ex.cache.stats()["hits"] == 0
        assert dataclasses.asdict(again) == dataclasses.asdict(record)
        # the damaged entry was rewritten and now hits again
        ex2 = GridExecutor(jobs=1, cache=RunCache(tmp_path))
        ex2.map([BASE])
        assert ex2.cache.stats()["hits"] == 1

    def test_tampered_payload_fails_checksum(self, tmp_path):
        cache, record = self._prime(tmp_path)
        path = self._entry(cache)
        payload = json.loads(path.read_text())
        payload["record"]["seed"] = 999
        path.write_text(json.dumps(payload, sort_keys=True, indent=1))
        ex = GridExecutor(jobs=1, cache=RunCache(tmp_path))
        again = ex.map([BASE])[0]
        assert ex.cache.stats()["corrupt"] == 1
        assert again.seed == BASE.seed
        assert dataclasses.asdict(again) == dataclasses.asdict(record)

    def test_wrong_format_version_recomputed(self, tmp_path):
        cache, record = self._prime(tmp_path)
        path = self._entry(cache)
        payload = json.loads(path.read_text())
        payload["format"] = 999
        path.write_text(json.dumps(payload, sort_keys=True, indent=1))
        ex = GridExecutor(jobs=1, cache=RunCache(tmp_path))
        again = ex.map([BASE])[0]
        assert ex.cache.stats()["corrupt"] == 1
        assert dataclasses.asdict(again) == dataclasses.asdict(record)

    def test_non_json_garbage_recomputed(self, tmp_path):
        cache, record = self._prime(tmp_path)
        self._entry(cache).write_text("not json at all {{{")
        ex = GridExecutor(jobs=1, cache=RunCache(tmp_path))
        again = ex.map([BASE])[0]
        assert ex.cache.stats()["corrupt"] == 1
        assert dataclasses.asdict(again) == dataclasses.asdict(record)


class TestCacheMaintenance:
    def test_clear_removes_everything(self, tmp_path):
        cache = RunCache(tmp_path)
        GridExecutor(jobs=1, cache=cache).map(
            [BASE, dataclasses.replace(BASE, seed=6)]
        )
        assert len(cache.entries()) == 2
        assert cache.total_bytes() > 0
        assert cache.clear() == 2
        assert cache.entries() == []
        assert cache.total_bytes() == 0

    def test_resolve_cache_normalization(self, tmp_path):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        existing = RunCache(tmp_path)
        assert resolve_cache(existing) is existing
        assert resolve_cache(str(tmp_path)).root == tmp_path
        assert resolve_cache(True).root == default_cache_dir()
        assert resolve_cache("default").root == default_cache_dir()

    def test_default_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUN_CACHE", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"
        monkeypatch.delenv("REPRO_RUN_CACHE")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro-monarch" / "runs"

    def test_metrics_surface_cache_counters(self, tmp_path):
        ex = GridExecutor(jobs=1, cache=RunCache(tmp_path))
        ex.map([BASE])
        counters = ex.metrics.as_dict()["counters"]
        assert counters["runcache.misses"] == 1
        assert counters["runcache.stores"] == 1
        assert counters["grid.specs"] == 1
        ex2 = GridExecutor(jobs=1, cache=RunCache(tmp_path))
        ex2.map([BASE])
        assert ex2.metrics.as_dict()["counters"]["runcache.hits"] == 1
