"""Equivalence and failure-path tests for the parallel grid executor.

The executor's contract is absolute: however a grid is executed —
in-process, fanned out over a spawn pool, split into arbitrary partial
invocations against a shared cache — the records that come back must be
byte-identical to the historical serial loop, in the same order.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.imagenet import IMAGENET_100G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.executor import (
    GridExecutionError,
    GridExecutor,
    RunCache,
    RunSpec,
    execute_grid,
)
from repro.experiments.figures import fig3
from repro.experiments.formats import RunRecord
from repro.experiments.runner import run_experiment, run_once
from repro.experiments.scenarios import ssd_tier_down_plan

SCALE = 1 / 4096


def _grid_json(grid) -> str:
    """Canonical JSON of a figure grid, reports included."""
    payload = {
        f"{model}/{setup}": [dataclasses.asdict(r) for r in res.runs]
        for (model, setup), res in sorted(grid.items())
    }
    return json.dumps(payload, sort_keys=True)


class TestParallelEquivalence:
    def test_fig3_grid_parallel_matches_serial(self):
        """FIG3 via jobs=4, jobs=1 and the per-cell serial path: identical."""
        serial = {}
        for model in ("lenet", "alexnet", "resnet50"):
            for setup in ("vanilla-lustre", "vanilla-local", "vanilla-caching",
                          "monarch"):
                serial[(model, setup)] = run_experiment(
                    setup=setup, model_name=model, dataset=IMAGENET_100G,
                    scale=SCALE, runs=2, report=True,
                )
        inproc = fig3(SCALE, runs=2, report=True, jobs=1)
        pooled = fig3(SCALE, runs=2, report=True, jobs=4)
        assert _grid_json(inproc) == _grid_json(serial)
        assert _grid_json(pooled) == _grid_json(serial)

    def test_fault_plan_and_bulk_io_env_propagate_to_workers(self, monkeypatch):
        """Faulted runs with REPRO_DISABLE_BULK_IO=1: pool == in-process.

        The fault plan travels inside the spec; the env knob must be
        re-exported into every spawned worker.  Either going missing
        would change the records.
        """
        monkeypatch.setenv("REPRO_DISABLE_BULK_IO", "1")
        plan = ssd_tier_down_plan(0.05)
        kwargs = dict(
            setup="monarch", model_name="lenet", dataset=IMAGENET_100G,
            scale=SCALE, runs=2, fault_plan=plan, report=True,
        )
        one = run_experiment(**kwargs, jobs=1)
        two = run_experiment(**kwargs, jobs=2)
        assert [dataclasses.asdict(r) for r in one.runs] == [
            dataclasses.asdict(r) for r in two.runs
        ]
        # the fault must actually have changed the run, or this test
        # would pass even if the plan never reached the workers
        unfaulted = run_experiment(
            setup="monarch", model_name="lenet", dataset=IMAGENET_100G,
            scale=SCALE, runs=2, report=True, jobs=1,
        )
        assert [dataclasses.asdict(r) for r in one.runs] != [
            dataclasses.asdict(r) for r in unfaulted.runs
        ]

    def test_duplicate_specs_computed_once_but_not_aliased(self, tmp_path):
        spec = RunSpec("vanilla-lustre", "lenet", IMAGENET_100G,
                       DEFAULT_CALIBRATION, scale=SCALE, seed=3)
        ex = GridExecutor(jobs=1, cache=RunCache(tmp_path))
        records = ex.map([spec, spec])
        assert ex.metrics.counters["grid.executed"] == 1
        assert dataclasses.asdict(records[0]) == dataclasses.asdict(records[1])
        assert records[0] is not records[1]
        records[0].epoch_times_s[0] = -1.0
        assert records[1].epoch_times_s[0] != -1.0


class TestExecutorValidation:
    @pytest.mark.parametrize("jobs", [0, -1, True, 1.5, "2"])
    def test_rejects_non_positive_or_non_int_jobs(self, jobs):
        with pytest.raises(ValueError, match="jobs"):
            GridExecutor(jobs=jobs)

    def test_unknown_spec_kind_raises(self):
        spec = RunSpec("monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
                       scale=SCALE, kind="nonsense")
        with pytest.raises(ValueError, match="kind"):
            execute_grid([spec])


class TestWorkerFailure:
    def test_worker_exception_surfaces_failing_spec(self):
        """A worker raising must name the spec and not hang the pool."""
        good = RunSpec("vanilla-lustre", "lenet", IMAGENET_100G,
                       DEFAULT_CALIBRATION, scale=SCALE, seed=1)
        bad = RunSpec("vanilla-lustre", "no-such-model", IMAGENET_100G,
                      DEFAULT_CALIBRATION, scale=SCALE, seed=2)
        with pytest.raises(GridExecutionError) as exc:
            execute_grid([good, bad], jobs=2)
        msg = str(exc.value)
        assert "no-such-model" in msg
        assert "grid run failed" in msg
        # the original traceback text rides along for debugging
        assert "Traceback" in msg

    def test_in_process_failure_propagates_unchanged(self):
        bad = RunSpec("vanilla-lustre", "no-such-model", IMAGENET_100G,
                      DEFAULT_CALIBRATION, scale=SCALE)
        with pytest.raises(ValueError, match="no-such-model"):
            execute_grid([bad], jobs=1)


# -- partition/ordering property -------------------------------------------
def _fake_execute(spec: RunSpec) -> RunRecord:
    """Deterministic stand-in runner: the record is a pure function of
    the spec, so merge correctness is checked without running sims."""
    return RunRecord(
        setup=spec.setup,
        model=spec.model,
        dataset=spec.dataset.name,
        scale=spec.scale,
        seed=spec.seed,
        epoch_times_s=[float(spec.seed), float(spec.seed) * 0.5],
        init_time_s=float(spec.seed) * 0.1,
        pfs_ops_per_epoch=[spec.seed * 10, spec.seed * 7],
    )


def _specs_for(seeds: list[int]) -> list[RunSpec]:
    return [
        RunSpec("vanilla-lustre", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
                scale=SCALE, seed=s)
        for s in seeds
    ]


@pytest.mark.hypothesis_heavy
@settings(max_examples=60, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seeds=st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                   max_size=12),
    cuts=st.lists(st.integers(min_value=1, max_value=11), max_size=4),
    order_seed=st.randoms(use_true_random=False),
)
def test_any_partition_and_order_merges_identically(tmp_path_factory, seeds,
                                                    cuts, order_seed):
    """Splitting a grid into chunks, executing them in any order against a
    shared cache, then re-running the whole grid, equals one direct pass."""
    tmp = tmp_path_factory.mktemp("cache")
    specs = _specs_for(seeds)
    direct = GridExecutor(jobs=1, execute_fn=_fake_execute).map(specs)

    # cut the index space into contiguous chunks, then shuffle chunk order
    bounds = sorted({c for c in cuts if c < len(specs)})
    edges = [0, *bounds, len(specs)]
    chunks = [list(range(a, b)) for a, b in zip(edges, edges[1:]) if a < b]
    order_seed.shuffle(chunks)

    cache = RunCache(tmp)
    for chunk in chunks:
        GridExecutor(jobs=1, cache=cache, execute_fn=_fake_execute).map(
            [specs[i] for i in chunk]
        )
    final = GridExecutor(jobs=1, cache=cache, execute_fn=_fake_execute).map(specs)
    assert [dataclasses.asdict(r) for r in final] == [
        dataclasses.asdict(r) for r in direct
    ]
    # every unique spec was computed at most once across all invocations
    unique = len({spec.seed for spec in specs})
    assert cache.stores == unique


class TestSeedDerivation:
    def test_run_experiment_seeds_unchanged(self):
        """base_seed + i, exactly as the historical loop derived them."""
        res = run_experiment("vanilla-lustre", "lenet", IMAGENET_100G,
                             scale=SCALE, runs=3, base_seed=40)
        assert [r.seed for r in res.runs] == [40, 41, 42]
        solo = run_once("vanilla-lustre", "lenet", IMAGENET_100G,
                        scale=SCALE, seed=41)
        assert dataclasses.asdict(res.runs[1]) == dataclasses.asdict(solo)
