"""Unit tests for the experiment runner and un-scaling."""

from __future__ import annotations

import pytest

from repro.data.imagenet import IMAGENET_100G
from repro.experiments.runner import run_experiment, run_once

SCALE = 1 / 4096


class TestRunOnce:
    def test_record_fields(self):
        rec = run_once("vanilla-lustre", "lenet", IMAGENET_100G, scale=SCALE,
                       seed=1, epochs=2)
        assert rec.setup == "vanilla-lustre"
        assert rec.model == "lenet"
        assert rec.dataset == IMAGENET_100G.name
        assert len(rec.epoch_times_s) == 2
        assert len(rec.cpu_utilization) == 2
        assert len(rec.pfs_ops_per_epoch) == 2
        assert rec.memory_gib > 9.0

    def test_times_are_unscaled(self):
        """A 1/4096-scale LeNet epoch must land near paper magnitude (~400 s)."""
        rec = run_once("vanilla-lustre", "lenet", IMAGENET_100G, scale=SCALE,
                       seed=1, epochs=1)
        assert 100 < rec.epoch_times_s[0] < 2000

    def test_ops_are_unscaled(self):
        """Unscaled op counts must land near bytes/256KiB ~ 400k for 100G."""
        rec = run_once("vanilla-lustre", "lenet", IMAGENET_100G, scale=SCALE,
                       seed=1, epochs=1)
        assert 2e5 < rec.pfs_ops_per_epoch[0] < 1e6

    def test_monarch_init_time_unscaled_to_paper_scale(self):
        rec = run_once("monarch", "lenet", IMAGENET_100G, scale=SCALE,
                       seed=1, epochs=1)
        # paper: ~13 s for the 100 GiB namespace
        assert 5.0 < rec.init_time_s < 40.0

    def test_local_ops_empty_for_lustre_setup(self):
        rec = run_once("vanilla-lustre", "lenet", IMAGENET_100G, scale=SCALE,
                       seed=1, epochs=1)
        assert rec.local_ops_per_epoch == []
        assert rec.local_bytes_read == 0


class TestRunExperiment:
    def test_aggregates_runs(self):
        res = run_experiment("vanilla-lustre", "lenet", IMAGENET_100G,
                             scale=SCALE, runs=2, epochs=1)
        assert res.n_runs == 2
        assert res.runs[0].seed != res.runs[1].seed

    def test_runs_validation(self):
        with pytest.raises(ValueError):
            run_experiment("vanilla-lustre", "lenet", IMAGENET_100G,
                           scale=SCALE, runs=0)

    def test_base_seed_offsets(self):
        res = run_experiment("vanilla-lustre", "lenet", IMAGENET_100G,
                             scale=SCALE, runs=2, base_seed=50, epochs=1)
        assert [r.seed for r in res.runs] == [50, 51]
