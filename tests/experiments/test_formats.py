"""Unit tests for experiment result containers."""

from __future__ import annotations

import pytest

from repro.experiments.formats import ExperimentResult, RunRecord, mean, std


def make_run(seed, times, pfs_ops=None):
    return RunRecord(
        setup="monarch",
        model="lenet",
        dataset="d",
        scale=0.01,
        seed=seed,
        epoch_times_s=times,
        cpu_utilization=[0.3] * len(times),
        gpu_utilization=[0.5] * len(times),
        memory_gib=10.0,
        pfs_ops_per_epoch=pfs_ops or [100] * len(times),
    )


class TestHelpers:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_std(self):
        assert std([2.0, 4.0]) == pytest.approx(1.0)
        assert std([5.0]) == 0.0


class TestRunRecord:
    def test_totals(self):
        r = make_run(0, [10.0, 20.0], pfs_ops=[5, 7])
        assert r.total_time_s == 30.0
        assert r.total_pfs_ops == 12


class TestExperimentResult:
    def test_epoch_mean_std(self):
        res = ExperimentResult(setup="s", model="m", dataset="d", runs=[
            make_run(0, [10.0, 20.0]),
            make_run(1, [14.0, 24.0]),
        ])
        stats = res.epoch_mean_std()
        assert stats[0] == (pytest.approx(12.0), pytest.approx(2.0))
        assert stats[1] == (pytest.approx(22.0), pytest.approx(2.0))
        assert res.n_runs == 2
        assert res.n_epochs == 2

    def test_total_mean_std(self):
        res = ExperimentResult(setup="s", model="m", dataset="d", runs=[
            make_run(0, [10.0]), make_run(1, [30.0]),
        ])
        assert res.total_mean == pytest.approx(20.0)
        assert res.total_std == pytest.approx(10.0)

    def test_usage_percentages(self):
        res = ExperimentResult(setup="s", model="m", dataset="d",
                               runs=[make_run(0, [10.0])])
        assert res.cpu_percent == pytest.approx(30.0)
        assert res.gpu_percent == pytest.approx(50.0)
        assert res.memory_gib == 10.0

    def test_empty(self):
        res = ExperimentResult(setup="s", model="m", dataset="d")
        assert res.n_epochs == 0
        assert res.epoch_mean_std() == []

    def test_json_roundtrip(self):
        res = ExperimentResult(setup="s", model="m", dataset="d", runs=[
            make_run(0, [10.0, 20.0]), make_run(1, [11.0, 21.0]),
        ])
        back = ExperimentResult.from_json(res.to_json())
        assert back.setup == "s"
        assert back.n_runs == 2
        assert back.runs[0].epoch_times_s == [10.0, 20.0]
        assert back.total_mean == res.total_mean

    def test_mean_total_pfs_ops(self):
        res = ExperimentResult(setup="s", model="m", dataset="d", runs=[
            make_run(0, [1.0], pfs_ops=[10]),
            make_run(1, [1.0], pfs_ops=[20]),
        ])
        assert res.mean_total_pfs_ops == pytest.approx(15.0)
