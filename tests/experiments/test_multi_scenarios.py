"""Unit tests for the multi-job experiment plumbing."""

from __future__ import annotations

import pytest

from repro.data.imagenet import IMAGENET_100G, scaled
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.formats import MultiRunRecord
from repro.experiments.multi_scenarios import (
    JobPlan,
    build_multi_run,
    run_multi_once,
    serial_total,
)

SCALE = 1 / 8192
TINY = scaled(IMAGENET_100G, 0.1)


class TestBuildValidation:
    def test_rejects_empty_job_list(self):
        with pytest.raises(ValueError, match="at least one"):
            build_multi_run([], DEFAULT_CALIBRATION)

    def test_rejects_duplicate_job_ids(self):
        plans = [JobPlan("a", "lenet", TINY), JobPlan("a", "alexnet", TINY)]
        with pytest.raises(ValueError, match="duplicate"):
            build_multi_run(plans, DEFAULT_CALIBRATION, scale=SCALE)

    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError, match="unknown model"):
            build_multi_run(
                [JobPlan("a", "vgg", TINY)], DEFAULT_CALIBRATION, scale=SCALE
            )


class TestRunMultiOnce:
    @pytest.fixture(scope="class")
    def record(self):
        plans = [
            JobPlan("a", "lenet", TINY, share=0.5),
            JobPlan("b", "lenet", TINY, share=0.5),
        ]
        return run_multi_once(plans, scale=SCALE, seed=3)

    def test_every_job_reports_every_epoch(self, record):
        assert record.n_jobs == 2
        for job in ("a", "b"):
            assert len(record.jobs[job]["epoch_times_s"]) == DEFAULT_CALIBRATION.epochs
            assert record.jobs[job]["init_time_s"] > 0
            assert record.job_total(job) > 0

    def test_makespan_bounds(self, record):
        # The makespan covers the slowest job but never exceeds the sum.
        totals = [record.job_total(j) for j in record.jobs]
        assert record.aggregate_time_s >= max(totals) - 1e-6
        assert record.aggregate_time_s <= sum(totals) + 1e-6

    def test_record_round_trips_through_json(self, record):
        clone = MultiRunRecord.from_json(record.to_json())
        assert clone.to_json() == record.to_json()
        assert clone.jobs == record.jobs


def test_serial_total_sums_init_and_epochs():
    plans = [JobPlan("solo", "lenet", TINY)]
    records = {
        "solo": type(
            "R", (), {"init_time_s": 2.0, "total_time_s": 10.0}
        )()
    }
    assert serial_total(records) == 12.0
    assert len(plans) == 1  # plans kept for symmetry with the concurrent API
