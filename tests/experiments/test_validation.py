"""Tests for the calibration validation report."""

from __future__ import annotations

import pytest

from repro.experiments.validation import CHECKS, CheckResult, run_validation


class TestCheckResult:
    def test_ok_inside_band(self):
        c = CheckResult("x", paper=10, measured=11, lo=9, hi=12, unit="s")
        assert c.ok

    def test_not_ok_outside_band(self):
        c = CheckResult("x", paper=10, measured=13, lo=9, hi=12, unit="s")
        assert not c.ok


class TestRunValidation:
    @pytest.fixture(scope="class")
    def checks(self):
        # 1/512 is the scale the acceptance bands were set at; smaller
        # scales add variance and shard-floor artifacts beyond the bands
        return run_validation(scale=1 / 512, seed=11)

    def test_all_documented_checks_present(self, checks):
        assert [c.name for c in checks] == CHECKS

    def test_every_check_in_band_at_small_scale(self, checks):
        failures = [c for c in checks if not c.ok]
        assert not failures, [
            f"{c.name}: {c.measured:.3g} not in [{c.lo}, {c.hi}]" for c in failures
        ]

    def test_cli_exit_code(self, capsys):
        from repro.experiments import validation

        # monkeypatch-free: main() runs the default scale; just check output
        # structure via a tiny-scale run through run_validation instead.
        checks = run_validation(scale=1 / 2048)
        assert all(isinstance(c, CheckResult) for c in checks)
        assert len(checks) == len(CHECKS)
