"""Unit tests for the figure/table generators (tiny scale for speed)."""

from __future__ import annotations

import pytest

from repro.experiments import figures

SCALE = 1 / 4096
RUNS = 1


@pytest.fixture(scope="module")
def grid_fig3():
    return figures.fig3(scale=SCALE, runs=RUNS)


class TestGrids:
    def test_fig1_covers_baselines_times_models(self):
        grid = figures.fig1(scale=SCALE, runs=RUNS)
        setups = {s for _, s in grid}
        models = {m for m, _ in grid}
        assert setups == {"vanilla-lustre", "vanilla-local", "vanilla-caching"}
        assert models == {"lenet", "alexnet", "resnet50"}

    def test_fig3_adds_monarch(self, grid_fig3):
        assert {s for _, s in grid_fig3} == {
            "vanilla-lustre", "vanilla-local", "vanilla-caching", "monarch"
        }

    def test_fig4_is_200g_lustre_vs_monarch(self):
        grid = figures.fig4(scale=SCALE, runs=RUNS)
        assert {s for _, s in grid} == {"vanilla-lustre", "monarch"}
        assert all(res.dataset.startswith("imagenet-1k-200g")
                   for res in grid.values())


class TestRendering:
    def test_render_grid_includes_paper_column(self, grid_fig3):
        text = figures.render_grid(grid_fig3, figures.PAPER_TOTALS_100G, "T")
        assert "paper total" in text
        assert "1205" in text  # LeNet lustre reference
        assert "monarch" in text

    def test_render_resource_usage(self, grid_fig3):
        text = figures.render_resource_usage(grid_fig3, "usage")
        assert "cpu %" in text
        assert "lenet" in text

    def test_resource_usage_rows(self, grid_fig3):
        rows = figures.resource_usage(grid_fig3)
        assert len(rows) == len(grid_fig3)
        for _model, _setup, cpu, gpu, mem in rows:
            assert 0 <= cpu <= 100
            assert 0 <= gpu <= 100
            assert mem > 0


class TestScalars:
    def test_io_reduction_keys(self):
        r = figures.io_reduction(scale=SCALE, runs=RUNS)
        assert set(r) >= {"lustre_ops_per_epoch", "monarch_ops_per_epoch",
                          "steady_epoch_ops", "total_reduction_pct"}
        assert 0 < r["total_reduction_pct"] < 100

    def test_metadata_init_ordering(self):
        m = figures.metadata_init(scale=SCALE, runs=RUNS)
        assert m["init_200g_s"] > m["init_100g_s"] > 0


class TestCli:
    def test_main_meta(self, capsys):
        rc = figures.main(["meta", "--scale", str(SCALE), "--runs", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TAB-META" in out
        assert "paper ~13 s" in out

    def test_main_io(self, capsys):
        rc = figures.main(["io", "--scale", str(SCALE), "--runs", "1"])
        assert rc == 0
        assert "798,340" in capsys.readouterr().out

    def test_main_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            figures.main(["figZ"])


class TestFigPolicy:
    """FIG-POLICY at tiny scale; the full tournament runs in benchmarks."""

    pytestmark = pytest.mark.policy

    @pytest.fixture(scope="class")
    def tournament(self):
        return figures.fig_policy(scale=SCALE, seed=0)

    def test_covers_every_policy_times_scenario(self, tournament):
        from repro.core.policy import POLICY_NAMES

        assert tournament["policies"] == POLICY_NAMES
        assert set(tournament["scenarios"]) == set(figures.POLICY_SCENARIOS)
        for scenario, cells in tournament["scenarios"].items():
            assert set(cells) == set(POLICY_NAMES)
            for cell in cells.values():
                assert 0.0 <= cell["pfs_share"] <= 1.0
                assert cell["total_time_s"] > 0.0
                assert isinstance(cell["counters"], dict)
            assert tournament["winners"][scenario] in cells

    def test_winner_has_lowest_share(self, tournament):
        for scenario, cells in tournament["scenarios"].items():
            best = tournament["winners"][scenario]
            assert cells[best]["pfs_share"] == min(
                c["pfs_share"] for c in cells.values()
            )

    def test_render_marks_winners_and_verdict(self, tournament):
        out = figures.render_policy(tournament)
        assert "FIG-POLICY" in out
        assert " *" in out
        # The overflow verdict line is always present, win or lose.
        assert "overflow share" in out

    def test_render_without_overflow_scenario_omits_verdict(self):
        r = figures.fig_policy(
            scale=SCALE, seed=0, policies=("firstfit",), scenarios=("fits-100g",)
        )
        out = figures.render_policy(r)
        assert "overflow share" not in out

    def test_rejects_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenarios"):
            figures.fig_policy(scale=SCALE, scenarios=("fig9",))

    def test_main_policy(self, capsys):
        rc = figures.main(["policy", "--scale", str(SCALE)])
        assert rc == 0
        assert "FIG-POLICY" in capsys.readouterr().out
