"""Unit tests for the sweep helpers (tiny scale)."""

from __future__ import annotations

import pytest

from repro.data.imagenet import IMAGENET_100G
from repro.experiments.sweeps import capacity_sweep, interference_sweep

SCALE = 1 / 4096


class TestCapacitySweep:
    def test_points_cover_fractions(self):
        points = capacity_sweep(IMAGENET_100G, fractions=(0.5, 1.2),
                                scale=SCALE, runs=1)
        assert [p.capacity_fraction for p in points] == [0.5, 1.2]
        for p in points:
            assert p.monarch.n_runs == 1
            assert 0 < p.time_ratio < 1.5

    def test_shared_lustre_baseline(self):
        points = capacity_sweep(IMAGENET_100G, fractions=(0.5, 1.2),
                                scale=SCALE, runs=1)
        assert points[0].lustre is points[1].lustre

    def test_full_capacity_silences_pfs(self):
        points = capacity_sweep(IMAGENET_100G, fractions=(1.2,),
                                scale=SCALE, runs=1)
        assert points[0].steady_pfs_fraction == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            capacity_sweep(IMAGENET_100G, fractions=(0.0,), scale=SCALE, runs=1)


class TestInterferenceSweep:
    def test_structure_and_monotony(self):
        out = interference_sweep(IMAGENET_100G, mean_loads=(0.05, 0.5),
                                 scale=SCALE, runs=1)
        assert set(out) == {0.05, 0.5}
        quiet = out[0.05]["vanilla-lustre"].total_mean
        busy = out[0.5]["vanilla-lustre"].total_mean
        assert busy > quiet
