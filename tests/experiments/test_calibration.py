"""Unit tests for calibration constants and scale derivation."""

from __future__ import annotations

import pytest

from repro.data.imagenet import IMAGENET_100G, IMAGENET_200G, scaled
from repro.experiments.calibration import Calibration, DEFAULT_CALIBRATION, ScaledEnvironment
from repro.storage.blockmath import GIB, KIB, MIB


class TestCalibration:
    def test_default_matches_paper_configuration(self):
        c = DEFAULT_CALIBRATION
        assert c.placement_threads == 6  # paper §IV
        assert c.local_capacity_bytes == 115 * GIB  # paper §IV
        assert c.node.n_gpus == 4
        assert c.node.cpu_cores == 32
        assert c.epochs == 3
        assert c.pipeline.read_chunk == 256 * KIB

    def test_busy_regime_heavier_than_quiet(self):
        busy = DEFAULT_CALIBRATION.busy()
        assert busy.interference_mean_load > DEFAULT_CALIBRATION.interference_mean_load
        assert busy.burst_p > 0
        assert DEFAULT_CALIBRATION.burst_p == 0

    def test_ssd_write_slower_than_read(self):
        assert DEFAULT_CALIBRATION.ssd.write_bw_mib < DEFAULT_CALIBRATION.ssd.read_bw_mib


class TestScaledEnvironment:
    def derive(self, dataset=IMAGENET_100G, scale=1 / 128, calib=None):
        calib = calib or DEFAULT_CALIBRATION
        return ScaledEnvironment.derive(calib, dataset, scaled(dataset, scale), scale)

    def test_capacity_scales_linearly(self):
        env = self.derive(scale=1 / 128)
        assert env.local_capacity_bytes == pytest.approx(115 * GIB / 128, rel=0.01)

    def test_fits_geometry_preserved(self):
        """100G fits the scaled tier, 200G does not — at any scale."""
        for scale in (1 / 64, 1 / 256):
            env100 = self.derive(IMAGENET_100G, scale)
            env200 = self.derive(IMAGENET_200G, scale)
            assert scaled(IMAGENET_100G, scale).approx_total_bytes < env100.local_capacity_bytes
            assert scaled(IMAGENET_200G, scale).approx_total_bytes > env200.local_capacity_bytes

    def test_stripe_is_lustre_like(self):
        env = self.derive(scale=1.0)
        assert env.stripe_size == 1 * MIB
        env_small = self.derive(scale=1 / 512)
        assert 128 * KIB <= env_small.stripe_size <= 1 * MIB

    def test_copy_chunk_covers_a_shard(self):
        env = self.derive(scale=1 / 128)
        assert env.copy_chunk == scaled(IMAGENET_100G, 1 / 128).shard_target_bytes

    def test_mds_correction_unscales_per_file_costs(self):
        """init time ~= N_full * mds_latency after the 1/scale transform."""
        calib = DEFAULT_CALIBRATION
        for scale in (1 / 64, 1 / 512):
            sspec = scaled(IMAGENET_100G, scale)
            env = ScaledEnvironment.derive(calib, IMAGENET_100G, sspec, scale)
            mean_frame = sspec.size_model.mean_bytes + 16
            n_scaled = -(-sspec.n_samples * mean_frame // sspec.shard_target_bytes)
            init_sim = n_scaled * env.mds_latency_s
            init_unscaled = init_sim / scale
            n_full = -(-IMAGENET_100G.n_samples * (IMAGENET_100G.size_model.mean_bytes + 16)
                       // IMAGENET_100G.shard_target_bytes)
            assert init_unscaled == pytest.approx(n_full * calib.pfs.mds_latency_s, rel=0.05)

    def test_batch_and_buffers_scale(self):
        env = self.derive(scale=1 / 128)
        assert env.pipeline.batch_size == max(8, round(128 / 128))
        assert env.pipeline.reference_batch == 128
        assert env.pipeline.shuffle_buffer_records >= 2 * env.pipeline.batch_size

    def test_scale_one_identity_pipeline(self):
        env = self.derive(scale=1.0)
        assert env.pipeline.batch_size == DEFAULT_CALIBRATION.pipeline.batch_size

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            self.derive(scale=0.0)
        with pytest.raises(ValueError):
            self.derive(scale=2.0)

    def test_page_cache_covers_inflight_window(self):
        env = self.derive(scale=1 / 512)
        sspec = scaled(IMAGENET_100G, 1 / 512)
        assert env.page_cache_bytes >= 3 * DEFAULT_CALIBRATION.pipeline.cycle_length * sspec.shard_target_bytes
