"""Edge tests for the torch-scenario builder."""

from __future__ import annotations

import pytest

from repro.data.imagenet import IMAGENET_100G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.torch_scenarios import build_torch_run, run_torch_once

SCALE = 1 / 4096


class TestBuildTorchRun:
    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            build_torch_run("monarch", "vgg", IMAGENET_100G,
                            DEFAULT_CALIBRATION, SCALE)

    def test_epochs_override(self):
        rec = run_torch_once("vanilla-lustre", "lenet", IMAGENET_100G,
                             scale=SCALE, epochs=1)
        assert len(rec.epoch_times_s) == 1

    def test_dataset_staged_as_one_file_per_sample(self):
        handle = build_torch_run("vanilla-lustre", "lenet", IMAGENET_100G,
                                 DEFAULT_CALIBRATION, SCALE)
        assert len(handle.pfs.paths()) == len(handle.dataset)
        assert handle.pfs.used_bytes == handle.dataset.total_bytes

    def test_monarch_namespace_covers_every_sample(self):
        handle = build_torch_run("monarch", "lenet", IMAGENET_100G,
                                 DEFAULT_CALIBRATION, SCALE, epochs=1)
        handle.execute()  # shutdown clears it; check placement stats instead
        stats = handle.monarch.placement.stats
        assert stats.completed + stats.unplaceable <= len(handle.dataset)
        assert stats.completed > 0

    def test_monarch_tier_holds_whole_dataset_when_it_fits(self):
        handle = build_torch_run("monarch", "lenet", IMAGENET_100G,
                                 DEFAULT_CALIBRATION, SCALE, epochs=2)
        handle.execute()
        assert handle.local_fs.used_bytes == handle.dataset.total_bytes

    def test_deterministic(self):
        def once():
            return run_torch_once("monarch", "lenet", IMAGENET_100G,
                                  scale=SCALE, seed=9, epochs=2).epoch_times_s

        assert once() == once()

    def test_run_record_marks_torch_setup(self):
        rec = run_torch_once("monarch", "lenet", IMAGENET_100G,
                             scale=SCALE, epochs=1)
        assert rec.setup == "torch-monarch"
