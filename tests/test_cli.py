"""Tests for the repro CLI."""

from __future__ import annotations

import inspect

import pytest

from repro import cli

SCALE = "1/4096"


class TestCli:
    def test_run_vanilla(self, capsys):
        rc = cli.main(["run", "vanilla-lustre", "--scale", SCALE,
                       "--epochs", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "vanilla-lustre / lenet / 100g" in out
        assert "total" in out

    def test_run_monarch_reports_init(self, capsys):
        rc = cli.main(["run", "monarch", "--scale", SCALE, "--epochs", "1"])
        assert rc == 0
        assert "init" in capsys.readouterr().out

    def test_dist(self, capsys):
        rc = cli.main(["dist", "monarch", "--nodes", "2", "--scale", SCALE,
                       "--epochs", "1"])
        assert rc == 0
        assert "N=2" in capsys.readouterr().out

    def test_torch(self, capsys):
        rc = cli.main(["torch", "vanilla-lustre", "--scale", SCALE,
                       "--epochs", "1"])
        assert rc == 0
        assert "torch-style" in capsys.readouterr().out

    def test_figures_delegation(self, capsys):
        rc = cli.main(["figures", "meta", "--scale", SCALE, "--runs", "1"])
        assert rc == 0
        assert "TAB-META" in capsys.readouterr().out

    def test_figures_choices_match_figures_main(self):
        # the cli subcommand mirrors figures.main's artifact list; a new
        # figure added to one must be added to the other
        from repro.experiments import figures

        cli_parser = cli.build_parser()
        fig_action = next(
            a
            for p in cli_parser._subparsers._group_actions
            for name, sp in p.choices.items() if name == "figures"
            for a in sp._actions if a.dest == "artifact"
        )
        assert "dist-cache" in fig_action.choices
        src = inspect.getsource(figures.main)
        for choice in fig_action.choices:
            assert f'"{choice}"' in src, choice

    def test_200g_defaults_to_busy_regime(self, capsys):
        rc = cli.main(["run", "vanilla-lustre", "--dataset", "200g",
                       "--scale", SCALE, "--epochs", "1"])
        assert rc == 0

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.main([])

    def test_rejects_bad_setup(self):
        with pytest.raises(SystemExit):
            cli.main(["run", "nonsense"])

    def test_scale_accepts_fractions(self, capsys):
        rc = cli.main(["run", "vanilla-local", "--scale", "1/4096",
                       "--epochs", "1"])
        assert rc == 0


class TestReportCli:
    def test_report_to_stdout_is_json(self, capsys):
        rc = cli.main(["report", "monarch", "--scale", SCALE, "--seed", "7"])
        assert rc == 0
        import json
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 2
        assert payload["meta"]["setup"] == "monarch"
        assert payload["epochs"]

    def test_report_to_file_prints_summary(self, tmp_path, capsys):
        out = tmp_path / "rep.json"
        rc = cli.main(["report", "monarch", "--scale", SCALE, "--seed", "7",
                       "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert f"wrote {out}" in text
        assert "RunReport: monarch / lenet" in text
        assert out.read_text().endswith("\n")

    def test_diff_identical_returns_zero(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path in (a, b):
            cli.main(["report", "monarch", "--scale", SCALE, "--seed", "7",
                      "--out", str(path)])
        rc = cli.main(["diff", str(a), str(b)])
        assert rc == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_different_seeds_returns_one(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        cli.main(["report", "monarch", "--scale", SCALE, "--seed", "7",
                  "--out", str(a)])
        cli.main(["report", "monarch", "--scale", SCALE, "--seed", "8",
                  "--out", str(b)])
        rc = cli.main(["diff", str(a), str(b)])
        assert rc == 1
        assert "differing field" in capsys.readouterr().out


class TestErrorPaths:
    """Exit codes and stderr messages on bad input (scripting contract)."""

    @pytest.fixture
    def report_path(self, tmp_path):
        path = tmp_path / "good.json"
        cli.main(["report", "monarch", "--scale", SCALE, "--seed", "7",
                  "--out", str(path)])
        return path

    def test_diff_missing_file_exits_two(self, report_path, tmp_path, capsys):
        rc = cli.main(["diff", str(report_path), str(tmp_path / "absent.json")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "cannot read report" in err
        assert "absent.json" in err

    def test_diff_invalid_json_exits_two(self, report_path, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        rc = cli.main(["diff", str(report_path), str(bad)])
        assert rc == 2
        assert "not a RunReport JSON" in capsys.readouterr().err

    def test_diff_wrong_shape_json_exits_two(self, report_path, tmp_path, capsys):
        wrong = tmp_path / "wrong.json"
        wrong.write_text('["a", "list", "not", "a", "report"]\n')
        rc = cli.main(["diff", str(report_path), str(wrong)])
        assert rc == 2
        assert "not a RunReport JSON" in capsys.readouterr().err

    def test_bad_seed_exits_two(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli.main(["run", "monarch", "--seed", "not-a-number"])
        assert exc.value.code == 2
        assert "invalid int value" in capsys.readouterr().err

    def test_unknown_figures_artifact_exits_two(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli.main(["figures", "fig99"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_unknown_setup_exits_two(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli.main(["report", "no-such-setup"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_multi_rejects_out_of_range_jobs(self):
        with pytest.raises(ValueError, match="n_jobs"):
            cli.main(["multi", "--n-jobs", "9", "--scale", SCALE])


class TestMultiCli:
    def test_multi_prints_table_and_speedup(self, capsys):
        rc = cli.main(["multi", "--scale", "1/8192", "--seed", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "FIG-MULTI: 2 concurrent jobs" in out
        assert "worst slowdown" in out
        assert "speedup" in out

    def test_multi_out_writes_aggregate_report(self, tmp_path, capsys):
        import json

        out = tmp_path / "multi.json"
        rc = cli.main(["multi", "--scale", "1/8192", "--seed", "0",
                       "--out", str(out)])
        assert rc == 0
        assert f"wrote {out}" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["schema_version"] == 2
        assert set(payload["jobs"]) == {"resnet", "small1"}
        assert payload["meta"]["n_jobs"] == 2


class TestPolicyCli:
    pytestmark = pytest.mark.policy

    def test_run_with_policy(self, capsys):
        rc = cli.main(["run", "monarch", "--scale", SCALE, "--epochs", "1",
                       "--policy", "heat"])
        assert rc == 0
        assert "monarch" in capsys.readouterr().out

    def test_run_rejects_unknown_policy(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["run", "monarch", "--scale", SCALE, "--policy", "belady"])

    def test_multi_with_policy(self, capsys):
        rc = cli.main(["multi", "--scale", "1/8192", "--seed", "0",
                       "--policy", "predictor"])
        assert rc == 0
        assert "FIG-MULTI" in capsys.readouterr().out

    def test_report_tags_policy_meta(self, tmp_path):
        import json

        out = tmp_path / "rep.json"
        rc = cli.main(["report", "monarch", "--scale", SCALE, "--seed", "0",
                       "--policy", "heat", "--out", str(out)])
        assert rc == 0
        assert json.loads(out.read_text())["meta"]["policy"] == "heat"


class TestParallelCli:
    def test_figures_jobs_zero_exits_two(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli.main(["figures", "meta", "--jobs", "0"])
        assert exc.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_figures_jobs_negative_exits_two(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli.main(["figures", "meta", "--jobs", "-2"])
        assert exc.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_multi_jobs_zero_exits_two(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli.main(["multi", "--jobs", "0"])
        assert exc.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_worker_failure_exits_one_with_spec_on_stderr(self, capsys,
                                                          monkeypatch):
        from repro.experiments import figures
        from repro.experiments.executor import GridExecutionError

        def boom(argv):
            raise GridExecutionError("RunSpec(single monarch lenet ...)",
                                     "Traceback: ...")

        monkeypatch.setattr(figures, "main", boom)
        rc = cli.main(["figures", "meta"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "grid run failed" in err
        assert "RunSpec(single monarch lenet" in err

    def test_figures_accepts_jobs_and_no_cache(self, capsys):
        rc = cli.main(["figures", "meta", "--scale", SCALE, "--runs", "1",
                       "--jobs", "2", "--no-cache"])
        assert rc == 0
        assert "TAB-META" in capsys.readouterr().out


class TestCacheCli:
    def test_stats_then_clear(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        rc = cli.main(["cache", "stats", "--dir", str(cache_dir)])
        assert rc == 0
        assert "entries: 0" in capsys.readouterr().out

        # populate it through a figures run, then inspect and clear
        rc = cli.main(["figures", "meta", "--scale", SCALE, "--runs", "1"])
        assert rc == 0
        capsys.readouterr()
        rc = cli.main(["cache", "stats"])  # REPRO_RUN_CACHE from the fixture
        assert rc == 0
        out = capsys.readouterr().out
        assert "entries: 2" in out
        rc = cli.main(["cache", "clear"])
        assert rc == 0
        assert "removed 2 cached runs" in capsys.readouterr().out
        rc = cli.main(["cache", "stats"])
        assert "entries: 0" in capsys.readouterr().out

    def test_cached_second_invocation_hits(self, capsys):
        assert cli.main(["figures", "meta", "--scale", SCALE, "--runs", "1"]) == 0
        first = capsys.readouterr().out
        assert cli.main(["figures", "meta", "--scale", SCALE, "--runs", "1"]) == 0
        second = capsys.readouterr().out
        assert first == second
