"""Tests for the repro CLI."""

from __future__ import annotations

import pytest

from repro import cli

SCALE = "1/4096"


class TestCli:
    def test_run_vanilla(self, capsys):
        rc = cli.main(["run", "vanilla-lustre", "--scale", SCALE,
                       "--epochs", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "vanilla-lustre / lenet / 100g" in out
        assert "total" in out

    def test_run_monarch_reports_init(self, capsys):
        rc = cli.main(["run", "monarch", "--scale", SCALE, "--epochs", "1"])
        assert rc == 0
        assert "init" in capsys.readouterr().out

    def test_dist(self, capsys):
        rc = cli.main(["dist", "monarch", "--nodes", "2", "--scale", SCALE,
                       "--epochs", "1"])
        assert rc == 0
        assert "N=2" in capsys.readouterr().out

    def test_torch(self, capsys):
        rc = cli.main(["torch", "vanilla-lustre", "--scale", SCALE,
                       "--epochs", "1"])
        assert rc == 0
        assert "torch-style" in capsys.readouterr().out

    def test_figures_delegation(self, capsys):
        rc = cli.main(["figures", "meta", "--scale", SCALE, "--runs", "1"])
        assert rc == 0
        assert "TAB-META" in capsys.readouterr().out

    def test_200g_defaults_to_busy_regime(self, capsys):
        rc = cli.main(["run", "vanilla-lustre", "--dataset", "200g",
                       "--scale", SCALE, "--epochs", "1"])
        assert rc == 0

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.main([])

    def test_rejects_bad_setup(self):
        with pytest.raises(SystemExit):
            cli.main(["run", "nonsense"])

    def test_scale_accepts_fractions(self, capsys):
        rc = cli.main(["run", "vanilla-local", "--scale", "1/4096",
                       "--epochs", "1"])
        assert rc == 0
