"""Tests for the repro CLI."""

from __future__ import annotations

import pytest

from repro import cli

SCALE = "1/4096"


class TestCli:
    def test_run_vanilla(self, capsys):
        rc = cli.main(["run", "vanilla-lustre", "--scale", SCALE,
                       "--epochs", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "vanilla-lustre / lenet / 100g" in out
        assert "total" in out

    def test_run_monarch_reports_init(self, capsys):
        rc = cli.main(["run", "monarch", "--scale", SCALE, "--epochs", "1"])
        assert rc == 0
        assert "init" in capsys.readouterr().out

    def test_dist(self, capsys):
        rc = cli.main(["dist", "monarch", "--nodes", "2", "--scale", SCALE,
                       "--epochs", "1"])
        assert rc == 0
        assert "N=2" in capsys.readouterr().out

    def test_torch(self, capsys):
        rc = cli.main(["torch", "vanilla-lustre", "--scale", SCALE,
                       "--epochs", "1"])
        assert rc == 0
        assert "torch-style" in capsys.readouterr().out

    def test_figures_delegation(self, capsys):
        rc = cli.main(["figures", "meta", "--scale", SCALE, "--runs", "1"])
        assert rc == 0
        assert "TAB-META" in capsys.readouterr().out

    def test_200g_defaults_to_busy_regime(self, capsys):
        rc = cli.main(["run", "vanilla-lustre", "--dataset", "200g",
                       "--scale", SCALE, "--epochs", "1"])
        assert rc == 0

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.main([])

    def test_rejects_bad_setup(self):
        with pytest.raises(SystemExit):
            cli.main(["run", "nonsense"])

    def test_scale_accepts_fractions(self, capsys):
        rc = cli.main(["run", "vanilla-local", "--scale", "1/4096",
                       "--epochs", "1"])
        assert rc == 0


class TestReportCli:
    def test_report_to_stdout_is_json(self, capsys):
        rc = cli.main(["report", "monarch", "--scale", SCALE, "--seed", "7"])
        assert rc == 0
        import json
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["meta"]["setup"] == "monarch"
        assert payload["epochs"]

    def test_report_to_file_prints_summary(self, tmp_path, capsys):
        out = tmp_path / "rep.json"
        rc = cli.main(["report", "monarch", "--scale", SCALE, "--seed", "7",
                       "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert f"wrote {out}" in text
        assert "RunReport: monarch / lenet" in text
        assert out.read_text().endswith("\n")

    def test_diff_identical_returns_zero(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path in (a, b):
            cli.main(["report", "monarch", "--scale", SCALE, "--seed", "7",
                      "--out", str(path)])
        rc = cli.main(["diff", str(a), str(b)])
        assert rc == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_different_seeds_returns_one(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        cli.main(["report", "monarch", "--scale", SCALE, "--seed", "7",
                  "--out", str(a)])
        cli.main(["report", "monarch", "--scale", SCALE, "--seed", "8",
                  "--out", str(b)])
        rc = cli.main(["diff", str(a), str(b)])
        assert rc == 1
        assert "differing field" in capsys.readouterr().out
