"""Golden RunReport regression fixtures.

One small-scale seeded run per paper figure family — FIG1 (vanilla
caching), FIG3 (MONARCH on 100 GiB) and FIG4 (MONARCH on 200 GiB under
the busy interference regime) — each exported as a RunReport JSON and
committed under ``tests/golden/``.  The test regenerates every report
and structurally diffs it against its fixture: any drift in placement
decisions, telemetry accounting or serialization shows up as a named
``path: fixture != regenerated`` line instead of a silent behaviour
change.

After an *intentional* change to simulated behaviour or to the report
schema, refresh the fixtures with::

    REPRO_UPDATE_GOLDEN=1 python -m pytest tests/golden -q

and commit the JSON churn alongside the change that caused it.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.data.imagenet import IMAGENET_100G, IMAGENET_200G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.runner import run_once
from repro.telemetry.runreport import RunReport, diff_reports, render_diff
from repro.workload.spec import WORKLOADS

GOLDEN_DIR = pathlib.Path(__file__).parent
SCALE = 1 / 4096
SEED = 0

#: fixture name -> run_once kwargs (small-scale stand-ins for the figures)
GOLDEN_RUNS = {
    "fig1_vanilla_caching_lenet_100g": dict(
        setup="vanilla-caching",
        model_name="lenet",
        dataset=IMAGENET_100G,
        calib=DEFAULT_CALIBRATION,
    ),
    "fig3_monarch_lenet_100g": dict(
        setup="monarch",
        model_name="lenet",
        dataset=IMAGENET_100G,
        calib=DEFAULT_CALIBRATION,
    ),
    "fig4_monarch_alexnet_200g_busy": dict(
        setup="monarch",
        model_name="alexnet",
        dataset=IMAGENET_200G,
        calib=DEFAULT_CALIBRATION.busy(),
    ),
    # Non-default policy: pins the heat policy's eviction/promotion
    # decisions and the report's `meta.policy` tag.
    "figp_monarch_heat_lenet_100g": dict(
        setup="monarch",
        model_name="lenet",
        dataset=IMAGENET_100G,
        calib=DEFAULT_CALIBRATION,
        monarch_overrides={"policy": "heat"},
    ),
    # Trace-replay serving (FIG-SERVE): pins the steady-state report
    # schema — window series, latency histograms, warm-split summaries —
    # for the cache-warming setup and the no-cache baseline.
    "figserve_monarch_lenet_100g": dict(
        setup="monarch",
        model_name="lenet",
        dataset=IMAGENET_100G,
        calib=DEFAULT_CALIBRATION,
        workload=WORKLOADS["serve-zipf"],
    ),
    "figserve_vanilla_lustre_lenet_100g": dict(
        setup="vanilla-lustre",
        model_name="lenet",
        dataset=IMAGENET_100G,
        calib=DEFAULT_CALIBRATION,
        workload=WORKLOADS["serve-zipf"],
    ),
}


def _generate(name: str) -> RunReport:
    rec = run_once(scale=SCALE, seed=SEED, report=True, **GOLDEN_RUNS[name])
    assert rec.report is not None
    return RunReport.from_dict(rec.report)


@pytest.mark.parametrize("name", sorted(GOLDEN_RUNS))
def test_report_matches_golden_fixture(name):
    path = GOLDEN_DIR / f"{name}.json"
    report = _generate(name)
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        path.write_text(report.to_json())
    if not path.exists():
        pytest.fail(
            f"missing golden fixture {path.name}; generate it with "
            "REPRO_UPDATE_GOLDEN=1 python -m pytest tests/golden -q"
        )
    golden = RunReport.from_json(path.read_text())
    diffs = diff_reports(golden, report)
    assert not diffs, (
        f"{path.name} drifted from the simulated behaviour "
        f"(fixture vs regenerated):\n{render_diff(diffs)}"
    )
    # The serialized form must match byte-for-byte too — the fixture
    # also pins the JSON encoding (key order, float repr, trailing \n).
    assert path.read_text() == report.to_json()
