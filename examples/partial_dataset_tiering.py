#!/usr/bin/env python
"""The paper's key scenario: a dataset that does NOT fit the local tier.

Reproduces the 200 GiB ImageNet experiment (Fig. 4 + §IV-A I/O analysis)
at a reduced simulation scale: the 115 GiB SSD partition holds ~57% of
the dataset, MONARCH fills it during epoch 1 and serves the remainder
from Lustre forever — no evictions, no thrashing.

Compare with vanilla-caching, which simply cannot run this workload
(tf.data's cache needs the full dataset to fit).

Run:  python examples/partial_dataset_tiering.py [scale]
"""

from __future__ import annotations

import sys
from fractions import Fraction

from repro.data import IMAGENET_200G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.runner import run_once
from repro.storage.base import NoSpaceError
from repro.telemetry.report import format_table


def main() -> None:
    scale = float(Fraction(sys.argv[1])) if len(sys.argv) > 1 else 1 / 256
    calib = DEFAULT_CALIBRATION.busy()  # the 200 GiB runs' contention regime
    print(f"simulating the 200 GiB ImageNet workload at scale {scale:g} ...")

    lustre = run_once("vanilla-lustre", "lenet", IMAGENET_200G,
                      calib=calib, scale=scale, seed=42)
    monarch = run_once("monarch", "lenet", IMAGENET_200G,
                       calib=calib, scale=scale, seed=42)

    rows = []
    for name, rec in (("vanilla-lustre", lustre), ("monarch", monarch)):
        rows.append((
            name,
            *[f"{t:.0f}" for t in rec.epoch_times_s],
            f"{rec.total_time_s:.0f}",
            f"{rec.total_pfs_ops / 1e3:.0f}k",
        ))
    print()
    print(format_table(
        ["setup", "epoch1 (s)", "epoch2 (s)", "epoch3 (s)", "total (s)", "PFS ops"],
        rows,
        title="LeNet on 200 GiB ImageNet (paper Fig. 4; all numbers unscaled)",
    ))

    reduction = 1 - monarch.total_time_s / lustre.total_time_s
    io_reduction = 1 - monarch.total_pfs_ops / lustre.total_pfs_ops
    steady = monarch.pfs_ops_per_epoch[-1]
    print()
    print(f"training-time reduction : {reduction:.0%}  (paper: 24%)")
    print(f"PFS I/O reduction       : {io_reduction:.0%}  (paper: 55% average)")
    print(f"steady-state PFS ops    : {steady / 1e3:.0f}k/epoch "
          f"(paper: ~360k of 798,340)")
    print(f"metadata init           : {monarch.init_time_s:.0f} s (paper: ~52 s)")

    # And the reason MONARCH exists: the tf.data cache simply cannot run this.
    print()
    try:
        run_once("vanilla-caching", "lenet", IMAGENET_200G,
                 calib=calib, scale=scale, seed=42)
    except Exception as err:  # CacheOverflowError via the pipeline
        print(f"vanilla-caching on the same workload fails as expected:\n  "
              f"{type(err).__name__}: {err}")


if __name__ == "__main__":
    main()
