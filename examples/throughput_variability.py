#!/usr/bin/env python
"""Throughput variability: why shared-PFS training is unpredictable.

The paper's motivation (§II) observes "high performance variability under
the vanilla-lustre setup, since Lustre is concurrently accessed by other
jobs", and argues that moving traffic to local storage yields "sustained
and predictable performance".  This example instruments a vanilla-lustre
run and a MONARCH run with the I/O tracer, prints ASCII throughput
timelines per backend, and compares coefficients of variation.

Run:  python examples/throughput_variability.py [scale]
"""

from __future__ import annotations

import sys
from fractions import Fraction

import numpy as np

from repro.data import IMAGENET_100G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.scenarios import build_run
from repro.telemetry.tracing import IOTrace, throughput_series, variability


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """Render a series as a bar-glyph sparkline."""
    glyphs = " ▁▂▃▄▅▆▇█"
    if len(values) > width:
        # down-sample by averaging
        chunks = np.array_split(values, width)
        values = np.array([c.mean() for c in chunks])
    top = values.max() or 1.0
    return "".join(glyphs[int(v / top * (len(glyphs) - 1))] for v in values)


def traced_run(setup: str, scale: float):
    handle = build_run(setup, "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
                       scale, seed=21)
    trace = IOTrace(handle.sim)
    trace.attach(handle.pfs.stats)
    if handle.local_fs is not None:
        trace.attach(handle.local_fs.stats)
    result = handle.execute()
    return handle, trace, result


def main() -> None:
    scale = float(Fraction(sys.argv[1])) if len(sys.argv) > 1 else 1 / 256
    inv = 1 / scale
    for setup in ("vanilla-lustre", "monarch"):
        handle, trace, result = traced_run(setup, scale)
        t_end = handle.sim.now
        print(f"\n=== {setup} — LeNet, 100 GiB, total "
              f"{result.total_time_s * inv:.0f} s unscaled ===")
        for backend in ("pfs", "local"):
            reads = trace.filtered(backend=backend, kind="read")
            writes = trace.filtered(backend=backend, kind="write")
            if not reads and not writes:
                continue
            _, bps = throughput_series(reads + writes, 0.0, t_end, bins=120)
            v = variability(bps)
            print(f"  {backend:5s} |{sparkline(bps)}|")
            print(f"        mean {v.mean_bps / 2**20:7.0f} MiB/s   "
                  f"std {v.std_bps / 2**20:6.0f}   CV {v.cv:.2f}")

    print()
    print("Reading the timelines: the PFS trace wanders with the background")
    print("load (high CV); with MONARCH the PFS is busy only during epoch 1")
    print("and the local tier serves the rest at a steady rate — the")
    print("'sustained and predictable performance' the paper argues for.")


if __name__ == "__main__":
    main()
