#!/usr/bin/env python
"""The "6 lines of code" integration, demonstrated on a custom framework.

The paper integrates MONARCH into TensorFlow by building a storage driver
whose ``pread`` calls ``Monarch.read(filename, offset, size)`` — six
changed lines.  Our framework-agnostic analogue is the
:class:`repro.framework.io_layer.DataReader` interface: any training loop
written against it gains MONARCH by swapping one constructor argument.

This example writes a *new*, deliberately minimal epoch loop (not the
bundled pipeline) against DataReader, runs it twice — once with the
vanilla POSIX reader and once with MONARCH — and diffs the epoch times.
The training loop itself is byte-for-byte identical in both runs.

Run:  python examples/custom_framework_integration.py
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.core import Monarch, MonarchConfig, MonarchReader, TierSpec
from repro.data import DatasetSpec, SampleSizeModel, build_shards, materialize
from repro.framework.io_layer import DataReader, PosixReader
from repro.simkernel import Simulator
from repro.storage import Device, LocalFileSystem, MountTable, ParallelFileSystem, SATA_SSD
from repro.storage.blockmath import KIB, MIB
from repro.storage.interference import ConstantInterference


def naive_epoch(sim: Simulator, reader: DataReader, paths: list[str],
                chunk: int = 256 * KIB) -> Generator[Any, Any, float]:
    """A bare-bones epoch: read every shard front to back, no pipelining.

    Written once, against the DataReader interface only — this function
    never changes between the vanilla and the MONARCH run.
    """
    t0 = sim.now
    for path in paths:
        f = yield from reader.open(path)
        pos = 0
        while pos < f.size:
            n = yield from reader.pread(f, pos, chunk)
            if n == 0:
                break
            pos += n
        reader.close(f)
    return sim.now - t0


def build_world():
    sim = Simulator()
    pfs = ParallelFileSystem(sim, interference=ConstantInterference(0.7))
    spec = DatasetSpec(
        name="custom",
        n_samples=800,
        size_model=SampleSizeModel(mean_bytes=96 * KIB, sigma=0.2),
        shard_target_bytes=8 * MIB,
    )
    paths = materialize(build_shards(spec), pfs, "/dataset")
    local = LocalFileSystem(sim, Device(sim, SATA_SSD), capacity_bytes=512 * MIB)
    mounts = MountTable()
    mounts.mount("/mnt/pfs", pfs)
    mounts.mount("/mnt/ssd", local)
    return sim, mounts, pfs, ["/mnt/pfs" + p for p in paths]


def run_epochs(reader_factory, label: str, epochs: int = 3) -> list[float]:
    sim, mounts, pfs, paths = build_world()
    reader, setup_gen = reader_factory(sim, mounts)
    times: list[float] = []

    def job():
        if setup_gen is not None:
            yield from setup_gen
        for _ in range(epochs):
            elapsed = yield from naive_epoch(sim, reader, paths)
            times.append(elapsed)

    sim.run(sim.spawn(job()))
    print(f"{label:22s} epochs: " + "  ".join(f"{t:7.2f}s" for t in times)
          + f"   (PFS ops: {pfs.stats.snapshot().total_ops})")
    return times


def main() -> None:
    # vanilla: the framework reads straight through the mount table
    run_epochs(lambda sim, mounts: (PosixReader(mounts), None), "posix (vanilla)")

    # MONARCH: *the only change* — construct the middleware and hand the
    # loop a MonarchReader instead of the PosixReader.
    def monarch_factory(sim, mounts):
        monarch = Monarch(
            sim,
            MonarchConfig(
                tiers=(TierSpec(mount_point="/mnt/ssd"),
                       TierSpec(mount_point="/mnt/pfs")),
                dataset_dir="/dataset",
            ),
            mounts,
        )
        return MonarchReader(monarch), monarch.initialize()

    run_epochs(monarch_factory, "monarch (same loop)")
    print()
    print("The epoch loop (naive_epoch) is identical in both runs — the swap"
          " is one constructor argument, the reproduction's analogue of the"
          " paper's 6-line TensorFlow driver change.")


if __name__ == "__main__":
    main()
