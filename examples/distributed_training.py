#!/usr/bin/env python
"""Distributed data-parallel training over a shared PFS (paper §VI).

Sweeps node counts for LeNet on the 200 GiB dataset and contrasts the two
data-placement policies the paper's future-work paragraph anticipates:
static sharding (each node's tier converges to its slice) versus per-epoch
reshuffling (unbiased sampling, but it starves a no-eviction cache).

Run:  python examples/distributed_training.py [scale]
"""

from __future__ import annotations

import sys
from fractions import Fraction

from repro.data import IMAGENET_200G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.dist_scenarios import run_distributed_once
from repro.telemetry.report import format_table


def main() -> None:
    scale = float(Fraction(sys.argv[1])) if len(sys.argv) > 1 else 1 / 512
    calib = DEFAULT_CALIBRATION.busy()
    print(f"LeNet, 200 GiB ImageNet, shared Lustre, scale {scale:g} "
          "(unscaled seconds)\n")

    rows = []
    for setup in ("vanilla-lustre", "monarch"):
        for n in (1, 2, 4):
            rec = run_distributed_once(setup, "lenet", IMAGENET_200G,
                                       n_nodes=n, policy="static",
                                       calib=calib, scale=scale, seed=7)
            rows.append((setup, n, "static",
                         f"{rec.epoch_times_s[0]:.0f}",
                         f"{rec.epoch_times_s[-1]:.0f}",
                         f"{rec.steady_hit_ratio:.0%}"))
    rec = run_distributed_once("monarch", "lenet", IMAGENET_200G,
                               n_nodes=2, policy="reshuffle",
                               calib=calib, scale=scale, seed=7)
    rows.append(("monarch", 2, "reshuffle",
                 f"{rec.epoch_times_s[0]:.0f}",
                 f"{rec.epoch_times_s[-1]:.0f}",
                 f"{rec.steady_hit_ratio:.0%}"))

    print(format_table(
        ["setup", "nodes", "partition", "epoch1 (s)", "steady epoch (s)", "tier hits"],
        rows,
        title="Weak scaling + data placement (paper §VI future work)",
    ))
    print()
    print("Reading the table:")
    print("  * vanilla-lustre barely scales — every node hits the same shared PFS;")
    print("  * MONARCH + static shards: at 2 nodes the 200 GiB dataset fits the")
    print("    aggregate local tier, steady epochs scale ~linearly and the PFS")
    print("    falls silent after epoch 1;")
    print("  * per-epoch reshuffling (what unbiased global sampling wants)")
    print("    starves the no-eviction cache — the open data-placement question")
    print("    the paper's future work calls out.")


if __name__ == "__main__":
    main()
