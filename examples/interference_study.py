#!/usr/bin/env python
"""How cross-job PFS contention shapes training time and variability.

The paper's motivation rests on Lustre being a *shared* resource: "we
observed high performance variability under the vanilla-lustre setup,
since Lustre is concurrently accessed by other jobs".  This example sweeps
the mean background load and shows two effects:

* vanilla-lustre training time grows and its run-to-run spread widens,
* MONARCH (100 GiB: fully cached after epoch 1) becomes insensitive —
  only its first epoch still sees the PFS.

Run:  python examples/interference_study.py [scale]
"""

from __future__ import annotations

import sys
from dataclasses import replace
from fractions import Fraction

from repro.data import IMAGENET_100G
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.runner import run_experiment
from repro.telemetry.report import format_table


def main() -> None:
    scale = float(Fraction(sys.argv[1])) if len(sys.argv) > 1 else 1 / 256
    rows = []
    for mean_load in (0.05, 0.18, 0.35, 0.50):
        calib = replace(DEFAULT_CALIBRATION, interference_mean_load=mean_load)
        lustre = run_experiment("vanilla-lustre", "lenet", IMAGENET_100G,
                                calib=calib, scale=scale, runs=3)
        monarch = run_experiment("monarch", "lenet", IMAGENET_100G,
                                 calib=calib, scale=scale, runs=3)
        rows.append((
            f"{1 - mean_load:.0%}",
            f"{lustre.total_mean:.0f} ± {lustre.total_std:.0f}",
            f"{monarch.total_mean:.0f} ± {monarch.total_std:.0f}",
            f"{1 - monarch.total_mean / lustre.total_mean:.0%}",
        ))
    print(format_table(
        ["PFS share", "vanilla-lustre (s)", "monarch (s)", "monarch gain"],
        rows,
        title=f"LeNet, 100 GiB, sweep of mean available Lustre bandwidth "
              f"(scale {scale:g}, 3 seeds, unscaled seconds)",
    ))
    print()
    print("Reading the table: as the shared PFS gets busier, vanilla-lustre"
          " slows down and spreads out, while MONARCH's tiering bounds the"
          " damage to the first epoch — exactly the paper's motivation.")


if __name__ == "__main__":
    main()
