#!/usr/bin/env python
"""Quickstart: wire MONARCH by hand and watch the operation flow.

Builds the smallest meaningful environment — a contended Lustre-like PFS
holding a tiny TFRecord dataset, a node-local SSD, and a two-tier MONARCH
on top — then issues the exact request sequence of paper §III-B:

1. a *partial* read of a record file (served from the PFS, and the
   placement handler schedules a background full-file copy),
2. a second read of the same file (now served from the SSD tier),
3. a sweep over the whole dataset to fill the tier.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import Monarch, MonarchConfig, TierSpec
from repro.data import DatasetSpec, SampleSizeModel, build_shards, materialize
from repro.simkernel import Simulator
from repro.storage import (
    Device,
    LocalFileSystem,
    MountTable,
    ParallelFileSystem,
    SATA_SSD,
)
from repro.storage.blockmath import KIB, MIB


def main() -> None:
    sim = Simulator()

    # -- substrate: PFS with the dataset, plus an empty local SSD ---------
    pfs = ParallelFileSystem(sim)
    spec = DatasetSpec(
        name="quickstart",
        n_samples=512,
        size_model=SampleSizeModel(mean_bytes=64 * KIB, sigma=0.25),
        shard_target_bytes=4 * MIB,
    )
    manifest = build_shards(spec)
    paths = materialize(manifest, pfs, "/dataset")
    print(f"dataset: {manifest.n_samples} samples in {manifest.n_shards} shards, "
          f"{manifest.total_bytes / MIB:.1f} MiB on the PFS")

    local = LocalFileSystem(sim, Device(sim, SATA_SSD), capacity_bytes=256 * MIB)
    mounts = MountTable()
    mounts.mount("/mnt/pfs", pfs)
    mounts.mount("/mnt/ssd", local)

    # -- the middleware ----------------------------------------------------
    monarch = Monarch(
        sim,
        MonarchConfig(
            tiers=(TierSpec(mount_point="/mnt/ssd"), TierSpec(mount_point="/mnt/pfs")),
            dataset_dir="/dataset",
            placement_threads=6,
        ),
        mounts,
    )

    def job():
        yield from monarch.initialize()
        print(f"metadata init: {len(monarch.metadata)} files in "
              f"{monarch.metadata.init_time_s * 1e3:.1f} ms of simulated time")

        # 1) partial read: served from the PFS, full copy scheduled
        first = paths[0]
        t0 = sim.now
        n = yield from monarch.read(first, 0, 256 * KIB)
        print(f"partial read of {first}: {n} B from the PFS "
              f"in {(sim.now - t0) * 1e3:.2f} ms")

        # give the background pool a moment to finish the full-file fetch
        yield sim.timeout(1.0)
        info = monarch.metadata.lookup(first)
        print(f"background placement: {first} is now {info.state.value} "
              f"on level {info.level}")

        # 2) the same file again: now a fast-tier hit
        t0 = sim.now
        yield from monarch.read(first, 256 * KIB, 256 * KIB)
        print(f"second read: served from level 0 in {(sim.now - t0) * 1e3:.2f} ms")

        # 3) sweep the rest of the dataset (one epoch's worth of touches)
        for path in paths[1:]:
            yield from monarch.read(path, 0, 256 * KIB)
        yield sim.timeout(5.0)

    proc = sim.spawn(job())
    sim.run(proc)

    stats = monarch.stats
    placement = monarch.placement.stats
    print()
    print(f"reads per tier level : {dict(sorted(stats.reads_per_level.items()))}")
    print(f"fast-tier hit ratio  : {stats.hit_ratio(monarch.hierarchy.pfs_level):.0%}")
    print(f"files cached         : {placement.completed}/{manifest.n_shards} "
          f"({placement.bytes_copied / MIB:.1f} MiB copied)")
    print(f"local tier occupancy : {local.used_bytes / MIB:.1f} / "
          f"{local.capacity_bytes / MIB:.0f} MiB")
    print(f"PFS ops issued       : {pfs.stats.snapshot().total_ops}")
    monarch.shutdown()


if __name__ == "__main__":
    main()
