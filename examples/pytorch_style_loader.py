#!/usr/bin/env python
"""Portability study: MONARCH under a PyTorch-style DataLoader (paper §VI).

Runs the same bytes two ways — as loose per-sample files behind a
map-style DataLoader (the PyTorch idiom) and as TFRecord shards behind
the tf.data-style pipeline — with and without MONARCH, and prints what
each access pattern costs on a shared PFS.

Run:  python examples/pytorch_style_loader.py [scale]
"""

from __future__ import annotations

import sys
from fractions import Fraction

from repro.data import IMAGENET_100G
from repro.experiments.runner import run_once
from repro.experiments.torch_scenarios import run_torch_once
from repro.telemetry.report import format_table


def main() -> None:
    scale = float(Fraction(sys.argv[1])) if len(sys.argv) > 1 else 1 / 512
    print(f"LeNet on 100 GiB ImageNet at scale {scale:g} — unscaled numbers\n")

    loose_vanilla = run_torch_once("vanilla-lustre", "lenet", IMAGENET_100G,
                                   scale=scale, seed=11)
    loose_monarch = run_torch_once("monarch", "lenet", IMAGENET_100G,
                                   scale=scale, seed=11)
    shard_vanilla = run_once("vanilla-lustre", "lenet", IMAGENET_100G,
                             scale=scale, seed=11)
    shard_monarch = run_once("monarch", "lenet", IMAGENET_100G,
                             scale=scale, seed=11)

    def row(name, rec):
        return (name,
                *[f"{t:.0f}" for t in rec.epoch_times_s],
                f"{rec.total_time_s:.0f}",
                f"{rec.init_time_s:.0f}" if rec.init_time_s else "-",
                f"{rec.pfs_ops_per_epoch[0] / 1e3:.0f}k")

    print(format_table(
        ["configuration", "epoch1", "epoch2", "epoch3", "total (s)",
         "init (s)", "PFS ops e1"],
        [
            row("loose files / vanilla", loose_vanilla),
            row("loose files / monarch", loose_monarch),
            row("TFRecords   / vanilla", shard_vanilla),
            row("TFRecords   / monarch", shard_monarch),
        ],
        title="PyTorch-style loader vs tf.data-style pipeline",
    ))

    saving = loose_vanilla.epoch_times_s[-1] - loose_monarch.epoch_times_s[-1]
    breakeven = loose_monarch.init_time_s / saving + 1
    print()
    print("Findings (paper §I + §VI):")
    print(f"  * loose files pay one MDS round trip per sample per epoch: "
          f"{loose_vanilla.epoch_times_s[0] / shard_vanilla.epoch_times_s[0]:.1f}x "
          "slower than TFRecords on the shared PFS")
    print("  * MONARCH needs zero changes to support the second framework "
          "(same DataReader interface) and eliminates steady-state PFS traffic")
    print(f"  * but its per-file namespace makes startup traversal cost "
          f"{loose_monarch.init_time_s:.0f} s here — it amortizes after "
          f"~{breakeven:.1f} epochs (a real ImageNet job runs 90+)")


if __name__ == "__main__":
    main()
