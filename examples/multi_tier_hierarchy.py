#!/usr/bin/env python
"""Three storage levels: RAM above SSD above Lustre (paper §VI future work).

MONARCH's hierarchy is N-level by design; the paper evaluates two levels
and leaves "persistent memory or even RAM" as future work.  This example
runs LeNet on the 100 GiB preset with a 32 GiB RAM tier as level 0:
first-fit-descending fills RAM first, overflows to the SSD, and the
steady-state epochs show the blended read speed.

Run:  python examples/multi_tier_hierarchy.py [scale]
"""

from __future__ import annotations

import sys
from fractions import Fraction

from repro.data import IMAGENET_100G
from repro.experiments.runner import run_once
from repro.experiments.scenarios import build_run
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.storage.blockmath import GIB
from repro.telemetry.report import format_table


def main() -> None:
    scale = float(Fraction(sys.argv[1])) if len(sys.argv) > 1 else 1 / 256

    two_tier = run_once("monarch", "lenet", IMAGENET_100G, scale=scale, seed=7)
    three_tier = run_once(
        "monarch", "lenet", IMAGENET_100G, scale=scale, seed=7,
        monarch_overrides={"ram_tier_bytes": 32 * GIB},
    )

    rows = [
        ("SSD + Lustre (paper)", *[f"{t:.0f}" for t in two_tier.epoch_times_s],
         f"{two_tier.total_time_s:.0f}"),
        ("RAM + SSD + Lustre", *[f"{t:.0f}" for t in three_tier.epoch_times_s],
         f"{three_tier.total_time_s:.0f}"),
    ]
    print(format_table(
        ["hierarchy", "epoch1 (s)", "epoch2 (s)", "epoch3 (s)", "total (s)"],
        rows,
        title=f"LeNet, 100 GiB ImageNet at scale {scale:g} (unscaled seconds)",
    ))

    # peek inside a 3-tier run: where did the files land?
    handle = build_run(
        "monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION, scale, seed=7,
        monarch_overrides={"ram_tier_bytes": 32 * GIB},
    )
    monarch = handle.monarch
    assert monarch is not None

    def inspect():
        yield from monarch.initialize()
        for path in [f.name for f in monarch.metadata.files()]:
            yield from monarch.read(path, 0, 65536)
        yield handle.sim.timeout(60.0)

    proc = handle.sim.spawn(inspect())
    handle.sim.run(proc)
    per_level: dict[int, int] = {}
    for info in monarch.metadata.files():
        per_level[info.level] = per_level.get(info.level, 0) + 1
    names = {0: "RAM", 1: "SSD", 2: "Lustre"}
    print()
    print("file placement after one sweep (first-fit descending):")
    for level in sorted(per_level):
        driver = monarch.hierarchy[level]
        occupancy = ""
        if driver.quota_bytes is not None:
            occupancy = (f" — {driver.occupancy_bytes / GIB * (1 / scale):.0f}"
                         f"/{driver.quota_bytes / GIB * (1 / scale):.0f} GiB (unscaled)")
        print(f"  level {level} ({names[level]:6s}): {per_level[level]:4d} files{occupancy}")
    monarch.shutdown()


if __name__ == "__main__":
    main()
