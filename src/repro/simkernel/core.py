"""Core event loop and process model for the DES kernel.

The model follows the classic generator-coroutine design:

* An :class:`Event` is a one-shot occurrence with an optional value (or
  exception).  Callbacks registered on it run when it fires.
* A :class:`Process` wraps a generator.  Each ``yield`` hands back an event
  (or a composite built with :class:`AllOf` / :class:`AnyOf`); the process
  resumes when that event fires, receiving its value as the result of the
  ``yield`` expression.
* The :class:`Simulator` owns the clock and the scheduled work.  Time only
  advances between events; everything that happens "at the same instant" is
  ordered deterministically by (priority, schedule order), so runs are
  exactly reproducible.

Scheduling is a two-level calendar queue:

* Work due **at the current instant** lives in two FIFO deques (one per
  priority tier), so the dominant "fire at ``now``" pattern — event
  triggers, process starts, resource grants — is a plain ``append`` with no
  tuple allocation and no heap reshuffle.
* Work due **in the future** lives in a ``heapq`` keyed by
  ``(when, priority, seq)``.  When both deques drain, the loop pops the
  earliest future entry; if more entries share its timestamp the whole
  same-time cohort is batch-moved into the deques in heap (priority, seq)
  order, so anything newly scheduled *at* the new instant lands behind the
  cohort exactly as its larger sequence number would have placed it.

The equivalence invariant the calendar queue maintains: an entry is pushed
on the heap **only** with a strictly-future timestamp.  Every at-``now``
schedule goes to the deques, so "deque before heap" can never reorder two
entries that the old single-heap ordering would have run the other way.

Besides :class:`Event` objects, the queue accepts raw ``(fn, arg)``
continuation pairs (see :meth:`Simulator.call_now` / ``call_at``): the
dispatch loop simply calls ``fn(arg)``.  Continuations skip the Event
state machine entirely and are the substrate for the fused resource/
pipeline fast paths.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.spawn(worker(sim, "a", 2.0))
>>> _ = sim.spawn(worker(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable, Generator, Iterable
from typing import Any

from repro.simkernel.errors import (
    DeadlockError,
    Interrupt,
    ProcessKilled,
    SimulationError,
    StaleEventError,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "SimulationError",
    "Simulator",
    "DeadlockError",
    "StaleEventError",
]

# Scheduling priorities: lower runs first at the same timestamp.  URGENT is
# used internally for process bookkeeping (e.g. resuming a process must
# happen before a normal event scheduled at the same instant by someone
# else observed the old state).
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* once a value or an
    exception is attached and it has been scheduled, and is *processed*
    after its callbacks ran.  Waiting on a processed event is allowed and
    resumes the waiter immediately (this is what makes, e.g., waiting on an
    already-finished process natural).
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered", "_processed", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        # Lazily allocated: most events (timeouts, immediate grants) only
        # ever get a single waiter, and many get none at all.
        self.callbacks: list[Callable[[Event], None]] | None = None
        self._value: Any = None
        self._exc: BaseException | None = None
        self._triggered = False
        self._processed = False
        self.name = name

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value/exception has been attached."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event fired with a value rather than an exception."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The event's value.  Raises if the event carried an exception."""
        if not self._triggered:
            raise SimulationError(f"event {self!r} has not been triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> BaseException | None:
        """The exception carried by the event, if any."""
        return self._exc

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Fire the event with ``value`` at the current simulated instant."""
        if self._triggered:
            raise StaleEventError(f"event {self!r} already triggered")
        self._triggered = True
        self._value = value
        sim = self.sim
        (sim._urgent if priority == 0 else sim._normal).append(self)
        return self

    def fail(self, exc: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Fire the event with an exception at the current instant."""
        if self._triggered:
            raise StaleEventError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exc = exc
        sim = self.sim
        (sim._urgent if priority == 0 else sim._normal).append(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn`` to run when the event is processed.

        If the event was already processed the callback runs immediately —
        "the past has happened"; waiters must not be lost.
        """
        if self._processed:
            fn(self)
        elif self.callbacks is None:
            self.callbacks = [fn]
        else:
            self.callbacks.append(fn)

    def _process(self) -> None:
        self._processed = True
        callbacks = self.callbacks
        if callbacks is not None:
            self.callbacks = None
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        label = f" {self.name!r}" if self.name else ""
        return f"<Event{label} {state} at t={self.sim.now:.6g}>"


class _Condition(Event):
    """Base for composite events (:class:`AllOf` / :class:`AnyOf`)."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events: tuple[Event, ...] = tuple(events)
        self._pending = len(self.events)
        if not self.events:
            self.succeed(())
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every child event fired; value is the tuple of values.

    If any child fails, the condition fails with that child's exception
    (first failure wins; later failures are ignored).
    """

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.exception)  # type: ignore[arg-type]
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(tuple(child._value for child in self.events))


class AnyOf(_Condition):
    """Fires as soon as one child fires; value is ``(event, value)``."""

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.exception)  # type: ignore[arg-type]
            return
        self.succeed((ev, ev._value))


class _StartEvent(Event):
    """Internal kick-off event for a freshly spawned :class:`Process`.

    Skips the generic callback machinery: processing it resumes the
    process directly, which saves a callback-list allocation and a
    closure per spawn on the hot path.
    """

    __slots__ = ("proc",)

    def __init__(self, sim: "Simulator", proc: "Process") -> None:
        self.sim = sim
        self.proc = proc
        self.callbacks = None
        self._value = None
        self._exc = None
        self._triggered = True
        self._processed = False
        self.name = "start"

    def _process(self) -> None:
        self._processed = True
        self.proc._resume(self)


class Process(Event):
    """A simulated thread of control.

    Wraps a generator; each yielded :class:`Event` suspends the process
    until the event fires.  The process itself is an event that fires with
    the generator's return value, so processes can be awaited (``yield
    other_process``) or joined via composites.
    """

    __slots__ = ("gen", "_waiting_on", "_started")

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any], name: str = "") -> None:
        if not isinstance(gen, Generator):
            raise TypeError(f"Process requires a generator, got {type(gen).__name__}")
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self.gen = gen
        self._waiting_on: Event | None = None
        self._started = False
        # Kick off the process at the current instant, urgently so that
        # spawn-then-advance sequences behave intuitively.
        sim._urgent.append(_StartEvent(sim, self))

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        Interrupting a finished process is a silent no-op, mirroring POSIX
        signal semantics for exited threads.
        """
        if not self.is_alive:
            return
        # Deliver asynchronously at the current instant so the interrupter
        # continues first (matching thread semantics).
        ev = Event(self.sim, name=f"interrupt:{self.name}")
        ev.add_callback(lambda _ev: self._throw(Interrupt(cause)))
        ev.succeed(priority=PRIORITY_URGENT)

    def kill(self) -> None:
        """Terminate the process immediately; it fires with ProcessKilled."""
        if not self.is_alive:
            return
        self._detach()
        self.gen.close()
        self.fail(ProcessKilled(f"process {self.name!r} killed"), priority=PRIORITY_URGENT)

    # -- internal ------------------------------------------------------
    def _detach(self) -> None:
        target = self._waiting_on
        self._waiting_on = None
        if target is not None and not target._processed and target.callbacks:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass

    def _throw(self, exc: BaseException) -> None:
        if not self.is_alive:
            return
        self._detach()
        try:
            nxt = self.gen.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value, priority=PRIORITY_URGENT)
        except BaseException as err:  # noqa: BLE001 - propagate into waiters
            self.fail(err, priority=PRIORITY_URGENT)
        else:
            self._wait_on(nxt)

    def _resume(self, ev: Event) -> None:
        if self._triggered:  # process already finished (killed)
            return
        self._waiting_on = None
        try:
            if ev._exc is not None:
                nxt = self.gen.throw(ev._exc)
            elif self._started:
                nxt = self.gen.send(ev._value)
            else:
                self._started = True
                nxt = self.gen.send(None)
        except StopIteration as stop:
            self.succeed(stop.value, priority=PRIORITY_URGENT)
            return
        except BaseException as err:  # noqa: BLE001 - propagate into waiters
            self.fail(err, priority=PRIORITY_URGENT)
            return
        self._started = True
        # Hot path: the overwhelmingly common yield target is an event of
        # this simulator; fall back to the validating slow path otherwise.
        if isinstance(nxt, Event) and nxt.sim is self.sim:
            if nxt._processed:
                self._resume(nxt)
            else:
                self._waiting_on = nxt
                if nxt.callbacks is None:
                    nxt.callbacks = [self._resume]
                else:
                    nxt.callbacks.append(self._resume)
            return
        self._wait_on(nxt)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Events"
            )
            self._throw(exc)
            return
        if target.sim is not self.sim:
            self._throw(SimulationError("yielded an event belonging to another Simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class Simulator:
    """The event loop: owns the clock and the two-level calendar queue."""

    def __init__(self) -> None:
        self._now = 0.0
        # Work due at the current instant, one FIFO per priority tier.
        # Entries are Events or raw (fn, arg) continuation pairs.
        self._urgent: deque[Any] = deque()
        self._normal: deque[Any] = deque()
        # Strictly-future work: (when, priority, seq, Event-or-continuation).
        self._heap: list[tuple[float, int, int, Any]] = []
        self._seq = 0
        self._running = False
        self._process_count = 0
        #: Dispatch slots executed so far (events + continuations).  The
        #: benchmark layer reads this as the honest throughput numerator.
        self.events_processed = 0
        # Free list of recycled timeout events (see _pooled_timeout).
        self._timeout_pool: list[Event] = []

    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention)."""
        return self._now

    # -- event construction --------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Event:
        """An event that fires ``delay`` simulated seconds from now."""
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        ev = Event(self, name or "timeout")
        ev._triggered = True
        ev._value = value
        when = self._now + delay
        if when > self._now:
            self._seq += 1
            heapq.heappush(self._heap, (when, PRIORITY_NORMAL, self._seq, ev))
        else:
            self._normal.append(ev)
        return ev

    def timeout_at(self, when: float, value: Any = None, name: str = "") -> Event:
        """An event that fires at absolute simulated time ``when``.

        Used by the bulk-transfer fast path, where chunk boundaries are
        pre-accumulated absolute times: re-deriving a delay from ``now``
        would lose bit-identity with the chunk-by-chunk float accumulation.
        """
        if when < self._now:
            raise ValueError(f"timeout_at({when}) is in the past (now={self._now})")
        ev = Event(self, name or "timeout")
        ev._triggered = True
        ev._value = value
        if when > self._now:
            self._seq += 1
            heapq.heappush(self._heap, (when, PRIORITY_NORMAL, self._seq, ev))
        else:
            self._normal.append(ev)
        return ev

    def _pooled_timeout(self, delay: float) -> Event:
        """A recyclable timeout for ``Resource.using``-style owned waits.

        The caller guarantees it is the only holder of the event and gives
        it back via :meth:`_recycle` once processed, so the allocation is
        amortized away on the hot path.
        """
        pool = self._timeout_pool
        ev = pool.pop() if pool else Event(self, "timeout")
        ev._triggered = True
        when = self._now + delay
        if when > self._now:
            self._seq += 1
            heapq.heappush(self._heap, (when, PRIORITY_NORMAL, self._seq, ev))
        else:
            self._normal.append(ev)
        return ev

    def _recycle(self, ev: Event) -> None:
        """Return a processed :meth:`_pooled_timeout` event to the pool."""
        if ev._processed and len(self._timeout_pool) < 128:
            ev._triggered = False
            ev._processed = False
            ev._value = None
            ev._exc = None
            ev.callbacks = None
            self._timeout_pool.append(ev)

    def spawn(self, gen: Generator[Event, Any, Any], name: str = "") -> Process:
        """Create and start a :class:`Process` from a generator."""
        self._process_count += 1
        return Process(self, gen, name=name or f"proc-{self._process_count}")

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all of ``events`` fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any of ``events`` fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------
    def _schedule(self, ev: Event, priority: int, at: float | None = None) -> None:
        if at is None or at == self._now:
            (self._urgent if priority == 0 else self._normal).append(ev)
            return
        if at < self._now:
            raise SimulationError(f"cannot schedule into the past ({at} < {self._now})")
        self._seq += 1
        heapq.heappush(self._heap, (at, priority, self._seq, ev))

    def call_now(self, fn: Callable[[Any], None], arg: Any = None,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Schedule the bare continuation ``fn(arg)`` at the current instant.

        Continuations occupy ordinary dispatch slots — they are ordered
        against Events exactly as an Event scheduled at the same moment
        would be — but skip Event allocation and the callback machinery.
        """
        (self._urgent if priority == 0 else self._normal).append((fn, arg))

    def call_at(self, when: float, fn: Callable[[Any], None], arg: Any = None,
                priority: int = PRIORITY_NORMAL) -> None:
        """Schedule the continuation ``fn(arg)`` at absolute time ``when``."""
        if when > self._now:
            self._seq += 1
            heapq.heappush(self._heap, (when, priority, self._seq, (fn, arg)))
            return
        if when < self._now:
            raise SimulationError(f"cannot schedule into the past ({when} < {self._now})")
        (self._urgent if priority == 0 else self._normal).append((fn, arg))

    def call_after(self, delay: float, fn: Callable[[Any], None], arg: Any = None,
                   priority: int = PRIORITY_NORMAL) -> None:
        """Schedule the continuation ``fn(arg)`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative continuation delay: {delay}")
        self.call_at(self._now + delay, fn, arg, priority)

    # -- execution -----------------------------------------------------
    def _dispatch(self, obj: Any) -> None:
        """Execute one dispatch slot (Event or continuation pair)."""
        self.events_processed += 1
        if type(obj) is tuple:
            obj[0](obj[1])
        else:
            obj._process()

    def step(self) -> None:
        """Process exactly one dispatch slot, advancing the clock to it."""
        if self._urgent:
            obj = self._urgent.popleft()
        elif self._normal:
            obj = self._normal.popleft()
        else:
            when, prio, _seq, obj = heapq.heappop(self._heap)
            self._now = when
            # Move the rest of the same-timestamp cohort into the instant
            # deques so later at-``now`` appends queue up behind it.
            heap = self._heap
            while heap and heap[0][0] == when:
                entry = heapq.heappop(heap)
                (self._urgent if entry[1] == 0 else self._normal).append(entry[3])
        self._dispatch(obj)

    def peek(self) -> float:
        """Timestamp of the next scheduled work, or ``inf`` if none."""
        if self._urgent or self._normal:
            return self._now
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a timestamp
        (run until the clock would pass it) or an :class:`Event` (run until
        it fires, returning its value / raising its exception).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        urgent = self._urgent
        normal = self._normal
        heap = self._heap
        pop = heapq.heappop
        dispatched = 0
        try:
            if until is None or isinstance(until, Event):
                target = until
                while True:
                    if target is not None and target._processed:
                        return target.value
                    if urgent:
                        obj = urgent.popleft()
                    elif normal:
                        obj = normal.popleft()
                    elif heap:
                        when, _prio, _seq, obj = pop(heap)
                        self._now = when
                        if heap and heap[0][0] == when:
                            # Batch-advance: move the whole same-time cohort
                            # (including the popped head) into the deques in
                            # heap order, then restart the drain loop.
                            (urgent if _prio == 0 else normal).append(obj)
                            while heap and heap[0][0] == when:
                                entry = pop(heap)
                                (urgent if entry[1] == 0 else normal).append(entry[3])
                            continue
                    elif target is None:
                        return None
                    else:
                        raise DeadlockError(
                            f"event queue drained before {target!r} fired"
                        )
                    dispatched += 1
                    if type(obj) is tuple:
                        obj[0](obj[1])
                    else:
                        obj._process()
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(f"until={horizon} is in the past (now={self._now})")
            while True:
                if urgent:
                    obj = urgent.popleft()
                elif normal:
                    obj = normal.popleft()
                elif heap and heap[0][0] <= horizon:
                    when, _prio, _seq, obj = pop(heap)
                    self._now = when
                    if heap and heap[0][0] == when:
                        (urgent if _prio == 0 else normal).append(obj)
                        while heap and heap[0][0] == when:
                            entry = pop(heap)
                            (urgent if entry[1] == 0 else normal).append(entry[3])
                        continue
                else:
                    break
                dispatched += 1
                if type(obj) is tuple:
                    obj[0](obj[1])
                else:
                    obj._process()
            self._now = max(self._now, horizon)
            return None
        finally:
            self.events_processed += dispatched
            self._running = False
