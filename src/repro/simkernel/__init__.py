"""Deterministic discrete-event simulation (DES) kernel.

This package is the substrate every other subsystem runs on.  It provides a
small, SimPy-flavoured engine built around generator coroutines:

* :class:`~repro.simkernel.core.Simulator` — the event loop and clock.
* :class:`~repro.simkernel.core.Process` — a simulated thread of control
  (a generator that yields events to wait on).
* :mod:`~repro.simkernel.resources` — queued resources, counters and
  bounded stores used to model devices, thread pools and pipelines.
* :mod:`~repro.simkernel.rng` — named deterministic random streams so a
  whole experiment is a pure function of ``(config, seed)``.
* :mod:`~repro.simkernel.monitor` — time-weighted statistics used for
  utilization accounting.

The engine is deliberately single-threaded: "parallelism" in the simulated
system (reader threads, GPU streams, MONARCH's placement thread pool) is
expressed as interleaved simulated processes, which keeps every run exactly
reproducible.
"""

from repro.simkernel.core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    ProcessKilled,
    SimulationError,
    Simulator,
)
from repro.simkernel.monitor import TagAccounting, TimeSeriesMonitor, UtilizationMonitor
from repro.simkernel.resources import Container, Resource, SimLock, Store
from repro.simkernel.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Event",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "Resource",
    "RngRegistry",
    "SimLock",
    "SimulationError",
    "Simulator",
    "Store",
    "TagAccounting",
    "TimeSeriesMonitor",
    "UtilizationMonitor",
]
