"""Named deterministic random streams.

Every stochastic element of a run (PFS interference, shuffle order,
service-time jitter, …) draws from its own named stream.  Streams are
spawned from a single root :class:`numpy.random.SeedSequence`, so:

* runs are a pure function of the root seed,
* adding a new consumer never perturbs existing streams (streams are keyed
  by name, not creation order).
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Registry of named, independent ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The stream key is derived by hashing the name, so the same
        ``(seed, name)`` pair always yields the same stream regardless of
        the order streams are requested in.
        """
        gen = self._streams.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, sub_seed: int) -> "RngRegistry":
        """A registry whose streams are independent of this one's.

        Used for repeated runs: run *i* gets ``registry.fork(i)``.
        """
        mixed = zlib.crc32(f"{self.seed}:{sub_seed}".encode("utf-8"))
        return RngRegistry(seed=(self.seed * 1_000_003 + sub_seed) ^ mixed)

    def names(self) -> list[str]:
        """Names of the streams created so far (for diagnostics)."""
        return sorted(self._streams)
