"""Error types raised by the simulation kernel."""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Base class for every error raised by the DES kernel."""


class StaleEventError(SimulationError):
    """An event was triggered (or waited on) more than once."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting.

    Raised by :meth:`Simulator.run` when ``until`` was given but the queue
    empties with live processes blocked on events that can no longer fire.
    """


class ProcessKilled(SimulationError):
    """A process was forcefully terminated via :meth:`Process.kill`."""


class Interrupt(SimulationError):
    """Thrown *into* a process by :meth:`Process.interrupt`.

    The interrupted process receives this exception at its current yield
    point and may catch it to handle cancellation gracefully.  ``cause``
    carries the caller-supplied reason.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause
