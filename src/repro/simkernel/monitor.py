"""Time-weighted monitors for utilization and time-series statistics.

The paper reports CPU/GPU utilization percentages per model × setup; in a
DES those come from integrating busy-slot counts over simulated time, which
is what :class:`UtilizationMonitor` does.  :class:`TimeSeriesMonitor` keeps
raw ``(t, value)`` samples for throughput-variability plots.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkernel.core import Simulator

__all__ = ["TagAccounting", "TimeSeriesMonitor", "UtilizationMonitor"]


class TagAccounting:
    """Per-tag resource accounting (multi-job runs tag by job id).

    Untimed bookkeeping: subsystems charge busy seconds, bytes moved and
    operation counts against a string tag, and the aggregate answers
    "which job consumed how much of the shared machinery".  Tags are
    created on first charge; the single-tenant ``""`` tag is as valid as
    any other, so accounting can stay attached in one-job runs.
    """

    _ZERO = {"seconds": 0.0, "nbytes": 0, "ops": 0}

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._nbytes: dict[str, int] = {}
        self._ops: dict[str, int] = {}

    def charge(self, tag: str, *, seconds: float = 0.0, nbytes: int = 0, ops: int = 0) -> None:
        """Add usage to ``tag``'s running totals."""
        if seconds < 0 or nbytes < 0 or ops < 0:
            raise ValueError("charges must be non-negative")
        if seconds:
            self._seconds[tag] = self._seconds.get(tag, 0.0) + seconds
        if nbytes:
            self._nbytes[tag] = self._nbytes.get(tag, 0) + nbytes
        if ops:
            self._ops[tag] = self._ops.get(tag, 0) + ops

    def tags(self) -> list[str]:
        """Every tag ever charged, sorted."""
        return sorted(self._seconds.keys() | self._nbytes.keys() | self._ops.keys())

    def totals(self, tag: str) -> dict[str, float | int]:
        """``{"seconds", "nbytes", "ops"}`` totals for one tag."""
        if tag not in self._seconds and tag not in self._nbytes and tag not in self._ops:
            return dict(self._ZERO)
        return {
            "seconds": self._seconds.get(tag, 0.0),
            "nbytes": self._nbytes.get(tag, 0),
            "ops": self._ops.get(tag, 0),
        }

    def snapshot(self) -> dict[str, dict[str, float | int]]:
        """Deterministic (tag-sorted) view of every tag's totals."""
        return {tag: self.totals(tag) for tag in self.tags()}


class UtilizationMonitor:
    """Integrates an occupancy level over simulated time.

    ``record(level)`` is called whenever the level changes; the monitor
    accumulates ``level * dt`` so that :meth:`mean_level` /
    :meth:`utilization` report time-weighted averages.  Windows can be
    delimited (per training epoch) via :meth:`mark` and
    :meth:`window_utilization`.
    """

    def __init__(self, sim: "Simulator", capacity: float, name: str = "") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._level = 0.0
        self._last_t = sim.now
        self._area = 0.0
        self._start_t = sim.now
        self._marks: list[tuple[float, float]] = []  # (time, cumulative area)

    @property
    def level(self) -> float:
        """Current occupancy level."""
        return self._level

    def _advance(self) -> None:
        now = self.sim.now
        self._area += self._level * (now - self._last_t)
        self._last_t = now

    def record(self, level: float) -> None:
        """Record that occupancy changed to ``level`` at the current time."""
        if level < 0:
            raise ValueError(f"negative occupancy level: {level}")
        self._advance()
        self._level = level

    def add_area(self, area: float) -> None:
        """Credit pre-integrated busy area directly (bulk virtual holds).

        The bulk-transfer fast path occupies a channel without per-chunk
        ``record`` calls; on completion (or preemption) it deposits the
        exact ``level*dt`` area its virtual occupancy earned so that
        :meth:`mean_level` / :meth:`utilization` match the per-chunk path.
        """
        self._advance()
        self._area += area

    def mark(self) -> None:
        """Drop a window boundary (e.g. at an epoch edge)."""
        self._advance()
        self._marks.append((self.sim.now, self._area))

    def mean_level(self, t0: float | None = None, t1: float | None = None) -> float:
        """Time-weighted mean occupancy over ``[t0, t1]`` (defaults: whole run)."""
        self._advance()
        start = self._start_t if t0 is None else t0
        end = self._last_t if t1 is None else t1
        if end <= start:
            return 0.0
        area = self._area_at(end) - self._area_at(start)
        return area / (end - start)

    def _area_at(self, t: float) -> float:
        """Cumulative area at time ``t`` (linear between recorded marks)."""
        # We only have exact areas at mark times and "now"; for interior
        # times we interpolate using the marks bracketing ``t``.
        points = [(self._start_t, 0.0), *self._marks, (self._last_t, self._area)]
        if t <= points[0][0]:
            return 0.0
        for (ta, aa), (tb, ab) in zip(points, points[1:]):
            if ta <= t <= tb:
                if math.isclose(ta, tb):
                    return ab
                frac = (t - ta) / (tb - ta)
                return aa + frac * (ab - aa)
        return self._area

    def utilization(self, t0: float | None = None, t1: float | None = None) -> float:
        """Mean occupancy divided by capacity, in ``[0, 1]``."""
        return self.mean_level(t0, t1) / self.capacity

    def window_utilization(self) -> list[float]:
        """Utilization in each inter-mark window (plus the trailing one)."""
        self._advance()
        out: list[float] = []
        prev_t, prev_a = self._start_t, 0.0
        for t, a in [*self._marks, (self._last_t, self._area)]:
            dt = t - prev_t
            out.append((a - prev_a) / dt / self.capacity if dt > 0 else 0.0)
            prev_t, prev_a = t, a
        return out


class TimeSeriesMonitor:
    """Raw ``(t, value)`` samples with summary statistics."""

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        """Append a sample at the current simulated time."""
        self.times.append(self.sim.now)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (0.0 if empty)."""
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation of the samples (0.0 if < 2)."""
        n = len(self.values)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / n)

    @property
    def min(self) -> float:
        """Smallest sample (raises on empty)."""
        return min(self.values)

    @property
    def max(self) -> float:
        """Largest sample (raises on empty)."""
        return max(self.values)
