"""Analytic bulk-transfer fast path for serialized chunk trains.

A background full-file copy is a long train of short holds: ``read chunk
k on OST i, write chunk k on the SSD channel, read chunk k+1, ...``.
Executed chunk-by-chunk, every link in that train costs a resource
acquire, a timeout heap push and a release — tens of thousands of events
for one 100 GiB file.  When the involved channels are otherwise idle the
whole train's timing is known in closed form (the per-chunk service
times are pre-computed by the caller), so the train can occupy its
channels *virtually* and schedule a single completion event at the
analytic end time.

Correctness under contention is preserved by **arrival preemption**: a
virtual hold registers itself on every involved resource, and the moment
any other request arrives, :meth:`_VirtualHold.materialize` converts the
virtual state back into exactly the chunk-level state the per-chunk path
would be in at that instant — the in-progress chunk becomes a real hold
released at its analytic boundary, the arriver queues behind it FIFO,
and the bulk controller resumes per-chunk execution from the next chunk.
Chunk boundaries are accumulated with the same float additions the
per-chunk path performs, so simulated times are bit-identical, not just
close.

Eligibility for a bulk segment mirrors the per-chunk path being
uncontended: every distinct resource in the remaining schedule must be a
single-slot channel that is idle, unqueued, and not already virtually
held.  Anything else falls back to the per-chunk loop.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Callable, Generator
from typing import Any

from repro.simkernel.core import Event, Simulator
from repro.simkernel.resources import Resource

__all__ = ["hold_series"]

#: schedule entry: (resource or None for a pure delay, service time)
Step = "tuple[Resource | None, float]"


def _eligible(schedule: list[tuple[Resource | None, float]], idx: int) -> bool:
    """Whether steps ``idx:`` can run as one virtual bulk segment."""
    seen: set[int] = set()
    for res, _t in schedule[idx:]:
        if res is None or id(res) in seen:
            continue
        seen.add(id(res))
        if res.capacity != 1 or res._in_use or res._queue or res._virtual_holds:
            return False
    return True


class _VirtualHold:
    """One active bulk segment: virtual occupancy + analytic boundaries."""

    __slots__ = (
        "sim",
        "schedule",
        "start_idx",
        "t0",
        "bounds",
        "end",
        "resume_index",
        "active",
        "wake",
        "_distinct",
    )

    def __init__(
        self,
        sim: Simulator,
        schedule: list[tuple[Resource | None, float]],
        start_idx: int,
    ) -> None:
        self.sim = sim
        self.schedule = schedule
        self.start_idx = start_idx
        # Accumulate boundaries with the same one-add-per-chunk float
        # arithmetic the per-chunk path performs (now + t each step).
        acc = sim.now
        self.t0 = acc
        bounds: list[float] = []
        for _res, t in schedule[start_idx:]:
            acc = acc + t
            bounds.append(acc)
        self.bounds = bounds
        self.end = acc
        seen: set[int] = set()
        distinct: list[Resource] = []
        for res, _t in schedule[start_idx:]:
            if res is not None and id(res) not in seen:
                seen.add(id(res))
                distinct.append(res)
        self._distinct = distinct
        self.resume_index = len(schedule)
        self.active = False
        self.wake = Event(sim, "bulk-hold")

    def activate(self) -> Event:
        """Register virtual occupancy and schedule the analytic completion."""
        for res in self._distinct:
            res._virtual_holds.append(self)
        self.active = True
        done = self.sim.timeout_at(self.end)
        done.add_callback(self._on_complete)
        return self.wake

    def _on_complete(self, _ev: Event) -> None:
        if not self.active:
            return  # preempted earlier; a resume event drives the wake
        self._teardown()
        self._commit_areas(len(self.bounds), None, 0.0)
        self.wake.succeed()

    def _teardown(self) -> None:
        self.active = False
        for res in self._distinct:
            res._virtual_holds.remove(self)

    def materialize(self) -> None:
        """Convert virtual occupancy to per-chunk state (arrival preemption).

        Called from :meth:`Resource.request` when any request lands on an
        involved resource mid-segment.  After this returns, the resource
        state is exactly what the per-chunk path would show: the chunk in
        progress holds its channel (released at its analytic boundary) and
        the controller resumes per-chunk execution from the next chunk.
        """
        now = self.sim.now
        self._teardown()
        k = bisect_right(self.bounds, now)
        if k >= len(self.bounds):
            # The arriver ran at the exact completion instant, ahead of the
            # completion event: the last chunk is still holding.
            k = len(self.bounds) - 1
        res_k, _t_k = self.schedule[self.start_idx + k]
        chunk_start = self.t0 if k == 0 else self.bounds[k - 1]
        self._commit_areas(k, res_k, now - chunk_start)
        boundary = self.bounds[k]
        if res_k is not None:
            res_k._in_use += 1
            res_k.monitor.record(res_k._in_use)
            rel = self.sim.timeout_at(boundary)
            rel.add_callback(lambda _e, res=res_k: res._release_slot())
        resume = self.sim.timeout_at(boundary)
        resume.add_callback(lambda _e: self.wake.succeed())
        self.resume_index = self.start_idx + k + 1

    def _commit_areas(
        self, completed: int, inprog_res: Resource | None, inprog_elapsed: float
    ) -> None:
        """Credit utilization-monitor area the virtual occupancy earned."""
        areas: dict[int, float] = {}
        resolve: dict[int, Resource] = {}
        for i in range(completed):
            res, t = self.schedule[self.start_idx + i]
            if res is not None:
                areas[id(res)] = areas.get(id(res), 0.0) + t
                resolve[id(res)] = res
        if inprog_res is not None and inprog_elapsed > 0.0:
            areas[id(inprog_res)] = areas.get(id(inprog_res), 0.0) + inprog_elapsed
            resolve[id(inprog_res)] = inprog_res
        for key, area in areas.items():
            resolve[key].monitor.add_area(area)


def hold_series(
    sim: Simulator,
    schedule: list[tuple[Resource | None, float]],
    chunk_exec: Callable[[int], Generator[Any, Any, None]] | None = None,
    shiftable: bool = True,
    on_bulk_done: Callable[[int, int], None] | None = None,
) -> Generator[Any, Any, None]:
    """Execute a serialized train of holds, bulking idle stretches.

    ``schedule`` lists ``(resource, service_time)`` steps run back to back;
    ``resource`` may be ``None`` for a pure delay (e.g. a page-cache hit or
    a local metadata latency).  Equivalent — bit-identically in simulated
    time — to::

        for res, t in schedule:
            yield sim.timeout(t) if res is None else (yield from res.using(t))

    but stretches whose resources are all idle single-slot channels are
    executed as one virtual hold with a single completion event.

    ``chunk_exec(i)`` optionally overrides per-chunk execution of step
    ``i`` for fallback stretches (used when service times must be
    re-derived at the actual start instant, e.g. PFS interference).
    ``shiftable`` declares whether the pre-computed times stay valid when
    the train is delayed by queueing; when False, bulk segments are only
    attempted while execution is exactly on the analytic timeline.
    ``on_bulk_done(lo, hi)`` is invoked after a bulk segment covering
    steps ``lo:hi`` completed, so callers can apply the side effects the
    per-chunk path would have applied along the way.
    """
    n = len(schedule)
    idx = 0
    expected = sim.now
    diverged = False
    while idx < n:
        if not diverged and sim.now != expected:
            diverged = True
        if (shiftable or not diverged) and _eligible(schedule, idx):
            vh = _VirtualHold(sim, schedule, idx)
            yield vh.activate()
            if on_bulk_done is not None:
                on_bulk_done(idx, vh.resume_index)
            idx = vh.resume_index
            expected = sim.now
            continue
        res, t = schedule[idx]
        if chunk_exec is not None:
            yield from chunk_exec(idx)
        elif res is None:
            yield sim.timeout(t)
        else:
            yield from res.using(t)
        idx += 1
        expected = expected + t
