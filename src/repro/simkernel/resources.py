"""Queued resources for the DES kernel.

Three primitives cover everything the storage and framework substrates
need:

* :class:`Resource` — a server with ``capacity`` slots and a FIFO queue
  (device channels, CPU cores, GPU streams, thread-pool workers).
* :class:`Container` — a continuous quantity with bounded level (storage
  occupancy, memory budget).
* :class:`Store` — a bounded FIFO of Python objects (pipeline stages,
  prefetch buffers, work queues).
* :class:`SimLock` — a convenience mutex built on :class:`Resource`.

All primitives are strictly FIFO so simulations stay deterministic.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from typing import Any

from repro.simkernel.core import Event, Simulator
from repro.simkernel.errors import SimulationError
from repro.simkernel.monitor import UtilizationMonitor

__all__ = ["Container", "Resource", "SimLock", "Store"]


class Resource:
    """A server with ``capacity`` identical slots and a FIFO wait queue.

    Usage inside a process::

        req = resource.request()
        yield req
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release(req)

    or, more conveniently, ``yield from resource.using(service_time)``.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: deque[Event] = deque()
        self.monitor = UtilizationMonitor(sim, capacity=capacity, name=name)

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queue_len(self) -> int:
        """Number of waiters not yet granted a slot."""
        return len(self._queue)

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        ev = self.sim.event(name=f"{self.name}.request")
        if self._in_use < self.capacity and not self._queue:
            self._grant(ev)
        else:
            self._queue.append(ev)
        return ev

    def release(self, req: Event) -> None:
        """Release a previously granted slot.

        ``req`` must be the event returned by :meth:`request`.  Releasing an
        ungranted request cancels it instead.
        """
        if not req.triggered:
            try:
                self._queue.remove(req)
            except ValueError as err:
                raise SimulationError(
                    f"release of unknown request on {self.name!r}"
                ) from err
            return
        self._in_use -= 1
        if self._in_use < 0:
            raise SimulationError(f"double release on resource {self.name!r}")
        self.monitor.record(self._in_use)
        if self._queue and self._in_use < self.capacity:
            self._grant(self._queue.popleft())

    def _grant(self, ev: Event) -> None:
        self._in_use += 1
        self.monitor.record(self._in_use)
        ev.succeed(self)

    def using(self, hold_time: float) -> Generator[Event, Any, None]:
        """``yield from`` helper: acquire, hold for ``hold_time``, release.

        The acquisition itself sits inside the ``try`` so that a process
        killed (or interrupted) while still *waiting* for the slot cancels
        its queued request instead of leaking a granted-to-nobody slot.
        """
        req = self.request()
        try:
            yield req
            yield self.sim.timeout(hold_time)
        finally:
            self.release(req)


class SimLock:
    """A mutex: a :class:`Resource` of capacity 1 with lock-ish naming."""

    def __init__(self, sim: Simulator, name: str = "lock") -> None:
        self._res = Resource(sim, capacity=1, name=name)

    def acquire(self) -> Event:
        """Event that fires when the lock is held by the caller."""
        return self._res.request()

    def release(self, req: Event) -> None:
        """Release the lock acquired via the given request event."""
        self._res.release(req)

    @property
    def locked(self) -> bool:
        """True while some process holds the lock."""
        return self._res.in_use > 0

    def holding(self, body_time: float) -> Generator[Event, Any, None]:
        """``yield from`` helper: hold the lock for ``body_time``."""
        yield from self._res.using(body_time)


class Container:
    """A continuous quantity bounded by ``[0, capacity]``.

    ``put``/``get`` return events that fire once the operation can complete
    in full (no partial grants).  Waiters are strictly FIFO *per side*, and
    gets are granted before puts at the same release point — sufficient for
    our use (storage occupancy never blocks, memory budgets drain fairly).
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float,
        init: float = 0.0,
        name: str = "container",
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init={init} outside [0, {capacity}]")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._level = init
        self._get_waiters: deque[tuple[float, Event]] = deque()
        self._put_waiters: deque[tuple[float, Event]] = deque()

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    @property
    def free(self) -> float:
        """Remaining headroom."""
        return self.capacity - self._level

    def put(self, amount: float) -> Event:
        """Event firing once ``amount`` fits (level+amount <= capacity)."""
        if amount < 0:
            raise ValueError(f"negative put: {amount}")
        if amount > self.capacity:
            raise ValueError(f"put of {amount} exceeds capacity {self.capacity}")
        ev = self.sim.event(name=f"{self.name}.put")
        self._put_waiters.append((amount, ev))
        self._drain()
        return ev

    def get(self, amount: float) -> Event:
        """Event firing once ``amount`` is available to withdraw."""
        if amount < 0:
            raise ValueError(f"negative get: {amount}")
        if amount > self.capacity:
            raise ValueError(f"get of {amount} exceeds capacity {self.capacity}")
        ev = self.sim.event(name=f"{self.name}.get")
        self._get_waiters.append((amount, ev))
        self._drain()
        return ev

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._get_waiters:
                amount, ev = self._get_waiters[0]
                if amount <= self._level:
                    self._get_waiters.popleft()
                    self._level -= amount
                    ev.succeed(amount)
                    progressed = True
                    continue
            if self._put_waiters:
                amount, ev = self._put_waiters[0]
                if self._level + amount <= self.capacity:
                    self._put_waiters.popleft()
                    self._level += amount
                    ev.succeed(amount)
                    progressed = True


class Store:
    """A bounded FIFO of arbitrary items (a pipeline stage buffer).

    ``put(item)`` blocks while the store is full; ``get()`` blocks while it
    is empty.  Both sides are FIFO.  A ``capacity`` of ``None`` means
    unbounded (puts never block).
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: int | None = None,
        name: str = "store",
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Any, Event]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        """True if a put would block right now."""
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Event firing once ``item`` has been accepted into the store."""
        ev = self.sim.event(name=f"{self.name}.put")
        self._putters.append((item, ev))
        self._drain()
        return ev

    def get(self) -> Event:
        """Event firing with the next item once one is available."""
        ev = self.sim.event(name=f"{self.name}.get")
        self._getters.append(ev)
        self._drain()
        return ev

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Move pending puts into the buffer while there is room.
            while self._putters and not self.full:
                item, ev = self._putters.popleft()
                self._items.append(item)
                ev.succeed(item)
                progressed = True
            # Satisfy pending gets from the buffer.
            while self._getters and self._items:
                ev = self._getters.popleft()
                item = self._items.popleft()
                ev.succeed(item)
                progressed = True
