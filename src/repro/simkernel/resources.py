"""Queued resources for the DES kernel.

Three primitives cover everything the storage and framework substrates
need:

* :class:`Resource` — a server with ``capacity`` slots and a FIFO queue
  (device channels, CPU cores, GPU streams, thread-pool workers).
* :class:`Container` — a continuous quantity with bounded level (storage
  occupancy, memory budget).
* :class:`Store` — a bounded FIFO of Python objects (pipeline stages,
  prefetch buffers, work queues).
* :class:`SimLock` — a convenience mutex built on :class:`Resource`.

All primitives are strictly FIFO so simulations stay deterministic.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from heapq import heappush
from typing import Any

from repro.simkernel.core import PRIORITY_NORMAL, Event, Simulator
from repro.simkernel.errors import SimulationError
from repro.simkernel.monitor import UtilizationMonitor

__all__ = ["Container", "Resource", "SimLock", "Store", "parallel_using"]


def parallel_using(sim: Simulator, holds: list[tuple["Resource", float]]) -> Event:
    """Hold several resources concurrently; fires when every hold released.

    A callback-level replacement for spawning one process per hold (the
    striped-read fan-out pattern): each uncontended hold costs a single
    timeout event instead of a process start/finish pair.  Semantics match
    independent holders — each hold queues FIFO on its resource and the
    returned event fires when the slowest one completes.  The holds run to
    completion even if the waiter is killed, exactly like detached holder
    processes would.
    """
    done = Event(sim, "parallel-using")
    remaining = len(holds)
    if remaining == 0:
        done.succeed(())
        return done

    def _one_done(_ev: Event) -> None:
        nonlocal remaining
        remaining -= 1
        if remaining == 0:
            done.succeed(())

    # Each hold() is slot- and seq-identical to the request/timeout pair it
    # replaces (uncontended: end timer scheduled here; queued: grant slot
    # schedules it), and its end slot releases before running _one_done —
    # the same release-then-count order the closure version had.
    for res, t in holds:
        res.hold(t, _one_done)
    return done


class _HoldEnd(Event):
    """The one kernel object behind :meth:`Resource.hold`.

    Doubles as the queued request *and* the hold-end timer.  While
    ``_phase`` is 0 it sits in the resource's FIFO; the grant dispatch
    slot (its first ``_process``) starts the timed hold by re-scheduling
    the same object at the end instant — no generator resume happens in
    the middle of the hold.  The second ``_process`` releases the slot
    and only then wakes the waiter, matching ``using``'s finally-before-
    continuation ordering exactly.
    """

    __slots__ = ("res", "hold_time", "_phase")

    def _process(self) -> None:
        if self._phase == 0:
            # Grant slot: occupy the channel until now + hold_time.  The
            # waiting process stays parked; only this object travels.
            self._phase = 1
            sim = self.sim
            now = sim._now
            when = now + self.hold_time
            if when > now:
                sim._seq += 1
                heappush(sim._heap, (when, PRIORITY_NORMAL, sim._seq, self))
            else:
                sim._normal.append(self)
            return
        # End slot: release before resuming waiters — in ``using`` the
        # release runs inside the resumed generator's finally before any
        # caller code, so every observer sees post-release state either way.
        # (_release_slot inlined: this is the hottest dispatch in the sim.)
        res = self.res
        in_use = res._in_use - 1
        if in_use < 0:
            raise SimulationError(f"double release on resource {res.name!r}")
        res._in_use = in_use
        m = res.monitor
        now = self.sim._now
        m._area += m._level * (now - m._last_t)
        m._last_t = now
        m._level = in_use
        if res._queue and in_use < res.capacity:
            res._grant(res._queue.popleft())
        self._processed = True
        callbacks = self.callbacks
        if callbacks is not None:
            self.callbacks = None
            for fn in callbacks:
                fn(self)
        res._recycle_hold(self)


class Resource:
    """A server with ``capacity`` identical slots and a FIFO wait queue.

    Usage inside a process::

        req = resource.request()
        yield req
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release(req)

    or, more conveniently, ``yield from resource.using(service_time)``.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._req_name = name + ".request"
        self._in_use = 0
        self._queue: deque[Event] = deque()
        # Active bulk-transfer virtual holds (see repro.simkernel.bulk);
        # empty except while a bulk stream occupies this resource.
        self._virtual_holds: list[Any] = []
        # Free list of recycled _HoldEnd objects (see hold()).
        self._hold_pool: list[_HoldEnd] = []
        self.monitor = UtilizationMonitor(sim, capacity=capacity, name=name)

    @property
    def in_use(self) -> int:
        """Number of currently held slots (bulk virtual holds included)."""
        if self._virtual_holds:
            return self._in_use + 1
        return self._in_use

    @property
    def queue_len(self) -> int:
        """Number of waiters not yet granted a slot."""
        return len(self._queue)

    @property
    def idle(self) -> bool:
        """True when no slot is held, queued, or virtually held."""
        return not (self._in_use or self._queue or self._virtual_holds)

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        if self._virtual_holds:
            # A bulk stream virtually occupies the channel: convert it to
            # real chunk-level state before deciding this request's fate.
            self._virtual_holds[0].materialize()
        ev = Event(self.sim, self._req_name)
        if self._in_use < self.capacity and not self._queue:
            self._grant(ev)
        else:
            self._queue.append(ev)
        return ev

    def release(self, req: Event) -> None:
        """Release a previously granted slot.

        ``req`` must be the event returned by :meth:`request`.  Releasing an
        ungranted request cancels it instead.
        """
        if not req.triggered:
            try:
                self._queue.remove(req)
            except ValueError as err:
                raise SimulationError(
                    f"release of unknown request on {self.name!r}"
                ) from err
            return
        self._release_slot()

    def _release_slot(self) -> None:
        self._in_use -= 1
        if self._in_use < 0:
            raise SimulationError(f"double release on resource {self.name!r}")
        self.monitor.record(self._in_use)
        if self._queue and self._in_use < self.capacity:
            self._grant(self._queue.popleft())

    def _grant(self, ev: Event) -> None:
        self._in_use += 1
        self.monitor.record(self._in_use)
        ev.succeed(self)

    def using(self, hold_time: float) -> Generator[Event, Any, None]:
        """``yield from`` helper: acquire, hold for ``hold_time``, release.

        The acquisition itself sits inside the ``try`` so that a process
        killed (or interrupted) while still *waiting* for the slot cancels
        its queued request instead of leaking a granted-to-nobody slot.

        When a slot is free and nobody queues, the request round trip is
        skipped entirely: the slot is granted synchronously and only the
        hold timeout enters the event heap.  Grant/release instants are
        identical to the queued path, so simulated times do not change.
        """
        if self._in_use < self.capacity and not self._queue and not self._virtual_holds:
            sim = self.sim
            m = self.monitor
            # Inlined monitor.record(+1)/record(-1): this pair runs once
            # per uncontended hold, the hottest call site in the kernel.
            now = sim._now
            m._area += m._level * (now - m._last_t)
            m._last_t = now
            self._in_use += 1
            m._level = self._in_use
            ev = sim._pooled_timeout(hold_time)
            try:
                yield ev
            finally:
                self._in_use -= 1
                now = sim._now
                m._area += m._level * (now - m._last_t)
                m._last_t = now
                m._level = self._in_use
                if self._queue and self._in_use < self.capacity:
                    self._grant(self._queue.popleft())
            sim._recycle(ev)
            return
        req = self.request()
        try:
            yield req
            ev = self.sim._pooled_timeout(hold_time)
            yield ev
        finally:
            self.release(req)
        self.sim._recycle(ev)

    def hold(self, hold_time: float, cb: Any = None) -> Event:
        """Single-yield fused acquire + hold + release.

        ``yield resource.hold(t)`` is simulation-equivalent to
        ``yield from resource.using(t)`` — same grant/release instants,
        same same-instant ordering against every other event — but the
        returned event is the only kernel object involved: an uncontended
        hold costs one dispatch slot (the end), a queued one adds just the
        grant slot, and neither resumes the caller's generator mid-hold.

        The returned event is owned by the caller: yield it immediately,
        never retain it, and treat its value as unspecified.  If the
        waiting process is killed the hold still runs to completion and
        releases detached (the ``parallel_using`` contract) rather than
        cancelling a queued request like ``using`` does.
        """
        sim = self.sim
        pool = self._hold_pool
        if pool:
            ev = pool.pop()
        else:
            ev = _HoldEnd(sim, self._req_name)
            ev.res = self
        ev.hold_time = hold_time
        if cb is not None:
            # Convenience for continuation callers: equivalent to calling
            # add_callback(cb) on the result (pooled events always come
            # back with an empty callback list).
            ev.callbacks = [cb]
        if self._in_use < self.capacity and not self._queue and not self._virtual_holds:
            # Uncontended: skip the grant slot entirely; schedule the end
            # directly (inlined monitor math as in using()'s fast path).
            m = self.monitor
            now = sim._now
            m._area += m._level * (now - m._last_t)
            m._last_t = now
            self._in_use += 1
            m._level = self._in_use
            ev._phase = 1
            ev._triggered = True
            when = now + hold_time
            if when > now:
                sim._seq += 1
                heappush(sim._heap, (when, PRIORITY_NORMAL, sim._seq, ev))
            else:
                sim._normal.append(ev)
            return ev
        if self._virtual_holds:
            # Convert the bulk stream's virtual occupancy to real state
            # before deciding this hold's fate (mirrors request()).
            self._virtual_holds[0].materialize()
        ev._phase = 0
        if self._in_use < self.capacity and not self._queue:
            self._grant(ev)
        else:
            self._queue.append(ev)
        return ev

    def _recycle_hold(self, ev: "_HoldEnd") -> None:
        """Return a finished hold-end object to this resource's pool."""
        if len(self._hold_pool) < 32:
            ev._triggered = False
            ev._processed = False
            ev._value = None
            ev._exc = None
            ev.callbacks = None
            self._hold_pool.append(ev)

    def using_many(self, hold_times: list[float]) -> Generator[Event, Any, None]:
        """Hold the resource for a serialized chunk train in O(1) events.

        Equivalent to ``for t in hold_times: yield from self.using(t)`` —
        bit-identically so, including under contention: when the channel is
        busy (or another waiter arrives mid-stream) the bulk hold falls back
        to / is preempted into the per-chunk path (see
        :mod:`repro.simkernel.bulk`).
        """
        from repro.simkernel.bulk import hold_series

        yield from hold_series(self.sim, [(self, t) for t in hold_times])


class SimLock:
    """A mutex: a :class:`Resource` of capacity 1 with lock-ish naming."""

    def __init__(self, sim: Simulator, name: str = "lock") -> None:
        self._res = Resource(sim, capacity=1, name=name)

    def acquire(self) -> Event:
        """Event that fires when the lock is held by the caller."""
        return self._res.request()

    def release(self, req: Event) -> None:
        """Release the lock acquired via the given request event."""
        self._res.release(req)

    @property
    def locked(self) -> bool:
        """True while some process holds the lock."""
        return self._res.in_use > 0

    def holding(self, body_time: float) -> Generator[Event, Any, None]:
        """``yield from`` helper: hold the lock for ``body_time``."""
        yield from self._res.using(body_time)


class Container:
    """A continuous quantity bounded by ``[0, capacity]``.

    ``put``/``get`` return events that fire once the operation can complete
    in full (no partial grants).  Waiters are strictly FIFO *per side*, and
    gets are granted before puts at the same release point — sufficient for
    our use (storage occupancy never blocks, memory budgets drain fairly).
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float,
        init: float = 0.0,
        name: str = "container",
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init={init} outside [0, {capacity}]")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._level = init
        self._get_waiters: deque[tuple[float, Event]] = deque()
        self._put_waiters: deque[tuple[float, Event]] = deque()

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    @property
    def free(self) -> float:
        """Remaining headroom."""
        return self.capacity - self._level

    def put(self, amount: float) -> Event:
        """Event firing once ``amount`` fits (level+amount <= capacity)."""
        if amount < 0:
            raise ValueError(f"negative put: {amount}")
        if amount > self.capacity:
            raise ValueError(f"put of {amount} exceeds capacity {self.capacity}")
        ev = self.sim.event(name=f"{self.name}.put")
        self._put_waiters.append((amount, ev))
        self._drain()
        return ev

    def get(self, amount: float) -> Event:
        """Event firing once ``amount`` is available to withdraw."""
        if amount < 0:
            raise ValueError(f"negative get: {amount}")
        if amount > self.capacity:
            raise ValueError(f"get of {amount} exceeds capacity {self.capacity}")
        ev = self.sim.event(name=f"{self.name}.get")
        self._get_waiters.append((amount, ev))
        self._drain()
        return ev

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._get_waiters:
                amount, ev = self._get_waiters[0]
                if amount <= self._level:
                    self._get_waiters.popleft()
                    self._level -= amount
                    ev.succeed(amount)
                    progressed = True
                    continue
            if self._put_waiters:
                amount, ev = self._put_waiters[0]
                if self._level + amount <= self.capacity:
                    self._put_waiters.popleft()
                    self._level += amount
                    ev.succeed(amount)
                    progressed = True


class Store:
    """A bounded FIFO of arbitrary items (a pipeline stage buffer).

    ``put(item)`` blocks while the store is full; ``get()`` blocks while it
    is empty.  Both sides are FIFO.  A ``capacity`` of ``None`` means
    unbounded (puts never block).
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: int | None = None,
        name: str = "store",
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._put_name = name + ".put"
        self._get_name = name + ".get"
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Any, Event]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        """True if a put would block right now."""
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Event firing once ``item`` has been accepted into the store."""
        ev = Event(self.sim, self._put_name)
        self._putters.append((item, ev))
        self._drain()
        return ev

    def get(self) -> Event:
        """Event firing with the next item once one is available."""
        ev = Event(self.sim, self._get_name)
        self._getters.append(ev)
        self._drain()
        return ev

    def get_pooled(self) -> Event:
        """Like :meth:`get`, but with a recyclable event for owned waits.

        Same ownership contract as ``Simulator._pooled_timeout``: the
        caller must be the event's sole holder, wait on it immediately,
        and hand it back via ``sim._recycle`` once resumed.  Used by the
        pipeline's starved-mapper path, where every buffered record costs
        one wakeup and the event allocation is the only avoidable part.
        """
        pool = self.sim._timeout_pool
        if pool:
            ev = pool.pop()
            ev.name = self._get_name
        else:
            ev = Event(self.sim, self._get_name)
        self._getters.append(ev)
        self._drain()
        return ev

    def try_put(self, item: Any) -> bool:
        """Accept ``item`` synchronously if it cannot block; else False.

        Equivalent to ``put`` succeeding at the current instant, but with
        no event allocation or heap traffic — the fast path for pipeline
        stages whose buffers are rarely full.
        """
        cap = self.capacity
        if self._putters or (cap is not None and len(self._items) >= cap):
            return False
        self._items.append(item)
        if self._getters:
            self._drain()
        return True

    def try_put_many(self, items: list[Any]) -> int:
        """Accept a prefix of ``items`` synchronously; returns the count.

        Identical to calling :meth:`try_put` per item until one would
        block.  The caller queues the remainder with :meth:`put_many`.
        """
        if self._putters:
            return 0
        buf = self._items
        cap = self.capacity
        n = 0
        total = len(items)
        while n < total and (cap is None or len(buf) < cap):
            buf.append(items[n])
            n += 1
        if n and self._getters:
            self._drain()
        return n

    def put_many(self, items: list[Any]) -> Event:
        """Event firing once the *last* of ``items`` has been accepted.

        Items enter the buffer FIFO exactly as back-to-back :meth:`put`
        calls would — each slips in the instant capacity frees — but the
        producer is woken only once, when the final item lands, instead
        of once per item.  (The intermediate wake-ups of the per-item
        pattern exist only to issue the next ``put`` at the same instant,
        so eliding them leaves all simulated times unchanged.)
        """
        if not items:
            raise ValueError("put_many of no items")
        ev = Event(self.sim, self._put_name)
        putters = self._putters
        for item in items[:-1]:
            putters.append((item, None))
        putters.append((items[-1], ev))
        self._drain()
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Withdraw the next item synchronously if one is ready.

        Returns ``(True, item)`` when an item was available and no earlier
        getter is queued; ``(False, None)`` otherwise (caller falls back to
        the event-based :meth:`get`).
        """
        if self._getters or not self._items:
            return False, None
        item = self._items.popleft()
        if self._putters:
            self._drain()
        return True, item

    def _drain(self) -> None:
        putters = self._putters
        getters = self._getters
        items = self._items
        cap = self.capacity
        progressed = True
        while progressed:
            progressed = False
            # Move pending puts into the buffer while there is room.
            while putters and (cap is None or len(items) < cap):
                item, ev = putters.popleft()
                items.append(item)
                if ev is not None:  # None: interior item of a put_many
                    ev.succeed(item)
                progressed = True
            # Satisfy pending gets from the buffer.
            while getters and items:
                ev = getters.popleft()
                item = items.popleft()
                ev.succeed(item)
                progressed = True
