"""Training loop and per-epoch accounting.

A :class:`Trainer` runs the paper's methodology: N epochs over the dataset
(3 in every experiment), synchronous data-parallel steps across the node's
GPUs, with the input pipeline rebuilt (and the shard order reshuffled) each
epoch.  It records everything the paper reports per epoch: wall time,
CPU/GPU utilization, and per-backend I/O counters.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.framework.cache import TFDataCache
from repro.framework.io_layer import DataReader
from repro.framework.models import ModelProfile
from repro.framework.pipeline import EpochPipeline, PipelineConfig, ShardInfo
from repro.framework.resources import ComputeNode
from repro.simkernel.core import Simulator
from repro.storage.stats import BackendStats, StatsSnapshot
from repro.telemetry.events import NULL_RECORDER

__all__ = ["EpochResult", "TrainResult", "Trainer"]


@dataclass(frozen=True)
class EpochResult:
    """Everything measured for one training epoch."""

    index: int
    wall_time_s: float
    steps: int
    records: int
    cpu_utilization: float
    gpu_utilization: float
    backend_ops: dict[str, StatsSnapshot] = field(default_factory=dict)


@dataclass
class TrainResult:
    """Aggregate result of one training run."""

    epochs: list[EpochResult] = field(default_factory=list)
    init_time_s: float = 0.0  #: setup before epoch 1 (MONARCH metadata init)
    memory_estimate_bytes: int = 0
    #: why the fused reader FSMs could not engage, per reason -> epoch
    #: count; empty when fusion ran (or was off by design: env gate,
    #: cache-writing epoch).  Surfaced in the RunReport meta so a
    #: capability regression shows in telemetry, not only in a profile.
    fusion_misses: dict[str, int] = field(default_factory=dict)

    @property
    def total_time_s(self) -> float:
        """Sum of epoch wall times (init excluded, as in the paper's figures)."""
        return sum(e.wall_time_s for e in self.epochs)

    @property
    def epoch_times(self) -> list[float]:
        """Per-epoch wall times in epoch order."""
        return [e.wall_time_s for e in self.epochs]

    def backend_epoch_ops(self, backend: str) -> list[int]:
        """Per-epoch total op counts for one backend (data + metadata)."""
        return [e.backend_ops[backend].total_ops for e in self.epochs if backend in e.backend_ops]


class Trainer:
    """Runs a full training job on the DES."""

    def __init__(
        self,
        sim: Simulator,
        node: ComputeNode,
        model: ModelProfile,
        config: PipelineConfig,
        shards: list[ShardInfo],
        reader: DataReader,
        shuffle_rng: np.random.Generator,
        backends: dict[str, BackendStats] | None = None,
        cache: TFDataCache | None = None,
        epochs: int = 3,
        init_hook: Callable[[], Generator[Any, Any, None]] | None = None,
        epoch_end_hook: Callable[[int], None] | None = None,
        recorder=None,
        job_id: str = "",
        accounting=None,
    ) -> None:
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.sim = sim
        self.node = node
        self.model = model
        self.config = config
        self.shards = shards
        self.reader = reader
        self.shuffle_rng = shuffle_rng
        self.backends = backends or {}
        self.cache = cache
        self.epochs = epochs
        self.init_hook = init_hook
        self.epoch_end_hook = epoch_end_hook
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        #: multi-job runs: which job this trainer is ("" = single-tenant)
        self.job_id = job_id
        #: optional per-job resource accounting (TagAccounting)
        self.accounting = accounting
        self.result = TrainResult()

    def run(self) -> Generator[Any, Any, TrainResult]:
        """The training job: drive with ``sim.spawn(trainer.run())``."""
        if self.init_hook is not None:
            t0 = self.sim.now
            yield from self.init_hook()
            self.result.init_time_s = self.sim.now - t0
            # Keep the init phase out of epoch-1's utilization window.
            self.node.mark_epoch()
        for epoch in range(self.epochs):
            yield from self._run_epoch(epoch)
        return self.result

    def _run_epoch(self, epoch: int) -> Generator[Any, Any, None]:
        t0 = self.sim.now
        # Event subjects stay bare epoch indices in single-tenant runs;
        # multi-job runs prefix the owning job so streams disentangle.
        subject = f"{self.job_id}:{epoch}" if self.job_id else str(epoch)
        if self.recorder.enabled:
            self.recorder.emit("epoch.start", subject)
        base_ops = {name: s.snapshot() for name, s in self.backends.items()}
        cache_writing = self.cache is not None and not self.cache.ready
        pipe = EpochPipeline(
            sim=self.sim,
            config=self.config,
            shards=self.shards,
            reader=self.reader,
            node=self.node,
            model=self.model,
            shuffle_rng=self.shuffle_rng,
            cache=self.cache,
            cache_writing=cache_writing,
        )
        pipe.start()
        miss = pipe.fusion_miss
        if miss is not None:
            misses = self.result.fusion_misses
            misses[miss] = misses.get(miss, 0) + 1
        steps = 0
        records = 0
        n_gpus = self.node.spec.n_gpus
        gpu = self.node.gpu_group
        host = self.model.host_time() * self.config.host_scale
        step_time = self.model.step_time
        sim = self.sim
        try:
            while True:
                batch = yield from pipe.next_batch()
                if batch is None:
                    break
                t = step_time(len(batch), n_gpus)
                if gpu._in_use == 0 and not gpu._queue and not gpu._virtual_holds:
                    # Fused fast path: the GPU group is private to this
                    # trainer, so the hold never contends; one timeout
                    # covers step + host post-processing, with the busy
                    # area credited directly (grant/release instants
                    # carry no other observable state).
                    gpu.monitor.add_area(t)
                    ev = sim._pooled_timeout(t + host)
                    yield ev
                    sim._recycle(ev)
                else:
                    yield from gpu.using(t)
                    if host > 0:
                        yield sim.timeout(host)
                steps += 1
                records += len(batch)
        except BaseException:
            pipe.abort()
            raise
        if self.cache is not None and cache_writing:
            self.cache.finalize_epoch()
        if self.recorder.enabled:
            self.recorder.emit("epoch.end", subject, steps=steps, records=records)
        if self.epoch_end_hook is not None:
            self.epoch_end_hook(epoch)
        self.node.mark_epoch()
        wall = self.sim.now - t0
        if self.accounting is not None:
            self.accounting.charge(self.job_id, seconds=wall, ops=steps)
        ops = {
            name: s.snapshot().delta(base_ops[name]) for name, s in self.backends.items()
        }
        for s in self.backends.values():
            s.mark_epoch()
        # t0 and now are both mark points, so the window integral is exact.
        self.result.epochs.append(
            EpochResult(
                index=epoch,
                wall_time_s=wall,
                steps=steps,
                records=records,
                cpu_utilization=self.node.cpu.monitor.utilization(t0, self.sim.now),
                gpu_utilization=self.node.gpu_group.monitor.utilization(t0, self.sim.now),
                backend_ops=ops,
            )
        )
