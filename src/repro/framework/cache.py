"""``tf.data.Dataset.cache`` stand-in — the *vanilla-caching* baseline.

TensorFlow's file cache materializes everything that flows through the
dataset during the first epoch into local cache files and serves later
epochs from them.  The paper leans on its key limitation: "the current
implementation of this mechanism is only applicable when the full dataset
fits on the local disk".  We reproduce both the behaviour and the
limitation:

* During epoch 1 the shard readers *also* write each chunk they read to a
  per-shard cache file on the local tier (synchronously, in the dataset
  graph — this is the extra copy that makes caching's first epoch slower
  than vanilla-lustre in Fig. 1).
* :exc:`CacheOverflowError` propagates if the local tier fills up.
* From epoch 2 on, :meth:`effective_shards` redirects readers at the local
  cache files, and reads never touch the PFS again.
"""

from __future__ import annotations

import posixpath
from collections.abc import Generator
from typing import TYPE_CHECKING, Any

from repro.storage.base import FileHandle, NoSpaceError
from repro.storage.vfs import MountTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.framework.pipeline import ShardInfo

__all__ = ["CacheOverflowError", "TFDataCache"]


class CacheOverflowError(RuntimeError):
    """The dataset does not fit on the cache tier (the paper's limitation)."""


class TFDataCache:
    """File-backed dataset cache filled during the first epoch."""

    def __init__(self, mounts: MountTable, cache_dir: str) -> None:
        self.mounts = mounts
        self.cache_dir = cache_dir
        self.ready = False
        self._handles: dict[str, FileHandle] = {}
        self._offsets: dict[str, int] = {}

    def cached_path(self, shard_path: str) -> str:
        """Local cache path mirroring ``shard_path``."""
        return posixpath.join(self.cache_dir, posixpath.basename(shard_path))

    def write_chunk(self, shard_path: str, nbytes: int) -> Generator[Any, Any, None]:
        """Append ``nbytes`` of ``shard_path``'s content to its cache file.

        Raises :exc:`CacheOverflowError` once the cache tier is full.
        """
        if self.ready:
            raise RuntimeError("cache already finalized; epoch-1 writes only")
        path = self.cached_path(shard_path)
        handle = self._handles.get(path)
        if handle is None:
            handle = yield from self.mounts.open(path, "w")
            self._handles[path] = handle
            self._offsets[path] = 0
        try:
            yield from self.mounts.pwrite(handle, self._offsets[path], nbytes)
        except NoSpaceError as err:
            raise CacheOverflowError(
                f"dataset does not fit on the cache tier (while caching {shard_path})"
            ) from err
        self._offsets[path] += nbytes

    def finalize_epoch(self) -> None:
        """Mark the cache complete; later epochs read from it."""
        self.ready = True

    def effective_shards(self, shards: list["ShardInfo"]) -> list["ShardInfo"]:
        """Shard list with paths redirected to the cache once it is ready."""
        if not self.ready:
            return shards
        return [s.with_path(self.cached_path(s.path)) for s in shards]

    @property
    def bytes_cached(self) -> int:
        """Total bytes written to cache files so far."""
        return sum(self._offsets.values())
