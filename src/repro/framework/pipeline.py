"""tf.data-like input pipeline executed on the DES.

One :class:`EpochPipeline` reproduces the request-level behaviour of the
pipeline the paper configures TensorFlow with ("I/O parallelism,
prefetching and parallel preprocessing optimizations enabled"):

* shard order is reshuffled every epoch,
* ``cycle_length`` reader workers interleave across shards, each issuing
  sequential chunked ``pread`` s through the pluggable
  :class:`~repro.framework.io_layer.DataReader`,
* records flow through a bounded shuffle buffer into
  ``num_map_workers`` parallel preprocess workers holding CPU cores,
* processed records are batched (inline, by the mapper that completes a
  batch — batching itself is untimed bookkeeping) and pushed into a
  bounded ``prefetch`` buffer that the training loop consumes.

Stage buffers are bounded :class:`~repro.simkernel.resources.Store`\\ s, so
backpressure propagates exactly as in a real pipeline: a stalled GPU fills
prefetch, which stalls the mappers, and finally the readers.

Fidelity note: the shuffle buffer bounds and delays the record stream but
does not physically reorder it — record *identity* has no timing effect in
the simulation, only counts and sizes do.
"""

from __future__ import annotations

import os
from collections.abc import Generator
from dataclasses import dataclass, field, replace
from heapq import heappush
from typing import Any

import numpy as np

from repro.data.sharding import ShardLayout, ShardManifest
from repro.framework.cache import TFDataCache
from repro.framework.io_layer import DataReader
from repro.framework.models import ModelProfile
from repro.framework.resources import ComputeNode
from repro.simkernel.core import PRIORITY_URGENT, Simulator
from repro.simkernel.resources import Store
from repro.storage.blockmath import KIB

__all__ = ["EpochPipeline", "PipelineConfig", "RecordRef", "ShardInfo", "shards_from_manifest"]

#: sentinel flowing through the stage stores to signal end-of-stream
_SENTINEL = object()

#: max records a map worker claims per combined CPU hold (see _map_worker)
_PREPROCESS_RUN = 4


def _fused_disabled() -> bool:
    """``REPRO_DISABLE_FUSED_PIPELINE=1`` forces the generator workers.

    The escape hatch mirrors ``REPRO_DISABLE_BULK_IO``: the fused
    callback state machines below are asserted bit-identical to the
    generator stages, and this flag is how that assertion is checked.
    """
    return os.environ.get("REPRO_DISABLE_FUSED_PIPELINE", "").strip().lower() in (
        "1",
        "true",
        "yes",
    )


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of the input pipeline (tf.data equivalents in comments)."""

    read_chunk: int = 256 * KIB  #: buffered-reader chunk size
    cycle_length: int = 4  #: interleave parallelism (parallel shard readers)
    num_map_workers: int = 24  #: map(num_parallel_calls=...)
    shuffle_buffer_records: int = 4096  #: shuffle(buffer_size=...)
    prefetch_batches: int = 8  #: prefetch(buffer_size=...)
    batch_size: int = 128  #: global batch across all GPUs
    #: the full-scale batch the model profiles' per-step host cost refers
    #: to; when scaled runs shrink the batch, per-step host time shrinks
    #: proportionally so host overhead per *image* is scale-invariant
    reference_batch: int = 128

    def __post_init__(self) -> None:
        if self.read_chunk < 1:
            raise ValueError("read_chunk must be >= 1")
        if min(self.cycle_length, self.num_map_workers, self.prefetch_batches) < 1:
            raise ValueError("pipeline parallelism knobs must be >= 1")
        if self.shuffle_buffer_records < 1:
            raise ValueError("shuffle_buffer_records must be >= 1")
        if self.batch_size < 1 or self.reference_batch < 1:
            raise ValueError("batch sizes must be >= 1")

    @property
    def host_scale(self) -> float:
        """Per-step host-cost multiplier for scaled batches."""
        return self.batch_size / self.reference_batch


@dataclass(frozen=True)
class RecordRef:
    """One training sample flowing through the pipeline."""

    sample_id: int
    payload_len: int


@dataclass(frozen=True)
class ShardInfo:
    """A record shard as the pipeline sees it."""

    path: str
    size: int
    #: (offset, frame_len, sample_id, payload_len) per record, offset-ordered
    records: tuple[tuple[int, int, int, int], ...] = field(repr=False)

    @property
    def n_records(self) -> int:
        """Number of records in the shard."""
        return len(self.records)

    def with_path(self, path: str) -> "ShardInfo":
        """Copy with a different path (cache redirection)."""
        return replace(self, path=path)


def shards_from_manifest(manifest: ShardManifest, paths: list[str]) -> list[ShardInfo]:
    """Bind a manifest's layouts to the global paths they live at."""
    if len(paths) != len(manifest.shards):
        raise ValueError(
            f"{len(paths)} paths for {len(manifest.shards)} shards"
        )
    out: list[ShardInfo] = []
    for layout, path in zip(manifest.shards, paths):
        out.append(_shard_info(layout, path))
    return out


def _shard_info(layout: ShardLayout, path: str) -> ShardInfo:
    recs = tuple(
        (r.offset, r.frame_len, r.sample_id, r.payload_len) for r in layout.records
    )
    return ShardInfo(path=path, size=layout.size_bytes, records=recs)


class _FusedReader:
    """Callback state machine replacing one ``_reader_worker`` generator.

    Each continuation runs in the exact dispatch slot where the generator
    form would have resumed, and every timing/RNG side effect (service-time
    computation, jitter draw, queue entry) happens through the backend's
    ``*_begin`` calls in the same slot the generator would have made it —
    which is what keeps fused-on and fused-off runs bit-identical.  Only
    engaged when the reader declares the whole epoch continuation-capable
    (see ``PosixReader.fused_capable``; the MONARCH readers are always
    capable and route per read); anything else — fault-injection
    wrappers, cache-writing epochs — falls the whole pipeline back to the
    generator workers so the shared jitter stream's draw order never
    depends on per-shard routing.
    """

    __slots__ = (
        "pipe",
        "alive",
        "_shard",
        "_file",
        "_pos",
        "_emitted",
        "_take",
        "_pread",
        "_fh",
        "_chunk",
        "_store",
        "_ends",
        "_refs",
        "_sync_open",
    )

    def __init__(self, pipe: "EpochPipeline") -> None:
        self.pipe = pipe
        self.alive = True
        self._shard: ShardInfo | None = None
        self._file: Any = None
        self._pos = 0
        self._emitted = 0
        self._take = 0
        self._pread: Any = None
        self._fh: Any = None
        self._chunk = pipe.config.read_chunk
        self._store = pipe._record_store
        self._ends: list[int] = []
        self._refs: list[RecordRef] = []
        self._sync_open = getattr(pipe.reader, "open_is_sync", False)

    def _start(self, _arg: Any) -> None:
        self._next_shard()

    def _next_shard(self) -> None:
        pipe = self.pipe
        if not pipe._shard_queue:
            self.alive = False
            pipe._reader_done()
            return
        shard = pipe.shards[pipe._shard_queue.pop(0)]
        self._shard = shard
        self._pos = 0
        self._emitted = 0
        # Per-shard emission tables, built once and reused across epochs
        # (ShardInfo is frozen but not slotted; the cache is pure
        # precomputation — frame-end offsets and the immutable RecordRefs
        # the generator reader would construct per epoch).
        cache = shard.__dict__.get("_emit_cache")
        if cache is None:
            records = shard.records
            cache = (
                [off + frame for off, frame, _, _ in records],
                [RecordRef(sid, payload) for _, _, sid, payload in records],
            )
            object.__setattr__(shard, "_emit_cache", cache)
        self._ends, self._refs = cache
        try:
            self._file = pipe.reader.open_begin(shard.path, self._opened)
            self._pread, self._fh = pipe.reader.pread_begin_bound(self._file)
        except BaseException as err:  # noqa: BLE001 - routed like a dead proc
            self.alive = False
            pipe._fsm_error(err)
            return
        if self._sync_open:
            # Namespace-resolved open with no timed op (``open_is_sync``):
            # issue the first read in this slot, where the generator
            # form's zero-yield ``open`` would have continued.
            self._read_chunk()

    def _opened(self, _ev: Any) -> None:
        if self.alive:
            self._read_chunk()

    def _read_chunk(self) -> None:
        if self._pos >= self._shard.size:
            self.pipe.reader.close(self._file)
            self._next_shard()
            return
        try:
            self._take = self._pread(self._fh, self._pos, self._chunk, self._chunk_done)
        except BaseException as err:  # noqa: BLE001 - routed like a dead proc
            self.alive = False
            self.pipe._fsm_error(err)

    def _chunk_done(self, ev: Any) -> None:
        if not self.alive:
            return
        if ev is not None and ev._exc is not None:
            # A continuation-driven legacy read died (retry exhaustion,
            # tenancy violation): route it exactly like a dead reader
            # process — same slot the process-fail event would occupy.
            self.alive = False
            self.pipe._fsm_error(ev._exc)
            return
        n = self._take
        if n == 0:
            self.pipe.reader.close(self._file)
            self._next_shard()
            return
        pos = self._pos + n
        self._pos = pos
        ends = self._ends
        n_records = len(ends)
        emitted = self._emitted
        start = emitted
        while emitted < n_records and ends[emitted] <= pos:
            emitted += 1
        if emitted > start:
            self._emitted = emitted
            store = self._store
            # try_put_many inlined straight off the per-shard ref table —
            # the common all-fit case never materialises a slice.
            k = start
            if not store._putters:
                buf = store._items
                cap = store.capacity
                refs = self._refs
                while k < emitted and (cap is None or len(buf) < cap):
                    buf.append(refs[k])
                    k += 1
                if k > start and store._getters:
                    store._drain()
            if k < emitted:
                store.put_many(self._refs[k:emitted]).add_callback(self._chunk_put_done)
                return
        self._read_chunk()

    def _chunk_put_done(self, _ev: Any) -> None:
        if self.alive:
            self._read_chunk()


class _FusedMapper:
    """Callback state machine replacing one ``_map_worker`` generator.

    A record's whole steady-state hop — store wakeup, run claiming, CPU
    hold, batch emission — executes as scheduled continuations with no
    generator parked in the middle.  The mapper object itself doubles as
    the store waiter (``Store._drain`` only needs ``.succeed(item)``),
    so a starved wakeup costs one deque append instead of an Event
    allocation plus a generator resume.
    """

    __slots__ = (
        "pipe",
        "store",
        "cpu",
        "preprocess_time",
        "batch_size",
        "prefetch",
        "alive",
        "_run",
        "_emit_from",
        "_got_sentinel",
    )

    def __init__(self, pipe: "EpochPipeline") -> None:
        self.pipe = pipe
        self.store = pipe._record_store
        self.cpu = pipe.node.cpu
        self.preprocess_time = pipe.model.preprocess_time
        self.batch_size = pipe.config.batch_size
        self.prefetch = pipe.prefetch
        self.alive = True
        self._run: list[RecordRef] = []
        self._emit_from = 0
        self._got_sentinel = False

    def _start(self, _arg: Any) -> None:
        self._next()

    def succeed(self, value: Any = None) -> "_FusedMapper":
        """Store-waiter duck typing: wake via a deferred continuation.

        ``Store._drain`` calls ``.succeed(item)`` on queued getters; an
        Event would be dispatched from the at-now deque one slot later,
        and the appended continuation lands in exactly that slot.
        """
        self.pipe.sim._normal.append((self._on_record, value))
        return self

    def _next(self) -> None:
        # try_get inlined: this runs once per record run in the starved
        # regime and the call overhead is measurable.
        store = self.store
        items = store._items
        if store._getters or not items:
            # Starved regime: park as the store's waiter (FIFO with any
            # Event-based getters), one wakeup per record.  _drain is a
            # no-op unless a putter waits or a buffered item can be
            # delivered, so skip the call in the common empty case.
            store._getters.append(self)
            if items or store._putters:
                store._drain()
            return
        item = items.popleft()
        if store._putters:
            store._drain()
        self._on_record(item)

    def _on_record(self, item: Any) -> None:
        if not self.alive:
            # A wakeup queued before abort() can land after it; drop it
            # exactly as the generator worker's kill would have.
            return
        if item is _SENTINEL:
            self._finished()
            return
        # Claim a short run of already-buffered records (same bounded
        # quantization argument as _map_worker) and hold the core once.
        # try_get is inlined (pop + drain-if-putters): the claim loop runs
        # up to four times per record run and is pure deque traffic.
        pt = self.preprocess_time
        run = [item]
        total = pt(item.payload_len)
        got_sentinel = False
        store = self.store
        items = store._items
        getters = store._getters
        while len(run) < _PREPROCESS_RUN:
            if getters or not items:
                break
            nxt = items.popleft()
            if store._putters:
                store._drain()
            if nxt is _SENTINEL:
                got_sentinel = True
                break
            run.append(nxt)
            total += pt(nxt.payload_len)
        self._run = run
        self._emit_from = 0
        self._got_sentinel = got_sentinel
        cpu = self.cpu
        if cpu._in_use < cpu.capacity and not cpu._queue and not cpu._virtual_holds:
            # using()'s uncontended fast path, continuation-style: one
            # scheduled slot for the hold end, no generator in between.
            sim = self.pipe.sim
            m = cpu.monitor
            now = sim._now
            m._area += m._level * (now - m._last_t)
            m._last_t = now
            cpu._in_use += 1
            m._level = cpu._in_use
            when = now + total
            if when > now:
                sim._seq += 1
                heappush(sim._heap, (when, 1, sim._seq, (self._cpu_done_fast, None)))
            else:
                sim._normal.append((self._cpu_done_fast, None))
        else:
            cpu.hold(total).add_callback(self._cpu_done_held)

    def _cpu_done_fast(self, _arg: Any) -> None:
        # Release first (the generator form's finally runs before any code
        # after the yield-from), even if the pipeline was aborted mid-hold.
        cpu = self.cpu
        sim = self.pipe.sim
        m = cpu.monitor
        cpu._in_use -= 1
        now = sim._now
        m._area += m._level * (now - m._last_t)
        m._last_t = now
        m._level = cpu._in_use
        if cpu._queue and cpu._in_use < cpu.capacity:
            cpu._grant(cpu._queue.popleft())
        if self.alive:
            self._emit()

    def _cpu_done_held(self, _ev: Any) -> None:
        if self.alive:
            self._emit()

    def _emit(self) -> None:
        pipe = self.pipe
        run = self._run
        i = self._emit_from
        n = len(run)
        batch_size = self.batch_size
        prefetch = self.prefetch
        while i < n:
            rec = run[i]
            i += 1
            batch = pipe._batch
            batch.append(rec)
            if len(batch) == batch_size:
                pipe._batch = []
                if not prefetch.try_put(batch):
                    self._emit_from = i
                    prefetch.put(batch).add_callback(self._emit_put_done)
                    return
        self._run = []
        if self._got_sentinel:
            self._finished()
            return
        self._next()

    def _emit_put_done(self, _ev: Any) -> None:
        if self.alive:
            self._emit()

    def _finished(self) -> None:
        self.alive = False
        pipe = self.pipe
        pipe._finished_mappers += 1
        if pipe._finished_mappers < pipe.config.num_map_workers:
            return
        if pipe._batch:
            batch, pipe._batch = pipe._batch, []
            if not pipe.prefetch.try_put(batch):
                pipe.prefetch.put(batch).add_callback(self._flush_put_done)
                return
        self._final_sentinel()

    def _flush_put_done(self, _ev: Any) -> None:
        self._final_sentinel()

    def _final_sentinel(self) -> None:
        pipe = self.pipe
        if not pipe.prefetch.try_put(_SENTINEL):
            # Nothing runs after the sentinel lands, so no callback needed:
            # the queued put is accepted the instant capacity frees, exactly
            # when the generator form's final yield would have resumed.
            pipe.prefetch.put(_SENTINEL)


class EpochPipeline:
    """One epoch's worth of input pipeline, wired and ready to start."""

    def __init__(
        self,
        sim: Simulator,
        config: PipelineConfig,
        shards: list[ShardInfo],
        reader: DataReader,
        node: ComputeNode,
        model: ModelProfile,
        shuffle_rng: np.random.Generator,
        cache: TFDataCache | None = None,
        cache_writing: bool = False,
    ) -> None:
        if not shards:
            raise ValueError("pipeline needs at least one shard")
        self.sim = sim
        self.config = config
        self.reader = reader
        self.node = node
        self.model = model
        self.cache = cache
        self.cache_writing = cache_writing
        # Cache redirection: once ready, read the local cache files instead.
        self.shards = cache.effective_shards(shards) if cache else shards
        order = shuffle_rng.permutation(len(self.shards))
        self._shard_queue: list[int] = [int(i) for i in order]
        self._total_records = sum(s.n_records for s in self.shards)
        self.total_batches = -(-self._total_records // config.batch_size)
        self._record_store = Store(sim, capacity=config.shuffle_buffer_records, name="shuffle")
        self.prefetch = Store(sim, capacity=config.prefetch_batches, name="prefetch")
        # Batch assembly is plain bookkeeping (no timed ops), so mappers
        # deposit straight into the forming batch instead of routing every
        # record through a dedicated batcher process — one store round
        # trip less per record on the hot path.
        self._batch: list[RecordRef] = []
        self._finished_mappers = 0
        self._procs: list[Any] = []
        self._fsm_readers: list[_FusedReader] = []
        self._fsm_mappers: list[_FusedMapper] = []
        self._readers_left = 0
        #: set by :meth:`start`: whether the fused reader FSMs engaged
        self.fused_readers = False
        #: why fusion *couldn't* engage (capability miss), or None when it
        #: engaged or was off by design (env gate, cache-writing epoch)
        self.fusion_miss: str | None = None
        self.error: BaseException | None = None
        # Fires once if any stage process dies; lets next_batch wait on a
        # single persistent event instead of re-watching every process.
        self._failed = sim.event(name="pipeline-failed")

    # -- stage processes -------------------------------------------------
    def _reader_worker(self) -> Generator[Any, Any, None]:
        cfg = self.config
        while self._shard_queue:
            shard = self.shards[self._shard_queue.pop(0)]
            f = yield from self.reader.open(shard.path)
            pos = 0
            emitted = 0
            while pos < shard.size:
                n = yield from self.reader.pread(f, pos, cfg.read_chunk)
                if n == 0:
                    break
                if self.cache is not None and self.cache_writing:
                    yield from self.cache.write_chunk(shard.path, n)
                pos += n
                # Emit every record whose frame is now fully buffered,
                # as one group: under backpressure the producer is woken
                # once per chunk instead of once per record.
                recs: list[RecordRef] = []
                while emitted < shard.n_records:
                    off, frame, sid, payload = shard.records[emitted]
                    if off + frame > pos:
                        break
                    recs.append(RecordRef(sid, payload))
                    emitted += 1
                if recs:
                    store = self._record_store
                    k = store.try_put_many(recs)
                    if k < len(recs):
                        yield store.put_many(recs[k:])
            self.reader.close(f)

    def _map_worker(self) -> Generator[Any, Any, None]:
        records = self._record_store
        cpu_using = self.node.cpu.using
        preprocess_time = self.model.preprocess_time
        batch_size = self.config.batch_size
        prefetch = self.prefetch
        recycle = self.sim._recycle
        run_cap = _PREPROCESS_RUN
        while True:
            ok, item = records.try_get()
            if not ok:
                # Starved regime: one wakeup per record.  The heap push is
                # the resume ordering itself and can't go away, but the
                # event is owned solely by this mapper, so recycle it.
                ev = records.get_pooled()
                item = yield ev
                recycle(ev)
            if item is _SENTINEL:
                yield from self._mapper_finished()
                return
            # Claim a short run of already-buffered records and hold the
            # core once for their summed time: back-to-back holds on one
            # core are indistinguishable from a single combined hold, so
            # this only quantizes the *emission* instants of the interior
            # records to the run's end — a shift bounded by the run
            # duration (hence the small cap), invisible at epoch scale.
            run = [item]
            total = preprocess_time(item.payload_len)
            got_sentinel = False
            while len(run) < run_cap:
                ok, nxt = records.try_get()
                if not ok:
                    break
                if nxt is _SENTINEL:
                    got_sentinel = True  # consumed this worker's sentinel
                    break
                run.append(nxt)
                total += preprocess_time(nxt.payload_len)
            yield from cpu_using(total)
            for rec in run:
                batch = self._batch
                batch.append(rec)
                if len(batch) == batch_size:
                    self._batch = []
                    if not prefetch.try_put(batch):
                        yield prefetch.put(batch)
            if got_sentinel:
                yield from self._mapper_finished()
                return

    def _mapper_finished(self) -> Generator[Any, Any, None]:
        """Last mapper out flushes the partial batch and the sentinel."""
        self._finished_mappers += 1
        if self._finished_mappers < self.config.num_map_workers:
            return
        if self._batch:
            batch, self._batch = self._batch, []
            if not self.prefetch.try_put(batch):
                yield self.prefetch.put(batch)
        if not self.prefetch.try_put(_SENTINEL):
            yield self.prefetch.put(_SENTINEL)

    def _supervisor(self, readers: list[Any]) -> Generator[Any, Any, None]:
        yield self.sim.all_of(readers)
        for _ in range(self.config.num_map_workers):
            yield self._record_store.put(_SENTINEL)

    # -- public API --------------------------------------------------------
    def start(self) -> None:
        """Spawn all stage processes; batches appear in :attr:`prefetch`.

        When the fused fast path is enabled (the default; gate with
        ``REPRO_DISABLE_FUSED_PIPELINE=1``), mappers always run as
        continuation state machines, and readers do too whenever every
        shard's backend speaks the ``*_begin`` protocol and the epoch is
        not also writing the tf.data cache.  The fused kickoffs are
        scheduled at-now/urgent in the exact positions the legacy
        ``spawn`` calls would occupy, so both modes dispatch stage
        startups in the same order.
        """
        cfg = self.config
        sim = self.sim
        fused = not _fused_disabled()
        cap = getattr(self.reader, "fused_capable", None)
        fuse_readers = (
            fused
            and not self.cache_writing
            and cap is not None
            and cap([s.path for s in self.shards])
        )
        self.fused_readers = fuse_readers
        if fused and not fuse_readers and not self.cache_writing:
            # Capability miss (not a deliberate gate): record why, so a
            # protocol regression surfaces in the RunReport meta instead
            # of only as a mysteriously slower run.
            if cap is None:
                self.fusion_miss = f"reader:{type(self.reader).__name__}"
            else:
                miss = getattr(self.reader, "fused_miss", None)
                self.fusion_miss = (
                    miss([s.path for s in self.shards])
                    if miss is not None
                    else f"reader:{type(self.reader).__name__}"
                )
        procs: list[Any] = []
        if fuse_readers:
            self._readers_left = cfg.cycle_length
            self._fsm_readers = [_FusedReader(self) for _ in range(cfg.cycle_length)]
            for r in self._fsm_readers:
                sim.call_now(r._start, None, priority=PRIORITY_URGENT)
        else:
            readers = [
                sim.spawn(self._reader_worker(), name=f"reader-{i}")
                for i in range(cfg.cycle_length)
            ]
            procs.extend(readers)
        if fused:
            self._fsm_mappers = [_FusedMapper(self) for _ in range(cfg.num_map_workers)]
            for m in self._fsm_mappers:
                sim.call_now(m._start, None, priority=PRIORITY_URGENT)
        else:
            procs.extend(
                sim.spawn(self._map_worker(), name=f"mapper-{i}")
                for i in range(cfg.num_map_workers)
            )
        if not fuse_readers:
            procs.append(sim.spawn(self._supervisor(readers), name="supervisor"))
        self._procs = procs
        for p in procs:
            p.add_callback(self._on_proc_done)

    def _reader_done(self) -> None:
        """Fused-reader completion: last one out feeds mapper sentinels.

        Equivalent to the legacy supervisor: it wakes when ``all_of`` the
        reader processes fire and then puts one sentinel per mapper with
        blocking puts.  The store's putter queue is FIFO, so queueing all
        sentinels at once delivers them in the same order and at the same
        instants as the supervisor's sequential blocking puts.
        """
        self._readers_left -= 1
        if self._readers_left > 0:
            return
        store = self._record_store
        for _ in range(self.config.num_map_workers):
            store.put(_SENTINEL)

    def _on_proc_done(self, ev: Any) -> None:
        if not ev.ok and self.error is None:
            self.error = ev.exception
            # Poison the prefetch buffer so a consumer blocked in
            # next_batch wakes immediately instead of deadlocking.  The
            # sentinel jumps the capacity bound on purpose: the pipeline
            # is dead, nothing else will drain the buffer.
            self.prefetch._items.append(_SENTINEL)
            self.prefetch._drain()

    def _fsm_error(self, err: BaseException) -> None:
        """Route a fused-stage failure exactly like a dead stage process."""
        if self.error is None:
            self.error = err
            self.prefetch._items.append(_SENTINEL)
            self.prefetch._drain()

    def next_batch(self) -> Generator[Any, Any, list[RecordRef] | None]:
        """Get the next batch, or ``None`` at end of epoch.

        Re-raises any error that killed a stage process (e.g. cache
        overflow) instead of deadlocking on an empty prefetch buffer.
        """
        if self.error is not None:
            raise self.error
        ok, item = self.prefetch.try_get()
        if not ok:
            item = yield self.prefetch.get()
            if self.error is not None:
                raise self.error
        if item is _SENTINEL:
            return None
        return item

    def abort(self) -> None:
        """Kill all stage processes (used on failure paths)."""
        for p in self._procs:
            if p.is_alive:
                p.kill()
        for r in self._fsm_readers:
            r.alive = False
        for m in self._fsm_mappers:
            m.alive = False

    @property
    def total_records(self) -> int:
        """Records this epoch will deliver."""
        return self._total_records
