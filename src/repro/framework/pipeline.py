"""tf.data-like input pipeline executed on the DES.

One :class:`EpochPipeline` reproduces the request-level behaviour of the
pipeline the paper configures TensorFlow with ("I/O parallelism,
prefetching and parallel preprocessing optimizations enabled"):

* shard order is reshuffled every epoch,
* ``cycle_length`` reader workers interleave across shards, each issuing
  sequential chunked ``pread`` s through the pluggable
  :class:`~repro.framework.io_layer.DataReader`,
* records flow through a bounded shuffle buffer into
  ``num_map_workers`` parallel preprocess workers holding CPU cores,
* processed records are batched (inline, by the mapper that completes a
  batch — batching itself is untimed bookkeeping) and pushed into a
  bounded ``prefetch`` buffer that the training loop consumes.

Stage buffers are bounded :class:`~repro.simkernel.resources.Store`\\ s, so
backpressure propagates exactly as in a real pipeline: a stalled GPU fills
prefetch, which stalls the mappers, and finally the readers.

Fidelity note: the shuffle buffer bounds and delays the record stream but
does not physically reorder it — record *identity* has no timing effect in
the simulation, only counts and sizes do.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.data.sharding import ShardLayout, ShardManifest
from repro.framework.cache import TFDataCache
from repro.framework.io_layer import DataReader
from repro.framework.models import ModelProfile
from repro.framework.resources import ComputeNode
from repro.simkernel.core import Simulator
from repro.simkernel.resources import Store
from repro.storage.blockmath import KIB

__all__ = ["EpochPipeline", "PipelineConfig", "RecordRef", "ShardInfo", "shards_from_manifest"]

#: sentinel flowing through the stage stores to signal end-of-stream
_SENTINEL = object()

#: max records a map worker claims per combined CPU hold (see _map_worker)
_PREPROCESS_RUN = 4


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of the input pipeline (tf.data equivalents in comments)."""

    read_chunk: int = 256 * KIB  #: buffered-reader chunk size
    cycle_length: int = 4  #: interleave parallelism (parallel shard readers)
    num_map_workers: int = 24  #: map(num_parallel_calls=...)
    shuffle_buffer_records: int = 4096  #: shuffle(buffer_size=...)
    prefetch_batches: int = 8  #: prefetch(buffer_size=...)
    batch_size: int = 128  #: global batch across all GPUs
    #: the full-scale batch the model profiles' per-step host cost refers
    #: to; when scaled runs shrink the batch, per-step host time shrinks
    #: proportionally so host overhead per *image* is scale-invariant
    reference_batch: int = 128

    def __post_init__(self) -> None:
        if self.read_chunk < 1:
            raise ValueError("read_chunk must be >= 1")
        if min(self.cycle_length, self.num_map_workers, self.prefetch_batches) < 1:
            raise ValueError("pipeline parallelism knobs must be >= 1")
        if self.shuffle_buffer_records < 1:
            raise ValueError("shuffle_buffer_records must be >= 1")
        if self.batch_size < 1 or self.reference_batch < 1:
            raise ValueError("batch sizes must be >= 1")

    @property
    def host_scale(self) -> float:
        """Per-step host-cost multiplier for scaled batches."""
        return self.batch_size / self.reference_batch


@dataclass(frozen=True)
class RecordRef:
    """One training sample flowing through the pipeline."""

    sample_id: int
    payload_len: int


@dataclass(frozen=True)
class ShardInfo:
    """A record shard as the pipeline sees it."""

    path: str
    size: int
    #: (offset, frame_len, sample_id, payload_len) per record, offset-ordered
    records: tuple[tuple[int, int, int, int], ...] = field(repr=False)

    @property
    def n_records(self) -> int:
        """Number of records in the shard."""
        return len(self.records)

    def with_path(self, path: str) -> "ShardInfo":
        """Copy with a different path (cache redirection)."""
        return replace(self, path=path)


def shards_from_manifest(manifest: ShardManifest, paths: list[str]) -> list[ShardInfo]:
    """Bind a manifest's layouts to the global paths they live at."""
    if len(paths) != len(manifest.shards):
        raise ValueError(
            f"{len(paths)} paths for {len(manifest.shards)} shards"
        )
    out: list[ShardInfo] = []
    for layout, path in zip(manifest.shards, paths):
        out.append(_shard_info(layout, path))
    return out


def _shard_info(layout: ShardLayout, path: str) -> ShardInfo:
    recs = tuple(
        (r.offset, r.frame_len, r.sample_id, r.payload_len) for r in layout.records
    )
    return ShardInfo(path=path, size=layout.size_bytes, records=recs)


class EpochPipeline:
    """One epoch's worth of input pipeline, wired and ready to start."""

    def __init__(
        self,
        sim: Simulator,
        config: PipelineConfig,
        shards: list[ShardInfo],
        reader: DataReader,
        node: ComputeNode,
        model: ModelProfile,
        shuffle_rng: np.random.Generator,
        cache: TFDataCache | None = None,
        cache_writing: bool = False,
    ) -> None:
        if not shards:
            raise ValueError("pipeline needs at least one shard")
        self.sim = sim
        self.config = config
        self.reader = reader
        self.node = node
        self.model = model
        self.cache = cache
        self.cache_writing = cache_writing
        # Cache redirection: once ready, read the local cache files instead.
        self.shards = cache.effective_shards(shards) if cache else shards
        order = shuffle_rng.permutation(len(self.shards))
        self._shard_queue: list[int] = [int(i) for i in order]
        self._total_records = sum(s.n_records for s in self.shards)
        self.total_batches = -(-self._total_records // config.batch_size)
        self._record_store = Store(sim, capacity=config.shuffle_buffer_records, name="shuffle")
        self.prefetch = Store(sim, capacity=config.prefetch_batches, name="prefetch")
        # Batch assembly is plain bookkeeping (no timed ops), so mappers
        # deposit straight into the forming batch instead of routing every
        # record through a dedicated batcher process — one store round
        # trip less per record on the hot path.
        self._batch: list[RecordRef] = []
        self._finished_mappers = 0
        self._procs: list[Any] = []
        self.error: BaseException | None = None
        # Fires once if any stage process dies; lets next_batch wait on a
        # single persistent event instead of re-watching every process.
        self._failed = sim.event(name="pipeline-failed")

    # -- stage processes -------------------------------------------------
    def _reader_worker(self) -> Generator[Any, Any, None]:
        cfg = self.config
        while self._shard_queue:
            shard = self.shards[self._shard_queue.pop(0)]
            f = yield from self.reader.open(shard.path)
            pos = 0
            emitted = 0
            while pos < shard.size:
                n = yield from self.reader.pread(f, pos, cfg.read_chunk)
                if n == 0:
                    break
                if self.cache is not None and self.cache_writing:
                    yield from self.cache.write_chunk(shard.path, n)
                pos += n
                # Emit every record whose frame is now fully buffered,
                # as one group: under backpressure the producer is woken
                # once per chunk instead of once per record.
                recs: list[RecordRef] = []
                while emitted < shard.n_records:
                    off, frame, sid, payload = shard.records[emitted]
                    if off + frame > pos:
                        break
                    recs.append(RecordRef(sid, payload))
                    emitted += 1
                if recs:
                    store = self._record_store
                    k = store.try_put_many(recs)
                    if k < len(recs):
                        yield store.put_many(recs[k:])
            self.reader.close(f)

    def _map_worker(self) -> Generator[Any, Any, None]:
        records = self._record_store
        cpu_using = self.node.cpu.using
        preprocess_time = self.model.preprocess_time
        batch_size = self.config.batch_size
        prefetch = self.prefetch
        recycle = self.sim._recycle
        run_cap = _PREPROCESS_RUN
        while True:
            ok, item = records.try_get()
            if not ok:
                # Starved regime: one wakeup per record.  The heap push is
                # the resume ordering itself and can't go away, but the
                # event is owned solely by this mapper, so recycle it.
                ev = records.get_pooled()
                item = yield ev
                recycle(ev)
            if item is _SENTINEL:
                yield from self._mapper_finished()
                return
            # Claim a short run of already-buffered records and hold the
            # core once for their summed time: back-to-back holds on one
            # core are indistinguishable from a single combined hold, so
            # this only quantizes the *emission* instants of the interior
            # records to the run's end — a shift bounded by the run
            # duration (hence the small cap), invisible at epoch scale.
            run = [item]
            total = preprocess_time(item.payload_len)
            got_sentinel = False
            while len(run) < run_cap:
                ok, nxt = records.try_get()
                if not ok:
                    break
                if nxt is _SENTINEL:
                    got_sentinel = True  # consumed this worker's sentinel
                    break
                run.append(nxt)
                total += preprocess_time(nxt.payload_len)
            yield from cpu_using(total)
            for rec in run:
                batch = self._batch
                batch.append(rec)
                if len(batch) == batch_size:
                    self._batch = []
                    if not prefetch.try_put(batch):
                        yield prefetch.put(batch)
            if got_sentinel:
                yield from self._mapper_finished()
                return

    def _mapper_finished(self) -> Generator[Any, Any, None]:
        """Last mapper out flushes the partial batch and the sentinel."""
        self._finished_mappers += 1
        if self._finished_mappers < self.config.num_map_workers:
            return
        if self._batch:
            batch, self._batch = self._batch, []
            if not self.prefetch.try_put(batch):
                yield self.prefetch.put(batch)
        if not self.prefetch.try_put(_SENTINEL):
            yield self.prefetch.put(_SENTINEL)

    def _supervisor(self, readers: list[Any]) -> Generator[Any, Any, None]:
        yield self.sim.all_of(readers)
        for _ in range(self.config.num_map_workers):
            yield self._record_store.put(_SENTINEL)

    # -- public API --------------------------------------------------------
    def start(self) -> None:
        """Spawn all stage processes; batches appear in :attr:`prefetch`."""
        cfg = self.config
        readers = [
            self.sim.spawn(self._reader_worker(), name=f"reader-{i}")
            for i in range(cfg.cycle_length)
        ]
        mappers = [
            self.sim.spawn(self._map_worker(), name=f"mapper-{i}")
            for i in range(cfg.num_map_workers)
        ]
        supervisor = self.sim.spawn(self._supervisor(readers), name="supervisor")
        self._procs = [*readers, *mappers, supervisor]
        for p in self._procs:
            p.add_callback(self._on_proc_done)

    def _on_proc_done(self, ev: Any) -> None:
        if not ev.ok and self.error is None:
            self.error = ev.exception
            # Poison the prefetch buffer so a consumer blocked in
            # next_batch wakes immediately instead of deadlocking.  The
            # sentinel jumps the capacity bound on purpose: the pipeline
            # is dead, nothing else will drain the buffer.
            self.prefetch._items.append(_SENTINEL)
            self.prefetch._drain()

    def next_batch(self) -> Generator[Any, Any, list[RecordRef] | None]:
        """Get the next batch, or ``None`` at end of epoch.

        Re-raises any error that killed a stage process (e.g. cache
        overflow) instead of deadlocking on an empty prefetch buffer.
        """
        if self.error is not None:
            raise self.error
        ok, item = self.prefetch.try_get()
        if not ok:
            item = yield self.prefetch.get()
            if self.error is not None:
                raise self.error
        if item is _SENTINEL:
            return None
        return item

    def abort(self) -> None:
        """Kill all stage processes (used on failure paths)."""
        for p in self._procs:
            if p.is_alive:
                p.kill()

    @property
    def total_records(self) -> int:
        """Records this epoch will deliver."""
        return self._total_records
