"""Mini deep-learning framework substrate (the TensorFlow stand-in).

Reproduces, at the I/O-request level, the tf.data input pipeline the paper
runs MONARCH under:

* :mod:`~repro.framework.pipeline` — shuffled shard order, ``cycle_length``
  parallel shard readers doing chunked ``pread`` s, parallel ``map``
  preprocessing on the CPU pool, batching and a bounded ``prefetch`` buffer.
* :mod:`~repro.framework.cache` — the ``tf.data.Dataset.cache`` stand-in
  used by the *vanilla-caching* baseline (writes everything to local
  storage during epoch 1; **requires the dataset to fit**, like the real
  mechanism the paper discusses).
* :mod:`~repro.framework.models` — LeNet / AlexNet / ResNet-50 as compute
  profiles (per-image GPU step time and CPU preprocessing time).
* :mod:`~repro.framework.training` — a synchronous data-parallel training
  loop over the node's GPUs with per-epoch accounting.
* :mod:`~repro.framework.io_layer` — the pluggable reader interface: the
  reproduction's analogue of the paper's 6-line TensorFlow integration
  (swap ``PosixReader`` for MONARCH's reader and nothing else changes).
"""

from repro.framework.io_layer import DataReader, PosixReader
from repro.framework.models import ALEXNET, LENET, RESNET50, ModelProfile
from repro.framework.pipeline import PipelineConfig
from repro.framework.resources import ComputeNode, NodeSpec
from repro.framework.training import EpochResult, Trainer, TrainResult

__all__ = [
    "ALEXNET",
    "ComputeNode",
    "DataReader",
    "EpochResult",
    "LENET",
    "ModelProfile",
    "NodeSpec",
    "PipelineConfig",
    "PosixReader",
    "RESNET50",
    "TrainResult",
    "Trainer",
]
