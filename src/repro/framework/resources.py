"""Compute-node resources: CPU pool, GPU group, memory estimate.

Mirrors the paper's testbed: two 16-core Xeons (32 cores), four Quadro
RTX 5000 GPUs, 128 GiB RAM limited to 68 GiB for the experiments.

GPUs run synchronous data-parallel training (TensorFlow MirroredStrategy in
the paper): one *step* occupies all GPUs in lockstep, so the GPU group is a
single capacity-1 resource whose utilization equals each GPU's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simkernel.core import Simulator
from repro.simkernel.resources import Resource
from repro.storage.blockmath import GIB

__all__ = ["ComputeNode", "NodeSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """Static description of the compute node."""

    cpu_cores: int = 32
    n_gpus: int = 4
    memory_limit_bytes: int = 68 * GIB

    def __post_init__(self) -> None:
        if self.cpu_cores < 1 or self.n_gpus < 1:
            raise ValueError("node needs at least one core and one GPU")
        if self.memory_limit_bytes <= 0:
            raise ValueError("memory limit must be positive")


#: The Frontera RTX node used throughout the paper.
FRONTERA_RTX_NODE = NodeSpec(cpu_cores=32, n_gpus=4, memory_limit_bytes=68 * GIB)


class ComputeNode:
    """Live CPU/GPU resources for one simulated node."""

    def __init__(self, sim: Simulator, spec: NodeSpec | None = None) -> None:
        self.sim = sim
        self.spec = spec or FRONTERA_RTX_NODE
        self.cpu = Resource(sim, capacity=self.spec.cpu_cores, name="cpu")
        # Lockstep data-parallel group: a step holds the whole group.
        self.gpu_group = Resource(sim, capacity=1, name="gpu-group")

    def mark_epoch(self) -> None:
        """Drop an epoch boundary on the utilization monitors."""
        self.cpu.monitor.mark()
        self.gpu_group.monitor.mark()

    def cpu_utilization_per_epoch(self) -> list[float]:
        """Per-epoch CPU utilization in [0, 1] (fraction of all cores busy)."""
        return self.cpu.monitor.window_utilization()

    def gpu_utilization_per_epoch(self) -> list[float]:
        """Per-epoch GPU utilization in [0, 1] (lockstep group busy fraction)."""
        return self.gpu_group.monitor.window_utilization()
