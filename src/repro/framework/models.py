"""DL models as compute profiles.

The paper's results depend only on where each model sits on the
I/O-bound ↔ compute-bound axis, so a model is characterized by two
per-image costs:

* ``gpu_time_per_image_us`` — forward+backward time per image on one GPU;
  a synchronous step over ``n_gpus`` GPUs with a global batch ``B`` takes
  ``B / n_gpus * gpu_time_per_image``.
* ``cpu_time_per_image_us`` — decode/augment time per image on one core
  (the ``map`` stage of the pipeline).

Presets are calibrated against the paper's measurements on the Frontera
RTX node (see ``experiments/calibration.py`` for the derivation):

* **LeNet** — tiny GPU cost: I/O-bound on *both* Lustre and the local SSD
  (its vanilla-local epoch, ~217 s, equals the SSD streaming time for
  100 GiB, and its GPU sits at 22–39 %).
* **AlexNet** — mid GPU cost: I/O-bound on Lustre, borderline on the SSD
  (GPU 58–72 %).
* **ResNet-50** — GPU-bound everywhere (GPU ~90 %, flat epochs across all
  storage setups).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ALEXNET", "LENET", "MODELS", "RESNET50", "ModelProfile"]


@dataclass(frozen=True)
class ModelProfile:
    """Per-image compute costs characterizing one DL model.

    ``host_time_per_step_us`` is the per-step host-side cost (gradient
    all-reduce launch, optimizer, Python dispatch) that serializes with the
    GPU work but does not occupy the GPUs — it is what keeps measured GPU
    utilization below 100 % even for compute-bound models (the paper's
    ResNet-50 tops out near 90 %).
    """

    name: str
    gpu_time_per_image_us: float
    cpu_time_per_image_us: float
    host_time_per_step_us: float = 0.0
    #: compressed size the CPU cost is quoted for; decode/augment time
    #: scales linearly with the actual sample's bytes (JPEG decode is
    #: byte-proportional), so datasets with smaller images preprocess
    #: proportionally faster
    cpu_reference_bytes: int = 119_000
    #: fp32 gradient payload one data-parallel step synchronizes; None
    #: means the profile has no distributed-training calibration
    grad_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.gpu_time_per_image_us <= 0:
            raise ValueError(f"{self.name}: GPU time must be positive")
        if self.cpu_time_per_image_us < 0:
            raise ValueError(f"{self.name}: CPU time must be >= 0")
        if self.host_time_per_step_us < 0:
            raise ValueError(f"{self.name}: host time must be >= 0")
        if self.grad_bytes is not None and self.grad_bytes < 0:
            raise ValueError(f"{self.name}: grad_bytes must be >= 0")

    def step_time(self, batch_size: int, n_gpus: int) -> float:
        """GPU-busy seconds of one synchronous data-parallel step."""
        if batch_size < 1 or n_gpus < 1:
            raise ValueError("batch_size and n_gpus must be >= 1")
        per_gpu = -(-batch_size // n_gpus)  # ceil division: slowest GPU gates
        return per_gpu * self.gpu_time_per_image_us * 1e-6

    def host_time(self) -> float:
        """Host-side seconds serializing after each step (GPUs idle)."""
        return self.host_time_per_step_us * 1e-6

    def preprocess_time(self, payload_bytes: int | None = None) -> float:
        """Seconds of one core's work to preprocess one image.

        With ``payload_bytes`` given, the cost scales with the compressed
        sample size relative to :attr:`cpu_reference_bytes`.
        """
        base = self.cpu_time_per_image_us * 1e-6
        if payload_bytes is None:
            return base
        return base * payload_bytes / self.cpu_reference_bytes


LENET = ModelProfile(
    name="lenet",
    gpu_time_per_image_us=380.0,
    cpu_time_per_image_us=4300.0,
    host_time_per_step_us=5000.0,
    grad_bytes=250_000,  # ~62k params
)
ALEXNET = ModelProfile(
    name="alexnet",
    gpu_time_per_image_us=1040.0,
    cpu_time_per_image_us=4400.0,
    host_time_per_step_us=11000.0,
    grad_bytes=244_000_000,  # ~61M params
)
RESNET50 = ModelProfile(
    name="resnet50",
    gpu_time_per_image_us=1800.0,
    cpu_time_per_image_us=1500.0,
    host_time_per_step_us=6400.0,
    grad_bytes=102_000_000,  # ~25.5M params
)

#: lookup by name for CLI/benchmark plumbing
MODELS: dict[str, ModelProfile] = {m.name: m for m in (LENET, ALEXNET, RESNET50)}
