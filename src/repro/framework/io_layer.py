"""The pluggable reader interface — the paper's 6-LoC integration point.

The paper integrates MONARCH into TensorFlow by building a file-system
driver that replaces the POSIX ``pread`` with ``Monarch.read(filename,
offset, size)``.  Our framework reads shards exclusively through a
:class:`DataReader`; the vanilla baselines use :class:`PosixReader` (which
routes through the mount table to whatever backend owns the path) and the
MONARCH setup swaps in ``repro.core.middleware.MonarchReader`` — one
constructor argument, nothing else in the framework changes.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass
from typing import Any

from repro.storage.base import FileHandle, StorageError
from repro.storage.vfs import MountTable

__all__ = ["DataReader", "OpenFile", "PosixReader"]


@dataclass
class OpenFile:
    """What the framework holds for an open shard: name, size, token."""

    path: str
    size: int
    token: Any = None  # backend-specific (a FileHandle for POSIX)


class DataReader:
    """Interface the input pipeline reads training data through."""

    def open(self, path: str) -> Generator[Any, Any, OpenFile]:
        """Timed open of ``path``; returns an :class:`OpenFile`."""
        raise NotImplementedError

    def pread(self, f: OpenFile, offset: int, nbytes: int) -> Generator[Any, Any, int]:
        """Timed positional read; returns bytes transferred."""
        raise NotImplementedError

    def close(self, f: OpenFile) -> None:
        """Release any per-file state (untimed)."""
        return


class PosixReader(DataReader):
    """Default reader: straight through the mount table (the vanilla path)."""

    def __init__(self, mounts: MountTable) -> None:
        self.mounts = mounts

    def open(self, path: str) -> Generator[Any, Any, OpenFile]:
        handle: FileHandle = yield from self.mounts.open(path, "r")
        return OpenFile(path=path, size=handle.size, token=handle)

    def pread(self, f: OpenFile, offset: int, nbytes: int) -> Generator[Any, Any, int]:
        # The handle already knows its backend; returning the backend's
        # generator directly (no wrapper frame) means the caller's
        # ``yield from`` delegates straight into it — one generator frame
        # fewer on every hot-path resume.
        handle: FileHandle = f.token
        return handle.fs.pread(handle, offset, nbytes)

    # -- fused (continuation-style) protocol ---------------------------
    def fused_capable(self, paths: list[str]) -> bool:
        """True when every path's backend supports the ``*_begin`` calls.

        The fused reader state machine (see ``framework.pipeline``) only
        engages when the whole epoch can run continuation-style; a single
        unsupported backend (e.g. a fault-injecting wrapper) falls the
        pipeline back to the generator workers wholesale, so RNG draw
        order never depends on which shard hit which path.
        """
        try:
            for p in paths:
                fs, _ = self.mounts.resolve(p)
                if not (hasattr(fs, "pread_begin") and hasattr(fs, "open_begin")):
                    return False
        except StorageError:
            return False
        return True

    def open_begin(self, path: str, cb: Any) -> OpenFile:
        """Continuation-style open: returns the OpenFile synchronously,
        schedules ``cb(event)`` at the metadata-op completion instant."""
        fs, rel = self.mounts.resolve(path)
        handle: FileHandle = fs.open_begin(rel, cb)
        return OpenFile(path=path, size=handle.size, token=handle)

    def pread_begin(self, f: OpenFile, offset: int, nbytes: int, cb: Any) -> int:
        """Continuation-style pread: returns the transfer size
        synchronously, schedules ``cb(event)`` at completion."""
        handle: FileHandle = f.token
        return handle.fs.pread_begin(handle, offset, nbytes, cb)

    def pread_begin_bound(self, f: OpenFile) -> tuple[Any, FileHandle]:
        """Hot-loop form of :meth:`pread_begin`: the backend's bound
        ``pread_begin`` plus the handle to pass it, so a per-chunk loop
        pays one call instead of a delegation hop per read."""
        handle: FileHandle = f.token
        return handle.fs.pread_begin, handle
