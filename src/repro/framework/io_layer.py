"""The pluggable reader interface — the paper's 6-LoC integration point.

The paper integrates MONARCH into TensorFlow by building a file-system
driver that replaces the POSIX ``pread`` with ``Monarch.read(filename,
offset, size)``.  Our framework reads shards exclusively through a
:class:`DataReader`; the vanilla baselines use :class:`PosixReader` (which
routes through the mount table to whatever backend owns the path) and the
MONARCH setup swaps in ``repro.core.middleware.MonarchReader`` — one
constructor argument, nothing else in the framework changes.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass
from typing import Any

from repro.storage.base import FileHandle
from repro.storage.vfs import MountTable

__all__ = ["DataReader", "OpenFile", "PosixReader"]


@dataclass
class OpenFile:
    """What the framework holds for an open shard: name, size, token."""

    path: str
    size: int
    token: Any = None  # backend-specific (a FileHandle for POSIX)


class DataReader:
    """Interface the input pipeline reads training data through."""

    def open(self, path: str) -> Generator[Any, Any, OpenFile]:
        """Timed open of ``path``; returns an :class:`OpenFile`."""
        raise NotImplementedError

    def pread(self, f: OpenFile, offset: int, nbytes: int) -> Generator[Any, Any, int]:
        """Timed positional read; returns bytes transferred."""
        raise NotImplementedError

    def close(self, f: OpenFile) -> None:
        """Release any per-file state (untimed)."""
        return


class PosixReader(DataReader):
    """Default reader: straight through the mount table (the vanilla path)."""

    def __init__(self, mounts: MountTable) -> None:
        self.mounts = mounts

    def open(self, path: str) -> Generator[Any, Any, OpenFile]:
        handle: FileHandle = yield from self.mounts.open(path, "r")
        return OpenFile(path=path, size=handle.size, token=handle)

    def pread(self, f: OpenFile, offset: int, nbytes: int) -> Generator[Any, Any, int]:
        # The handle already knows its backend; dispatching on it directly
        # (rather than re-routing through the mount table) keeps one
        # generator frame off every hot-path resume.
        handle: FileHandle = f.token
        n = yield from handle.fs.pread(handle, offset, nbytes)
        return n
