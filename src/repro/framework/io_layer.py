"""The pluggable reader interface — the paper's 6-LoC integration point.

The paper integrates MONARCH into TensorFlow by building a file-system
driver that replaces the POSIX ``pread`` with ``Monarch.read(filename,
offset, size)``.  Our framework reads shards exclusively through a
:class:`DataReader`; the vanilla baselines use :class:`PosixReader` (which
routes through the mount table to whatever backend owns the path) and the
MONARCH setup swaps in ``repro.core.middleware.MonarchReader`` — one
constructor argument, nothing else in the framework changes.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass
from typing import Any

from repro.storage.base import FileHandle, StorageError
from repro.storage.vfs import MountTable

__all__ = ["DataReader", "OpenFile", "PosixReader", "continuation_capable"]

#: per-class memo for :func:`continuation_capable` (classes are few and
#: immutable at runtime; the check runs on per-read fast paths)
_CAP_BY_CLASS: dict[type, bool] = {}


def continuation_capable(fs: Any) -> bool:
    """Whether ``fs``'s *class* implements the ``*_begin`` protocol.

    Deliberately ignores instance-level ``__getattr__`` delegation: a
    fault-injection proxy forwards unknown attributes to the wrapped
    backend, so a plain ``hasattr`` check would route fused reads around
    the injector entirely (the delegated ``open_begin`` even returns
    handles bound to the *inner* filesystem).  Looking the methods up on
    the type keeps wrapped mounts on the generator path, where every
    operation passes through the wrapper.
    """
    cls = fs.__class__
    cap = _CAP_BY_CLASS.get(cls)
    if cap is None:
        cap = _CAP_BY_CLASS[cls] = (
            getattr(cls, "pread_begin", None) is not None
            and getattr(cls, "open_begin", None) is not None
        )
    return cap


@dataclass
class OpenFile:
    """What the framework holds for an open shard: name, size, token."""

    path: str
    size: int
    token: Any = None  # backend-specific (a FileHandle for POSIX)


class DataReader:
    """Interface the input pipeline reads training data through."""

    #: readers whose fused ``open_begin`` completes with no timed
    #: operation set this True; the fused reader FSM then chains straight
    #: into the first read in the caller's dispatch slot — exactly what a
    #: zero-yield generator ``open`` does
    open_is_sync = False

    def open(self, path: str) -> Generator[Any, Any, OpenFile]:
        """Timed open of ``path``; returns an :class:`OpenFile`."""
        raise NotImplementedError

    def pread(self, f: OpenFile, offset: int, nbytes: int) -> Generator[Any, Any, int]:
        """Timed positional read; returns bytes transferred."""
        raise NotImplementedError

    def close(self, f: OpenFile) -> None:
        """Release any per-file state (untimed)."""
        return


class PosixReader(DataReader):
    """Default reader: straight through the mount table (the vanilla path)."""

    def __init__(self, mounts: MountTable) -> None:
        self.mounts = mounts

    def open(self, path: str) -> Generator[Any, Any, OpenFile]:
        handle: FileHandle = yield from self.mounts.open(path, "r")
        return OpenFile(path=path, size=handle.size, token=handle)

    def pread(self, f: OpenFile, offset: int, nbytes: int) -> Generator[Any, Any, int]:
        # The handle already knows its backend; returning the backend's
        # generator directly (no wrapper frame) means the caller's
        # ``yield from`` delegates straight into it — one generator frame
        # fewer on every hot-path resume.
        handle: FileHandle = f.token
        return handle.fs.pread(handle, offset, nbytes)

    # -- fused (continuation-style) protocol ---------------------------
    def fused_capable(self, paths: list[str]) -> bool:
        """True when every path's backend supports the ``*_begin`` calls.

        The fused reader state machine (see ``framework.pipeline``) only
        engages when the whole epoch can run continuation-style; a single
        unsupported backend (e.g. a fault-injecting wrapper) falls the
        pipeline back to the generator workers wholesale, so RNG draw
        order never depends on which shard hit which path.  Capability is
        a *class* property (:func:`continuation_capable`) — a delegating
        wrapper must implement the protocol itself to count.
        """
        return self.fused_miss(paths) is None

    def fused_miss(self, paths: list[str]) -> str | None:
        """Why :meth:`fused_capable` declines, or None when it holds.

        ``backend:<Class>`` names the first backend whose class lacks the
        ``*_begin`` protocol; ``resolve:<path>`` marks a path no mount
        owns.  Surfaced in the RunReport meta so a capability regression
        shows up in telemetry instead of only in a profile.
        """
        p = ""
        try:
            for p in paths:
                fs, _ = self.mounts.resolve(p)
                if not continuation_capable(fs):
                    return f"backend:{type(fs).__name__}"
        except StorageError:
            return f"resolve:{p}"
        return None

    def open_begin(self, path: str, cb: Any) -> OpenFile:
        """Continuation-style open: returns the OpenFile synchronously,
        schedules ``cb(event)`` at the metadata-op completion instant."""
        fs, rel = self.mounts.resolve(path)
        handle: FileHandle = fs.open_begin(rel, cb)
        return OpenFile(path=path, size=handle.size, token=handle)

    def pread_begin(self, f: OpenFile, offset: int, nbytes: int, cb: Any) -> int:
        """Continuation-style pread: returns the transfer size
        synchronously, schedules ``cb(event)`` at completion."""
        handle: FileHandle = f.token
        return handle.fs.pread_begin(handle, offset, nbytes, cb)

    def pread_begin_bound(self, f: OpenFile) -> tuple[Any, FileHandle]:
        """Hot-loop form of :meth:`pread_begin`: the backend's bound
        ``pread_begin`` plus the handle to pass it, so a per-chunk loop
        pays one call instead of a delegation hop per read."""
        handle: FileHandle = f.token
        return handle.fs.pread_begin, handle
