"""Trace-replay serving workloads (non-epoch traffic on the simkernel).

Every experiment elsewhere in the repo drives the paper's 3-epoch
training loop; this package generates and replays the *other* traffic a
shared dataset/model store sees — skewed random-access re-reads, bursty
inference request streams, open-arrival job churn — so MONARCH's tier
hierarchy can be measured at steady state (per-window hit-rate,
latency percentiles) rather than by epoch makespan.

* :mod:`~repro.workload.spec` — :class:`WorkloadSpec` (frozen, cache-key
  canonical) and the named presets in :data:`WORKLOADS`.
* :mod:`~repro.workload.trace` — :class:`TraceRequest`/:class:`Trace`
  with deterministic JSONL (same seed ⇒ byte-identical file).
* :mod:`~repro.workload.generators` — seeded Zipfian / diurnal /
  job-churn trace generators.
* :mod:`~repro.workload.histogram` — the bounded-memory log-bucketed
  :class:`LatencyHistogram` behind the p50/p99/p999 gates.
* :mod:`~repro.workload.replay` — :class:`ReplayDriver`: feeds a trace
  through any reader stack on the simulation clock, with explicit
  steady-state window accounting (:class:`WindowClock`).
"""

from repro.workload.generators import generate_trace
from repro.workload.histogram import LatencyHistogram
from repro.workload.replay import ReplayDriver, ReplayResult, WindowClock
from repro.workload.spec import WORKLOADS, WorkloadSpec
from repro.workload.trace import Trace, TraceRequest

__all__ = [
    "LatencyHistogram",
    "ReplayDriver",
    "ReplayResult",
    "Trace",
    "TraceRequest",
    "WindowClock",
    "WORKLOADS",
    "WorkloadSpec",
    "generate_trace",
]
