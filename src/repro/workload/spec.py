"""Workload specifications: what traffic to generate, at full scale.

A :class:`WorkloadSpec` is frozen and built only from plain values, so
the run-cache canonicalizer (:func:`repro.experiments.executor._plain`)
keys it like any other spec component — changing a knob changes the
cache key.

Rates and counts are given at **full scale** and multiplied by the run's
``scale`` at generation time.  Because both the request count and the
arrival rate shrink together, the trace *horizon* (requests / rate) is
scale-invariant: the cache gets the same number of simulated seconds to
warm at 1/4096 as at full scale, which is what makes the FIG-SERVE
warm-cache p99 gate meaningful at test scales.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WORKLOADS", "WorkloadSpec"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Full description of one serving workload (full-scale units)."""

    name: str
    #: "zipf" | "diurnal" | "churn"
    kind: str
    #: total read requests at full scale (zipf; per-run after × scale)
    requests: int = 0
    #: aggregate arrival rate at full scale, requests/s (× scale per run)
    rate_rps: float = 0.0
    #: Zipf skew exponent for file popularity (higher = more skewed)
    zipf_s: float = 1.1
    #: bytes per read; 0 = the dataset's mean record size
    read_bytes: int = 0
    #: arrival horizon in seconds (diurnal; scale-invariant by design)
    duration_s: float = 0.0
    #: relative amplitude of the sinusoidal load curve, in [0, 1)
    diurnal_amplitude: float = 0.0
    #: period of one load cycle, seconds
    diurnal_period_s: float = 0.0
    #: number of churning jobs (churn)
    n_jobs: int = 0
    #: mean gap between job arrivals, seconds
    job_interarrival_s: float = 0.0
    #: reads per job at full scale (× scale per run)
    job_reads: int = 0
    #: per-job read rate at full scale, requests/s (× scale per run)
    job_rate_rps: float = 0.0
    #: each job's dataset as a fraction of the run's dataset
    job_dataset_frac: float = 0.05
    #: steady-state accounting windows over the arrival horizon
    windows: int = 20
    #: fraction of the horizon treated as cache warm-up
    warmup_frac: float = 0.5

    def describe(self) -> str:
        """One-line identification for logs and error messages."""
        return f"workload({self.name}: {self.kind})"


#: named presets selectable via ``--workload`` on the CLI
WORKLOADS: dict[str, WorkloadSpec] = {
    # Skewed random-access re-reads (the TF I/O characterization's
    # dominant pattern): open arrivals at a constant rate, Zipfian file
    # popularity.  400k requests over ~11 simulated minutes at any scale.
    "serve-zipf": WorkloadSpec(
        name="serve-zipf",
        kind="zipf",
        requests=400_000,
        rate_rps=600.0,
        zipf_s=1.1,
    ),
    # An inference-serving stream with a diurnal load curve: an
    # inhomogeneous Poisson process whose rate swings ±80 % around the
    # mean over 150 s cycles (4 cycles across the horizon).
    "serve-diurnal": WorkloadSpec(
        name="serve-diurnal",
        kind="diurnal",
        rate_rps=600.0,
        zipf_s=1.1,
        duration_s=600.0,
        diurnal_amplitude=0.8,
        diurnal_period_s=150.0,
    ),
    # Open-arrival job churn against the tenancy arbiter: jobs register,
    # stream reads over private datasets under fair-share caps, depart.
    "serve-churn": WorkloadSpec(
        name="serve-churn",
        kind="churn",
        zipf_s=1.1,
        n_jobs=4,
        job_interarrival_s=60.0,
        job_reads=40_000,
        job_rate_rps=200.0,
        job_dataset_frac=0.05,
    ),
}
