"""Bounded-memory latency histogram for steady-state percentile gates.

Serving traces produce one latency sample per request — hundreds of
thousands at full scale — but the report layer must stay bounded and
deterministic.  :class:`LatencyHistogram` buckets samples on a
logarithmic grid (fixed buckets-per-decade over a fixed range), so
memory is O(buckets) regardless of trace length and the percentile
error is bounded by the bucket width ratio (``10 ** (1/bins_per_decade)``,
< 10 % at the default 24 buckets per decade).

Percentiles use the nearest-rank definition (``ceil(q * n)``), matching
the exact ``sorted(xs)[ceil(q*n) - 1]`` on small traces up to bucket
resolution — the equivalence test in ``tests/workload`` pins this.
Buckets are stored sparsely and serialized sorted, so two histograms
fed the same samples serialize byte-identically.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = ["LatencyHistogram"]

#: default grid: 24 buckets per decade over [1 µs, 1e6 s)
_BINS_PER_DECADE = 24
_LO = 1e-6
_DECADES = 12


class LatencyHistogram:
    """Log-bucketed sample accumulator with deterministic percentiles."""

    __slots__ = ("bins_per_decade", "lo", "n_buckets", "buckets",
                 "count", "sum_s", "min_s", "max_s")

    def __init__(self, bins_per_decade: int = _BINS_PER_DECADE,
                 lo: float = _LO, decades: int = _DECADES) -> None:
        if bins_per_decade < 1 or lo <= 0.0 or decades < 1:
            raise ValueError("invalid histogram grid")
        self.bins_per_decade = bins_per_decade
        self.lo = lo
        self.n_buckets = bins_per_decade * decades
        #: sparse bucket index -> sample count
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.sum_s = 0.0
        self.min_s = math.inf
        self.max_s = 0.0

    # -- accumulation -----------------------------------------------------
    def _index(self, value: float) -> int:
        """Bucket index of one sample; out-of-range clamps to the edges."""
        if value <= self.lo:
            return 0
        idx = int(math.log10(value / self.lo) * self.bins_per_decade)
        return min(idx, self.n_buckets - 1)

    def add(self, value: float) -> None:
        """Record one latency sample (seconds; negatives are clamped to 0)."""
        value = max(0.0, float(value))
        idx = self._index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1
        self.count += 1
        self.sum_s += value
        self.min_s = min(self.min_s, value)
        self.max_s = max(self.max_s, value)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (same grid) into this one."""
        if (other.bins_per_decade, other.lo, other.n_buckets) != (
                self.bins_per_decade, self.lo, self.n_buckets):
            raise ValueError("cannot merge histograms with different grids")
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.count += other.count
        self.sum_s += other.sum_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)

    # -- summaries --------------------------------------------------------
    def _bucket_value(self, idx: int) -> float:
        """Representative value of a bucket: its geometric midpoint."""
        return self.lo * 10.0 ** ((idx + 0.5) / self.bins_per_decade)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in (0, 1]); 0.0 when empty.

        Never exceeds the exact tracked maximum, so the top percentile
        of a single-bucket histogram reports the real worst sample.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if seen >= rank:
                return min(self._bucket_value(idx), self.max_s)
        return self.max_s  # pragma: no cover - rank <= count always hits

    @property
    def p50(self) -> float:
        """Median latency (seconds)."""
        return self.percentile(0.50)

    @property
    def p99(self) -> float:
        """99th-percentile latency (seconds)."""
        return self.percentile(0.99)

    @property
    def p999(self) -> float:
        """99.9th-percentile latency (seconds)."""
        return self.percentile(0.999)

    @property
    def mean_s(self) -> float:
        """Exact arithmetic mean of all samples (seconds)."""
        return self.sum_s / self.count if self.count else 0.0

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form; bucket keys sorted for determinism."""
        return {
            "bins_per_decade": self.bins_per_decade,
            "lo": self.lo,
            "count": self.count,
            "sum_s": self.sum_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            "buckets": {str(i): self.buckets[i] for i in sorted(self.buckets)},
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "LatencyHistogram":
        """Inverse of :meth:`to_dict`."""
        h = cls(bins_per_decade=int(raw["bins_per_decade"]))
        h.buckets = {int(i): int(n) for i, n in raw["buckets"].items()}
        h.count = int(raw["count"])
        h.sum_s = float(raw["sum_s"])
        h.max_s = float(raw["max_s"])
        h.min_s = float(raw["min_s"]) if h.count else math.inf
        return h
