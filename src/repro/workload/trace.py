"""Trace containers: a replayable request stream with deterministic JSONL.

A trace is a time-ordered list of :class:`TraceRequest` records plus the
metadata needed to replay it (workload name, seed, generator knobs).
Serialization is line-oriented JSON with sorted keys: the same
(spec, seed, scale) triple always produces a byte-identical file, which
is what the replay-determinism property tests pin.  ``--trace`` on the
CLI loads one of these files and replays it directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["Trace", "TraceRequest"]

#: request kinds, in same-instant dispatch order: a job must start before
#: its first read, and end only after its last one
KIND_ORDER = {"job_start": 0, "read": 1, "job_end": 2}


@dataclass(frozen=True)
class TraceRequest:
    """One replayable event: a read, or a job arriving/departing."""

    #: arrival offset in seconds from replay start (post-init)
    t: float
    kind: str = "read"
    #: index into the namespace's file list (per-job list for churn)
    file_index: int = 0
    offset: int = 0
    nbytes: int = 0
    #: owning job id; "" = the shared single-tenant namespace
    job: str = ""
    #: fair share, only meaningful on ``job_start``
    share: float = 0.0

    def sort_key(self) -> tuple:
        """Deterministic replay order: time, then kind, then identity."""
        return (self.t, KIND_ORDER.get(self.kind, 9), self.job,
                self.file_index, self.offset)


@dataclass
class Trace:
    """A generated (or file-loaded) request stream plus its provenance."""

    workload: str = ""
    seed: int = 0
    #: generator knobs / derived facts (plain JSON; e.g. popularity order)
    meta: dict[str, Any] = field(default_factory=dict)
    requests: list[TraceRequest] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        """Arrival horizon: the last request's offset (0.0 when empty)."""
        return self.requests[-1].t if self.requests else 0.0

    @property
    def n_reads(self) -> int:
        """Read requests only (job markers excluded)."""
        return sum(1 for r in self.requests if r.kind == "read")

    def jobs(self) -> list[str]:
        """Distinct job ids in first-arrival order ("" excluded)."""
        seen: list[str] = []
        for r in self.requests:
            if r.job and r.job not in seen:
                seen.append(r.job)
        return seen

    # -- serialization ----------------------------------------------------
    def to_jsonl(self) -> str:
        """Deterministic line-oriented form: header line, one line per request."""
        header = {"workload": self.workload, "seed": self.seed, "meta": self.meta}
        lines = [json.dumps(header, sort_keys=True)]
        for r in self.requests:
            row: dict[str, Any] = {"t": r.t, "kind": r.kind}
            if r.kind == "read":
                row.update(file_index=r.file_index, offset=r.offset,
                           nbytes=r.nbytes)
            if r.job:
                row["job"] = r.job
            if r.kind == "job_start":
                row["share"] = r.share
            lines.append(json.dumps(row, sort_keys=True))
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        """Inverse of :meth:`to_jsonl`."""
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            raise ValueError("empty trace file")
        header = json.loads(lines[0])
        if not isinstance(header, dict) or "workload" not in header:
            raise ValueError("trace file has no header line")
        requests = []
        for ln in lines[1:]:
            row = json.loads(ln)
            requests.append(TraceRequest(
                t=float(row["t"]),
                kind=row.get("kind", "read"),
                file_index=int(row.get("file_index", 0)),
                offset=int(row.get("offset", 0)),
                nbytes=int(row.get("nbytes", 0)),
                job=row.get("job", ""),
                share=float(row.get("share", 0.0)),
            ))
        return cls(
            workload=header["workload"],
            seed=int(header.get("seed", 0)),
            meta=header.get("meta", {}),
            requests=requests,
        )

    def save(self, path: str | Path) -> None:
        """Write the JSONL form to ``path``."""
        Path(path).write_text(self.to_jsonl(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Load a trace file written by :meth:`save`."""
        return cls.from_jsonl(Path(path).read_text(encoding="utf-8"))
