"""Seeded trace generators: Zipfian, diurnal, and job-churn traffic.

Every draw comes from a named :class:`~repro.simkernel.rng.RngRegistry`
stream, so a (spec, seed, scale) triple always yields the same trace —
byte-identical through :meth:`~repro.workload.trace.Trace.to_jsonl` —
regardless of what other streams the run consumes.

Counts and rates in the spec are full-scale; both are multiplied by the
run's ``scale`` here, which keeps the arrival *horizon* (count / rate)
constant across scales (see :mod:`repro.workload.spec`).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.workload.spec import WorkloadSpec
from repro.workload.trace import Trace, TraceRequest

__all__ = ["generate_trace", "zipf_popularity"]


def zipf_popularity(n_files: int, s: float, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """A random popularity order plus Zipf(s) probabilities over ranks.

    Returns ``(order, probs)``: ``order[k]`` is the file index holding
    popularity rank ``k`` and ``probs[k] ∝ (k + 1) ** -s`` its request
    probability.  The order is a seeded permutation, so popularity is
    decoupled from on-disk layout.
    """
    if n_files < 1:
        raise ValueError("need at least one file")
    order = rng.permutation(n_files)
    weights = np.arange(1, n_files + 1, dtype=np.float64) ** -s
    return order, weights / weights.sum()


def _scaled_count(full: int, scale: float) -> int:
    return max(1, int(round(full * scale)))


def _scaled_rate(full: float, scale: float) -> float:
    rate = full * scale
    if rate <= 0.0:
        raise ValueError(f"workload rate must be positive, got {full} * {scale}")
    return rate


def _read_requests(
    ts: np.ndarray,
    ranks: np.ndarray,
    order: np.ndarray,
    sizes: Sequence[int],
    read_bytes: int,
    off_rng: np.random.Generator,
    job: str = "",
) -> list[TraceRequest]:
    """Reads at ``ts`` against popularity-ranked files, uniform offsets."""
    u = off_rng.random(len(ts))
    out = []
    for t, rank, frac in zip(ts, ranks, u):
        idx = int(order[rank])
        size = int(sizes[idx])
        nbytes = min(read_bytes, size)
        offset = int(frac * (size - nbytes + 1))
        out.append(TraceRequest(t=float(t), kind="read", file_index=idx,
                                offset=offset, nbytes=nbytes, job=job))
    return out


def _gen_zipf(spec: WorkloadSpec, sizes: Sequence[int], scale: float,
              rngs, read_bytes: int) -> Trace:
    order, probs = zipf_popularity(len(sizes), spec.zipf_s,
                                   rngs.stream("workload-popularity"))
    n = _scaled_count(spec.requests, scale)
    rate = _scaled_rate(spec.rate_rps, scale)
    gaps = rngs.stream("workload-arrivals").exponential(1.0 / rate, size=n)
    ts = np.cumsum(gaps)
    ranks = rngs.stream("workload-files").choice(len(sizes), size=n, p=probs)
    requests = _read_requests(ts, ranks, order, sizes, read_bytes,
                              rngs.stream("workload-offsets"))
    meta = {
        "kind": "zipf",
        "rate_rps": rate,
        "zipf_s": spec.zipf_s,
        "popularity": [int(i) for i in order],
    }
    return Trace(workload=spec.name, meta=meta, requests=requests)


def _gen_diurnal(spec: WorkloadSpec, sizes: Sequence[int], scale: float,
                 rngs, read_bytes: int) -> Trace:
    """Inhomogeneous Poisson arrivals by thinning a rate-``lam_max`` process.

    ``rate(t) = mean * (1 + amplitude * sin(2π t / period))`` — candidates
    arrive at the peak rate and survive with probability
    ``rate(t) / lam_max``, the standard exact thinning construction.
    """
    if not 0.0 <= spec.diurnal_amplitude < 1.0:
        raise ValueError("diurnal_amplitude must be in [0, 1)")
    if spec.duration_s <= 0.0 or spec.diurnal_period_s <= 0.0:
        raise ValueError("diurnal workloads need duration_s and diurnal_period_s")
    mean_rate = _scaled_rate(spec.rate_rps, scale)
    amp = spec.diurnal_amplitude
    lam_max = mean_rate * (1.0 + amp)
    arr_rng = rngs.stream("workload-arrivals")

    cand: list[float] = []
    t = 0.0
    # draw candidate gaps in deterministic chunks until past the horizon
    while t < spec.duration_s:
        chunk = arr_rng.exponential(1.0 / lam_max,
                                    size=max(64, int(lam_max * spec.duration_s / 4)))
        for g in chunk:
            t += float(g)
            if t >= spec.duration_s:
                break
            cand.append(t)
    cand_arr = np.array(cand, dtype=np.float64)
    accept_p = (1.0 + amp * np.sin(2.0 * math.pi * cand_arr / spec.diurnal_period_s)) / (1.0 + amp)
    keep = rngs.stream("workload-thinning").random(len(cand_arr)) < accept_p
    ts = cand_arr[keep]
    if len(ts) == 0:  # pathological tiny scale: keep one request at mid-horizon
        ts = np.array([spec.duration_s / 2.0])

    order, probs = zipf_popularity(len(sizes), spec.zipf_s,
                                   rngs.stream("workload-popularity"))
    ranks = rngs.stream("workload-files").choice(len(sizes), size=len(ts), p=probs)
    requests = _read_requests(ts, ranks, order, sizes, read_bytes,
                              rngs.stream("workload-offsets"))
    meta = {
        "kind": "diurnal",
        "mean_rate_rps": mean_rate,
        "amplitude": amp,
        "period_s": spec.diurnal_period_s,
        "duration_s": spec.duration_s,
        "popularity": [int(i) for i in order],
    }
    return Trace(workload=spec.name, meta=meta, requests=requests)


def _gen_churn(spec: WorkloadSpec, scale: float, rngs,
               read_bytes: int, job_sizes: Sequence[Sequence[int]]) -> Trace:
    if spec.n_jobs < 1:
        raise ValueError("churn workloads need n_jobs >= 1")
    if len(job_sizes) != spec.n_jobs:
        raise ValueError(f"expected {spec.n_jobs} per-job size lists, got {len(job_sizes)}")
    # Job arrivals are cluster churn, not request traffic: their cadence
    # does not scale.  The first job lands at t=0 so the replay is never
    # idle at the start.
    job_rng = rngs.stream("workload-jobs")
    gaps = job_rng.exponential(spec.job_interarrival_s, size=spec.n_jobs)
    starts = np.concatenate(([0.0], np.cumsum(gaps)[:-1]))

    requests: list[TraceRequest] = []
    reads_per_job = _scaled_count(spec.job_reads, scale)
    rate = _scaled_rate(spec.job_rate_rps, scale)
    for i, start in enumerate(starts):
        job = f"job{i + 1}"
        sizes = job_sizes[i]
        order, probs = zipf_popularity(len(sizes), spec.zipf_s,
                                       rngs.stream(f"workload-popularity-{job}"))
        jgaps = rngs.stream(f"workload-arrivals-{job}").exponential(
            1.0 / rate, size=reads_per_job)
        ts = float(start) + np.cumsum(jgaps)
        ranks = rngs.stream(f"workload-files-{job}").choice(
            len(sizes), size=reads_per_job, p=probs)
        requests.append(TraceRequest(t=float(start), kind="job_start",
                                     job=job, share=1.0))
        requests.extend(_read_requests(ts, ranks, order, sizes, read_bytes,
                                       rngs.stream(f"workload-offsets-{job}"),
                                       job=job))
        requests.append(TraceRequest(t=float(ts[-1]), kind="job_end", job=job))

    requests.sort(key=TraceRequest.sort_key)
    meta = {
        "kind": "churn",
        "n_jobs": spec.n_jobs,
        "rate_rps": rate,
        "reads_per_job": reads_per_job,
        "job_starts": [float(s) for s in starts],
    }
    return Trace(workload=spec.name, meta=meta, requests=requests)


def generate_trace(
    spec: WorkloadSpec,
    sizes: Sequence[int],
    scale: float,
    rngs,
    *,
    mean_record_bytes: int = 0,
    job_sizes: Sequence[Sequence[int]] | None = None,
) -> Trace:
    """Generate the request stream for ``spec`` over a file namespace.

    ``sizes`` are the byte sizes of the shared namespace's files, in file
    order; churn workloads instead read their own datasets, described by
    ``job_sizes`` (one size list per job).  ``rngs`` is the run's
    :class:`~repro.simkernel.rng.RngRegistry`; all draws come from
    ``workload-*`` streams.  ``mean_record_bytes`` supplies the read size
    when the spec leaves ``read_bytes`` at 0.
    """
    read_bytes = spec.read_bytes or mean_record_bytes
    if read_bytes < 1:
        raise ValueError("read size must be positive; set spec.read_bytes "
                         "or pass mean_record_bytes")
    if spec.kind == "zipf":
        trace = _gen_zipf(spec, sizes, scale, rngs, read_bytes)
    elif spec.kind == "diurnal":
        trace = _gen_diurnal(spec, sizes, scale, rngs, read_bytes)
    elif spec.kind == "churn":
        if job_sizes is None:
            raise ValueError("churn workloads need job_sizes")
        trace = _gen_churn(spec, scale, rngs, read_bytes, job_sizes)
    else:
        raise ValueError(f"unknown workload kind {spec.kind!r}")
    trace.seed = rngs.seed
    trace.meta["scale"] = scale
    trace.meta["read_bytes"] = read_bytes
    return trace
