"""Replay a trace through any reader stack on the simulation clock.

:class:`ReplayDriver` is the serving-side counterpart of the epoch
trainer: a master dispatcher process releases requests at their trace
arrival times, each request runs as its own simulated process (open once
per file — a server-side FD cache — then positional read), and a
:class:`WindowClock` partitions the run into fixed steady-state windows.

Window closing is **explicit**: the dispatcher wakes at every window
edge — between arrivals and while draining stragglers — and closes
exactly one window per edge, sampling tier hit counters and occupancy at
that instant.  When the run ends exactly on a window boundary,
:meth:`WindowClock.finalize` refuses to emit a zero-width trailing
window (the classic fencepost that used to leave an empty/garbage final
entry in windowed series under non-epoch workloads); the regression
tests in ``tests/workload`` pin this.

Latency is measured open-arrival style: completion time minus *scheduled*
arrival, so queueing delay under overload is part of the number, as in
any real serving benchmark.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from dataclasses import dataclass, field
from typing import Any

from repro.workload.histogram import LatencyHistogram
from repro.workload.trace import Trace, TraceRequest

__all__ = ["ReplayDriver", "ReplayResult", "WindowClock"]

#: slack for float comparisons against accumulated window edges
_EDGE_EPS = 1e-9


class WindowClock:
    """Explicit, in-order window closing over ``[t0, ∞)``.

    The owner *must* call :meth:`close` exactly at each edge (in time
    order) and :meth:`finalize` once at the end; there is no implicit
    bucketing, so a window can never be emitted empty by accident.
    """

    def __init__(self, t0: float, window_s: float) -> None:
        if window_s <= 0.0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self.t0 = t0
        self.window_s = window_s
        #: everything before this instant is inside an already-closed window
        self.closed_until = t0
        self.n_closed = 0

    def next_edge(self) -> float:
        """The instant the currently open window ends."""
        return self.closed_until + self.window_s

    def close(self) -> tuple[float, float]:
        """Close the open window at its edge; returns ``(t_start, t_end)``."""
        start = self.closed_until
        self.closed_until = self.next_edge()
        self.n_closed += 1
        return start, self.closed_until

    def finalize(self, t_end: float) -> tuple[float, float] | None:
        """Close the trailing partial window ``[closed_until, t_end]``.

        Returns ``None`` — emitting nothing — when the run ended exactly
        on (or before) an already-closed edge: the explicit-closing
        contract is that the final window only exists if time actually
        elapsed inside it.
        """
        if t_end <= self.closed_until + _EDGE_EPS:
            return None
        start = self.closed_until
        self.closed_until = t_end
        self.n_closed += 1
        return start, t_end


@dataclass
class ReplayResult:
    """What one finished replay measured (simulated units throughout)."""

    n_requests: int = 0
    completed: int = 0
    #: namespace/metadata initialization before the first arrival
    init_time_s: float = 0.0
    #: replay span on the sim clock (arrivals start at ``t_start``)
    t_start: float = 0.0
    t_end: float = 0.0
    window_s: float = 0.0
    #: offset from ``t_start`` after which windows count as warm
    warmup_s: float = 0.0
    #: closed steady-state windows, in order (see ReplayDriver._close)
    windows: list[dict[str, Any]] = field(default_factory=list)
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    warm_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    #: middleware hit rate over the whole replay / over warm windows only
    hit_rate: float = 0.0
    warm_hit_rate: float = 0.0

    @property
    def duration_s(self) -> float:
        """Replay span (init excluded)."""
        return self.t_end - self.t_start


class ReplayDriver:
    """Feed a trace through reader stacks, window by explicit window.

    ``reader``/``paths`` serve the shared (job ``""``) namespace.  For
    churn traces, ``job_paths`` maps each job id to its file list and
    ``job_setup(job_id, share)`` is a timed generator run at the job's
    ``job_start`` instant, returning that job's reader (e.g. register
    with the middleware, build the namespace, hand back the bound
    :class:`~repro.core.middleware.MonarchReader`); reads of a job wait
    on its setup gate.  With ``job_setup=None`` jobs share ``reader``.

    ``hit_fn`` returns cumulative ``(middleware_reads, pfs_reads)`` and
    ``occupancy_fn`` the current per-tier occupancy in bytes; both are
    sampled at every window edge.
    """

    def __init__(
        self,
        sim: Any,
        trace: Trace,
        reader: Any,
        paths: list[str],
        *,
        windows: int = 20,
        warmup_frac: float = 0.5,
        job_paths: dict[str, list[str]] | None = None,
        job_setup: Callable[[str, float], Generator[Any, Any, Any]] | None = None,
        hit_fn: Callable[[], tuple[int, int]] | None = None,
        occupancy_fn: Callable[[], dict[str, int]] | None = None,
        init_hook: Callable[[], Generator[Any, Any, None]] | None = None,
    ) -> None:
        if windows < 1:
            raise ValueError(f"windows must be >= 1, got {windows}")
        if not 0.0 <= warmup_frac < 1.0:
            raise ValueError(f"warmup_frac must be in [0, 1), got {warmup_frac}")
        self.sim = sim
        self.trace = trace
        self.windows = windows
        self.warmup_frac = warmup_frac
        self.job_setup = job_setup
        self.hit_fn = hit_fn
        self.occupancy_fn = occupancy_fn
        self.init_hook = init_hook
        self._paths: dict[str, list[str]] = {"": paths}
        if job_paths:
            self._paths.update(job_paths)
        self._readers: dict[str, Any] = {"": reader}
        self._gates: dict[str, Any] = {}
        self._open: dict[tuple[str, int], Any] = {}
        self.result = ReplayResult(n_requests=trace.n_reads)
        # live window accumulators
        self._clock: WindowClock | None = None
        self._warm_start = 0.0
        self._cur_completed = 0
        self._cur_lat_sum = 0.0
        self._prev_reads = 0
        self._prev_pfs = 0

    # -- window accounting ------------------------------------------------
    def _sample_hits(self) -> tuple[int, int]:
        return self.hit_fn() if self.hit_fn is not None else (0, 0)

    def _close(self, span: tuple[float, float] | None) -> None:
        """Record one explicitly closed window (no-op for a None span)."""
        if span is None:
            return
        t_start, t_end = span
        reads, pfs = self._sample_hits()
        d_reads = reads - self._prev_reads
        d_pfs = pfs - self._prev_pfs
        self._prev_reads, self._prev_pfs = reads, pfs
        entry: dict[str, Any] = {
            "index": len(self.result.windows),
            "t_start": t_start,
            "t_end": t_end,
            "completed": self._cur_completed,
            "mean_latency_s": (self._cur_lat_sum / self._cur_completed
                               if self._cur_completed else 0.0),
            "reads": d_reads,
            "pfs_reads": d_pfs,
            "hit_rate": 1.0 - d_pfs / d_reads if d_reads else 0.0,
        }
        if self.occupancy_fn is not None:
            entry["occupancy"] = self.occupancy_fn()
        self.result.windows.append(entry)
        self._cur_completed = 0
        self._cur_lat_sum = 0.0

    def _flush_tail(self) -> None:
        """Fold work landing exactly on the final closed edge into it.

        When the run ends exactly on a window boundary, :meth:`WindowClock.
        finalize` emits no trailing window — but completions dispatched *at*
        that instant (after the edge closed) still need a home, or the
        window series would sum to less than ``completed``.  They belong to
        the instant the last window closed, so they are merged into it.
        """
        reads, pfs = self._sample_hits()
        d_reads = reads - self._prev_reads
        d_pfs = pfs - self._prev_pfs
        self._prev_reads, self._prev_pfs = reads, pfs
        if self._cur_completed == 0 and d_reads == 0:
            return
        if not self.result.windows:
            # degenerate zero-span trace: everything happened at t0
            t0 = self._clock.t0 if self._clock is not None else 0.0
            self.result.windows.append({
                "index": 0, "t_start": t0, "t_end": t0,
                "completed": 0, "mean_latency_s": 0.0,
                "reads": 0, "pfs_reads": 0, "hit_rate": 0.0,
            })
        w = self.result.windows[-1]
        total = w["completed"] + self._cur_completed
        if total:
            w["mean_latency_s"] = (
                w["mean_latency_s"] * w["completed"] + self._cur_lat_sum
            ) / total
        w["completed"] = total
        w["reads"] += d_reads
        w["pfs_reads"] += d_pfs
        w["hit_rate"] = 1.0 - w["pfs_reads"] / w["reads"] if w["reads"] else 0.0
        self._cur_completed = 0
        self._cur_lat_sum = 0.0

    def _note_completion(self, due: float) -> None:
        latency = self.sim.now - due
        self.result.latency.add(latency)
        self.result.completed += 1
        if due >= self._warm_start - _EDGE_EPS:
            self.result.warm_latency.add(latency)
        self._cur_completed += 1
        self._cur_lat_sum += latency

    # -- per-request process ----------------------------------------------
    def _request(self, req: TraceRequest, due: float) -> Generator[Any, Any, None]:
        gate = self._gates.get(req.job)
        if gate is not None and not gate.processed:
            yield gate
        reader = self._readers[req.job]
        key = (req.job, req.file_index)
        f = self._open.get(key)
        if f is None:
            f = yield from reader.open(self._paths[req.job][req.file_index])
            self._open[key] = f
        yield from reader.pread(f, req.offset, req.nbytes)
        self._note_completion(due)

    def _start_job(self, req: TraceRequest):
        """Spawn a job's timed setup; its gate releases queued reads."""
        gate = self._gates[req.job]

        def boot() -> Generator[Any, Any, None]:
            assert self.job_setup is not None
            reader = yield from self.job_setup(req.job, req.share or 1.0)
            self._readers[req.job] = reader
            gate.succeed()

        return self.sim.spawn(boot(), name=f"job-start:{req.job}")

    # -- the dispatcher ----------------------------------------------------
    def run(self) -> Generator[Any, Any, ReplayResult]:
        """The master process: init, dispatch, drain, finalize."""
        sim = self.sim
        res = self.result
        t_boot = sim.now
        if self.init_hook is not None:
            yield from self.init_hook()
        res.init_time_s = sim.now - t_boot
        t0 = sim.now
        res.t_start = t0

        horizon = max(self.trace.duration_s, 1e-6)
        res.window_s = horizon / self.windows
        res.warmup_s = self.warmup_frac * horizon
        self._warm_start = t0 + res.warmup_s
        self._clock = clock = WindowClock(t0, res.window_s)
        self._prev_reads, self._prev_pfs = self._sample_hits()

        for job in self.trace.jobs():
            self._gates[job] = sim.event()

        procs = []
        for req in self.trace.requests:
            due = t0 + req.t
            # wake at (and close) every window edge before this arrival
            while clock.next_edge() <= due + _EDGE_EPS:
                edge = clock.next_edge()
                if edge > sim.now:
                    yield sim.timeout(edge - sim.now)
                self._close(clock.close())
            if due > sim.now:
                yield sim.timeout(due - sim.now)
            if req.kind == "job_start":
                if self.job_setup is None:
                    self._readers[req.job] = self._readers[""]
                    self._paths.setdefault(req.job, self._paths[""])
                    self._gates[req.job].succeed()
                else:
                    procs.append(self._start_job(req))
            elif req.kind == "read":
                procs.append(sim.spawn(self._request(req, due),
                                       name=f"req-{len(procs)}"))
            # job_end is a trace bookkeeping marker; nothing to do

        # drain in-flight requests, still closing windows edge by edge
        if procs:
            done = sim.all_of(procs)
            while not done.triggered:
                yield sim.any_of([done, sim.timeout(clock.next_edge() - sim.now)])
                while clock.next_edge() <= sim.now + _EDGE_EPS:
                    self._close(clock.close())
        res.t_end = sim.now
        span = clock.finalize(sim.now)
        if span is None:
            self._flush_tail()
        else:
            self._close(span)

        res.hit_rate = self._overall_hit_rate()
        res.warm_hit_rate = self._warm_hit_rate()
        return res

    # -- summaries --------------------------------------------------------
    def _overall_hit_rate(self) -> float:
        reads, pfs = self._sample_hits()
        if reads == 0:
            return 0.0
        return 1.0 - pfs / reads

    def _warm_hit_rate(self) -> float:
        reads = pfs = 0
        for w in self.result.windows:
            if w["t_start"] >= self._warm_start - _EDGE_EPS:
                reads += w["reads"]
                pfs += w["pfs_reads"]
        if reads == 0:
            return 0.0
        return 1.0 - pfs / reads
