"""A small counter/gauge/histogram registry.

Used by examples and diagnostics to collect named measurements without
threading bespoke dataclasses everywhere.  Deliberately minimal: names map
to floats (gauges), ints (counters) or sample lists (histograms).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["HistogramSummary", "MetricsRegistry"]


@dataclass(frozen=True)
class HistogramSummary:
    """Summary statistics of one histogram."""

    count: int
    mean: float
    std: float
    min: float
    max: float
    p50: float
    p95: float


@dataclass
class MetricsRegistry:
    """Named counters, gauges and histograms."""

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, list[float]] = field(default_factory=dict)

    def incr(self, name: str, by: int = 1) -> None:
        """Increment counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + by

    def set_counter(self, name: str, value: int) -> None:
        """Set counter ``name`` to an absolute value.

        For publishing snapshot-valued counters (lifetime totals owned by
        some other object): re-publishing overwrites instead of
        double-counting, so the registry always mirrors the source.
        """
        self.counters[name] = int(value)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name``."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Append a histogram sample."""
        self.histograms.setdefault(name, []).append(float(value))

    def as_dict(self) -> dict[str, dict]:
        """Plain sorted-key snapshot of every counter/gauge/histogram.

        Histograms are rendered as their summaries (raw samples stay
        internal), so the snapshot is stable, compact and JSON-ready —
        the shape the CLI and the grid executor surface to users.
        """
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: vars(self.summary(name))
                for name in sorted(self.histograms)
                if self.histograms[name]
            },
        }

    def summary(self, name: str) -> HistogramSummary:
        """Summarize histogram ``name`` (KeyError if absent or empty)."""
        samples = self.histograms[name]
        if not samples:
            raise KeyError(f"histogram {name!r} is empty")
        ordered = sorted(samples)
        n = len(ordered)
        mu = sum(ordered) / n
        var = sum((v - mu) ** 2 for v in ordered) / n
        return HistogramSummary(
            count=n,
            mean=mu,
            std=math.sqrt(var),
            min=ordered[0],
            max=ordered[-1],
            p50=_quantile(ordered, 0.50),
            p95=_quantile(ordered, 0.95),
        )


def _quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolation quantile of a pre-sorted list."""
    if not 0 <= q <= 1:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac
