"""Structured run-event stream: the observability layer's backbone.

Every interesting state transition in a run — epoch boundaries, the
placement-copy lifecycle (``scheduled → started → completed`` with
``retried``/``deferred``/``gave_up`` exits), tier quarantine/probe/
re-admission, evictions — is emitted as a sim-time-stamped
:class:`RunEvent` through an :class:`EventRecorder`.

Instrumented code never pays for disabled telemetry: emission sites hold a
:data:`NULL_RECORDER` by default and guard with its ``enabled`` flag, so
the hot paths keep their PR-1 characteristics (one attribute check, no
allocation) unless a run explicitly opts in.

Event kinds are dotted names (``copy.scheduled``, ``tier.quarantined``,
``epoch.end`` …); ``subject`` identifies the entity (a file name, a tier
label like ``l0``, an epoch index) and ``detail`` carries small
JSON-serializable extras.  :meth:`EventRecorder.to_payload` renders the
stream deterministically for :mod:`~repro.telemetry.runreport`.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["EventRecorder", "NULL_RECORDER", "NullRecorder", "RunEvent"]


@dataclass(frozen=True)
class RunEvent:
    """One sim-time-stamped state transition."""

    t: float
    kind: str
    subject: str = ""
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Deterministic plain-dict form (detail keys sorted)."""
        return {
            "t": self.t,
            "kind": self.kind,
            "subject": self.subject,
            "detail": {k: self.detail[k] for k in sorted(self.detail)},
        }


class NullRecorder:
    """Disabled recorder: emission sites see ``enabled`` False and skip.

    ``emit`` still exists (and does nothing) so unguarded call sites are
    safe; guarded sites never reach it.
    """

    enabled = False

    def emit(self, kind: str, subject: str = "", **detail: object) -> None:
        """No-op."""


#: process-wide disabled recorder, shared by every uninstrumented component
NULL_RECORDER = NullRecorder()


class EventRecorder:
    """Appends :class:`RunEvent`\\ s stamped with the simulation clock."""

    enabled = True

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self.events: list[RunEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def emit(self, kind: str, subject: str = "", **detail: object) -> None:
        """Record one event at the current simulated time."""
        self.events.append(RunEvent(self._clock(), kind, subject, detail))

    def filtered(self, kind: str | None = None, subject: str | None = None) -> list[RunEvent]:
        """Events matching ``kind`` and/or ``subject`` (prefix match on kind).

        ``kind="copy"`` matches ``copy.scheduled``, ``copy.completed``, …;
        an exact kind matches only itself.
        """
        out = []
        for e in self.events:
            if kind is not None and e.kind != kind and not e.kind.startswith(kind + "."):
                continue
            if subject is not None and e.subject != subject:
                continue
            out.append(e)
        return out

    def kind_counts(self) -> Counter[str]:
        """How many events of each kind were recorded."""
        return Counter(e.kind for e in self.events)

    def to_payload(self) -> list[dict]:
        """The whole stream as deterministic plain dicts, in emission order."""
        return [e.to_dict() for e in self.events]
