"""The RunReport observability layer: one exportable artifact per run.

The paper's claims are observability claims — per-epoch tier hit counts,
PFS op reduction, throughput variability.  This module unifies the five
previously disconnected telemetry mechanisms (:class:`MonarchStats`,
:class:`~repro.storage.stats.BackendStats`, the metrics registry,
:class:`~repro.telemetry.tracing.IOTrace`, health counters) into a single
structured :class:`RunReport` that every experiment can emit, serialize
deterministically (same seed ⇒ byte-identical JSON) and diff across runs.

Two halves:

* :class:`RunTelemetry` — the *live* collection harness wired into a run
  by :func:`repro.experiments.scenarios.build_run`: an
  :class:`~repro.telemetry.events.EventRecorder` for the structured event
  stream, an :class:`~repro.telemetry.tracing.IOTrace` attached to every
  backend (bulk paths included), per-epoch snapshots of the middleware's
  per-tier counters via the trainer's epoch hook.
* :class:`RunReport` + :func:`build_run_report` — the post-run aggregate:
  per-epoch × per-tier reads/bytes/faults, per-backend op/byte totals with
  traced cross-checks, throughput series + variability summaries, a
  time-in-phase breakdown (compute vs I/O wait vs placement activity) and
  the full event stream.

:func:`diff_reports` compares two reports field by field;
:func:`render_report` / :func:`render_diff` print them as the usual
aligned tables.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any

from repro.telemetry.events import EventRecorder
from repro.telemetry.report import format_table
from repro.telemetry.tracing import IOTrace, throughput_series, variability

if TYPE_CHECKING:  # pragma: no cover
    from repro.framework.training import TrainResult
    from repro.simkernel.core import Simulator
    from repro.storage.stats import BackendStats

__all__ = [
    "RunReport",
    "RunTelemetry",
    "SCHEMA_VERSION",
    "build_dist_run_report",
    "build_multi_run_report",
    "build_run_report",
    "build_serve_run_report",
    "diff_reports",
    "render_diff",
    "render_report",
]

#: bump when the report layout changes incompatibly
#: (v2: added the per-job ``jobs`` section for multi-job runs)
SCHEMA_VERSION = 2

#: bins for every per-backend throughput series (fixed for comparability)
_SERIES_BINS = 50


class RunTelemetry:
    """Live telemetry harness for one run.

    Create it right after the simulator, attach backends as they come up,
    point it at the middleware once built, and install
    :meth:`on_epoch_end` as the trainer's epoch hook.  Everything it
    gathers is turned into a :class:`RunReport` by
    :func:`build_run_report` after the run completes.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.recorder = EventRecorder(clock=lambda: sim.now)
        self.trace = IOTrace(sim)
        self.backends: dict[str, "BackendStats"] = {}
        self._base: dict[str, Any] = {}
        self.monarch: Any = None
        #: one entry per completed epoch: sim time + middleware counters
        self.epoch_marks: list[dict[str, Any]] = []
        #: multi-job runs: per-job epoch marks, keyed by job id
        self.job_marks: dict[str, list[dict[str, Any]]] = {}

    def track_backend(self, name: str, stats: "BackendStats") -> None:
        """Instrument one backend: trace its I/O, remember its baseline."""
        self.backends[name] = stats
        self._base[name] = stats.snapshot()
        self.trace.attach(stats)

    def attach_backends(self, backends: dict[str, "BackendStats"]) -> None:
        """Instrument every backend not already tracked."""
        for name, stats in backends.items():
            if name not in self.backends:
                self.track_backend(name, stats)

    def on_epoch_end(self, epoch: int) -> None:
        """Trainer epoch hook: snapshot the middleware's per-tier counters."""
        mark: dict[str, Any] = {"t": self.sim.now}
        if self.monarch is not None:
            st = self.monarch.stats
            mark["reads"] = dict(st.reads_per_level)
            mark["bytes"] = dict(st.bytes_per_level)
            mark["faults"] = dict(st.tier_faults)
        self.epoch_marks.append(mark)

    def job_hook(self, job_id: str):
        """A per-job epoch hook for multi-job runs.

        Install the returned callable as one trainer's ``epoch_end_hook``;
        it snapshots *that job's* :class:`MonarchStats` at every epoch
        boundary so :func:`build_multi_run_report` can compute per-job
        per-epoch tier deltas.
        """
        def hook(epoch: int) -> None:
            mark: dict[str, Any] = {"t": self.sim.now}
            if self.monarch is not None and job_id in getattr(self.monarch, "job_stats", {}):
                st = self.monarch.job_stats[job_id]
                mark["reads"] = dict(st.reads_per_level)
                mark["bytes"] = dict(st.bytes_per_level)
                mark["faults"] = dict(st.tier_faults)
            self.job_marks.setdefault(job_id, []).append(mark)
        return hook


@dataclass
class RunReport:
    """The unified, serializable observability artifact of one run.

    All nested values are plain JSON types, so ``to_json`` is trivially
    deterministic and ``diff_reports`` can walk two reports structurally.
    """

    meta: dict[str, Any] = field(default_factory=dict)
    #: per-epoch entries: wall time, window, backend op deltas, tier
    #: deltas (monarch runs) and the time-in-phase breakdown
    epochs: list[dict[str, Any]] = field(default_factory=list)
    #: per-backend totals, traced cross-checks and throughput summaries
    backends: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: the middleware's flat counter namespace (``publish_metrics``)
    counters: dict[str, int] = field(default_factory=dict)
    #: the structured event stream, in emission order
    events: list[dict[str, Any]] = field(default_factory=list)
    #: per-job sections (multi-job runs; empty for single-tenant runs)
    jobs: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: per-node sections (distributed runs; empty for single-node runs)
    nodes: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: steady-state section (trace-replay serving runs; empty otherwise):
    #: per-window hit-rate and occupancy, bounded-memory latency histogram
    #: with p50/p99/p999, warm-window aggregates
    steady: dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    # -- derived views ----------------------------------------------------
    def tier_read_totals(self) -> dict[str, int]:
        """Middleware reads per tier label, summed over epochs."""
        out: dict[str, int] = {}
        for entry in self.epochs:
            for tier, count in entry.get("tier_reads", {}).items():
                out[tier] = out.get(tier, 0) + count
        return out

    def total_tier_reads(self) -> int:
        """All middleware-served reads (must equal MonarchStats.total_reads)."""
        return sum(self.tier_read_totals().values())

    def backend_ops_per_epoch(self, backend: str) -> list[int]:
        """Per-epoch total ops (data + metadata) of one backend."""
        out = []
        for entry in self.epochs:
            ops = entry["backend_ops"].get(backend)
            if ops is None:
                continue
            out.append(
                ops["read_ops"] + ops["write_ops"] + ops["open_ops"]
                + ops["stat_ops"] + ops["listdir_ops"]
            )
        return out

    def event_kinds(self) -> dict[str, int]:
        """How many events of each kind the stream holds."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e["kind"]] = out.get(e["kind"], 0) + 1
        return out

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (already all JSON types).

        The ``nodes`` key only appears for distributed runs and the
        ``steady`` key only for serving runs — golden fixtures pin
        training reports byte-for-byte, so the layout must not change
        for them.
        """
        out = {
            "schema_version": self.schema_version,
            "meta": self.meta,
            "epochs": self.epochs,
            "backends": self.backends,
            "counters": self.counters,
            "events": self.events,
            "jobs": self.jobs,
        }
        if self.nodes:
            out["nodes"] = self.nodes
        if self.steady:
            out["steady"] = self.steady
        return out

    def to_json(self) -> str:
        """Deterministic JSON: sorted keys, fixed indentation, newline-terminated.

        Two runs with the same seed produce byte-identical output — the
        determinism gate (``make report-check``) asserts exactly this.
        """
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "RunReport":
        """Inverse of :meth:`to_dict`."""
        return cls(
            meta=raw.get("meta", {}),
            epochs=raw.get("epochs", []),
            backends=raw.get("backends", {}),
            counters=raw.get("counters", {}),
            events=raw.get("events", []),
            jobs=raw.get("jobs", {}),
            nodes=raw.get("nodes", {}),
            steady=raw.get("steady", {}),
            schema_version=raw.get("schema_version", SCHEMA_VERSION),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


# -- report construction ---------------------------------------------------
def _merge_intervals(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly-overlapping ``(start, end)`` intervals."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _overlap(intervals: list[tuple[float, float]], t0: float, t1: float) -> float:
    """Total time the (merged) intervals spend inside ``[t0, t1]``."""
    total = 0.0
    for start, end in intervals:
        lo, hi = max(start, t0), min(end, t1)
        if hi > lo:
            total += hi - lo
    return total


def _copy_spans(recorder: EventRecorder, t_final: float) -> list[tuple[float, float]]:
    """[started, finished] interval of every full-file background copy.

    Started events pair FIFO per file with the first later terminal event
    (``copy.completed`` / ``copy.gave_up``); a copy still in flight at run
    end closes at ``t_final``.
    """
    open_starts: dict[str, list[float]] = {}
    spans: list[tuple[float, float]] = []
    for e in recorder.events:
        if e.kind == "copy.started":
            open_starts.setdefault(e.subject, []).append(e.t)
        elif e.kind in ("copy.completed", "copy.gave_up"):
            starts = open_starts.get(e.subject)
            if starts:
                spans.append((starts.pop(0), e.t))
    for starts in open_starts.values():
        spans.extend((s, t_final) for s in starts)
    return _merge_intervals(spans)


def _tier_delta(cur: dict, prev: dict) -> dict[str, int]:
    """Per-level counter delta as a ``{"l<level>": n}`` dict, sorted."""
    levels = sorted(set(cur) | set(prev))
    return {f"l{lvl}": int(cur.get(lvl, 0)) - int(prev.get(lvl, 0)) for lvl in levels}


def _backend_entries(telemetry: RunTelemetry, t_final: float) -> dict[str, dict[str, Any]]:
    """Per-backend totals + traced cross-checks + throughput summaries."""
    out: dict[str, dict[str, Any]] = {}
    for name in sorted(telemetry.backends):
        stats = telemetry.backends[name]
        delta = stats.snapshot().delta(telemetry._base[name])
        read_events = telemetry.trace.filtered(name, "read")
        if t_final > 0.0:
            _, series = throughput_series(read_events, 0.0, t_final, bins=_SERIES_BINS)
            series_bps = [float(v) for v in series]
        else:
            series_bps = []
        var = variability(series_bps)
        out[name] = {
            **asdict(delta),
            "traced_read_ops": telemetry.trace.total_ops(name, "read"),
            "traced_write_ops": telemetry.trace.total_ops(name, "write"),
            "traced_bytes_read": telemetry.trace.total_bytes(name, "read"),
            "traced_bytes_written": telemetry.trace.total_bytes(name, "write"),
            "read_throughput": {
                "mean_bps": var.mean_bps,
                "std_bps": var.std_bps,
                "min_bps": var.min_bps,
                "max_bps": var.max_bps,
                "cv": var.cv,
            },
            "read_series_bps": series_bps,
        }
    return out


def _tag_policy(meta: dict[str, Any], telemetry: RunTelemetry) -> None:
    """Record a non-default placement policy in the report meta.

    The default ("firstfit") is deliberately *not* recorded: pre-policy
    golden fixtures pin those reports byte-for-byte.
    """
    monarch = telemetry.monarch
    if monarch is not None and monarch.config.policy != "firstfit":
        meta["policy"] = monarch.config.policy


def _tag_fusion_misses(meta: dict[str, Any], result: Any) -> None:
    """Record why the fused reader FSMs could not engage.

    A capability miss — a reader or backend that doesn't speak the
    continuation protocol — used to be invisible: the pipeline silently
    fell back to generator workers and only a profile would show it.
    Emitted only when non-empty (deliberate disengagement — the
    ``REPRO_DISABLE_FUSED_PIPELINE`` gate, cache-writing epochs — is not
    a miss), so existing golden reports stay byte-identical.
    """
    misses = getattr(result, "fusion_misses", None)
    if misses:
        meta["fused_capability_misses"] = dict(sorted(misses.items()))


def build_run_report(
    telemetry: RunTelemetry,
    result: "TrainResult",
    *,
    setup: str = "",
    model: str = "",
    dataset: str = "",
    scale: float = 1.0,
    seed: int = 0,
) -> RunReport:
    """Aggregate everything a finished run left in its telemetry harness."""
    marks = telemetry.epoch_marks
    epochs = result.epochs
    t_final = marks[-1]["t"] if marks else telemetry.sim.now
    spans = _copy_spans(telemetry.recorder, t_final)

    epoch_entries: list[dict[str, Any]] = []
    prev_mark: dict[str, Any] = {"reads": {}, "bytes": {}, "faults": {}}
    for i, er in enumerate(epochs):
        mark = marks[i] if i < len(marks) else {"t": t_final}
        t_end = float(mark["t"])
        t_start = t_end - er.wall_time_s
        compute_s = er.gpu_utilization * er.wall_time_s
        entry: dict[str, Any] = {
            "index": er.index,
            "t_start": t_start,
            "t_end": t_end,
            "wall_time_s": er.wall_time_s,
            "steps": er.steps,
            "records": er.records,
            "cpu_utilization": er.cpu_utilization,
            "gpu_utilization": er.gpu_utilization,
            "backend_ops": {
                name: asdict(snap) for name, snap in sorted(er.backend_ops.items())
            },
            "phases": {
                "compute_s": compute_s,
                "io_wait_s": er.wall_time_s - compute_s,
                "placement_active_s": _overlap(spans, t_start, t_end),
            },
        }
        if "reads" in mark:
            entry["tier_reads"] = _tier_delta(mark["reads"], prev_mark["reads"])
            entry["tier_bytes"] = _tier_delta(mark["bytes"], prev_mark["bytes"])
            entry["tier_faults"] = _tier_delta(mark["faults"], prev_mark["faults"])
            prev_mark = mark
        epoch_entries.append(entry)

    backend_entries = _backend_entries(telemetry, t_final)

    counters: dict[str, int] = {}
    if telemetry.monarch is not None:
        counters = dict(sorted(telemetry.monarch.publish_metrics().counters.items()))

    meta: dict[str, Any] = {
        "setup": setup,
        "model": model,
        "dataset": dataset,
        "scale": scale,
        "seed": seed,
        "n_epochs": len(epochs),
        "init_time_s": result.init_time_s,
        "total_time_s": result.total_time_s,
    }
    _tag_policy(meta, telemetry)
    _tag_fusion_misses(meta, result)
    return RunReport(
        meta=meta,
        epochs=epoch_entries,
        backends=backend_entries,
        counters=counters,
        events=telemetry.recorder.to_payload(),
    )


def build_multi_run_report(
    telemetry: RunTelemetry,
    jobs: dict[str, dict[str, Any]],
    *,
    setup: str = "",
    dataset: str = "",
    scale: float = 1.0,
    seed: int = 0,
    accounting: Any = None,
) -> RunReport:
    """Aggregate a multi-job run into one report with per-job sections.

    ``jobs`` maps each job id to ``{"model": str, "result": TrainResult}``
    (plus any extra keys to carry through, e.g. ``share``).  The top-level
    ``meta`` holds the aggregate view — wall-clock is the *latest* job
    finish, since the jobs overlap — and each ``jobs`` entry holds that
    job's epoch times and per-epoch tier deltas from its
    :meth:`RunTelemetry.job_hook` marks.  ``accounting`` is an optional
    :class:`~repro.simkernel.monitor.TagAccounting` snapshot source.
    """
    t_final = telemetry.sim.now
    job_entries: dict[str, dict[str, Any]] = {}
    finish_times: list[float] = []
    for job_id in sorted(jobs):
        spec = jobs[job_id]
        result: "TrainResult" = spec["result"]
        marks = telemetry.job_marks.get(job_id, [])
        epoch_entries: list[dict[str, Any]] = []
        prev_mark: dict[str, Any] = {"reads": {}, "bytes": {}, "faults": {}}
        for i, er in enumerate(result.epochs):
            mark = marks[i] if i < len(marks) else {"t": t_final}
            entry: dict[str, Any] = {
                "index": er.index,
                "t_end": float(mark["t"]),
                "wall_time_s": er.wall_time_s,
                "steps": er.steps,
                "records": er.records,
            }
            if "reads" in mark:
                entry["tier_reads"] = _tier_delta(mark["reads"], prev_mark["reads"])
                entry["tier_bytes"] = _tier_delta(mark["bytes"], prev_mark["bytes"])
                entry["tier_faults"] = _tier_delta(mark["faults"], prev_mark["faults"])
                prev_mark = mark
            epoch_entries.append(entry)
        if marks:
            finish_times.append(float(marks[-1]["t"]))
        entry = {
            k: v for k, v in spec.items() if k != "result"
        }
        entry.update({
            "init_time_s": result.init_time_s,
            "total_time_s": result.total_time_s,
            "epoch_times": result.epoch_times,
            "epochs": epoch_entries,
        })
        if accounting is not None:
            entry["accounting"] = accounting.totals(job_id)
        job_entries[job_id] = entry

    counters: dict[str, int] = {}
    if telemetry.monarch is not None:
        counters = dict(sorted(telemetry.monarch.publish_metrics().counters.items()))

    meta: dict[str, Any] = {
        "setup": setup,
        "model": "+".join(str(jobs[j].get("model", "?")) for j in sorted(jobs)),
        "dataset": dataset,
        "scale": scale,
        "seed": seed,
        "n_jobs": len(jobs),
        "n_epochs": max((len(jobs[j]["result"].epochs) for j in jobs), default=0),
        "init_time_s": max((jobs[j]["result"].init_time_s for j in jobs), default=0.0),
        "total_time_s": max(finish_times, default=t_final),
    }
    _tag_policy(meta, telemetry)
    return RunReport(
        meta=meta,
        epochs=[],
        backends=_backend_entries(telemetry, t_final),
        counters=counters,
        events=telemetry.recorder.to_payload(),
        jobs=job_entries,
    )


def _latency_entry(hist: Any) -> dict[str, Any]:
    """Serialize one bounded-memory latency histogram with its percentiles."""
    return {
        "count": hist.count,
        "p50_s": hist.p50,
        "p99_s": hist.p99,
        "p999_s": hist.p999,
        "mean_s": hist.mean_s,
        "max_s": hist.max_s,
        "histogram": hist.to_dict(),
    }


def build_serve_run_report(
    telemetry: RunTelemetry,
    replay: Any,
    *,
    setup: str = "",
    model: str = "",
    dataset: str = "",
    scale: float = 1.0,
    seed: int = 0,
    workload: str = "",
) -> RunReport:
    """Aggregate a finished trace-replay serving run into a report.

    ``replay`` is the driver's :class:`~repro.workload.replay.ReplayResult`.
    The report has no epoch entries (there are no epochs); instead the
    ``steady`` section carries the per-window hit-rate/occupancy series
    and the latency histograms the FIG-SERVE gates read.  Everything is
    in simulated units, like the epoch entries of training reports.
    """
    t_final = telemetry.sim.now
    counters: dict[str, int] = {}
    if telemetry.monarch is not None:
        counters = dict(sorted(telemetry.monarch.publish_metrics().counters.items()))
    meta: dict[str, Any] = {
        "setup": setup,
        "model": model,
        "dataset": dataset,
        "scale": scale,
        "seed": seed,
        "workload": workload,
        "n_requests": replay.n_requests,
        "init_time_s": replay.init_time_s,
        "total_time_s": t_final,
    }
    _tag_policy(meta, telemetry)
    steady: dict[str, Any] = {
        "window_s": replay.window_s,
        "warmup_s": replay.warmup_s,
        "t_start": replay.t_start,
        "t_end": replay.t_end,
        "completed": replay.completed,
        "hit_rate": replay.hit_rate,
        "warm_hit_rate": replay.warm_hit_rate,
        "windows": replay.windows,
        "latency": _latency_entry(replay.latency),
        "warm_latency": _latency_entry(replay.warm_latency),
    }
    return RunReport(
        meta=meta,
        epochs=[],
        backends=_backend_entries(telemetry, t_final),
        counters=counters,
        events=telemetry.recorder.to_payload(),
        steady=steady,
    )


def build_dist_run_report(cluster: Any, result: Any, record: Any) -> RunReport:
    """Aggregate a distributed run into one report with per-node sections.

    ``cluster`` is a finished :class:`~repro.distributed.cluster.Cluster`
    (built with ``record_events=True``), ``result`` the trainer's
    :class:`~repro.distributed.trainer.DistributedResult` and ``record``
    the un-scaled :class:`~repro.experiments.dist_scenarios.DistRunRecord`.
    Times in the report are *simulation*-scale (like the epoch entries of
    single-node reports); the record carries the un-scaled view.  Do not
    feed the result to :func:`render_report` — distributed epochs carry no
    ``phases`` breakdown.
    """
    epoch_entries: list[dict[str, Any]] = []
    for e in result.epochs:
        epoch_entries.append({
            "index": e.index,
            "wall_time_s": e.wall_time_s,
            "steps": e.global_steps,
            "records": e.records,
            "tier_hit_ratio": e.tier_hit_ratio,
            "node_hit_ratios": list(e.node_hit_ratios),
            "mean_node_hit_ratio": e.mean_node_hit_ratio,
            "peer_hits": e.peer_hits,
            "peer_bytes": e.peer_bytes,
            "pfs_ops": asdict(e.pfs_ops),
        })

    peers = cluster.peers
    nodes: dict[str, dict[str, Any]] = {}
    for ns in cluster.nodes:
        entry: dict[str, Any] = {}
        if ns.monarch is not None:
            entry["counters"] = dict(
                sorted(ns.monarch.publish_metrics().counters.items())
            )
        if peers is not None:
            st = peers.stats[ns.index]
            entry.update({
                "peer_hits": st.peer_hits,
                "peer_bytes": st.peer_bytes,
                "fetches_served": st.fetches_served,
                "bytes_served": st.bytes_served,
                "rereplications": st.rereplications,
                "down_at_s": peers.node_down_s.get(ns.index, -1.0),
            })
        if entry:
            nodes[f"n{ns.index}"] = entry

    counters: dict[str, int] = {}
    if cluster.fabric is not None:
        counters.update(cluster.fabric.counters())
    if peers is not None:
        counters["peers.fetch_faults"] = peers.fetch_faults
        counters["peers.directory_files"] = len(peers.directory)
    if cluster.injector is not None:
        counters.update(cluster.injector.counters())

    meta: dict[str, Any] = {
        "setup": record.setup,
        "model": record.model,
        "dataset": cluster.dataset.name if cluster.dataset is not None else "",
        "scale": record.scale,
        "seed": record.seed,
        "n_nodes": record.n_nodes,
        "partition_policy": record.policy,
        "n_epochs": len(result.epochs),
        "init_time_s": result.init_time_s,
        "total_time_s": result.total_time_s,
    }
    _tag_fusion_misses(meta, result)
    events = cluster.recorder.to_payload() if cluster.recorder is not None else []
    return RunReport(
        meta=meta,
        epochs=epoch_entries,
        backends={},
        counters=counters,
        events=events,
        nodes=nodes,
    )


# -- diffing ---------------------------------------------------------------
def diff_reports(a: RunReport, b: RunReport) -> list[tuple[str, Any, Any]]:
    """Structural difference of two reports as ``(path, a_value, b_value)``.

    Missing keys/indices surface with the sentinel string ``"<absent>"``.
    An empty list means the reports are identical.
    """
    out: list[tuple[str, Any, Any]] = []
    _diff_value("", a.to_dict(), b.to_dict(), out)
    return out


_ABSENT = "<absent>"


def _diff_value(path: str, va: Any, vb: Any, out: list) -> None:
    if isinstance(va, dict) and isinstance(vb, dict):
        for key in sorted(set(va) | set(vb)):
            sub = f"{path}.{key}" if path else str(key)
            _diff_value(sub, va.get(key, _ABSENT), vb.get(key, _ABSENT), out)
        return
    if isinstance(va, list) and isinstance(vb, list):
        for i in range(max(len(va), len(vb))):
            sub = f"{path}[{i}]"
            ia = va[i] if i < len(va) else _ABSENT
            ib = vb[i] if i < len(vb) else _ABSENT
            _diff_value(sub, ia, ib, out)
        return
    if va != vb:
        out.append((path, va, vb))


# -- rendering -------------------------------------------------------------
def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, dict):
        return json.dumps(value, sort_keys=True)
    return str(value)


def render_report(report: RunReport) -> str:
    """Human-readable summary: meta line, epoch table, backend table."""
    meta = report.meta
    lines = [
        f"RunReport: {meta.get('setup', '?')} / {meta.get('model', '?')} / "
        f"{meta.get('dataset', '?')} (scale {meta.get('scale', 1.0):g}, "
        f"seed {meta.get('seed', 0)})",
        f"init {meta.get('init_time_s', 0.0):.3f} s, "
        f"total {meta.get('total_time_s', 0.0):.3f} s, "
        f"{len(report.events)} events",
        "",
    ]
    epoch_rows = []
    has_tiers = any("tier_reads" in e for e in report.epochs)
    for e in report.epochs:
        phases = e["phases"]
        row = [
            e["index"] + 1,
            f"{e['wall_time_s']:.3f}",
            f"{phases['compute_s']:.3f}",
            f"{phases['io_wait_s']:.3f}",
            f"{phases['placement_active_s']:.3f}",
        ]
        if has_tiers:
            row.append(_fmt(e.get("tier_reads", {})))
        epoch_rows.append(row)
    headers = ["epoch", "wall (s)", "compute (s)", "io wait (s)", "placement (s)"]
    if has_tiers:
        headers.append("tier reads")
    if epoch_rows:
        lines.append(format_table(headers, epoch_rows, title="per-epoch"))
        lines.append("")
    if report.jobs:
        job_rows = []
        for job_id, j in sorted(report.jobs.items()):
            job_rows.append([
                job_id,
                j.get("model", "?"),
                f"{j.get('init_time_s', 0.0):.3f}",
                f"{j.get('total_time_s', 0.0):.3f}",
                " ".join(f"{t:.3f}" for t in j.get("epoch_times", [])),
            ])
        lines.append(format_table(
            ["job", "model", "init (s)", "total (s)", "epoch times (s)"],
            job_rows,
            title="per-job",
        ))
        lines.append("")
    backend_rows = []
    for name, b in sorted(report.backends.items()):
        backend_rows.append([
            name,
            b["read_ops"],
            b["write_ops"],
            b["bytes_read"],
            b["bytes_written"],
            f"{b['read_throughput']['mean_bps'] / 1e6:.1f}",
            f"{b['read_throughput']['cv']:.2f}",
        ])
    lines.append(format_table(
        ["backend", "reads", "writes", "bytes read", "bytes written",
         "mean MB/s", "cv"],
        backend_rows,
        title="per-backend",
    ))
    if report.steady:
        s = report.steady
        lat, warm = s["latency"], s["warm_latency"]
        lines.append("")
        lines.append(
            f"steady state: {s['completed']} requests over "
            f"{s['t_end'] - s['t_start']:.1f} s, hit rate {s['hit_rate']:.3f} "
            f"(warm {s['warm_hit_rate']:.3f})"
        )
        lines.append(
            f"latency p50/p99/p999: {lat['p50_s'] * 1e3:.2f} / "
            f"{lat['p99_s'] * 1e3:.2f} / {lat['p999_s'] * 1e3:.2f} ms "
            f"(warm: {warm['p50_s'] * 1e3:.2f} / {warm['p99_s'] * 1e3:.2f} / "
            f"{warm['p999_s'] * 1e3:.2f} ms)"
        )
        window_rows = [
            [w["index"] + 1, f"{w['t_start']:.1f}", f"{w['t_end']:.1f}",
             w["completed"], f"{w['hit_rate']:.3f}",
             f"{w['mean_latency_s'] * 1e3:.2f}"]
            for w in s["windows"]
        ]
        lines.append(format_table(
            ["window", "start (s)", "end (s)", "done", "hit rate", "mean ms"],
            window_rows,
            title="per-window",
        ))
    if report.counters:
        lines.append("")
        nonzero = [(k, v) for k, v in sorted(report.counters.items()) if v]
        lines.append(format_table(["counter", "value"], nonzero, title="counters (nonzero)"))
    return "\n".join(lines)


def render_diff(diffs: list[tuple[str, Any, Any]], limit: int = 40) -> str:
    """Aligned table of the first ``limit`` differences."""
    if not diffs:
        return "reports are identical"
    rows = [(path, _fmt(va), _fmt(vb)) for path, va, vb in diffs[:limit]]
    table = format_table(["path", "a", "b"], rows,
                         title=f"{len(diffs)} differing field(s)")
    if len(diffs) > limit:
        table += f"\n... and {len(diffs) - limit} more"
    return table
