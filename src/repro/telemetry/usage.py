"""Resource-usage summarization in the paper's units.

The paper reports, per model × setup, average CPU utilization, GPU
utilization and memory consumption ("approximately on the 10 GiB mark" in
every configuration).  Utilizations come out of the DES monitors; memory is
estimated from the pipeline configuration (buffer contents) plus the
framework/runtime constant, which is what dominates in practice and is why
the paper's number is flat.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.framework.pipeline import PipelineConfig
from repro.framework.training import TrainResult
from repro.storage.blockmath import GIB

__all__ = ["ResourceUsage", "memory_estimate_bytes", "summarize_usage"]

#: framework + CUDA runtime + model resident set, the flat part of the
#: paper's ~10 GiB memory figure
_RUNTIME_CONSTANT_BYTES = int(9.4 * GIB)


@dataclass(frozen=True)
class ResourceUsage:
    """Averages over a run, in the paper's units."""

    cpu_percent: float
    gpu_percent: float
    memory_gib: float


def memory_estimate_bytes(config: PipelineConfig, mean_sample_bytes: int) -> int:
    """Estimated resident memory of the training job.

    Shuffle-buffer records + prefetched batches + the runtime constant.
    Scale-invariant by design: buffer sizes are configuration, not dataset
    size, which reproduces the paper's flat ~10 GiB across datasets.
    """
    shuffle = config.shuffle_buffer_records * mean_sample_bytes
    prefetch = config.prefetch_batches * config.batch_size * mean_sample_bytes
    return _RUNTIME_CONSTANT_BYTES + shuffle + prefetch


def summarize_usage(
    result: TrainResult,
    config: PipelineConfig,
    mean_sample_bytes: int,
) -> ResourceUsage:
    """Run-average CPU %, GPU % and memory GiB for one training run."""
    if not result.epochs:
        raise ValueError("run has no epochs")
    # Time-weight by epoch duration, as a system monitor would.
    total = sum(e.wall_time_s for e in result.epochs)
    if total <= 0:
        raise ValueError("run has zero duration")
    cpu = sum(e.cpu_utilization * e.wall_time_s for e in result.epochs) / total
    gpu = sum(e.gpu_utilization * e.wall_time_s for e in result.epochs) / total
    mem = memory_estimate_bytes(config, mean_sample_bytes)
    return ResourceUsage(
        cpu_percent=100.0 * cpu,
        gpu_percent=100.0 * gpu,
        memory_gib=mem / GIB,
    )
