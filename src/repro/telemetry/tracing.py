"""I/O event tracing and throughput-variability analysis.

The paper's motivation rests on *variability*: "high throughput
variability and performance loss" when DL jobs share the PFS, and
"sustained and predictable performance" once traffic moves to local
storage.  This module makes those claims measurable inside a run:

* :class:`IOTrace` records ``(t, backend, kind, bytes)`` events; backends
  are instrumented by wrapping their :class:`~repro.storage.stats.BackendStats`
  (`attach`), so no storage code changes.
* :func:`throughput_series` bins a trace into a bandwidth time series.
* :func:`variability` summarizes a series the way the paper's error bars
  do — mean, standard deviation and coefficient of variation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.storage.stats import BackendStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.core import Simulator

__all__ = ["IOTrace", "TraceEvent", "VariabilitySummary", "throughput_series", "variability"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded I/O completion (a bulk train completes as one event)."""

    t: float
    backend: str
    kind: str  #: "read" or "write"
    nbytes: int
    #: operations folded into this event (> 1 for bulk-path completions)
    ops: int = 1


class IOTrace:
    """Chronological record of data-path I/O across instrumented backends."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.events: list[TraceEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def attach(self, stats: BackendStats) -> None:
        """Instrument a backend: every future read/write lands in the trace.

        Wraps the stats object's record methods — the singular ones *and*
        the bulk ``record_reads``/``record_writes`` the fast path accounts
        through (a bulk train lands as one event carrying its op count),
        so traced byte totals always equal the backend's counters.
        Idempotent per backend object (attaching twice raises to avoid
        double counting).
        """
        if getattr(stats, "_trace_attached", False):
            raise ValueError(f"backend {stats.name!r} already traced")
        orig_read, orig_write = stats.record_read, stats.record_write
        orig_reads, orig_writes = stats.record_reads, stats.record_writes
        backend = stats.name

        def traced_read(nbytes: int) -> None:
            orig_read(nbytes)
            self.events.append(TraceEvent(self.sim.now, backend, "read", int(nbytes)))

        def traced_write(nbytes: int) -> None:
            orig_write(nbytes)
            self.events.append(TraceEvent(self.sim.now, backend, "write", int(nbytes)))

        def traced_reads(ops: int, nbytes: int) -> None:
            orig_reads(ops, nbytes)
            self.events.append(
                TraceEvent(self.sim.now, backend, "read", int(nbytes), ops=int(ops))
            )

        def traced_writes(ops: int, nbytes: int) -> None:
            orig_writes(ops, nbytes)
            self.events.append(
                TraceEvent(self.sim.now, backend, "write", int(nbytes), ops=int(ops))
            )

        stats.record_read = traced_read  # type: ignore[method-assign]
        stats.record_write = traced_write  # type: ignore[method-assign]
        stats.record_reads = traced_reads  # type: ignore[method-assign]
        stats.record_writes = traced_writes  # type: ignore[method-assign]
        stats._trace_attached = True  # type: ignore[attr-defined]

    def filtered(self, backend: str | None = None, kind: str | None = None) -> list[TraceEvent]:
        """Events matching the given backend and/or kind."""
        return [
            e for e in self.events
            if (backend is None or e.backend == backend)
            and (kind is None or e.kind == kind)
        ]

    def total_bytes(self, backend: str | None = None, kind: str | None = None) -> int:
        """Summed bytes over the matching events."""
        return sum(e.nbytes for e in self.filtered(backend, kind))

    def total_ops(self, backend: str | None = None, kind: str | None = None) -> int:
        """Summed operation count over the matching events (bulk-aware)."""
        return sum(e.ops for e in self.filtered(backend, kind))


@dataclass(frozen=True)
class VariabilitySummary:
    """Throughput statistics over a time series (paper-error-bar material)."""

    mean_bps: float
    std_bps: float
    min_bps: float
    max_bps: float

    @property
    def cv(self) -> float:
        """Coefficient of variation (std / mean); 0 for an idle series."""
        return self.std_bps / self.mean_bps if self.mean_bps > 0 else 0.0


def throughput_series(
    events: list[TraceEvent],
    t0: float,
    t1: float,
    bins: int = 50,
) -> tuple[np.ndarray, np.ndarray]:
    """Bin events into a bandwidth time series over ``[t0, t1]``.

    The window is closed on both sides: an event at exactly ``t1`` — e.g.
    the final I/O completion of a run binned over ``[0, sim.now]`` — lands
    in the last bin instead of being dropped.

    Returns ``(bin_centers_seconds, bytes_per_second)``.
    """
    if t1 <= t0:
        raise ValueError("empty window")
    if bins < 1:
        raise ValueError("bins must be >= 1")
    edges = np.linspace(t0, t1, bins + 1)
    width = edges[1] - edges[0]
    totals = np.zeros(bins)
    for e in events:
        if t0 <= e.t <= t1:
            idx = min(bins - 1, int((e.t - t0) / width))
            totals[idx] += e.nbytes
    centers = (edges[:-1] + edges[1:]) / 2
    return centers, totals / width


def variability(series_bps: np.ndarray) -> VariabilitySummary:
    """Summarize a throughput series (ignores leading/trailing idle bins)."""
    arr = np.asarray(series_bps, dtype=float)
    nz = np.nonzero(arr)[0]
    if len(nz) == 0:
        return VariabilitySummary(0.0, 0.0, 0.0, 0.0)
    active = arr[nz[0]: nz[-1] + 1]
    return VariabilitySummary(
        mean_bps=float(active.mean()),
        std_bps=float(active.std()),
        min_bps=float(active.min()),
        max_bps=float(active.max()),
    )
