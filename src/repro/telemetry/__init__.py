"""Telemetry: usage summaries and report formatting.

* :mod:`~repro.telemetry.usage` — CPU/GPU/memory usage summarization in the
  units the paper reports (percent utilization, GiB).
* :mod:`~repro.telemetry.report` — plain-text tables for experiment output
  (figures and tables are printed, not plotted; every benchmark regenerates
  the same rows/series the paper shows).
* :mod:`~repro.telemetry.metrics` — a small counter/gauge registry used by
  examples and diagnostics.
"""

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.report import format_table
from repro.telemetry.tracing import IOTrace, throughput_series, variability
from repro.telemetry.usage import ResourceUsage, memory_estimate_bytes, summarize_usage

__all__ = [
    "IOTrace",
    "MetricsRegistry",
    "ResourceUsage",
    "format_table",
    "memory_estimate_bytes",
    "summarize_usage",
    "throughput_series",
    "variability",
]
