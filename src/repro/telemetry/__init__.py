"""Telemetry: the unified observability layer.

* :mod:`~repro.telemetry.events` — the structured run-event stream
  (sim-time-stamped spans for epoch boundaries, the placement-copy
  lifecycle, tier quarantine/probe/re-admission, evictions), recorded by a
  no-op-when-disabled :class:`EventRecorder`.
* :mod:`~repro.telemetry.runreport` — :class:`RunReport`, the exportable
  per-run artifact (per-epoch × per-tier counters, traced byte
  cross-checks, throughput variability, time-in-phase breakdown) with
  deterministic JSON serialization and structural diffing.
* :mod:`~repro.telemetry.tracing` — raw I/O event tracing
  (:class:`IOTrace`) and throughput-variability analysis.
* :mod:`~repro.telemetry.metrics` — a small counter/gauge registry used
  for the middleware's flat ``publish_metrics`` namespace.
* :mod:`~repro.telemetry.usage` — CPU/GPU/memory usage summarization in
  the units the paper reports (percent utilization, GiB).
* :mod:`~repro.telemetry.report` — plain-text tables for experiment output.
"""

from repro.telemetry.events import EventRecorder, NULL_RECORDER, RunEvent
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.report import format_table
from repro.telemetry.runreport import (
    RunReport,
    RunTelemetry,
    build_multi_run_report,
    build_run_report,
    diff_reports,
    render_diff,
    render_report,
)
from repro.telemetry.tracing import IOTrace, throughput_series, variability
from repro.telemetry.usage import ResourceUsage, memory_estimate_bytes, summarize_usage

__all__ = [
    "EventRecorder",
    "IOTrace",
    "MetricsRegistry",
    "NULL_RECORDER",
    "ResourceUsage",
    "RunEvent",
    "RunReport",
    "RunTelemetry",
    "build_multi_run_report",
    "build_run_report",
    "diff_reports",
    "format_table",
    "memory_estimate_bytes",
    "render_diff",
    "render_report",
    "summarize_usage",
    "throughput_series",
    "variability",
]
