"""Plain-text table formatting for experiment output.

Every figure/table benchmark prints the same rows or series the paper
shows; this module renders them as aligned monospace tables so the output
is directly comparable to EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.1f}",
) -> str:
    """Render an aligned monospace table.

    Floats use ``float_fmt``; everything else goes through ``str``.
    """
    def cell(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    cols = len(headers)
    for i, row in enumerate(text_rows):
        if len(row) != cols:
            raise ValueError(f"row {i} has {len(row)} cells, expected {cols}")
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in text_rows)) if text_rows else len(headers[c])
        for c in range(cols)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[c]) for c, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(row[c].ljust(widths[c]) for c in range(cols)))
    return "\n".join(lines)
