"""PyTorch-style data loading substrate (paper §VI: portability).

The paper's future work includes "integrating our system with PyTorch,
which is an important step to validate MONARCH's portability".  This
package is the reproduction's second framework: a *map-style* dataset of
loose per-sample files driven by a ``DataLoader`` with worker processes —
the access pattern PyTorch's ``ImageFolder`` + ``DataLoader`` produces,
which differs from tf.data's in exactly the ways that stress MONARCH
differently:

* one **file per sample** (hundreds of thousands of small files) instead
  of ~128 MiB record shards, so metadata traffic — one PFS ``open`` per
  sample per epoch — becomes a first-order cost (§I's motivation for
  TFRecord-style formats);
* whole-file reads (no partial-read/full-fetch distinction);
* loader workers do both the I/O and the CPU decode, instead of separate
  reader/map stages.

MONARCH integrates through the same
:class:`~repro.framework.io_layer.DataReader` interface as the tf.data
stand-in — zero changes to the middleware — which is the portability
claim made measurable: its virtual namespace absorbs the per-sample
``open`` storm and its tier serves repeat epochs locally.
"""

from repro.torchlike.dataset import FileSampleDataset, materialize_loose_files
from repro.torchlike.loader import DataLoader, DataLoaderConfig
from repro.torchlike.trainer import TorchTrainer

__all__ = [
    "DataLoader",
    "DataLoaderConfig",
    "FileSampleDataset",
    "TorchTrainer",
    "materialize_loose_files",
]
