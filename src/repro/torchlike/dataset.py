"""Map-style dataset of loose per-sample files.

The PyTorch idiom: a directory tree with one (JPEG) file per sample,
addressed by index.  Built deterministically from the same
:class:`~repro.data.dataset.DatasetSpec` the record-shard path uses, so
the *bytes* are identical between the two framework substrates and any
performance difference is purely access-pattern.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field

from repro.data.dataset import DatasetSpec
from repro.storage.pfs import ParallelFileSystem

__all__ = ["FileSampleDataset", "materialize_loose_files"]


@dataclass(frozen=True)
class SampleFile:
    """One sample: its path on the source backend and its size."""

    index: int
    path: str
    size: int


@dataclass
class FileSampleDataset:
    """An indexable dataset of per-sample files (PyTorch map-style)."""

    spec: DatasetSpec
    directory: str
    samples: list[SampleFile] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def __getitem__(self, index: int) -> SampleFile:
        return self.samples[index]

    @property
    def total_bytes(self) -> int:
        """Sum of all sample file sizes."""
        return sum(s.size for s in self.samples)

    @classmethod
    def from_spec(cls, spec: DatasetSpec, directory: str = "/dataset/images") -> "FileSampleDataset":
        """Lay out one file per sample, named by zero-padded index."""
        sizes = spec.sample_sizes()
        width = max(8, len(str(spec.n_samples)))
        samples = [
            SampleFile(
                index=i,
                path=posixpath.join(directory, f"{i:0{width}d}.jpg"),
                size=int(sz),
            )
            for i, sz in enumerate(sizes)
        ]
        return cls(spec=spec, directory=directory, samples=samples)


def materialize_loose_files(
    dataset: FileSampleDataset, pfs: ParallelFileSystem
) -> list[str]:
    """Create every sample file on the PFS (untimed staging)."""
    for sample in dataset.samples:
        pfs.add_file(sample.path, sample.size)
    return [s.path for s in dataset.samples]
