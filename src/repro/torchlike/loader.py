"""PyTorch-style DataLoader on the DES.

``num_workers`` worker processes pull shuffled sample indices from a
shared queue; each worker opens the sample's file, reads it whole, holds a
CPU core for the decode/augment, and pushes the sample into a collation
buffer.  A collator assembles fixed-size batches into a bounded prefetch
queue the training loop consumes — the moral equivalent of
``torch.utils.data.DataLoader(dataset, shuffle=True, num_workers=N,
prefetch_factor=K)``.

Key access-pattern differences from the tf.data stand-in, on purpose:

* one ``open`` per **sample** per epoch (metadata storm on loose files),
* whole-file reads (no chunking, no partial-read optimization to exploit),
* I/O and CPU work interleaved inside the same worker.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.framework.io_layer import DataReader
from repro.framework.models import ModelProfile
from repro.framework.resources import ComputeNode
from repro.simkernel.core import Simulator
from repro.simkernel.resources import Store
from repro.torchlike.dataset import FileSampleDataset

__all__ = ["DataLoader", "DataLoaderConfig", "LoadedSample"]

_SENTINEL = object()


@dataclass(frozen=True)
class DataLoaderConfig:
    """Loader knobs (PyTorch equivalents in comments)."""

    num_workers: int = 8  #: DataLoader(num_workers=...)
    batch_size: int = 128  #: global batch across GPUs
    prefetch_batches: int = 4  #: prefetch_factor (in batches)
    #: the full-scale batch the model's per-step host cost refers to
    reference_batch: int = 128

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.batch_size < 1 or self.reference_batch < 1:
            raise ValueError("batch sizes must be >= 1")
        if self.prefetch_batches < 1:
            raise ValueError("prefetch_batches must be >= 1")

    @property
    def host_scale(self) -> float:
        """Per-step host-cost multiplier for scaled batches."""
        return self.batch_size / self.reference_batch


@dataclass(frozen=True)
class LoadedSample:
    """One fetched + preprocessed sample."""

    index: int
    size: int


class DataLoader:
    """One epoch of shuffled, worker-parallel sample loading."""

    def __init__(
        self,
        sim: Simulator,
        config: DataLoaderConfig,
        dataset: FileSampleDataset,
        reader: DataReader,
        node: ComputeNode,
        model: ModelProfile,
        shuffle_rng: np.random.Generator,
        path_prefix: str = "",
    ) -> None:
        if len(dataset) == 0:
            raise ValueError("empty dataset")
        self.sim = sim
        self.config = config
        self.dataset = dataset
        self.reader = reader
        self.node = node
        self.model = model
        self.path_prefix = path_prefix
        order = shuffle_rng.permutation(len(dataset))
        self._indices: list[int] = [int(i) for i in order]
        self.total_batches = -(-len(dataset) // config.batch_size)
        self._loaded: Store = Store(sim, capacity=2 * config.batch_size, name="loaded")
        self.prefetch: Store = Store(sim, capacity=config.prefetch_batches, name="torch-prefetch")
        self._procs: list[Any] = []
        self.error: BaseException | None = None

    # -- stage processes ---------------------------------------------------
    def _worker(self) -> Generator[Any, Any, None]:
        while self._indices:
            sample = self.dataset[self._indices.pop(0)]
            f = yield from self.reader.open(self.path_prefix + sample.path)
            yield from self.reader.pread(f, 0, sample.size)
            self.reader.close(f)
            # the worker itself decodes (PyTorch does CPU work in-worker)
            yield from self.node.cpu.using(self.model.preprocess_time(sample.size))
            yield self._loaded.put(LoadedSample(index=sample.index, size=sample.size))
        yield self._loaded.put(_SENTINEL)

    def _collator(self) -> Generator[Any, Any, None]:
        batch: list[LoadedSample] = []
        finished = 0
        while finished < self.config.num_workers:
            item = yield self._loaded.get()
            if item is _SENTINEL:
                finished += 1
                continue
            batch.append(item)
            if len(batch) == self.config.batch_size:
                yield self.prefetch.put(batch)
                batch = []
        if batch:
            yield self.prefetch.put(batch)
        yield self.prefetch.put(_SENTINEL)

    # -- public API ----------------------------------------------------------
    def start(self) -> None:
        """Spawn workers + collator; batches appear in :attr:`prefetch`."""
        workers = [
            self.sim.spawn(self._worker(), name=f"loader-{i}")
            for i in range(self.config.num_workers)
        ]
        collator = self.sim.spawn(self._collator(), name="collator")
        self._procs = [*workers, collator]
        for p in self._procs:
            p.add_callback(self._on_done)

    def _on_done(self, ev: Any) -> None:
        if not ev.ok and self.error is None:
            self.error = ev.exception

    def next_batch(self) -> Generator[Any, Any, list[LoadedSample] | None]:
        """Next batch, or ``None`` at end of epoch; re-raises stage errors."""
        if self.error is not None:
            raise self.error
        get_ev = self.prefetch.get()
        while not get_ev.triggered:
            if self.error is not None:
                raise self.error
            # Already-failed stages stay in the watch set so their failure
            # fires the composite immediately (see pipeline.next_batch).
            watch = [p for p in self._procs if p.is_alive or not p.ok]
            yield self.sim.any_of([get_ev, *watch])
            if self.error is not None:
                raise self.error
        item = get_ev.value
        if item is _SENTINEL:
            return None
        return item

    def abort(self) -> None:
        """Kill all loader processes."""
        for p in self._procs:
            if p.is_alive:
                p.kill()
