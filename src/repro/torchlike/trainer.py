"""Training loop over the PyTorch-style DataLoader.

Same synchronous data-parallel step model and per-epoch accounting as the
tf.data-side trainer (it reuses :class:`~repro.framework.training.EpochResult`
and :class:`~repro.framework.training.TrainResult`), so results from both
framework substrates are directly comparable.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from typing import Any

import numpy as np

from repro.framework.io_layer import DataReader
from repro.framework.models import ModelProfile
from repro.framework.resources import ComputeNode
from repro.framework.training import EpochResult, TrainResult
from repro.simkernel.core import Simulator
from repro.storage.stats import BackendStats
from repro.torchlike.dataset import FileSampleDataset
from repro.torchlike.loader import DataLoader, DataLoaderConfig

__all__ = ["TorchTrainer"]


class TorchTrainer:
    """Runs N epochs of DataLoader-fed synchronous training."""

    def __init__(
        self,
        sim: Simulator,
        node: ComputeNode,
        model: ModelProfile,
        config: DataLoaderConfig,
        dataset: FileSampleDataset,
        reader: DataReader,
        shuffle_rng: np.random.Generator,
        backends: dict[str, BackendStats] | None = None,
        epochs: int = 3,
        path_prefix: str = "",
        init_hook: Callable[[], Generator[Any, Any, None]] | None = None,
    ) -> None:
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.sim = sim
        self.node = node
        self.model = model
        self.config = config
        self.dataset = dataset
        self.reader = reader
        self.shuffle_rng = shuffle_rng
        self.backends = backends or {}
        self.epochs = epochs
        self.path_prefix = path_prefix
        self.init_hook = init_hook
        self.result = TrainResult()

    def run(self) -> Generator[Any, Any, TrainResult]:
        """The training job: drive with ``sim.spawn(trainer.run())``."""
        if self.init_hook is not None:
            t0 = self.sim.now
            yield from self.init_hook()
            self.result.init_time_s = self.sim.now - t0
            self.node.mark_epoch()
        for epoch in range(self.epochs):
            yield from self._run_epoch(epoch)
        return self.result

    def _run_epoch(self, epoch: int) -> Generator[Any, Any, None]:
        t0 = self.sim.now
        base = {name: s.snapshot() for name, s in self.backends.items()}
        loader = DataLoader(
            sim=self.sim,
            config=self.config,
            dataset=self.dataset,
            reader=self.reader,
            node=self.node,
            model=self.model,
            shuffle_rng=self.shuffle_rng,
            path_prefix=self.path_prefix,
        )
        loader.start()
        steps = 0
        records = 0
        n_gpus = self.node.spec.n_gpus
        try:
            while True:
                batch = yield from loader.next_batch()
                if batch is None:
                    break
                yield from self.node.gpu_group.using(
                    self.model.step_time(len(batch), n_gpus)
                )
                host = self.model.host_time() * self.config.host_scale
                if host > 0:
                    yield self.sim.timeout(host)
                steps += 1
                records += len(batch)
        except BaseException:
            loader.abort()
            raise
        self.node.mark_epoch()
        wall = self.sim.now - t0
        ops = {name: s.snapshot().delta(base[name]) for name, s in self.backends.items()}
        for s in self.backends.values():
            s.mark_epoch()
        self.result.epochs.append(
            EpochResult(
                index=epoch,
                wall_time_s=wall,
                steps=steps,
                records=records,
                cpu_utilization=self.node.cpu.monitor.utilization(t0, self.sim.now),
                gpu_utilization=self.node.gpu_group.monitor.utilization(t0, self.sim.now),
                backend_ops=ops,
            )
        )
