"""Scenario builders for the PyTorch-style (loose-file) experiments.

Two setups matter for the portability study (paper §VI) and the
record-format motivation (§I):

* ``vanilla-lustre`` — the DataLoader opens and reads every sample file
  from the PFS every epoch: one MDS round trip *per sample per epoch*.
* ``monarch`` — identical loader, MONARCH reader: the virtual namespace
  absorbs the per-sample opens after the (expensive, per-file) startup
  traversal, and the tier serves repeat epochs locally.

The same ``DatasetSpec`` drives both this path and the record-shard path,
so "loose files vs TFRecords" comparisons hold bytes constant.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import MonarchConfig, TierSpec
from repro.core.middleware import Monarch, MonarchReader
from repro.data.dataset import DatasetSpec
from repro.data.imagenet import scaled
from repro.experiments.calibration import Calibration, DEFAULT_CALIBRATION, ScaledEnvironment
from repro.experiments.formats import RunRecord
from repro.experiments.scenarios import DATASET_DIR, PFS_MOUNT, SSD_MOUNT
from repro.framework.io_layer import PosixReader
from repro.framework.models import MODELS
from repro.framework.resources import ComputeNode
from repro.framework.training import TrainResult
from repro.simkernel.core import Simulator
from repro.simkernel.rng import RngRegistry
from repro.storage.blockmath import GIB
from repro.storage.device import Device
from repro.storage.interference import ARInterference
from repro.storage.localfs import LocalFileSystem
from repro.storage.pagecache import PageCache
from repro.storage.pfs import ParallelFileSystem
from repro.storage.vfs import MountTable
from repro.torchlike.dataset import FileSampleDataset, materialize_loose_files
from repro.torchlike.loader import DataLoaderConfig
from repro.torchlike.trainer import TorchTrainer

__all__ = ["TorchRunHandle", "build_torch_run", "run_torch_once"]

TORCH_SETUPS = ("vanilla-lustre", "monarch")
IMAGES_DIR = DATASET_DIR + "/images"


@dataclass
class TorchRunHandle:
    """One wired PyTorch-style run."""

    setup: str
    dataset: FileSampleDataset
    env: ScaledEnvironment
    sim: Simulator
    trainer: TorchTrainer
    pfs: ParallelFileSystem
    local_fs: LocalFileSystem | None = None
    monarch: Monarch | None = None

    def execute(self) -> TrainResult:
        """Run to completion."""
        proc = self.sim.spawn(self.trainer.run(), name="torch-train")
        result: TrainResult = self.sim.run(proc)
        if self.monarch is not None:
            self.monarch.shutdown()
        return result


def build_torch_run(
    setup: str,
    model_name: str,
    dataset: DatasetSpec,
    calib: Calibration,
    scale: float = 1.0,
    seed: int = 0,
    epochs: int | None = None,
    policy: str = "firstfit",
) -> TorchRunHandle:
    """Wire one loose-file run (mirrors scenarios.build_run)."""
    if setup not in TORCH_SETUPS:
        raise ValueError(f"unknown torch setup {setup!r}; expected one of {TORCH_SETUPS}")
    if model_name not in MODELS:
        raise ValueError(f"unknown model {model_name!r}")
    model = MODELS[model_name]
    sspec = scaled(dataset, scale)
    env = ScaledEnvironment.derive(calib, dataset, sspec, scale)
    sim = Simulator()
    rngs = RngRegistry(seed)

    interference = ARInterference(
        rngs.stream("interference"),
        mean_load=calib.interference_mean_load,
        sigma=calib.interference_sigma,
        rho=calib.interference_rho,
        interval=env.interference_interval,
        max_load=calib.interference_max_load,
    )
    # Loose files scale linearly with samples, so per-file metadata costs
    # need no shard-floor correction: use the calibrated MDS latency as-is.
    pfs = ParallelFileSystem(
        sim,
        config=replace(calib.pfs, stripe_size=env.stripe_size),
        interference=interference,
        rng=rngs.stream("pfs-jitter"),
        name="pfs",
    )
    files = FileSampleDataset.from_spec(sspec, IMAGES_DIR)
    materialize_loose_files(files, pfs)

    mounts = MountTable()
    mounts.mount(PFS_MOUNT, pfs)

    local_fs: LocalFileSystem | None = None
    monarch: Monarch | None = None
    init_hook = None
    backends = {"pfs": pfs.stats}
    node = ComputeNode(sim, calib.node)

    loader_config = DataLoaderConfig(
        num_workers=8,
        batch_size=env.pipeline.batch_size,
        prefetch_batches=4,
        reference_batch=env.pipeline.reference_batch,
    )

    if setup == "monarch":
        local_fs = LocalFileSystem(
            sim,
            Device(sim, calib.ssd, rng=rngs.stream("ssd-jitter")),
            capacity_bytes=env.local_capacity_bytes,
            name="local",
            page_cache=PageCache(env.page_cache_bytes,
                                 ram_bw_mib=calib.page_cache_ram_bw_mib),
        )
        mounts.mount(SSD_MOUNT, local_fs)
        backends["local"] = local_fs.stats
        monarch = Monarch(
            sim,
            MonarchConfig(
                tiers=(TierSpec(mount_point=SSD_MOUNT), TierSpec(mount_point=PFS_MOUNT)),
                dataset_dir=IMAGES_DIR,
                placement_threads=calib.placement_threads,
                # loose files are read whole, so the copy is one write
                copy_chunk=max(env.copy_chunk, 1),
                policy=policy,
            ),
            mounts,
            rng=rngs.stream("monarch"),
        )
        reader = MonarchReader(monarch)
        init_hook = monarch.initialize
        path_prefix = PFS_MOUNT
    else:
        reader = PosixReader(mounts)
        path_prefix = PFS_MOUNT

    trainer = TorchTrainer(
        sim=sim,
        node=node,
        model=model,
        config=loader_config,
        dataset=files,
        reader=reader,
        shuffle_rng=rngs.stream("shuffle"),
        backends=backends,
        epochs=epochs if epochs is not None else calib.epochs,
        path_prefix=path_prefix,
        init_hook=init_hook,
    )
    return TorchRunHandle(
        setup=setup,
        dataset=files,
        env=env,
        sim=sim,
        trainer=trainer,
        pfs=pfs,
        local_fs=local_fs,
        monarch=monarch,
    )


def run_torch_once(
    setup: str,
    model_name: str,
    dataset: DatasetSpec,
    calib: Calibration | None = None,
    scale: float = 1.0,
    seed: int = 0,
    epochs: int | None = None,
    policy: str = "firstfit",
) -> RunRecord:
    """One seeded loose-file run, un-scaled to paper units."""
    calib = calib or DEFAULT_CALIBRATION
    handle = build_torch_run(
        setup, model_name, dataset, calib, scale, seed, epochs, policy=policy
    )
    result = handle.execute()
    inv = 1.0 / scale
    return RunRecord(
        setup=f"torch-{setup}",
        model=model_name,
        dataset=dataset.name,
        scale=scale,
        seed=seed,
        epoch_times_s=[e.wall_time_s * inv for e in result.epochs],
        init_time_s=result.init_time_s * inv,
        cpu_utilization=[e.cpu_utilization for e in result.epochs],
        gpu_utilization=[e.gpu_utilization for e in result.epochs],
        memory_gib=10.0,
        pfs_ops_per_epoch=[
            int(round(e.backend_ops["pfs"].total_ops * inv)) for e in result.epochs
        ],
        local_ops_per_epoch=[
            int(round(e.backend_ops["local"].total_ops * inv))
            for e in result.epochs
            if "local" in e.backend_ops
        ],
        pfs_bytes_read=int(round(handle.pfs.stats.bytes_read * inv)),
        local_bytes_read=(
            int(round(handle.local_fs.stats.bytes_read * inv))
            if handle.local_fs is not None
            else 0
        ),
    )
