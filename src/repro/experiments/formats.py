"""Result containers for experiment runs, with (de)serialization.

A :class:`RunRecord` is one seeded training run; an
:class:`ExperimentResult` aggregates repeated runs of one configuration
(setup × model × dataset) into the mean ± std the paper reports.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field

__all__ = ["ExperimentResult", "MultiRunRecord", "RunRecord", "ServeRunRecord",
           "mean", "std"]


def mean(xs: list[float]) -> float:
    """Arithmetic mean (0.0 for empty input)."""
    return sum(xs) / len(xs) if xs else 0.0


def std(xs: list[float]) -> float:
    """Population standard deviation (0.0 below two samples)."""
    if len(xs) < 2:
        return 0.0
    mu = mean(xs)
    return math.sqrt(sum((x - mu) ** 2 for x in xs) / len(xs))


@dataclass
class RunRecord:
    """One seeded run of one configuration, in unscaled (paper) units."""

    setup: str
    model: str
    dataset: str
    scale: float
    seed: int
    #: per-epoch wall times, un-scaled to paper-equivalent seconds
    epoch_times_s: list[float] = field(default_factory=list)
    init_time_s: float = 0.0
    cpu_utilization: list[float] = field(default_factory=list)
    gpu_utilization: list[float] = field(default_factory=list)
    memory_gib: float = 0.0
    #: per-epoch PFS total ops (data + metadata), un-scaled
    pfs_ops_per_epoch: list[int] = field(default_factory=list)
    #: per-epoch local-tier total ops, un-scaled
    local_ops_per_epoch: list[int] = field(default_factory=list)
    pfs_bytes_read: int = 0
    local_bytes_read: int = 0
    #: full RunReport payload (``RunReport.to_dict()``) when the run was
    #: executed with telemetry; ``None`` otherwise.  Stored as a plain
    #: dict so ``asdict``/``RunRecord(**raw)`` round-trips it untouched.
    report: dict | None = None

    @property
    def total_time_s(self) -> float:
        """Total training time over all epochs."""
        return sum(self.epoch_times_s)

    @property
    def total_pfs_ops(self) -> int:
        """PFS operations summed over epochs."""
        return sum(self.pfs_ops_per_epoch)


@dataclass
class ServeRunRecord:
    """One seeded trace-replay serving run (steady-state metrics).

    Unlike :class:`RunRecord`, everything here is in **simulated** units:
    the workload generators scale request count and arrival rate together,
    so the replay horizon — and therefore every steady-state quantity —
    is directly comparable across scales without un-scaling.  Latencies
    are in milliseconds (serving convention); ``warm_*`` fields cover
    only the post-warmup fraction of the horizon, where the cache-warming
    claim lives.  All fields are plain JSON, so the run cache
    round-trips records bit-identically.
    """

    setup: str
    model: str
    dataset: str
    scale: float
    seed: int
    #: workload preset name (or the loaded trace's recorded name)
    workload: str
    n_requests: int = 0
    completed: int = 0
    #: replay span on the sim clock, init excluded
    duration_s: float = 0.0
    init_time_s: float = 0.0
    hit_rate: float = 0.0
    warm_hit_rate: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    p999_ms: float = 0.0
    mean_ms: float = 0.0
    warm_p50_ms: float = 0.0
    warm_p99_ms: float = 0.0
    warm_p999_ms: float = 0.0
    #: per steady-state window, in window order
    window_hit_rates: list[float] = field(default_factory=list)
    window_completed: list[int] = field(default_factory=list)
    pfs_read_ops: int = 0
    local_read_ops: int = 0
    pfs_bytes_read: int = 0
    local_bytes_read: int = 0
    #: full RunReport payload (with the ``steady`` section) when the run
    #: was executed with telemetry; ``None`` otherwise
    report: dict | None = None


@dataclass
class MultiRunRecord:
    """One seeded multi-job run (N concurrent jobs on one hierarchy).

    Per-job numbers are un-scaled like :class:`RunRecord`; the aggregate
    wall-clock is the *makespan* — the instant the last job finished,
    init phases included, since the jobs overlap.
    """

    scale: float
    seed: int
    #: per-job sections: model, share, epoch_times_s, init_time_s, total_time_s
    jobs: dict[str, dict] = field(default_factory=dict)
    #: un-scaled makespan of the whole concurrent run
    aggregate_time_s: float = 0.0
    #: full multi-run RunReport payload when run with telemetry
    report: dict | None = None

    @property
    def n_jobs(self) -> int:
        """Number of concurrent jobs in the run."""
        return len(self.jobs)

    def job_total(self, job_id: str) -> float:
        """One job's init + epoch total, un-scaled."""
        j = self.jobs[job_id]
        return j["init_time_s"] + sum(j["epoch_times_s"])

    def to_json(self) -> str:
        """Serialize to JSON (deterministic: sorted keys)."""
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "MultiRunRecord":
        """Inverse of :meth:`to_json`."""
        return cls(**json.loads(text))


@dataclass
class ExperimentResult:
    """Repeated runs of one configuration."""

    setup: str
    model: str
    dataset: str
    runs: list[RunRecord] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        """Number of seeded runs aggregated."""
        return len(self.runs)

    @property
    def n_epochs(self) -> int:
        """Epochs per run (0 when empty)."""
        return len(self.runs[0].epoch_times_s) if self.runs else 0

    def epoch_mean_std(self) -> list[tuple[float, float]]:
        """(mean, std) of wall time for each epoch index."""
        out = []
        for e in range(self.n_epochs):
            xs = [r.epoch_times_s[e] for r in self.runs]
            out.append((mean(xs), std(xs)))
        return out

    @property
    def total_mean(self) -> float:
        """Mean total training time across runs."""
        return mean([r.total_time_s for r in self.runs])

    @property
    def total_std(self) -> float:
        """Std of total training time across runs."""
        return std([r.total_time_s for r in self.runs])

    @property
    def cpu_percent(self) -> float:
        """Run-average CPU utilization, percent."""
        return 100.0 * mean([mean(r.cpu_utilization) for r in self.runs])

    @property
    def gpu_percent(self) -> float:
        """Run-average GPU utilization, percent."""
        return 100.0 * mean([mean(r.gpu_utilization) for r in self.runs])

    @property
    def memory_gib(self) -> float:
        """Run-average memory estimate, GiB."""
        return mean([r.memory_gib for r in self.runs])

    @property
    def mean_total_pfs_ops(self) -> float:
        """Mean total PFS ops across runs."""
        return mean([float(r.total_pfs_ops) for r in self.runs])

    def to_json(self) -> str:
        """Serialize to JSON (runs included)."""
        return json.dumps(asdict(self), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json`."""
        raw = json.loads(text)
        runs = [RunRecord(**r) for r in raw.pop("runs")]
        return cls(runs=runs, **raw)
