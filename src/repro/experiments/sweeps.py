"""Structured parameter sweeps over the experiment grid.

The paper's central design requirement is supporting "datasets with
variable sizes that may or may not be cached entirely on the compute
node's [storage]" — i.e. MONARCH's benefit should degrade *gracefully*
with the tier-capacity-to-dataset ratio instead of cliffing like
vanilla-caching does.  :func:`capacity_sweep` measures exactly that curve;
:func:`interference_sweep` measures sensitivity to PFS contention
(the motivation's variability axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.data.dataset import DatasetSpec
from repro.experiments.calibration import Calibration, DEFAULT_CALIBRATION
from repro.experiments.formats import ExperimentResult
from repro.experiments.runner import run_experiment

__all__ = ["CapacityPoint", "capacity_sweep", "interference_sweep"]


@dataclass
class CapacityPoint:
    """One point of the tier-capacity sweep."""

    capacity_fraction: float  #: tier capacity / dataset bytes
    monarch: ExperimentResult
    lustre: ExperimentResult

    @property
    def time_ratio(self) -> float:
        """monarch / lustre total time (lower = better)."""
        return self.monarch.total_mean / self.lustre.total_mean

    @property
    def steady_pfs_fraction(self) -> float:
        """Fraction of steady-state PFS ops monarch still issues."""
        m = self.monarch.runs[0].pfs_ops_per_epoch[-1]
        l = self.lustre.runs[0].pfs_ops_per_epoch[-1]
        return m / l if l else 0.0


def capacity_sweep(
    dataset: DatasetSpec,
    fractions: tuple[float, ...] = (0.25, 0.5, 0.75, 1.1),
    model_name: str = "lenet",
    calib: Calibration | None = None,
    scale: float = 1 / 256,
    runs: int = 2,
) -> list[CapacityPoint]:
    """MONARCH vs vanilla-lustre as the tier grows relative to the dataset.

    ``fractions`` are tier-capacity-to-dataset-bytes ratios; values above
    1 mean the dataset fits with headroom (the 100 GiB regime), values
    below 1 are the partial-caching regime (the 200 GiB regime).
    """
    calib = calib or DEFAULT_CALIBRATION
    # one shared lustre baseline (capacity-independent)
    lustre = run_experiment("vanilla-lustre", model_name, dataset,
                            calib=calib, scale=scale, runs=runs)
    dataset_bytes = dataset.approx_total_bytes
    points: list[CapacityPoint] = []
    for frac in fractions:
        if frac <= 0:
            raise ValueError("capacity fractions must be positive")
        point_calib = replace(
            calib, local_capacity_bytes=max(1, int(frac * dataset_bytes))
        )
        monarch = run_experiment("monarch", model_name, dataset,
                                 calib=point_calib, scale=scale, runs=runs)
        points.append(CapacityPoint(capacity_fraction=frac,
                                    monarch=monarch, lustre=lustre))
    return points


def interference_sweep(
    dataset: DatasetSpec,
    mean_loads: tuple[float, ...] = (0.05, 0.18, 0.35, 0.5),
    model_name: str = "lenet",
    calib: Calibration | None = None,
    scale: float = 1 / 256,
    runs: int = 3,
) -> dict[float, dict[str, ExperimentResult]]:
    """lustre vs monarch across background-load levels (motivation axis)."""
    calib = calib or DEFAULT_CALIBRATION
    out: dict[float, dict[str, ExperimentResult]] = {}
    for load in mean_loads:
        point_calib = replace(calib, interference_mean_load=load)
        out[load] = {
            setup: run_experiment(setup, model_name, dataset,
                                  calib=point_calib, scale=scale, runs=runs)
            for setup in ("vanilla-lustre", "monarch")
        }
    return out
