"""Structured parameter sweeps over the experiment grid.

The paper's central design requirement is supporting "datasets with
variable sizes that may or may not be cached entirely on the compute
node's [storage]" — i.e. MONARCH's benefit should degrade *gracefully*
with the tier-capacity-to-dataset ratio instead of cliffing like
vanilla-caching does.  :func:`capacity_sweep` measures exactly that curve;
:func:`interference_sweep` measures sensitivity to PFS contention
(the motivation's variability axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.data.dataset import DatasetSpec
from repro.experiments.calibration import Calibration, DEFAULT_CALIBRATION
from repro.experiments.executor import execute_grid
from repro.experiments.formats import ExperimentResult
from repro.experiments.runner import experiment_specs

__all__ = ["CapacityPoint", "capacity_sweep", "interference_sweep"]


def _gather(cells, runs, jobs, cache):
    """Fan one flat (setup, model, dataset, calib) cell list out and fold
    the records back into per-cell :class:`ExperimentResult`\\ s."""
    specs = []
    for setup, model_name, dataset, calib, scale in cells:
        specs.extend(
            experiment_specs(setup=setup, model_name=model_name, dataset=dataset,
                             calib=calib, scale=scale, runs=runs)
        )
    records = execute_grid(specs, jobs=jobs, cache=cache)
    results = []
    for i, (setup, model_name, dataset, _calib, _scale) in enumerate(cells):
        res = ExperimentResult(setup=setup, model=model_name, dataset=dataset.name)
        res.runs.extend(records[i * runs : (i + 1) * runs])
        results.append(res)
    return results


@dataclass
class CapacityPoint:
    """One point of the tier-capacity sweep."""

    capacity_fraction: float  #: tier capacity / dataset bytes
    monarch: ExperimentResult
    lustre: ExperimentResult

    @property
    def time_ratio(self) -> float:
        """monarch / lustre total time (lower = better)."""
        return self.monarch.total_mean / self.lustre.total_mean

    @property
    def steady_pfs_fraction(self) -> float:
        """Fraction of steady-state PFS ops monarch still issues."""
        m = self.monarch.runs[0].pfs_ops_per_epoch[-1]
        l = self.lustre.runs[0].pfs_ops_per_epoch[-1]
        return m / l if l else 0.0


def capacity_sweep(
    dataset: DatasetSpec,
    fractions: tuple[float, ...] = (0.25, 0.5, 0.75, 1.1),
    model_name: str = "lenet",
    calib: Calibration | None = None,
    scale: float = 1 / 256,
    runs: int = 2,
    jobs: int = 1,
    cache=None,
) -> list[CapacityPoint]:
    """MONARCH vs vanilla-lustre as the tier grows relative to the dataset.

    ``fractions`` are tier-capacity-to-dataset-bytes ratios; values above
    1 mean the dataset fits with headroom (the 100 GiB regime), values
    below 1 are the partial-caching regime (the 200 GiB regime).  The
    whole sweep — shared lustre baseline + one monarch cell per fraction
    — is a single flat grid, so ``jobs > 1`` keeps every worker busy
    across fraction boundaries.
    """
    calib = calib or DEFAULT_CALIBRATION
    dataset_bytes = dataset.approx_total_bytes
    for frac in fractions:
        if frac <= 0:
            raise ValueError("capacity fractions must be positive")
    # one shared lustre baseline (capacity-independent), then one monarch
    # cell per fraction — enumeration order matches the historical loop
    cells = [("vanilla-lustre", model_name, dataset, calib, scale)]
    for frac in fractions:
        point_calib = replace(
            calib, local_capacity_bytes=max(1, int(frac * dataset_bytes))
        )
        cells.append(("monarch", model_name, dataset, point_calib, scale))
    results = _gather(cells, runs, jobs, cache)
    lustre = results[0]
    return [
        CapacityPoint(capacity_fraction=frac, monarch=monarch, lustre=lustre)
        for frac, monarch in zip(fractions, results[1:])
    ]


def interference_sweep(
    dataset: DatasetSpec,
    mean_loads: tuple[float, ...] = (0.05, 0.18, 0.35, 0.5),
    model_name: str = "lenet",
    calib: Calibration | None = None,
    scale: float = 1 / 256,
    runs: int = 3,
    jobs: int = 1,
    cache=None,
) -> dict[float, dict[str, ExperimentResult]]:
    """lustre vs monarch across background-load levels (motivation axis)."""
    calib = calib or DEFAULT_CALIBRATION
    setups = ("vanilla-lustre", "monarch")
    cells = []
    for load in mean_loads:
        point_calib = replace(calib, interference_mean_load=load)
        for setup in setups:
            cells.append((setup, model_name, dataset, point_calib, scale))
    results = _gather(cells, runs, jobs, cache)
    out: dict[float, dict[str, ExperimentResult]] = {}
    for i, load in enumerate(mean_loads):
        out[load] = {
            setup: results[i * len(setups) + j] for j, setup in enumerate(setups)
        }
    return out
