"""Regenerate every figure and table of the paper's evaluation.

Each ``fig*``/``tab*`` function runs the experiment grid and returns the
results; the ``render_*`` helpers print them as aligned tables with the
paper's reference numbers alongside.  The module doubles as a CLI::

    python -m repro.experiments.figures fig1 [--scale 1/128] [--runs 3]
    python -m repro.experiments.figures all

Artifact ids match DESIGN.md's per-experiment index (FIG1, FIG3, FIG4,
TAB-RU-MOT, TAB-RU-EVAL, TAB-IO, TAB-META).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from fractions import Fraction


def _parse_scale(raw: str) -> float:
    """Accept both '1/128' and '0.0078125'."""
    return float(Fraction(raw))

from repro.data.imagenet import IMAGENET_100G, IMAGENET_200G, scaled
from repro.experiments.calibration import Calibration, DEFAULT_CALIBRATION
from repro.experiments.executor import RunSpec, execute_grid
from repro.experiments.formats import ExperimentResult, mean
from repro.experiments.multi_scenarios import (
    JobPlan,
    run_jobs_serially,
    run_multi_once,
    serial_total,
)
from repro.experiments.runner import experiment_specs, run_experiment
from repro.telemetry.report import format_table
from repro.workload.spec import WORKLOADS

__all__ = [
    "fig1",
    "fig3",
    "fig4",
    "fig_dist_cache",
    "fig_multi",
    "fig_policy",
    "fig_serve",
    "io_reduction",
    "metadata_init",
    "multi_job_plans",
    "render_dist_cache",
    "render_grid",
    "render_multi",
    "render_policy",
    "render_serve",
    "resource_usage",
]

MODELS = ("lenet", "alexnet", "resnet50")

#: paper reference totals (seconds over 3 epochs) for annotation columns
PAPER_TOTALS_100G = {
    ("lenet", "vanilla-lustre"): 1205,
    ("lenet", "vanilla-local"): 650,
    ("lenet", "vanilla-caching"): 917,
    ("lenet", "monarch"): 811,
    ("alexnet", "vanilla-lustre"): 1193,
    ("alexnet", "vanilla-local"): 976,
    ("alexnet", "vanilla-caching"): 1058,
    ("alexnet", "monarch"): 1018,
}
PAPER_TOTALS_200G = {
    ("lenet", "vanilla-lustre"): 2842,
    ("lenet", "monarch"): 2155,
    ("alexnet", "vanilla-lustre"): 3567,
    ("alexnet", "monarch"): 3138,
}


def _grid(
    setups: Sequence[str],
    dataset,
    calib: Calibration,
    scale: float,
    runs: int,
    models: Sequence[str] = MODELS,
    report: bool = False,
    jobs: int = 1,
    cache=None,
) -> dict[tuple[str, str], ExperimentResult]:
    # The whole (model × setup × seed) grid is enumerated up front and
    # fanned out in one executor call, so with jobs > 1 every core stays
    # busy across cell boundaries.  Enumeration order (model outer, setup
    # inner, seeds ascending) matches the historical nested loop, so
    # jobs=1 runs the very same sequence of simulations.
    cells = [(model, setup) for model in models for setup in setups]
    specs = []
    for model, setup in cells:
        specs.extend(
            experiment_specs(
                setup=setup,
                model_name=model,
                dataset=dataset,
                calib=calib,
                scale=scale,
                runs=runs,
                report=report,
            )
        )
    records = execute_grid(specs, jobs=jobs, cache=cache)
    out: dict[tuple[str, str], ExperimentResult] = {}
    for i, (model, setup) in enumerate(cells):
        res = ExperimentResult(setup=setup, model=model, dataset=dataset.name)
        res.runs.extend(records[i * runs : (i + 1) * runs])
        out[(model, setup)] = res
    return out


def fig1(
    scale: float = 1 / 128, runs: int = 3, report: bool = False,
    jobs: int = 1, cache=None,
) -> dict[tuple[str, str], ExperimentResult]:
    """FIG1 — motivation: baselines × models, 100 GiB dataset."""
    return _grid(
        ("vanilla-lustre", "vanilla-local", "vanilla-caching"),
        IMAGENET_100G,
        DEFAULT_CALIBRATION,
        scale,
        runs,
        report=report,
        jobs=jobs,
        cache=cache,
    )


def fig3(
    scale: float = 1 / 128, runs: int = 3, report: bool = False,
    jobs: int = 1, cache=None,
) -> dict[tuple[str, str], ExperimentResult]:
    """FIG3 — evaluation: baselines + MONARCH, 100 GiB dataset."""
    return _grid(
        ("vanilla-lustre", "vanilla-local", "vanilla-caching", "monarch"),
        IMAGENET_100G,
        DEFAULT_CALIBRATION,
        scale,
        runs,
        report=report,
        jobs=jobs,
        cache=cache,
    )


def fig4(
    scale: float = 1 / 128, runs: int = 3, report: bool = False,
    jobs: int = 1, cache=None,
) -> dict[tuple[str, str], ExperimentResult]:
    """FIG4 — evaluation: lustre vs MONARCH, 200 GiB dataset (busy regime)."""
    return _grid(
        ("vanilla-lustre", "monarch"),
        IMAGENET_200G,
        DEFAULT_CALIBRATION.busy(),
        scale,
        runs,
        report=report,
        jobs=jobs,
        cache=cache,
    )


def multi_job_plans(n_jobs: int = 2) -> list[JobPlan]:
    """The canonical FIG-MULTI job mix for ``n_jobs`` concurrent jobs.

    One compute-bound ResNet-50 on the full 100 GiB dataset, plus
    ``n_jobs - 1`` I/O-bound smaller jobs (20 GiB each) cycling through
    LeNet/AlexNet.  Fair shares mirror the dataset sizes, so each small
    job's working set fits its admission cap and its steady-state epochs
    run at solo speed, while the big job takes whatever share remains.
    """
    if not 2 <= n_jobs <= 4:
        raise ValueError(f"n_jobs must be in [2, 4], got {n_jobs}")
    small_dataset = scaled(IMAGENET_100G, 0.2)
    small_models = ("lenet", "alexnet", "lenet")
    plans = [
        JobPlan("resnet", "resnet50", IMAGENET_100G, share=1.0 - 0.2 * (n_jobs - 1))
    ]
    for i in range(n_jobs - 1):
        plans.append(
            JobPlan(f"small{i + 1}", small_models[i], small_dataset, share=0.2)
        )
    return plans


def fig_multi(
    scale: float = 1 / 128,
    seed: int = 0,
    n_jobs: int = 2,
    report: bool = False,
    jobs: int = 1,
    cache=None,
    policy: str = "firstfit",
) -> dict[str, object]:
    """FIG-MULTI — tenancy: ``n_jobs`` concurrent jobs vs the same jobs serially.

    Returns the concurrent :class:`MultiRunRecord`, the per-job serial
    baselines, the aggregate speedup (serial wall-clock over concurrent
    makespan, > 1 means concurrency wins) and each job's per-epoch
    slowdown versus running alone (the fairness metric).  ``jobs``/
    ``cache`` apply to the serial baselines (independent runs); the
    concurrent run is a single simulation and always executes in process.
    """
    plans = multi_job_plans(n_jobs)
    # The default policy is passed as "no overrides" so cache keys for
    # pre-policy runs stay valid.
    overrides = {"policy": policy} if policy != "firstfit" else None
    concurrent = run_multi_once(
        plans, scale=scale, seed=seed, report=report, monarch_overrides=overrides
    )
    serial = run_jobs_serially(
        plans, scale=scale, seed=seed, n_workers=jobs, cache=cache,
        monarch_overrides=overrides,
    )
    slowdowns = {
        job_id: [
            c / s if s > 0 else 1.0
            for c, s in zip(
                concurrent.jobs[job_id]["epoch_times_s"], serial[job_id].epoch_times_s
            )
        ]
        for job_id in serial
    }
    return {
        "jobs": plans,
        "concurrent": concurrent,
        "serial": serial,
        "serial_total_s": serial_total(serial),
        "speedup": serial_total(serial) / concurrent.aggregate_time_s,
        "slowdowns": slowdowns,
        "max_slowdown": max(max(v) for v in slowdowns.values()),
    }


POLICY_SCENARIOS = ("fits-100g", "overflow-200g", "faulted-100g", "multi-2job")


def _pfs_share(stats, pfs_level: int) -> float:
    """Fraction of middleware reads that reached the PFS (lower = better)."""
    total = stats.total_reads
    if total == 0:
        return 0.0
    return stats.reads_per_level.get(pfs_level, 0) / total


def fig_policy(
    scale: float = 1 / 128,
    seed: int = 0,
    policies: Sequence[str] | None = None,
    scenarios: Sequence[str] | None = None,
) -> dict[str, object]:
    """FIG-POLICY — tournament: every placement policy × every scenario.

    The ranking metric is the **Lustre-op share**: the fraction of all
    middleware reads that had to be served by the PFS backend.  First-fit
    is the paper-faithful reference; the win condition of the policy
    engine is at least one competitor scoring a *lower* share than
    first-fit on the 200 GiB overflow scenario (the paper's Fig. 4
    regime, where the dataset does not fit the SSD).

    Scenarios:

    * ``fits-100g`` — AlexNet over 100 GiB; the dataset fits, so any
      policy overhead shows up as a worse share.
    * ``overflow-200g`` — AlexNet over 200 GiB in the busy-cluster
      regime; capacity pressure differentiates admission strategies.
    * ``faulted-100g`` — LeNet over 100 GiB with the SSD dying at the
      midpoint of epoch 1 and recovering one half-epoch later; tests
      that policies degrade and re-place gracefully.
    * ``multi-2job`` — the FIG-MULTI two-job mix sharing one hierarchy
      under fair-share caps.

    Times are in *simulated* units (comparable within a scenario).
    Results are keyed ``scenarios[scenario][policy]`` with the share,
    the total time, and the policy's own counters.
    """
    from repro.core.policy import POLICY_NAMES
    from repro.experiments.multi_scenarios import build_multi_run
    from repro.experiments.scenarios import build_run, ssd_tier_down_plan

    policies = tuple(policies) if policies is not None else POLICY_NAMES
    scenarios = tuple(scenarios) if scenarios is not None else POLICY_SCENARIOS
    unknown = set(scenarios) - set(POLICY_SCENARIOS)
    if unknown:
        raise ValueError(f"unknown scenarios {sorted(unknown)}; expected {POLICY_SCENARIOS}")
    busy = DEFAULT_CALIBRATION.busy()

    single: dict[str, tuple[str, object, Calibration, object]] = {
        "fits-100g": ("alexnet", IMAGENET_100G, DEFAULT_CALIBRATION, None),
        "overflow-200g": ("alexnet", IMAGENET_200G, busy, None),
    }
    if "faulted-100g" in scenarios:
        # The failure instant is derived once, from the default-policy
        # fault-free baseline, so every policy faces the same fault.
        base = build_run(
            "monarch", "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
            scale=scale, seed=seed,
        ).execute()
        t_fail = base.init_time_s + base.epochs[0].wall_time_s / 2
        single["faulted-100g"] = (
            "lenet", IMAGENET_100G, DEFAULT_CALIBRATION,
            ssd_tier_down_plan(t_fail, recover_at_s=t_fail + base.epochs[0].wall_time_s / 2),
        )

    table: dict[str, dict[str, dict[str, object]]] = {}
    for scenario in scenarios:
        cells = table.setdefault(scenario, {})
        for policy in policies:
            if scenario == "multi-2job":
                handle = build_multi_run(
                    multi_job_plans(2), DEFAULT_CALIBRATION, scale=scale,
                    seed=seed, monarch_overrides={"policy": policy},
                )
                handle.execute()
                monarch, total_s = handle.monarch, handle.sim.now
            else:
                model, dataset, calib, plan = single[scenario]
                h = build_run(
                    "monarch", model, dataset, calib, scale=scale, seed=seed,
                    monarch_overrides={"policy": policy}, fault_plan=plan,
                )
                result = h.execute()
                monarch, total_s = h.monarch, result.total_time_s
            cells[policy] = {
                "pfs_share": _pfs_share(monarch.stats, monarch.hierarchy.pfs_level),
                "total_time_s": total_s,
                "counters": dict(monarch.placement.policy.counters()),
            }
    winners = {
        scenario: min(cells, key=lambda p: cells[p]["pfs_share"])
        for scenario, cells in table.items()
    }
    return {"policies": policies, "scenarios": table, "winners": winners}


def render_policy(result: dict[str, object], title: str = "") -> str:
    """Ranking table for a :func:`fig_policy` tournament."""
    rows = []
    for scenario, cells in result["scenarios"].items():
        best = result["winners"][scenario]
        for policy in result["policies"]:
            c = cells[policy]
            active = {k: v for k, v in c["counters"].items() if v}
            rows.append([
                scenario,
                policy + (" *" if policy == best else ""),
                f"{c['pfs_share']:.3f}",
                f"{c['total_time_s']:.1f}",
                " ".join(f"{k}={v}" for k, v in sorted(active.items())) or "-",
            ])
    table = format_table(
        ["scenario", "policy", "PFS-op share", "total (s, sim)", "policy counters"],
        rows,
        title=title or "FIG-POLICY: placement-policy tournament (* = scenario winner)",
    )
    overflow = result["scenarios"].get("overflow-200g")
    if not overflow or "firstfit" not in overflow:
        return table
    ff = overflow["firstfit"]["pfs_share"]
    beats = [
        p for p in result["policies"]
        if p != "firstfit" and overflow[p]["pfs_share"] < ff
    ]
    verdict = (
        f"win condition met: {', '.join(beats)} below first-fit's "
        f"{ff:.3f} overflow share"
        if beats
        else f"win condition NOT met: no policy below first-fit's {ff:.3f}"
    )
    return f"{table}\n{verdict}"


def fig_dist_cache(
    scale: float = 1 / 128,
    seed: int = 7,
    nodes: Sequence[int] = (2, 4, 8),
) -> dict[str, object]:
    """FIG-DIST-CACHE — cluster-wide peer cache vs per-node MONARCH.

    The worst case for independent per-node caches is the ``reshuffle``
    partition policy: each epoch every node gets a fresh shard subset, so
    a node's SSD rarely holds what it is about to read — but some *peer's*
    SSD almost always does.  ``monarch-p2p`` joins the SSDs into one
    directory-tracked namespace and serves those misses over the fabric.

    Same regime as the DIST-SCALE benchmark (LeNet over 200 GiB on the
    busy-cluster calibration).  Win condition: at ≥ 4 nodes the p2p setup
    beats plain monarch on total time, and its PFS ops drop after epoch 1.
    Results are keyed ``runs[(setup, n)]`` with the full
    :class:`~repro.experiments.dist_scenarios.DistRunRecord`.
    """
    from repro.experiments.dist_scenarios import run_distributed_once

    calib = DEFAULT_CALIBRATION.busy()
    runs: dict[tuple[str, int], object] = {}
    for n in nodes:
        for setup in ("monarch", "monarch-p2p"):
            runs[(setup, n)] = run_distributed_once(
                setup, "lenet", IMAGENET_200G, n, policy="reshuffle",
                calib=calib, scale=scale, seed=seed,
            )
    return {"nodes": tuple(nodes), "runs": runs}


def render_dist_cache(result: dict[str, object], title: str = "") -> str:
    """Comparison table for a :func:`fig_dist_cache` result."""
    runs = result["runs"]
    rows = []
    for n in result["nodes"]:
        for setup in ("monarch", "monarch-p2p"):
            r = runs[(setup, n)]
            rows.append([
                n,
                setup,
                f"{r.total_time_s:.0f}",
                " ".join(f"{o / 1e3:.0f}k" for o in r.pfs_ops_per_epoch),
                f"{r.steady_hit_ratio:.3f}",
                str(r.total_peer_hits) if setup == "monarch-p2p" else "-",
            ])
    table = format_table(
        ["nodes", "setup", "total (s)", "PFS ops/epoch", "steady hit", "peer hits"],
        rows,
        title=title or "FIG-DIST-CACHE: peer cache under reshuffle, 200 GiB",
    )
    wins = [
        n for n in result["nodes"]
        if n >= 4 and runs[("monarch-p2p", n)].total_time_s
        < runs[("monarch", n)].total_time_s
    ]
    checked = [n for n in result["nodes"] if n >= 4]
    verdict = (
        f"win condition met: p2p faster at {', '.join(str(n) for n in wins)} node(s)"
        if wins and wins == checked
        else "win condition NOT met: p2p not faster at every >=4-node point"
    )
    return f"{table}\n{verdict}"


SERVE_FIGURE_SETUPS = ("vanilla-lustre", "monarch")

#: FIG-SERVE gate: monarch's warm p99 must be at most this fraction of
#: vanilla-lustre's (the paper's cache-warming claim, in latency form)
SERVE_P99_RATIO_GATE = 0.7


def fig_serve(
    scale: float = 1 / 128,
    seed: int = 0,
    workload: str = "serve-zipf",
    report: bool = False,
    jobs: int = 1,
    cache=None,
) -> dict[str, object]:
    """FIG-SERVE — trace-replay serving: lustre vs MONARCH, p99 latency.

    Replays the named serving workload (Zipfian random reads by default)
    through both setups on the same seed and compares steady-state tail
    latency.  Win condition: once the cache warms (second half of the
    horizon), monarch's p99 is at most ``SERVE_P99_RATIO_GATE`` × the
    vanilla-lustre p99 — every warm read is a local/memory hit instead of
    a PFS round trip.  Results are keyed ``runs[setup]`` with the full
    :class:`~repro.experiments.formats.ServeRunRecord`.
    """
    spec = WORKLOADS[workload]
    specs = [
        RunSpec(
            setup=setup,
            model="lenet",
            dataset=IMAGENET_100G,
            calib=DEFAULT_CALIBRATION,
            scale=scale,
            seed=seed,
            report=report,
            workload=spec,
        )
        for setup in SERVE_FIGURE_SETUPS
    ]
    records = execute_grid(specs, jobs=jobs, cache=cache)
    return {
        "workload": workload,
        "runs": dict(zip(SERVE_FIGURE_SETUPS, records)),
    }


def render_serve(result: dict[str, object], title: str = "") -> str:
    """Latency/hit-rate table plus verdict for a :func:`fig_serve` result."""
    runs = result["runs"]
    rows = []
    for setup in SERVE_FIGURE_SETUPS:
        r = runs[setup]
        rows.append([
            setup,
            f"{r.completed}/{r.n_requests}",
            f"{r.hit_rate:.3f}",
            f"{r.warm_hit_rate:.3f}",
            f"{r.p50_ms:.2f}",
            f"{r.p99_ms:.2f}",
            f"{r.warm_p50_ms:.2f}",
            f"{r.warm_p99_ms:.2f}",
            f"{r.warm_p999_ms:.2f}",
        ])
    table = format_table(
        ["setup", "done", "hit", "warm hit", "p50 ms", "p99 ms",
         "warm p50", "warm p99", "warm p999"],
        rows,
        title=title or (
            f"FIG-SERVE: {result['workload']} trace replay "
            "(latencies in ms, simulated)"
        ),
    )
    lustre = runs["vanilla-lustre"]
    monarch = runs["monarch"]
    if lustre.warm_p99_ms > 0:
        ratio = monarch.warm_p99_ms / lustre.warm_p99_ms
        verdict = (
            f"win condition met: monarch warm p99 {monarch.warm_p99_ms:.2f} ms = "
            f"{ratio:.2f}x lustre's {lustre.warm_p99_ms:.2f} ms "
            f"(gate <= {SERVE_P99_RATIO_GATE:g}x)"
            if ratio <= SERVE_P99_RATIO_GATE
            else f"win condition NOT met: ratio {ratio:.2f}x above "
                 f"{SERVE_P99_RATIO_GATE:g}x gate"
        )
    else:
        verdict = "win condition NOT met: lustre recorded no warm latencies"
    return f"{table}\n{verdict}"


def resource_usage(
    grid: dict[tuple[str, str], ExperimentResult],
) -> list[tuple[str, str, float, float, float]]:
    """TAB-RU — (model, setup, cpu %, gpu %, mem GiB) rows from a grid."""
    rows = []
    for (model, setup), res in sorted(grid.items()):
        rows.append((model, setup, res.cpu_percent, res.gpu_percent, res.memory_gib))
    return rows


def io_reduction(
    scale: float = 1 / 128, runs: int = 3, jobs: int = 1, cache=None
) -> dict[str, object]:
    """TAB-IO — PFS op counts, 200 GiB dataset, lustre vs MONARCH.

    Paper reference: ~360 k of 798 340 ops/epoch still reach Lustre in
    epochs 2–3; 55 % average reduction over the whole workload.
    """
    calib = DEFAULT_CALIBRATION.busy()
    lustre = run_experiment(
        "vanilla-lustre", "lenet", IMAGENET_200G, calib=calib, scale=scale,
        runs=runs, jobs=jobs, cache=cache,
    )
    monarch = run_experiment(
        "monarch", "lenet", IMAGENET_200G, calib=calib, scale=scale,
        runs=runs, jobs=jobs, cache=cache,
    )
    lustre_per_epoch = [
        mean([float(r.pfs_ops_per_epoch[e]) for r in lustre.runs])
        for e in range(lustre.n_epochs)
    ]
    monarch_per_epoch = [
        mean([float(r.pfs_ops_per_epoch[e]) for r in monarch.runs])
        for e in range(monarch.n_epochs)
    ]
    total_l = sum(lustre_per_epoch)
    total_m = sum(monarch_per_epoch)
    return {
        "lustre_ops_per_epoch": lustre_per_epoch,
        "monarch_ops_per_epoch": monarch_per_epoch,
        "steady_epoch_ops": monarch_per_epoch[-1],
        "total_reduction_pct": 100.0 * (1 - total_m / total_l),
        "lustre": lustre,
        "monarch": monarch,
    }


def metadata_init(
    scale: float = 1 / 128, runs: int = 3, jobs: int = 1, cache=None
) -> dict[str, float]:
    """TAB-META — metadata-container init time for both datasets.

    Paper reference: ~13 s (100 GiB / 784 shards), ~52 s (200 GiB /
    ~1600 shards).
    """
    r100 = run_experiment(
        "monarch", "lenet", IMAGENET_100G, calib=DEFAULT_CALIBRATION,
        scale=scale, runs=runs, epochs=1, jobs=jobs, cache=cache,
    )
    r200 = run_experiment(
        "monarch", "lenet", IMAGENET_200G, calib=DEFAULT_CALIBRATION.busy(),
        scale=scale, runs=runs, epochs=1, jobs=jobs, cache=cache,
    )
    return {
        "init_100g_s": mean([r.init_time_s for r in r100.runs]),
        "init_200g_s": mean([r.init_time_s for r in r200.runs]),
    }


# -- rendering ------------------------------------------------------------
def render_grid(
    grid: dict[tuple[str, str], ExperimentResult],
    paper_totals: dict[tuple[str, str], int] | None = None,
    title: str = "",
) -> str:
    """Per-epoch mean±std table for a grid, with paper references."""
    headers = ["model", "setup"]
    n_epochs = next(iter(grid.values())).n_epochs
    for e in range(n_epochs):
        headers.append(f"epoch{e + 1} (s)")
    headers += ["total (s)", "paper total"]
    rows = []
    for (model, setup), res in sorted(grid.items()):
        row: list[object] = [model, setup]
        for m, s in res.epoch_mean_std():
            row.append(f"{m:.0f}±{s:.0f}")
        row.append(f"{res.total_mean:.0f}±{res.total_std:.0f}")
        ref = (paper_totals or {}).get((model, setup))
        row.append(str(ref) if ref is not None else "-")
        rows.append(row)
    return format_table(headers, rows, title=title)


def render_multi(result: dict[str, object], title: str = "") -> str:
    """Concurrent-vs-serial table for a :func:`fig_multi` result."""
    concurrent = result["concurrent"]
    serial = result["serial"]
    slowdowns = result["slowdowns"]
    rows = []
    for job_id in sorted(serial):
        j = concurrent.jobs[job_id]
        rows.append([
            job_id,
            j["model"],
            f"{j['share']:g}",
            " ".join(f"{t:.0f}" for t in j["epoch_times_s"]),
            " ".join(f"{t:.0f}" for t in serial[job_id].epoch_times_s),
            f"{max(slowdowns[job_id]):.2f}x",
        ])
    table = format_table(
        ["job", "model", "share", "concurrent epochs (s)", "solo epochs (s)",
         "worst slowdown"],
        rows,
        title=title or "FIG-MULTI: concurrent jobs vs serial baseline",
    )
    return (
        f"{table}\n"
        f"aggregate (concurrent makespan): {concurrent.aggregate_time_s:.0f} s, "
        f"serial: {result['serial_total_s']:.0f} s, "
        f"speedup {result['speedup']:.2f}x"
    )


def render_resource_usage(grid: dict[tuple[str, str], ExperimentResult], title: str) -> str:
    """CPU/GPU/memory table for a grid."""
    rows = resource_usage(grid)
    return format_table(
        ["model", "setup", "cpu %", "gpu %", "mem GiB"],
        rows,
        title=title,
    )


def positive_int(raw: str) -> int:
    """argparse type for ``--jobs``: a strictly positive integer."""
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {raw!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (>= 1), got {value}"
        )
    return value


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: print one artifact (or all of them)."""
    parser = argparse.ArgumentParser(description="regenerate the paper's figures/tables")
    parser.add_argument(
        "artifact",
        choices=["fig1", "fig3", "fig4", "multi", "policy", "dist-cache",
                 "serve", "io", "meta", "usage", "all"],
    )
    parser.add_argument("--scale", type=_parse_scale, default=1 / 128,
                        help="simulation scale, e.g. 1/128 or 0.0078125")
    parser.add_argument("--runs", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for the multi artifact's single run")
    parser.add_argument("--jobs", type=positive_int, default=1,
                        help="worker processes for the run grid (1 = in-process)")
    parser.add_argument("--n-jobs", type=int, default=2,
                        help="concurrent job count for the multi artifact")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the content-keyed run cache")
    parser.add_argument("--cache-dir", default=None,
                        help="run-cache directory (default: REPRO_RUN_CACHE or "
                             "~/.cache/repro-monarch/runs)")
    args = parser.parse_args(argv)
    scale, runs = args.scale, args.runs
    jobs = args.jobs
    cache = None if args.no_cache else (args.cache_dir or True)

    def do_fig1() -> None:
        print(render_grid(fig1(scale, runs, jobs=jobs, cache=cache),
                          PAPER_TOTALS_100G,
                          "FIG1: motivation, 100 GiB ImageNet (paper Fig. 1)"))

    def do_fig3() -> None:
        g = fig3(scale, runs, jobs=jobs, cache=cache)
        print(render_grid(g, PAPER_TOTALS_100G,
                          "FIG3: MONARCH vs baselines, 100 GiB (paper Fig. 3)"))
        print()
        print(render_resource_usage(g, "TAB-RU-EVAL (100 GiB)"))

    def do_fig4() -> None:
        g = fig4(scale, runs, jobs=jobs, cache=cache)
        print(render_grid(g, PAPER_TOTALS_200G,
                          "FIG4: MONARCH vs vanilla-lustre, 200 GiB (paper Fig. 4)"))
        print()
        print(render_resource_usage(g, "TAB-RU-EVAL (200 GiB)"))

    def do_io() -> None:
        r = io_reduction(scale, runs, jobs=jobs, cache=cache)
        print("TAB-IO: PFS I/O pressure, 200 GiB (paper §IV-A)")
        print(f"  lustre ops/epoch : {[f'{o / 1e3:.0f}k' for o in r['lustre_ops_per_epoch']]}")
        print(f"  monarch ops/epoch: {[f'{o / 1e3:.0f}k' for o in r['monarch_ops_per_epoch']]}")
        print(f"  steady-state epoch ops to Lustre: {r['steady_epoch_ops'] / 1e3:.0f}k "
              "(paper: ~360k of 798,340)")
        print(f"  total reduction: {r['total_reduction_pct']:.0f}% (paper: 55% average)")

    def do_meta() -> None:
        m = metadata_init(scale, runs, jobs=jobs, cache=cache)
        print("TAB-META: metadata-container initialization (paper §IV-A)")
        print(f"  100 GiB: {m['init_100g_s']:.1f} s (paper ~13 s)")
        print(f"  200 GiB: {m['init_200g_s']:.1f} s (paper ~52 s)")

    def do_multi() -> None:
        r = fig_multi(scale, seed=args.seed, n_jobs=args.n_jobs,
                      jobs=jobs, cache=cache)
        print(render_multi(
            r, f"FIG-MULTI: {args.n_jobs} concurrent jobs vs serial (tenancy)"))

    def do_policy() -> None:
        print(render_policy(fig_policy(scale, seed=args.seed)))

    def do_dist_cache() -> None:
        print(render_dist_cache(fig_dist_cache(scale, seed=args.seed)))

    def do_serve() -> None:
        print(render_serve(fig_serve(scale, seed=args.seed,
                                     jobs=jobs, cache=cache)))

    def do_usage() -> None:
        print(render_resource_usage(fig1(scale, runs, jobs=jobs, cache=cache),
                                    "TAB-RU-MOT (motivation, 100 GiB)"))

    actions = {
        "fig1": [do_fig1],
        "fig3": [do_fig3],
        "fig4": [do_fig4],
        "multi": [do_multi],
        "policy": [do_policy],
        "dist-cache": [do_dist_cache],
        "serve": [do_serve],
        "io": [do_io],
        "meta": [do_meta],
        "usage": [do_usage],
        "all": [do_fig1, do_fig3, do_fig4, do_io, do_meta],
    }
    for fn in actions[args.artifact]:
        fn()
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
