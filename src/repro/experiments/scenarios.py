"""Build the four experimental setups the paper evaluates.

* ``vanilla-lustre`` — dataset served solely from the (contended) PFS.
* ``vanilla-local`` — dataset staged on the node-local SSD beforehand
  (only possible when it fits, as in the motivation study).
* ``vanilla-caching`` — TensorFlow's file cache: PFS during epoch 1 while
  copying everything locally, local thereafter (requires the dataset to
  fit on the SSD).
* ``monarch`` — the middleware: two-tier hierarchy (SSD above Lustre),
  6 placement threads, metadata init at startup.

:func:`build_run` wires one complete simulated environment for a
(setup, model, dataset, scale, seed) tuple and returns a
:class:`RunHandle` whose :meth:`~RunHandle.execute` drives it to
completion.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import MonarchConfig, TierSpec
from repro.core.middleware import Monarch, MonarchReader
from repro.data.dataset import DatasetSpec
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, TierDown
from repro.data.imagenet import scaled
from repro.data.sharding import ShardManifest, build_shards
from repro.data.virtual import materialize
from repro.experiments.calibration import Calibration, ScaledEnvironment
from repro.framework.cache import TFDataCache
from repro.framework.io_layer import PosixReader
from repro.framework.models import MODELS, ModelProfile
from repro.framework.pipeline import shards_from_manifest
from repro.framework.resources import ComputeNode
from repro.framework.training import Trainer, TrainResult
from repro.simkernel.core import Simulator
from repro.simkernel.rng import RngRegistry
from repro.storage.base import NoSpaceError
from repro.storage.device import Device, RAMDISK
from repro.storage.interference import (
    ARInterference,
    BurstInterference,
    CompositeInterference,
)
from repro.storage.localfs import LocalFileSystem
from repro.storage.pagecache import PageCache
from repro.storage.pfs import ParallelFileSystem
from repro.storage.vfs import MountTable
from repro.telemetry.runreport import RunTelemetry
from repro.workload.generators import generate_trace
from repro.workload.replay import ReplayDriver, ReplayResult
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import Trace

__all__ = ["RunHandle", "SETUPS", "SERVE_SETUPS", "build_run", "ssd_tier_down_plan"]

SETUPS = ("vanilla-lustre", "vanilla-local", "vanilla-caching", "monarch")

#: setups that can serve trace-replay workloads (vanilla-caching is
#: epoch-structured — its cache only turns over at epoch boundaries, so
#: it has no meaningful behaviour under open-arrival traffic)
SERVE_SETUPS = ("vanilla-lustre", "vanilla-local", "monarch")

PFS_MOUNT = "/mnt/pfs"
SSD_MOUNT = "/mnt/ssd"
RAM_MOUNT = "/mnt/ram"
DATASET_DIR = "/dataset"


@dataclass
class RunHandle:
    """One fully wired simulated run, ready to execute."""

    setup: str
    model: ModelProfile
    dataset: DatasetSpec  #: the *scaled* spec actually simulated
    env: ScaledEnvironment
    sim: Simulator
    #: the epoch trainer (None for trace-replay serving runs)
    trainer: Trainer | None
    pfs: ParallelFileSystem
    local_fs: LocalFileSystem | None = None
    monarch: Monarch | None = None
    manifest: ShardManifest | None = None
    fault_plan: FaultPlan | None = None
    injector: FaultInjector | None = None
    #: live observability harness (None unless built with telemetry=True)
    telemetry: RunTelemetry | None = None
    #: the serving replay driver (set instead of ``trainer``)
    replay: ReplayDriver | None = None
    workload: WorkloadSpec | None = None

    def execute(self) -> TrainResult | ReplayResult:
        """Run the job to completion; returns the driver's result."""
        if self.replay is not None:
            proc = self.sim.spawn(self.replay.run(), name="serve-replay")
        else:
            assert self.trainer is not None
            proc = self.sim.spawn(self.trainer.run(), name="train-job")
        result = self.sim.run(proc)
        if self.monarch is not None:
            self.monarch.shutdown()
        return result


def ssd_tier_down_plan(at_s: float, recover_at_s: float | None = None) -> FaultPlan:
    """The FIG-FAULT schedule: the node-local SSD dies at ``at_s``.

    ``at_s`` is in *simulated* seconds from job start (init included).
    With ``recover_at_s`` the device comes back — the quarantined tier is
    then re-admitted by the first successful probe read.
    """
    return FaultPlan({SSD_MOUNT: (TierDown(at=at_s, recover_at=recover_at_s),)})


def build_run(
    setup: str,
    model_name: str,
    dataset: DatasetSpec,
    calib: Calibration,
    scale: float = 1.0,
    seed: int = 0,
    epochs: int | None = None,
    monarch_overrides: dict | None = None,
    fault_plan: FaultPlan | None = None,
    telemetry: bool = False,
    workload: WorkloadSpec | None = None,
    trace: Trace | None = None,
) -> RunHandle:
    """Wire a complete environment for one experimental run.

    ``dataset`` is the unscaled spec; it is shrunk by ``scale`` here, with
    tier capacities scaled to match.  ``monarch_overrides`` lets ablation
    benchmarks tweak :class:`MonarchConfig` fields (thread-pool size,
    eviction policy, full-fetch flag).  ``fault_plan`` arms a fault
    schedule against the planned mounts (``REPRO_FAULT_PLAN`` in the
    environment supplies one when the argument is omitted); fault draws
    come from the dedicated ``"faults"`` RNG stream, so a (seed, plan)
    pair replays identically.  ``telemetry=True`` arms the RunReport
    observability layer: an event recorder threaded through the
    middleware/placement/health stack, an I/O trace on every backend and
    per-epoch middleware snapshots (slightly slower; off by default so
    the hot paths keep their no-op recorder).

    ``workload`` swaps the epoch trainer for the trace-replay serving
    driver: a request stream is generated from the spec (seeded by this
    run's registry, so byte-identical per seed) and fed through the same
    reader stack on the simulation clock, with no epoch structure.
    ``trace`` replays an already-generated (or file-loaded) stream
    instead; it must target the shared namespace (churn traces carry
    per-job datasets, which only the generator can rebuild).
    """
    if setup not in SETUPS:
        raise ValueError(f"unknown setup {setup!r}; expected one of {SETUPS}")
    if model_name not in MODELS:
        raise ValueError(f"unknown model {model_name!r}; expected one of {sorted(MODELS)}")
    serving = workload is not None or trace is not None
    if serving and setup not in SERVE_SETUPS:
        raise ValueError(
            f"setup {setup!r} cannot serve trace workloads; "
            f"expected one of {SERVE_SETUPS}"
        )
    if trace is not None and workload is None and trace.jobs():
        raise ValueError(
            "file-loaded churn traces are not replayable: per-job datasets "
            "can only be rebuilt by the generator (pass the workload spec)"
        )
    model = MODELS[model_name]
    sspec = scaled(dataset, scale)
    env = ScaledEnvironment.derive(calib, dataset, sspec, scale)
    sim = Simulator()
    rngs = RngRegistry(seed)
    tele = RunTelemetry(sim) if telemetry else None
    recorder = tele.recorder if tele is not None else None

    # -- shared substrate: the PFS always exists (it owns the dataset) ----
    interference: ARInterference | CompositeInterference = ARInterference(
        rngs.stream("interference"),
        mean_load=calib.interference_mean_load,
        sigma=calib.interference_sigma,
        rho=calib.interference_rho,
        interval=env.interference_interval,
        max_load=calib.interference_max_load,
    )
    if calib.burst_p > 0:
        interference = CompositeInterference(
            interference,
            BurstInterference(
                rngs.stream("interference-burst"),
                quiet_share=1.0,
                burst_share=calib.burst_share,
                p_burst=calib.burst_p,
                p_recover=calib.burst_recover,
                interval=env.interference_interval,
            ),
        )
    pfs = ParallelFileSystem(
        sim,
        config=replace(calib.pfs, stripe_size=env.stripe_size, mds_latency_s=env.mds_latency_s),
        interference=interference,
        rng=rngs.stream("pfs-jitter"),
        name="pfs",
    )
    manifest = build_shards(sspec)
    pfs_paths = materialize(manifest, pfs, DATASET_DIR)

    if fault_plan is None:
        fault_plan = FaultPlan.from_env()
    injector: FaultInjector | None = None
    if fault_plan is not None and not fault_plan.is_empty():
        injector = FaultInjector(sim, fault_plan, rngs.stream("faults"))

    def faulted(mount: str, fs):
        return fs if injector is None else injector.wrap_fs(mount, fs)

    mounts = MountTable()
    mounts.mount(PFS_MOUNT, faulted(PFS_MOUNT, pfs))

    local_fs: LocalFileSystem | None = None
    if setup != "vanilla-lustre":
        device = Device(sim, calib.ssd, rng=rngs.stream("ssd-jitter"))
        local_fs = LocalFileSystem(
            sim,
            device,
            capacity_bytes=env.local_capacity_bytes,
            name="local",
            page_cache=PageCache(
                env.page_cache_bytes, ram_bw_mib=calib.page_cache_ram_bw_mib
            ),
        )
        mounts.mount(SSD_MOUNT, faulted(SSD_MOUNT, local_fs))

    node = ComputeNode(sim, calib.node)
    n_epochs = epochs if epochs is not None else calib.epochs
    backends = {"pfs": pfs.stats}
    if local_fs is not None:
        backends["local"] = local_fs.stats

    cache: TFDataCache | None = None
    monarch: Monarch | None = None
    init_hook = None

    if setup == "vanilla-local":
        # Stage the dataset on the SSD beforehand (fails if it cannot fit,
        # exactly like the real setup would).
        assert local_fs is not None
        if manifest.total_bytes > env.local_capacity_bytes:
            raise NoSpaceError(
                f"vanilla-local needs {manifest.total_bytes} bytes locally, "
                f"capacity is {env.local_capacity_bytes}"
            )
        for shard, path in zip(manifest.shards, pfs_paths):
            local_fs.add_file(path, shard.size_bytes)
        shard_paths = [SSD_MOUNT + p for p in pfs_paths]
        reader = PosixReader(mounts)
    elif setup == "vanilla-caching":
        assert local_fs is not None
        cache = TFDataCache(mounts, SSD_MOUNT + "/cache")
        shard_paths = [PFS_MOUNT + p for p in pfs_paths]
        reader = PosixReader(mounts)
    elif setup == "monarch":
        overrides = monarch_overrides or {}
        tiers: tuple[TierSpec, ...] = (
            TierSpec(mount_point=SSD_MOUNT),
            TierSpec(mount_point=PFS_MOUNT),
        )
        ram_bytes = overrides.get("ram_tier_bytes")
        if ram_bytes:
            # §VI future work: a RAM tier above the SSD.  The budget is
            # given in full-scale bytes and scaled like every capacity.
            ram_fs = LocalFileSystem(
                sim,
                Device(sim, RAMDISK),
                capacity_bytes=max(1, int(round(ram_bytes * scale))),
                name="ram",
            )
            mounts.mount(RAM_MOUNT, faulted(RAM_MOUNT, ram_fs))
            backends["ram"] = ram_fs.stats
            tiers = (TierSpec(mount_point=RAM_MOUNT), *tiers)
        config = MonarchConfig(
            tiers=tiers,
            dataset_dir=DATASET_DIR,
            placement_threads=overrides.get("placement_threads", calib.placement_threads),
            copy_chunk=overrides.get("copy_chunk", env.copy_chunk),
            full_fetch_on_partial_read=overrides.get("full_fetch_on_partial_read", True),
            eviction=overrides.get("eviction", "none"),
            policy=overrides.get("policy", "firstfit"),
        )
        if "tiers" in overrides:
            config = replace(config, tiers=overrides["tiers"])
        monarch = Monarch(sim, config, mounts, rng=rngs.stream("monarch"), recorder=recorder)
        shard_paths = [PFS_MOUNT + p for p in pfs_paths]
        reader = MonarchReader(monarch)
        if overrides.get("prestage"):
            # §III-A placement option (i): traverse, then stage everything
            # before epoch 1; both phases count as init (time to first step).
            def init_with_prestage(m: Monarch = monarch):
                yield from m.initialize()
                yield from m.prestage()

            init_hook = init_with_prestage
        else:
            init_hook = monarch.initialize
    else:  # vanilla-lustre
        shard_paths = [PFS_MOUNT + p for p in pfs_paths]
        reader = PosixReader(mounts)

    if tele is not None:
        tele.attach_backends(backends)
        tele.monarch = monarch

    trainer: Trainer | None = None
    replay: ReplayDriver | None = None
    if serving:
        replay = _build_replay(
            setup=setup,
            workload=workload,
            trace=trace,
            dataset=dataset,
            sspec=sspec,
            manifest=manifest,
            scale=scale,
            rngs=rngs,
            sim=sim,
            pfs=pfs,
            local_fs=local_fs,
            monarch=monarch,
            backends=backends,
            env=env,
            reader=reader,
            shard_paths=shard_paths,
            init_hook=init_hook,
        )
    else:
        shards = shards_from_manifest(manifest, shard_paths)
        trainer = Trainer(
            sim=sim,
            node=node,
            model=model,
            config=env.pipeline,
            shards=shards,
            reader=reader,
            shuffle_rng=rngs.stream("shuffle"),
            backends=backends,
            cache=cache,
            epochs=n_epochs,
            init_hook=init_hook,
            epoch_end_hook=tele.on_epoch_end if tele is not None else None,
            recorder=recorder,
        )
    return RunHandle(
        setup=setup,
        model=model,
        dataset=sspec,
        env=env,
        sim=sim,
        trainer=trainer,
        pfs=pfs,
        local_fs=local_fs,
        monarch=monarch,
        manifest=manifest,
        fault_plan=fault_plan,
        injector=injector,
        telemetry=tele,
        replay=replay,
        workload=workload,
    )


JOBS_DIR = "/jobs"


def _validate_trace(trace: Trace, paths_by_job: dict[str, list[int]]) -> None:
    """Reject a (file-loaded) trace that does not fit the namespace."""
    for r in trace.requests:
        if r.kind != "read":
            continue
        sizes = paths_by_job.get(r.job)
        if sizes is None or not 0 <= r.file_index < len(sizes):
            raise ValueError(
                f"trace read targets unknown file {r.file_index} "
                f"of job {r.job!r}"
            )
        if r.offset < 0 or r.nbytes < 1 or r.offset + r.nbytes > sizes[r.file_index]:
            raise ValueError(
                f"trace read [{r.offset}, {r.offset + r.nbytes}) exceeds "
                f"file {r.file_index} of job {r.job!r} "
                f"({sizes[r.file_index]} bytes)"
            )


def _build_replay(
    *,
    setup: str,
    workload: WorkloadSpec | None,
    trace: Trace | None,
    dataset: DatasetSpec,
    sspec: DatasetSpec,
    manifest: ShardManifest,
    scale: float,
    rngs: RngRegistry,
    sim: Simulator,
    pfs: ParallelFileSystem,
    local_fs: LocalFileSystem | None,
    monarch: Monarch | None,
    backends: dict,
    env: ScaledEnvironment,
    reader,
    shard_paths: list[str],
    init_hook,
) -> ReplayDriver:
    """Wire the serving replay: trace, per-job datasets, window sampling."""
    sizes = [s.size_bytes for s in manifest.shards]
    mean_record = max(1, int(round(sspec.size_model.mean_bytes)))

    # -- per-job datasets (churn): each job owns a private shard set ------
    job_paths: dict[str, list[str]] = {}
    job_dirs: dict[str, str] = {}
    job_sizes: list[list[int]] = []
    if workload is not None and workload.kind == "churn":
        job_spec = scaled(scaled(dataset, workload.job_dataset_frac), scale)
        job_manifest = build_shards(job_spec)
        one_job_sizes = [s.size_bytes for s in job_manifest.shards]
        for i in range(workload.n_jobs):
            job_id = f"job{i + 1}"
            job_dir = f"{JOBS_DIR}/{job_id}"
            rel = materialize(job_manifest, pfs, job_dir)
            if setup == "vanilla-local":
                assert local_fs is not None
                for shard, path in zip(job_manifest.shards, rel):
                    local_fs.add_file(path, shard.size_bytes)
                job_paths[job_id] = [SSD_MOUNT + p for p in rel]
            else:
                job_paths[job_id] = [PFS_MOUNT + p for p in rel]
            job_dirs[job_id] = job_dir
            job_sizes.append(one_job_sizes)
        # the shared namespace is never read under churn; the per-job
        # ``initialize_job`` phases are the (timed) metadata inits
        init_hook = None

    if trace is None:
        assert workload is not None
        trace = generate_trace(
            workload, sizes, scale, rngs,
            mean_record_bytes=mean_record,
            job_sizes=job_sizes if workload.kind == "churn" else None,
        )
    else:
        by_job: dict[str, list[int]] = {"": sizes}
        for i, job_id in enumerate(job_dirs):
            by_job[job_id] = job_sizes[i]
        _validate_trace(trace, by_job)

    # -- window sampling hooks --------------------------------------------
    if monarch is not None:
        pfs_level = monarch.hierarchy.pfs_level

        def hit_fn() -> tuple[int, int]:
            st = monarch.stats
            return st.total_reads, st.reads_per_level.get(pfs_level, 0)

        def occupancy_fn() -> dict[str, int]:
            return {
                f"l{lvl}": drv.occupancy_bytes
                for lvl, drv in monarch.hierarchy.upper_levels()
            }
    else:
        def hit_fn() -> tuple[int, int]:
            total = sum(b.read_ops for b in backends.values())
            return total, backends["pfs"].read_ops

        def occupancy_fn() -> dict[str, int]:
            if local_fs is None:
                return {}
            return {"local": local_fs.used_bytes}

    job_setup = None
    if monarch is not None and job_dirs:
        def job_setup(job_id: str, share: float, _m: Monarch = monarch):
            ctx = _m.register_job(job_id, job_dirs[job_id], share)
            yield from ctx.initialize()
            return ctx.reader()

    return ReplayDriver(
        sim,
        trace,
        reader,
        shard_paths,
        windows=workload.windows if workload is not None else 20,
        warmup_frac=workload.warmup_frac if workload is not None else 0.5,
        job_paths=job_paths or None,
        job_setup=job_setup,
        hit_fn=hit_fn,
        occupancy_fn=occupancy_fn,
        init_hook=init_hook,
    )
