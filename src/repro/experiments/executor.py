"""Parallel grid execution engine with a content-keyed run cache.

Every experiment grid in this repo — the figure grids, the sweeps, the
fault and distributed scenarios — is a list of *independent* seeded
simulation runs: each run builds its own :class:`Simulator`, derives its
own RNG substreams from the run seed, and shares no mutable state with
any sibling.  That makes the grid embarrassingly parallel, and —
crucially — makes parallel execution *exactly* equivalent to serial
execution as long as results are merged back in canonical spec order.

:class:`GridExecutor` exploits both properties:

* **Fan-out** — ``jobs > 1`` dispatches runs to a pool of shared-nothing
  worker processes (``spawn`` start method, so no state is forked;
  ``REPRO_*`` environment variables are re-exported to every worker).
  Results are merged by spec index, so the output order — and therefore
  every downstream aggregate (epoch means, variability, RunReport JSON)
  — is byte-identical to the serial path.  ``jobs=1`` executes in
  process, preserving the pre-existing code path exactly.
* **Run cache** — a content-keyed on-disk cache (:class:`RunCache`) maps
  the SHA-256 of the canonical :class:`RunSpec` (setup, model, dataset
  spec, every calibration constant, scale, seed, epochs, overrides,
  fault plan, report flag, relevant ``REPRO_*`` env knobs) plus a
  code-version salt to the finished record.  Repeated figure/benchmark/
  sweep invocations skip already-computed runs; any change to the spec,
  the calibration, or the source tree changes the key and misses.
  Entries carry a checksum, so corrupt or truncated files are detected
  and recomputed rather than trusted.

Worker failures never hang the pool: the failing run's spec and
traceback surface as a :class:`GridExecutionError` in the parent.
"""

from __future__ import annotations

import copy
import dataclasses
import functools
import hashlib
import json
import multiprocessing
import os
import sys
import traceback
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

from repro.data.dataset import DatasetSpec
from repro.experiments.calibration import Calibration
from repro.faults.plan import FaultPlan
from repro.telemetry.metrics import MetricsRegistry
from repro.workload.spec import WorkloadSpec

__all__ = [
    "GridExecutionError",
    "GridExecutor",
    "RunCache",
    "RunSpec",
    "code_salt",
    "default_cache_dir",
    "execute_grid",
    "resolve_cache",
    "spec_key",
]

#: on-disk entry layout version; bump when the payload schema changes
CACHE_FORMAT = 1

#: environment knobs that select a different execution path for the same
#: spec; captured into the cache key so an env flip cannot serve a stale
#: record (REPRO_DISABLE_BULK_IO is asserted bit-identical elsewhere, but
#: the cache does not get to *assume* that)
_ENV_KEYS = ("REPRO_DISABLE_BULK_IO", "REPRO_FAULT_PLAN")


# -- spec ------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class RunSpec:
    """Complete, self-contained description of one grid run.

    A spec must carry everything a shared-nothing worker needs to
    reproduce the run from scratch; two specs with equal canonical forms
    are guaranteed to produce bit-identical records.  ``kind`` selects
    the runner: ``"single"`` → :func:`repro.experiments.runner.run_once`,
    ``"dist"`` → :func:`repro.experiments.dist_scenarios.run_distributed_once`
    (with ``n_nodes``/``policy`` in ``extra``).
    """

    setup: str
    model: str
    dataset: DatasetSpec
    calib: Calibration
    scale: float = 1.0
    seed: int = 0
    epochs: int | None = None
    monarch_overrides: dict | None = None
    fault_plan: FaultPlan | None = None
    report: bool = False
    #: serving workload; switches a "single" run to trace replay
    workload: WorkloadSpec | None = None
    kind: str = "single"
    #: kind-specific knobs as a sorted tuple of (name, value) pairs
    extra: tuple[tuple[str, object], ...] = ()

    def describe(self) -> str:
        """One-line human identification (error messages, logs)."""
        bits = [
            self.kind,
            self.setup,
            self.model,
            self.dataset.name,
            f"scale={self.scale:g}",
            f"seed={self.seed}",
        ]
        if self.epochs is not None:
            bits.append(f"epochs={self.epochs}")
        if self.workload is not None:
            bits.append(f"workload={self.workload.name}")
        if self.fault_plan is not None:
            bits.append("faulted")
        bits.extend(f"{k}={v}" for k, v in self.extra)
        return "RunSpec(" + " ".join(bits) + ")"


def _plain(obj: object) -> object:
    """Canonical plain-JSON form of a spec component (sorted, typed)."""
    if isinstance(obj, FaultPlan):
        return {"__type__": "FaultPlan", "events": obj.to_dict()}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: dict[str, object] = {
            f.name: _plain(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        }
        out["__type__"] = type(obj).__name__
        return out
    if isinstance(obj, dict):
        return {str(k): _plain(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_plain(v) for v in obj]
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for the run-cache key")


@functools.lru_cache(maxsize=1)
def code_salt() -> str:
    """SHA-256 over the repro source tree — the cache's code-version salt.

    Hashing every ``.py`` file under the installed package means *any*
    source change (a calibration constant, a kernel tweak, a new field)
    invalidates every cached run — deliberately conservative: a stale hit
    is silent wrong data, a cold cache is just a recompute.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(path.relative_to(root).as_posix().encode("utf-8"))
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    return h.hexdigest()


def spec_key(spec: RunSpec, salt: str | None = None) -> str:
    """Content key of one run: canonical spec + env knobs + code salt."""
    payload = {
        "format": CACHE_FORMAT,
        "spec": _plain(spec),
        "env": {k: os.environ.get(k, "") for k in _ENV_KEYS},
        "salt": salt if salt is not None else code_salt(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- execution (worker side) ----------------------------------------------
def _execute_spec(spec: RunSpec):
    """Run one spec to completion; the only function workers ever run."""
    if spec.kind == "single":
        from repro.experiments.runner import run_once

        return run_once(
            spec.setup,
            spec.model,
            spec.dataset,
            calib=spec.calib,
            scale=spec.scale,
            seed=spec.seed,
            epochs=spec.epochs,
            monarch_overrides=spec.monarch_overrides,
            fault_plan=spec.fault_plan,
            report=spec.report,
            workload=spec.workload,
        )
    if spec.kind == "dist":
        from repro.experiments.dist_scenarios import run_distributed_once

        extra = dict(spec.extra)
        return run_distributed_once(
            spec.setup,
            spec.model,
            spec.dataset,
            n_nodes=int(extra["n_nodes"]),
            policy=extra.get("policy", "static"),
            calib=spec.calib,
            scale=spec.scale,
            seed=spec.seed,
            epochs=spec.epochs,
        )
    raise ValueError(f"unknown RunSpec kind {spec.kind!r}")


def _worker_init(env: dict[str, str], parent_sys_path: list[str]) -> None:
    """Initializer for spawned workers: REPRO_* env + import path parity."""
    for key in [k for k in os.environ if k.startswith("REPRO_") and k not in env]:
        del os.environ[key]
    os.environ.update(env)
    for entry in parent_sys_path:
        if entry not in sys.path:
            sys.path.append(entry)


def _pool_worker(index: int, spec: RunSpec):
    """Execute one spec in a worker; never raises across the pipe.

    Exceptions are flattened to ``(describe, traceback_text)`` so the
    parent does not depend on the exception type being picklable.
    """
    try:
        return index, True, _execute_spec(spec)
    except BaseException:  # noqa: BLE001 - reported, then re-raised in parent
        return index, False, (spec.describe(), traceback.format_exc())


class GridExecutionError(RuntimeError):
    """A grid run failed (in a worker or in the pool machinery)."""

    def __init__(self, spec_desc: str, detail: str) -> None:
        self.spec_desc = spec_desc
        super().__init__(f"grid run failed for {spec_desc}:\n{detail}")


# -- run cache -------------------------------------------------------------
def default_cache_dir() -> Path:
    """Cache root: ``REPRO_RUN_CACHE``, else XDG cache, else ``~/.cache``."""
    env = os.environ.get("REPRO_RUN_CACHE", "").strip()
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-monarch" / "runs"


def _record_blob(record_raw: dict) -> str:
    return json.dumps(record_raw, sort_keys=True, separators=(",", ":"))


def _rehydrate(record_type: str, raw: dict):
    if record_type == "RunRecord":
        from repro.experiments.formats import RunRecord

        return RunRecord(**raw)
    if record_type == "DistRunRecord":
        from repro.experiments.dist_scenarios import DistRunRecord

        return DistRunRecord(**raw)
    if record_type == "ServeRunRecord":
        from repro.experiments.formats import ServeRunRecord

        return ServeRunRecord(**raw)
    raise ValueError(f"unknown cached record type {record_type!r}")


class RunCache:
    """Content-keyed on-disk cache of finished run records.

    Entries live at ``<root>/<key[:2]>/<key>.json`` and carry the
    canonical spec (for inspection), the record payload and a SHA-256
    checksum of the payload.  A failed parse or a checksum mismatch
    counts the entry as *corrupt*: the lookup misses and the run is
    recomputed (and the entry rewritten) — never trusted.

    Records round-trip bit-identically: every field is plain JSON, and
    JSON float serialization is shortest-round-trip, so the rehydrated
    record compares equal to the freshly computed one field by field.
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / (key + ".json")

    def get(self, key: str):
        """The cached record for ``key``, or None (miss/corrupt)."""
        path = self._path(key)
        try:
            raw_text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(raw_text)
            if payload["format"] != CACHE_FORMAT or payload["key"] != key:
                raise ValueError("wrong cache entry format/key")
            record_raw = payload["record"]
            digest = hashlib.sha256(
                _record_blob(record_raw).encode("utf-8")
            ).hexdigest()
            if digest != payload["checksum"]:
                raise ValueError("cache entry checksum mismatch")
            record = _rehydrate(payload["record_type"], record_raw)
        except (ValueError, KeyError, TypeError):
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, spec: RunSpec, record) -> None:
        """Store ``record`` under ``key`` (atomic: temp file + rename)."""
        record_raw = dataclasses.asdict(record)
        payload = {
            "format": CACHE_FORMAT,
            "key": key,
            "record_type": type(record).__name__,
            "spec": _plain(spec),
            "record": record_raw,
            "checksum": hashlib.sha256(
                _record_blob(record_raw).encode("utf-8")
            ).hexdigest(),
        }
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, indent=1) + "\n", encoding="utf-8"
        )
        os.replace(tmp, path)
        self.stores += 1

    # -- maintenance / introspection -------------------------------------
    def entries(self) -> list[Path]:
        """Every entry file currently on disk, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def total_bytes(self) -> int:
        """Aggregate size of all entries."""
        return sum(p.stat().st_size for p in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def stats(self) -> dict[str, int]:
        """This process's hit/miss/store/corrupt counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }


def resolve_cache(cache) -> RunCache | None:
    """Normalize the user-facing ``cache=`` argument.

    ``None``/``False`` → disabled; ``True``/``"default"`` → the default
    directory; a path → that directory; a :class:`RunCache` → itself.
    """
    if cache is None or cache is False:
        return None
    if isinstance(cache, RunCache):
        return cache
    if cache is True or cache == "default":
        return RunCache()
    return RunCache(cache)


# -- executor (parent side) ------------------------------------------------
class GridExecutor:
    """Run a list of :class:`RunSpec`\\ s, optionally in parallel + cached.

    Results always come back in spec order, whatever the completion
    order, so aggregates built from them are independent of ``jobs``.
    ``execute_fn`` is a test seam for the in-process path only; worker
    processes always run the real runner.
    """

    def __init__(self, jobs: int = 1, cache=None, execute_fn=None) -> None:
        if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1:
            raise ValueError(f"jobs must be a positive integer, got {jobs!r}")
        self.jobs = jobs
        self.cache = resolve_cache(cache)
        self.metrics = MetricsRegistry()
        self._execute = execute_fn if execute_fn is not None else _execute_spec

    def map(self, specs: Iterable[RunSpec]) -> list:
        """Execute every spec; records return in canonical spec order."""
        specs = list(specs)
        records: list = [None] * len(specs)
        pending: list[int] = []
        keys: list[str] | None = None
        alias: list[tuple[int, int]] = []
        if self.cache is not None:
            salt = code_salt()
            keys = [spec_key(s, salt=salt) for s in specs]
            first_of: dict[str, int] = {}
            for i, key in enumerate(keys):
                cached = self.cache.get(key)
                if cached is not None:
                    records[i] = cached
                elif key in first_of:
                    # identical spec earlier in this grid: compute once,
                    # copy the result (no aliasing of mutable records)
                    alias.append((i, first_of[key]))
                else:
                    first_of[key] = i
                    pending.append(i)
        else:
            pending = list(range(len(specs)))

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                for i in pending:
                    records[i] = self._execute(specs[i])
            else:
                self._run_pool(specs, pending, records)

        if self.cache is not None and keys is not None:
            for i in pending:
                self.cache.put(keys[i], specs[i], records[i])
        for i, j in alias:
            records[i] = copy.deepcopy(records[j])

        m = self.metrics
        m.incr("grid.specs", len(specs))
        m.incr("grid.executed", len(pending))
        m.gauge("grid.jobs", float(self.jobs))
        if self.cache is not None:
            for name, value in self.cache.stats().items():
                m.set_counter(f"runcache.{name}", value)
        return records

    def _run_pool(self, specs: list[RunSpec], pending: list[int], records: list) -> None:
        ctx = multiprocessing.get_context("spawn")
        env = {k: v for k, v in os.environ.items() if k.startswith("REPRO_")}
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(env, list(sys.path)),
        ) as pool:
            futures = [(i, pool.submit(_pool_worker, i, specs[i])) for i in pending]
            try:
                for i, fut in futures:
                    try:
                        index, ok, payload = fut.result()
                    except BrokenProcessPool as err:
                        raise GridExecutionError(
                            specs[i].describe(),
                            f"worker process died abruptly: {err}",
                        ) from err
                    if not ok:
                        desc, tb_text = payload
                        raise GridExecutionError(desc, tb_text)
                    records[index] = payload
            except BaseException:
                # Surface the failure now; don't wait on queued work.
                for _i, fut in futures:
                    fut.cancel()
                raise


def execute_grid(specs: Sequence[RunSpec], jobs: int = 1, cache=None) -> list:
    """One-shot convenience wrapper around :class:`GridExecutor`."""
    return GridExecutor(jobs=jobs, cache=cache).map(specs)
