"""Runner for the distributed-training experiments (paper §VI).

Builds an N-node cluster over one shared PFS, runs the synchronous
data-parallel trainer, and un-scales the measurements like the
single-node runner does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.dataset import DatasetSpec
from repro.distributed.cluster import ClusterSpec, build_cluster
from repro.distributed.network import AllReduceModel
from repro.distributed.partition import PartitionPolicy
from repro.distributed.trainer import DistributedResult, DistributedTrainer
from repro.experiments.calibration import Calibration, DEFAULT_CALIBRATION
from repro.framework.models import MODELS

__all__ = ["DistRunRecord", "run_distributed_experiment", "run_distributed_once"]


@dataclass
class DistRunRecord:
    """One distributed run, un-scaled to paper units."""

    setup: str
    model: str
    n_nodes: int
    policy: str
    scale: float
    seed: int
    epoch_times_s: list[float] = field(default_factory=list)
    init_time_s: float = 0.0
    pfs_ops_per_epoch: list[int] = field(default_factory=list)
    pfs_bytes_per_epoch: list[int] = field(default_factory=list)
    tier_hit_ratio_per_epoch: list[float] = field(default_factory=list)

    @property
    def total_time_s(self) -> float:
        """Total over epochs."""
        return sum(self.epoch_times_s)

    @property
    def steady_hit_ratio(self) -> float:
        """Tier hit ratio of the last epoch."""
        return self.tier_hit_ratio_per_epoch[-1] if self.tier_hit_ratio_per_epoch else 0.0


def run_distributed_once(
    setup: str,
    model_name: str,
    dataset: DatasetSpec,
    n_nodes: int,
    policy: PartitionPolicy = "static",
    calib: Calibration | None = None,
    scale: float = 1.0,
    seed: int = 0,
    epochs: int | None = None,
    allreduce: AllReduceModel | None = None,
    placement_policy: str = "firstfit",
) -> DistRunRecord:
    """Build, execute and un-scale one distributed run."""
    calib = calib or DEFAULT_CALIBRATION
    if model_name not in MODELS:
        raise ValueError(f"unknown model {model_name!r}")
    cluster = build_cluster(
        setup=setup,
        dataset=dataset,
        calib=calib,
        cluster_spec=ClusterSpec(n_nodes=n_nodes),
        scale=scale,
        seed=seed,
        placement_policy=placement_policy,
    )
    assert cluster.env is not None
    trainer = DistributedTrainer(
        cluster=cluster,
        model=MODELS[model_name],
        pipeline_config=cluster.env.pipeline,
        partition_policy=policy,
        allreduce=allreduce,
        epochs=epochs if epochs is not None else calib.epochs,
        seed=seed,
    )
    proc = cluster.sim.spawn(trainer.run(), name="dist-train")
    result: DistributedResult = cluster.sim.run(proc)
    for ns in cluster.nodes:
        if ns.monarch is not None:
            ns.monarch.shutdown()
    inv = 1.0 / scale
    return DistRunRecord(
        setup=setup,
        model=model_name,
        n_nodes=n_nodes,
        policy=policy,
        scale=scale,
        seed=seed,
        epoch_times_s=[e.wall_time_s * inv for e in result.epochs],
        init_time_s=result.init_time_s * inv,
        pfs_ops_per_epoch=[int(round(e.pfs_ops.total_ops * inv)) for e in result.epochs],
        pfs_bytes_per_epoch=[int(round(e.pfs_ops.bytes_read * inv)) for e in result.epochs],
        tier_hit_ratio_per_epoch=[e.tier_hit_ratio for e in result.epochs],
    )


def run_distributed_experiment(
    setup: str,
    model_name: str,
    dataset: DatasetSpec,
    n_nodes: int,
    policy: PartitionPolicy = "static",
    calib: Calibration | None = None,
    scale: float = 1.0,
    runs: int = 3,
    base_seed: int = 100,
    epochs: int | None = None,
    jobs: int = 1,
    cache=None,
) -> list[DistRunRecord]:
    """Repeat :func:`run_distributed_once` over ``runs`` seeds.

    Seed derivation matches the single-node runner (``base_seed + i``);
    ``jobs``/``cache`` fan the seeds out and reuse cached records exactly
    like :func:`repro.experiments.runner.run_experiment` does.  Custom
    ``allreduce`` models are not supported here — they are not part of a
    :class:`RunSpec`'s canonical form, so use :func:`run_distributed_once`
    directly for those.
    """
    from repro.experiments.executor import RunSpec, execute_grid

    if runs < 1:
        raise ValueError("runs must be >= 1")
    specs = [
        RunSpec(
            setup=setup,
            model=model_name,
            dataset=dataset,
            calib=calib or DEFAULT_CALIBRATION,
            scale=scale,
            seed=base_seed + i,
            epochs=epochs,
            kind="dist",
            extra=(("n_nodes", n_nodes), ("policy", policy)),
        )
        for i in range(runs)
    ]
    return execute_grid(specs, jobs=jobs, cache=cache)
