"""Runner for the distributed-training experiments (paper §VI).

Builds an N-node cluster over one shared PFS, runs the synchronous
data-parallel trainer, and un-scales the measurements like the
single-node runner does.  ``monarch-p2p`` runs additionally carry the
peer-cache accounting (per-epoch peer hits/bytes, per-node service
counters, node-death timestamps) needed by the FIG-DIST-CACHE study.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.dataset import DatasetSpec
from repro.distributed.cluster import Cluster, ClusterSpec, build_cluster
from repro.distributed.network import AllReduceModel
from repro.distributed.partition import PartitionPolicy
from repro.distributed.trainer import DistributedResult, DistributedTrainer
from repro.experiments.calibration import Calibration, DEFAULT_CALIBRATION
from repro.faults.plan import FaultPlan
from repro.framework.models import MODELS

__all__ = [
    "DistRunRecord",
    "run_distributed_experiment",
    "run_distributed_once",
    "run_distributed_report",
]


@dataclass
class DistRunRecord:
    """One distributed run, un-scaled to paper units.

    The peer-cache fields hold empty lists for non-p2p setups.  Times in
    ``last_fetch_s_by_source`` / ``node_down_s`` use ``-1.0`` as the
    "never happened" sentinel.
    """

    setup: str
    model: str
    n_nodes: int
    policy: str
    scale: float
    seed: int
    epoch_times_s: list[float] = field(default_factory=list)
    init_time_s: float = 0.0
    pfs_ops_per_epoch: list[int] = field(default_factory=list)
    pfs_bytes_per_epoch: list[int] = field(default_factory=list)
    tier_hit_ratio_per_epoch: list[float] = field(default_factory=list)
    node_hit_ratios_per_epoch: list[list[float]] = field(default_factory=list)
    mean_node_hit_ratio_per_epoch: list[float] = field(default_factory=list)
    peer_hits_per_epoch: list[int] = field(default_factory=list)
    peer_bytes_per_epoch: list[int] = field(default_factory=list)
    peer_hits_by_node: list[int] = field(default_factory=list)
    peer_bytes_by_node: list[int] = field(default_factory=list)
    fetches_served_by_node: list[int] = field(default_factory=list)
    rereplications_by_node: list[int] = field(default_factory=list)
    last_fetch_s_by_source: list[float] = field(default_factory=list)
    node_down_s: list[float] = field(default_factory=list)

    @property
    def total_time_s(self) -> float:
        """Total over epochs."""
        return sum(self.epoch_times_s)

    @property
    def steady_hit_ratio(self) -> float:
        """Tier hit ratio of the last epoch."""
        return self.tier_hit_ratio_per_epoch[-1] if self.tier_hit_ratio_per_epoch else 0.0

    @property
    def total_peer_hits(self) -> int:
        """Peer-cache hits over all epochs."""
        return sum(self.peer_hits_per_epoch)


def _record_from(
    cluster: Cluster,
    result: DistributedResult,
    setup: str,
    model_name: str,
    policy: PartitionPolicy,
    scale: float,
    seed: int,
) -> DistRunRecord:
    """Un-scale one finished run into a :class:`DistRunRecord`."""
    inv = 1.0 / scale
    record = DistRunRecord(
        setup=setup,
        model=model_name,
        n_nodes=cluster.spec.n_nodes,
        policy=policy,
        scale=scale,
        seed=seed,
        epoch_times_s=[e.wall_time_s * inv for e in result.epochs],
        init_time_s=result.init_time_s * inv,
        pfs_ops_per_epoch=[int(round(e.pfs_ops.total_ops * inv)) for e in result.epochs],
        pfs_bytes_per_epoch=[int(round(e.pfs_ops.bytes_read * inv)) for e in result.epochs],
        tier_hit_ratio_per_epoch=[e.tier_hit_ratio for e in result.epochs],
        node_hit_ratios_per_epoch=[list(e.node_hit_ratios) for e in result.epochs],
        mean_node_hit_ratio_per_epoch=[e.mean_node_hit_ratio for e in result.epochs],
    )
    peers = cluster.peers
    if peers is not None:
        n = cluster.spec.n_nodes
        record.peer_hits_per_epoch = [e.peer_hits for e in result.epochs]
        record.peer_bytes_per_epoch = [e.peer_bytes for e in result.epochs]
        record.peer_hits_by_node = [peers.stats[i].peer_hits for i in range(n)]
        record.peer_bytes_by_node = [peers.stats[i].peer_bytes for i in range(n)]
        record.fetches_served_by_node = [peers.stats[i].fetches_served for i in range(n)]
        record.rereplications_by_node = [peers.stats[i].rereplications for i in range(n)]
        record.last_fetch_s_by_source = [
            peers.last_fetch_s_by_source[i] * inv
            if i in peers.last_fetch_s_by_source else -1.0
            for i in range(n)
        ]
        record.node_down_s = [
            peers.node_down_s[i] * inv if i in peers.node_down_s else -1.0
            for i in range(n)
        ]
    return record


def run_distributed_once(
    setup: str,
    model_name: str,
    dataset: DatasetSpec,
    n_nodes: int,
    policy: PartitionPolicy = "static",
    calib: Calibration | None = None,
    scale: float = 1.0,
    seed: int = 0,
    epochs: int | None = None,
    allreduce: AllReduceModel | None = None,
    placement_policy: str = "firstfit",
    fault_plan: FaultPlan | None = None,
) -> DistRunRecord:
    """Build, execute and un-scale one distributed run."""
    record, _ = run_distributed_report(
        setup, model_name, dataset, n_nodes, policy=policy, calib=calib,
        scale=scale, seed=seed, epochs=epochs, allreduce=allreduce,
        placement_policy=placement_policy, fault_plan=fault_plan,
        record_events=False,
    )
    return record


def run_distributed_report(
    setup: str,
    model_name: str,
    dataset: DatasetSpec,
    n_nodes: int,
    policy: PartitionPolicy = "static",
    calib: Calibration | None = None,
    scale: float = 1.0,
    seed: int = 0,
    epochs: int | None = None,
    allreduce: AllReduceModel | None = None,
    placement_policy: str = "firstfit",
    fault_plan: FaultPlan | None = None,
    record_events: bool = True,
):
    """Like :func:`run_distributed_once` but also return the RunReport.

    Returns ``(record, report)``; ``report`` is None when
    ``record_events=False`` (the cheap path :func:`run_distributed_once`
    takes).
    """
    calib = calib or DEFAULT_CALIBRATION
    if model_name not in MODELS:
        raise ValueError(f"unknown model {model_name!r}")
    cluster = build_cluster(
        setup=setup,
        dataset=dataset,
        calib=calib,
        cluster_spec=ClusterSpec(n_nodes=n_nodes),
        scale=scale,
        seed=seed,
        placement_policy=placement_policy,
        fault_plan=fault_plan,
        record_events=record_events,
    )
    assert cluster.env is not None
    trainer = DistributedTrainer(
        cluster=cluster,
        model=MODELS[model_name],
        pipeline_config=cluster.env.pipeline,
        partition_policy=policy,
        allreduce=allreduce,
        epochs=epochs if epochs is not None else calib.epochs,
        seed=seed,
    )
    proc = cluster.sim.spawn(trainer.run(), name="dist-train")
    result: DistributedResult = cluster.sim.run(proc)
    record = _record_from(cluster, result, setup, model_name, policy, scale, seed)
    report = None
    if record_events:
        from repro.telemetry.runreport import build_dist_run_report

        report = build_dist_run_report(cluster, result, record)
    for ns in cluster.nodes:
        if ns.monarch is not None:
            ns.monarch.shutdown()
    return record, report


def run_distributed_experiment(
    setup: str,
    model_name: str,
    dataset: DatasetSpec,
    n_nodes: int,
    policy: PartitionPolicy = "static",
    calib: Calibration | None = None,
    scale: float = 1.0,
    runs: int = 3,
    base_seed: int = 100,
    epochs: int | None = None,
    jobs: int = 1,
    cache=None,
) -> list[DistRunRecord]:
    """Repeat :func:`run_distributed_once` over ``runs`` seeds.

    Seed derivation matches the single-node runner (``base_seed + i``);
    ``jobs``/``cache`` fan the seeds out and reuse cached records exactly
    like :func:`repro.experiments.runner.run_experiment` does.  Custom
    ``allreduce`` models are not supported here — they are not part of a
    :class:`RunSpec`'s canonical form, so use :func:`run_distributed_once`
    directly for those.
    """
    from repro.experiments.executor import RunSpec, execute_grid

    if runs < 1:
        raise ValueError("runs must be >= 1")
    specs = [
        RunSpec(
            setup=setup,
            model=model_name,
            dataset=dataset,
            calib=calib or DEFAULT_CALIBRATION,
            scale=scale,
            seed=base_seed + i,
            epochs=epochs,
            kind="dist",
            extra=(("n_nodes", n_nodes), ("policy", policy)),
        )
        for i in range(runs)
    ]
    return execute_grid(specs, jobs=jobs, cache=cache)
