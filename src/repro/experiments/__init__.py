"""Experiment harness: calibration, scenarios, runner, figure generators.

Reproduces every evaluation artifact of the paper:

* ``figures.fig1()`` — motivation per-epoch training times (Fig. 1),
* ``figures.fig3()`` — MONARCH vs baselines on the 100 GiB dataset (Fig. 3),
* ``figures.fig4()`` — MONARCH vs vanilla-lustre on the 200 GiB dataset
  (Fig. 4),
* ``figures.resource_usage_*()`` — the CPU/GPU/memory prose tables,
* ``figures.io_reduction()`` — PFS I/O-operation reduction (§IV-A),
* ``figures.metadata_init()`` — metadata-container initialization times.

``python -m repro.experiments.figures <artifact>`` prints any of them.
"""

from repro.experiments.calibration import Calibration, DEFAULT_CALIBRATION
from repro.experiments.executor import (
    GridExecutionError,
    GridExecutor,
    RunCache,
    RunSpec,
    execute_grid,
)
from repro.experiments.formats import ExperimentResult, RunRecord
from repro.experiments.runner import experiment_specs, run_experiment, run_once
from repro.experiments.scenarios import SETUPS, build_run

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "ExperimentResult",
    "GridExecutionError",
    "GridExecutor",
    "RunCache",
    "RunRecord",
    "RunSpec",
    "SETUPS",
    "build_run",
    "execute_grid",
    "experiment_specs",
    "run_experiment",
    "run_once",
]
