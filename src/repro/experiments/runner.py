"""Run experiments and un-scale their measurements to paper units.

Simulated runs execute at a reduced ``scale``; times and op counts are
divided/multiplied back by the scale factor so every reported number is
directly comparable to the paper's (see DESIGN.md §2 "Scaling").
"""

from __future__ import annotations

from repro.data.dataset import DatasetSpec
from repro.experiments.calibration import Calibration, DEFAULT_CALIBRATION
from repro.experiments.executor import RunSpec, execute_grid
from repro.experiments.formats import ExperimentResult, RunRecord, ServeRunRecord
from repro.experiments.scenarios import build_run
from repro.telemetry.runreport import build_run_report, build_serve_run_report
from repro.telemetry.usage import memory_estimate_bytes
from repro.storage.blockmath import GIB

__all__ = ["experiment_specs", "run_experiment", "run_once"]


def _serve_record(handle, replay_result, *, setup, model_name, dataset,
                  scale, seed, workload_name, report) -> ServeRunRecord:
    """Fold one finished replay into a :class:`ServeRunRecord`."""
    lat, warm = replay_result.latency, replay_result.warm_latency
    record = ServeRunRecord(
        setup=setup,
        model=model_name,
        dataset=dataset.name,
        scale=scale,
        seed=seed,
        workload=workload_name,
        n_requests=replay_result.n_requests,
        completed=replay_result.completed,
        duration_s=replay_result.duration_s,
        init_time_s=replay_result.init_time_s,
        hit_rate=replay_result.hit_rate,
        warm_hit_rate=replay_result.warm_hit_rate,
        p50_ms=lat.p50 * 1e3,
        p99_ms=lat.p99 * 1e3,
        p999_ms=lat.p999 * 1e3,
        mean_ms=lat.mean_s * 1e3,
        warm_p50_ms=warm.p50 * 1e3,
        warm_p99_ms=warm.p99 * 1e3,
        warm_p999_ms=warm.p999 * 1e3,
        window_hit_rates=[w["hit_rate"] for w in replay_result.windows],
        window_completed=[w["completed"] for w in replay_result.windows],
        pfs_read_ops=handle.pfs.stats.read_ops,
        local_read_ops=(handle.local_fs.stats.read_ops
                        if handle.local_fs is not None else 0),
        pfs_bytes_read=handle.pfs.stats.bytes_read,
        local_bytes_read=(handle.local_fs.stats.bytes_read
                          if handle.local_fs is not None else 0),
    )
    if report:
        assert handle.telemetry is not None
        record.report = build_serve_run_report(
            handle.telemetry,
            replay_result,
            setup=setup,
            model=model_name,
            dataset=dataset.name,
            scale=scale,
            seed=seed,
            workload=workload_name,
        ).to_dict()
    return record


def run_once(
    setup: str,
    model_name: str,
    dataset: DatasetSpec,
    calib: Calibration | None = None,
    scale: float = 1.0,
    seed: int = 0,
    epochs: int | None = None,
    monarch_overrides: dict | None = None,
    fault_plan=None,
    report: bool = False,
    workload=None,
    trace=None,
) -> RunRecord | ServeRunRecord:
    """One seeded run; all measurements un-scaled to paper units.

    ``report=True`` executes with the telemetry layer armed and attaches
    the full :class:`~repro.telemetry.runreport.RunReport` payload (in
    *simulated* units, not un-scaled) to :attr:`RunRecord.report`.

    ``workload`` (a :class:`~repro.workload.spec.WorkloadSpec`) or
    ``trace`` (a pre-generated :class:`~repro.workload.trace.Trace`)
    switches the run to trace-replay serving: the result is a
    :class:`ServeRunRecord` of steady-state metrics in simulated units
    (see its docstring for why those need no un-scaling).
    """
    calib = calib or DEFAULT_CALIBRATION
    handle = build_run(
        setup=setup,
        model_name=model_name,
        dataset=dataset,
        calib=calib,
        scale=scale,
        seed=seed,
        epochs=epochs,
        monarch_overrides=monarch_overrides,
        fault_plan=fault_plan,
        telemetry=report,
        workload=workload,
        trace=trace,
    )
    result = handle.execute()
    if handle.replay is not None:
        name = workload.name if workload is not None else handle.replay.trace.workload
        return _serve_record(
            handle, result,
            setup=setup, model_name=model_name, dataset=dataset,
            scale=scale, seed=seed, workload_name=name, report=report,
        )
    inv = 1.0 / scale
    record = RunRecord(
        setup=setup,
        model=model_name,
        dataset=dataset.name,
        scale=scale,
        seed=seed,
        epoch_times_s=[e.wall_time_s * inv for e in result.epochs],
        init_time_s=result.init_time_s * inv,
        cpu_utilization=[e.cpu_utilization for e in result.epochs],
        gpu_utilization=[e.gpu_utilization for e in result.epochs],
        memory_gib=memory_estimate_bytes(
            calib.pipeline, dataset.size_model.mean_bytes
        )
        / GIB,
        pfs_ops_per_epoch=[
            int(round(e.backend_ops["pfs"].total_ops * inv)) for e in result.epochs
        ],
        local_ops_per_epoch=[
            int(round(e.backend_ops["local"].total_ops * inv))
            for e in result.epochs
            if "local" in e.backend_ops
        ],
        pfs_bytes_read=int(round(handle.pfs.stats.bytes_read * inv)),
        local_bytes_read=(
            int(round(handle.local_fs.stats.bytes_read * inv))
            if handle.local_fs is not None
            else 0
        ),
    )
    if report:
        assert handle.telemetry is not None
        record.report = build_run_report(
            handle.telemetry,
            result,
            setup=setup,
            model=model_name,
            dataset=dataset.name,
            scale=scale,
            seed=seed,
        ).to_dict()
    return record


def experiment_specs(
    setup: str,
    model_name: str,
    dataset: DatasetSpec,
    calib: Calibration | None = None,
    scale: float = 1.0,
    runs: int = 3,
    base_seed: int = 100,
    epochs: int | None = None,
    monarch_overrides: dict | None = None,
    fault_plan=None,
    report: bool = False,
) -> list[RunSpec]:
    """The :class:`RunSpec` list one experiment expands to, in seed order.

    Seed derivation is ``base_seed + i`` for run ``i`` — identical to the
    historical serial loop, so results merge back bit-identically however
    the specs are executed.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    return [
        RunSpec(
            setup=setup,
            model=model_name,
            dataset=dataset,
            calib=calib or DEFAULT_CALIBRATION,
            scale=scale,
            seed=base_seed + i,
            epochs=epochs,
            monarch_overrides=monarch_overrides,
            fault_plan=fault_plan,
            report=report,
        )
        for i in range(runs)
    ]


def run_experiment(
    setup: str,
    model_name: str,
    dataset: DatasetSpec,
    calib: Calibration | None = None,
    scale: float = 1.0,
    runs: int = 3,
    base_seed: int = 100,
    epochs: int | None = None,
    monarch_overrides: dict | None = None,
    fault_plan=None,
    report: bool = False,
    jobs: int = 1,
    cache=None,
) -> ExperimentResult:
    """Repeat :func:`run_once` over ``runs`` seeds (paper methodology: 7).

    ``jobs > 1`` fans the seeds out over a process pool; ``cache`` enables
    the content-keyed run cache (see :mod:`repro.experiments.executor`).
    Both are transparent: results are merged in seed order, so aggregates
    are byte-identical to the serial, uncached path.
    """
    specs = experiment_specs(
        setup=setup,
        model_name=model_name,
        dataset=dataset,
        calib=calib,
        scale=scale,
        runs=runs,
        base_seed=base_seed,
        epochs=epochs,
        monarch_overrides=monarch_overrides,
        fault_plan=fault_plan,
        report=report,
    )
    result = ExperimentResult(setup=setup, model=model_name, dataset=dataset.name)
    result.runs.extend(execute_grid(specs, jobs=jobs, cache=cache))
    return result
